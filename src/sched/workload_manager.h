#ifndef CUMULON_SCHED_WORKLOAD_MANAGER_H_
#define CUMULON_SCHED_WORKLOAD_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/engine.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "matrix/tile_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/slot_pool.h"

namespace cumulon {

/// Order in which queued plans are dispatched.
///  - kFifo: submission order (stock Hadoop job queue).
///  - kFairShare: tenant with the least accumulated service time first
///    (FIFO within a tenant), so a heavy tenant cannot starve light ones.
///  - kEdf: earliest effective deadline first, with priority aging —
///    every second a plan waits tightens its effective deadline by
///    aging_rate seconds, so deadline-less plans (assigned
///    no_deadline_horizon_seconds) cannot starve.
enum class SchedPolicy { kFifo, kFairShare, kEdf };

const char* SchedPolicyName(SchedPolicy policy);
Result<SchedPolicy> ParseSchedPolicy(const std::string& name);

/// The predictor's estimate of one submission, used by admission control
/// (opt/predictor.h produces one; any estimator works).
struct AdmissionEstimate {
  double seconds = 0.0;
  double dollars = 0.0;
  bool valid = false;  // false = no estimate; admission waves it through
};

/// One plan handed to the manager, with the tenant's constraints.
struct Submission {
  /// Plan tag: names trace spans and the plan.<tag>.exec.* metric copies.
  std::string name;
  /// Fair-share accounting group; defaults to `name` when empty.
  std::string tenant;
  PhysicalPlan plan;
  /// Wall (or virtual) seconds after submission the plan must finish by;
  /// 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Maximum predicted dollar cost the tenant will pay; 0 = no budget.
  double budget_dollars = 0.0;
  /// Predictor estimate backing the admission decision.
  AdmissionEstimate estimate;
};

enum class PlanState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* PlanStateName(PlanState state);

/// Terminal record of one admitted plan.
struct PlanOutcome {
  int64_t plan_id = 0;
  std::string name;
  std::string tenant;
  PlanState state = PlanState::kQueued;
  Status status;    // executor status for kFailed/kCancelled
  PlanStats stats;  // empty unless the plan ran to completion
  AdmissionEstimate estimate;

  // Manager-clock timeline (seconds since the manager started; virtual
  // in sim mode, wall in real mode).
  double submit_seconds = 0.0;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double deadline_abs_seconds = 0.0;  // 0 = none
  bool deadline_met = true;

  double queue_wait_seconds() const { return start_seconds - submit_seconds; }
  double turnaround_seconds() const {
    return finish_seconds - submit_seconds;
  }
};

struct WorkloadManagerOptions {
  SchedPolicy policy = SchedPolicy::kFifo;

  /// Plans executing at once; their slot use is arbitrated by the pool.
  int max_concurrent_plans = 2;

  /// Reject submissions whose deadline/budget is infeasible given the
  /// predictor's estimate and the current backlog (the paper's constraint
  /// check, applied online per submission). Estimate-less submissions are
  /// always admitted.
  bool admission_control = true;

  /// Safety multiplier on the estimated run time in the admission
  /// projection (> 1 = conservative).
  double admission_slack = 1.0;

  /// EDF priority aging: effective deadline tightens by this many seconds
  /// per second of queue wait.
  double aging_rate = 0.1;

  /// Effective deadline assigned to deadline-less plans under EDF.
  double no_deadline_horizon_seconds = 3600.0;

  /// Manager clock: false = wall clock (real engines); true = virtual —
  /// time advances to each plan's simulated completion (sim engines), so
  /// deadline accounting and the policy's notion of "now" live in the
  /// same clock domain as the predicted durations.
  bool virtual_time = false;

  /// Hold queued submissions until Start() — lets tests and benches load
  /// the whole queue before the policy picks an order.
  bool defer_start = false;

  /// Initial SlotPool capacity; 0 = the engine's total_slots(). The
  /// elastic fleet controller (sched/elastic.h) resizes the pool at run
  /// time, so a service can start on a small fleet and grow toward the
  /// engine's configured maximum under backlog.
  int initial_slots = 0;

  /// Template for every plan's executor (real_mode, startup latency,
  /// parallelize_independent_jobs, ...). Its plan_id/plan_tag/slot_pool/
  /// cancel fields are overwritten per plan; its metrics/tracer default to
  /// the manager's when null.
  ExecutorOptions executor;

  /// Destination of the sched.* metrics (and, via the executors, the
  /// exec.* and plan.<tag>.exec.* ones). Borrowed; the manager owns a
  /// private registry when null.
  MetricsRegistry* metrics = nullptr;

  /// Records one "plan" span per admitted plan (driver row, one lane per
  /// plan id) plus the executors' job/task spans. Borrowed; may be null.
  Tracer* tracer = nullptr;
};

/// Accepts many concurrent plan submissions — each with an optional
/// deadline and dollar budget — and executes them against one shared
/// engine: cost-based admission control at Submit, policy-ordered dispatch
/// onto max_concurrent_plans worker threads, slot arbitration through a
/// SlotPool, cooperative cancellation, and per-tenant sched.* metrics.
///
/// This lifts the paper's one-shot time/budget-constrained optimization
/// into an online service: the same predictor estimate that picked the
/// deployment now gates whether a submission can meet its constraints
/// under current load.
///
/// Thread-safe; Submit/Cancel/Wait may be called from any thread.
class WorkloadManager {
 public:
  /// All pointers are borrowed and must outlive the manager.
  WorkloadManager(TileStore* store, Engine* engine,
                  const TileOpCostModel* cost,
                  const WorkloadManagerOptions& options);
  ~WorkloadManager();

  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  /// Admission control + enqueue. Returns the plan id, or:
  ///  - ResourceExhausted when the deadline is infeasible under current
  ///    load (message carries the predictor's estimate and the projection)
  ///  - ResourceExhausted when the estimated cost exceeds the budget.
  Result<int64_t> Submit(Submission submission);

  /// Releases the queue when options.defer_start was set. Idempotent.
  void Start();

  /// Requests cancellation: a queued plan is dropped; a running plan stops
  /// at the next task boundary and resolves to kCancelled. NotFound for
  /// unknown ids; FailedPrecondition if the plan already finished.
  Status Cancel(int64_t plan_id);

  /// Blocks until the plan reaches a terminal state and returns its
  /// outcome. CHECK-fails on unknown ids.
  PlanOutcome Wait(int64_t plan_id);

  /// Nonblocking: the plan's current state. NotFound for unknown ids.
  Result<PlanState> QueryState(int64_t plan_id) const;

  /// Nonblocking: the plan's outcome if it already reached a terminal
  /// state, FailedPrecondition while it is still queued or running,
  /// NotFound for unknown ids. The service daemon's poll/reaper path —
  /// never parks a thread per plan the way Wait does.
  Result<PlanOutcome> TryGetOutcome(int64_t plan_id) const;

  /// Cancels every plan still queued (not yet dispatched to a worker) and
  /// returns their ids. Running plans are untouched — this is the graceful
  /// drain's first half: pull the unstarted work back for persistence,
  /// then Drain() waits only for the in-flight plans.
  std::vector<int64_t> CancelAllQueued();

  /// Waits for everything submitted so far, stops the workers, and
  /// returns all outcomes ordered by plan id. The manager accepts no
  /// further submissions.
  std::vector<PlanOutcome> Drain();

  /// Seconds since the manager started, in the configured clock domain.
  double NowSeconds() const;

  /// Estimated seconds of queued + running work, spread over the workers —
  /// the demand signal the elastic provisioner (sched/elastic.h) re-plans
  /// the fleet against.
  double BacklogSeconds() const;

  SlotPool* slot_pool() { return &slot_pool_; }
  MetricsRegistry* metrics() { return metrics_; }
  int queued_plans() const;
  int running_plans() const;

 private:
  /// All PlanEntry fields except `cancel` (atomic, flipped by Cancel while
  /// a worker runs the plan) are guarded by the manager's mu_; the running
  /// worker only touches its entry's submission/plan data, which is
  /// immutable once dispatched.
  struct PlanEntry {
    Submission submission;
    PlanOutcome outcome;
    std::atomic<bool> cancel{false};
    bool terminal = false;
  };

  void WorkerLoop();

  /// Policy step, under mu_: the queued entry to dispatch next, or null.
  PlanEntry* PickNextLocked() CUMULON_REQUIRES(mu_);

  /// Admission projection, under mu_: estimated seconds of queued +
  /// running work ahead of a new submission, spread over the workers.
  double BacklogSecondsLocked() const CUMULON_REQUIRES(mu_);

  double NowSecondsLocked() const CUMULON_REQUIRES(mu_);
  void FinishPlanLocked(PlanEntry* entry, PlanState state, Status status,
                        PlanStats stats, double start, double duration)
      CUMULON_REQUIRES(mu_);

  TileStore* store_;
  Engine* engine_;
  const TileOpCostModel* cost_;
  WorkloadManagerOptions options_;
  MetricsRegistry* metrics_;  // options_.metrics or &owned_metrics_
  MetricsRegistry owned_metrics_;
  SlotPool slot_pool_;

  mutable Mutex mu_{"WorkloadManager::mu_"};
  CondVar work_cv_;      // queue released / new entry / stop
  CondVar terminal_cv_;  // a plan reached a terminal state
  bool started_ CUMULON_GUARDED_BY(mu_);
  bool stopping_ CUMULON_GUARDED_BY(mu_) = false;
  int64_t next_plan_id_ CUMULON_GUARDED_BY(mu_) = 1;
  // admitted, not yet running (FIFO backbone)
  std::deque<int64_t> queue_ CUMULON_GUARDED_BY(mu_);
  std::map<int64_t, std::unique_ptr<PlanEntry>> plans_
      CUMULON_GUARDED_BY(mu_);
  std::map<std::string, double> tenant_service_seconds_
      CUMULON_GUARDED_BY(mu_);
  int running_ CUMULON_GUARDED_BY(mu_) = 0;
  double virtual_now_seconds_ CUMULON_GUARDED_BY(mu_) = 0.0;
  std::chrono::steady_clock::time_point wall_start_;
  std::vector<std::thread> workers_;
};

}  // namespace cumulon

#endif  // CUMULON_SCHED_WORKLOAD_MANAGER_H_
