#include "sched/workload_manager.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"
#include "verify/verify.h"

namespace cumulon {

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kFairShare:
      return "fair";
    case SchedPolicy::kEdf:
      return "edf";
  }
  return "unknown";
}

Result<SchedPolicy> ParseSchedPolicy(const std::string& name) {
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "fair" || name == "fair-share") return SchedPolicy::kFairShare;
  if (name == "edf") return SchedPolicy::kEdf;
  return Status::InvalidArgument(
      StrCat("unknown scheduling policy '", name,
             "' (expected fifo|fair|edf)"));
}

const char* PlanStateName(PlanState state) {
  switch (state) {
    case PlanState::kQueued:
      return "queued";
    case PlanState::kRunning:
      return "running";
    case PlanState::kDone:
      return "done";
    case PlanState::kFailed:
      return "failed";
    case PlanState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

WorkloadManager::WorkloadManager(TileStore* store, Engine* engine,
                                 const TileOpCostModel* cost,
                                 const WorkloadManagerOptions& options)
    : store_(store),
      engine_(engine),
      cost_(cost),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &owned_metrics_),
      slot_pool_(options.initial_slots > 0 ? options.initial_slots
                                           : engine->config().total_slots()),
      started_(!options.defer_start),
      wall_start_(std::chrono::steady_clock::now()) {
  CUMULON_CHECK(store_ != nullptr);
  CUMULON_CHECK(engine_ != nullptr);
  CUMULON_CHECK(cost_ != nullptr);
  CUMULON_CHECK_GT(options_.max_concurrent_plans, 0);
  workers_.reserve(options_.max_concurrent_plans);
  for (int i = 0; i < options_.max_concurrent_plans; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkloadManager::~WorkloadManager() {
  Drain();
}

double WorkloadManager::NowSecondsLocked() const {
  if (options_.virtual_time) return virtual_now_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_start_)
      .count();
}

double WorkloadManager::NowSeconds() const {
  MutexLock lock(&mu_);
  return NowSecondsLocked();
}

double WorkloadManager::BacklogSeconds() const {
  MutexLock lock(&mu_);
  return BacklogSecondsLocked();
}

double WorkloadManager::BacklogSecondsLocked() const {
  double backlog = 0.0;
  for (const auto& [id, entry] : plans_) {
    if (entry->terminal) continue;
    if (entry->outcome.state != PlanState::kQueued &&
        entry->outcome.state != PlanState::kRunning) {
      continue;
    }
    if (entry->submission.estimate.valid) {
      backlog += entry->submission.estimate.seconds;
    }
  }
  return backlog / options_.max_concurrent_plans;
}

Result<int64_t> WorkloadManager::Submit(Submission submission) {
  MutexLock lock(&mu_);
  if (stopping_) {
    return Status::FailedPrecondition("workload manager is draining");
  }
  metrics_->counter("sched.submitted")->Increment();

  // Static plan verification ahead of cost-based admission: a structurally
  // broken plan (dependency cycle, double-produced matrix, infeasible
  // split) is rejected with its typed verify.* reason before it can
  // occupy a queue slot or fleet time. Residency and the determinism
  // contract are not enforced here — submitters may hand-assemble plans
  // against matrices already in the store.
  {
    PlanVerifyOptions verify_options;
    verify_options.cost = cost_;
    if (options_.executor.real_mode) {
      verify_options.memory_budget_bytes =
          options_.executor.memory_budget_bytes;
      TileCacheGroup* caches = engine_->tile_caches();
      verify_options.cache_reserve_bytes =
          caches != nullptr ? caches->bytes_per_node() : 0;
    }
    const Status verified =
        VerifyPlanStatus(submission.plan, verify_options, metrics_);
    if (!verified.ok()) {
      metrics_->counter("sched.rejected")->Increment();
      metrics_->counter("sched.rejected.verify")->Increment();
      return verified;
    }
  }

  const AdmissionEstimate& est = submission.estimate;
  if (options_.admission_control && est.valid) {
    if (submission.budget_dollars > 0.0 &&
        est.dollars > submission.budget_dollars) {
      metrics_->counter("sched.rejected")->Increment();
      metrics_->counter("sched.rejected.budget")->Increment();
      return Status::ResourceExhausted(StrCat(
          "submission '", submission.name, "' rejected: estimated cost $",
          est.dollars, " exceeds budget $", submission.budget_dollars));
    }
    if (submission.deadline_seconds > 0.0) {
      const double projected = BacklogSecondsLocked() +
                               est.seconds * options_.admission_slack;
      if (projected > submission.deadline_seconds) {
        metrics_->counter("sched.rejected")->Increment();
        metrics_->counter("sched.rejected.deadline")->Increment();
        return Status::ResourceExhausted(StrCat(
            "submission '", submission.name, "' rejected: estimated ",
            est.seconds, " s (", projected,
            " s with queued work ahead) cannot meet the ",
            submission.deadline_seconds, " s deadline"));
      }
    }
  }

  const int64_t id = next_plan_id_++;
  auto entry = std::make_unique<PlanEntry>();
  entry->outcome.plan_id = id;
  entry->outcome.name =
      submission.name.empty() ? StrCat("plan", id) : submission.name;
  entry->outcome.tenant = submission.tenant.empty() ? entry->outcome.name
                                                    : submission.tenant;
  entry->outcome.estimate = est;
  entry->outcome.submit_seconds = NowSecondsLocked();
  if (submission.deadline_seconds > 0.0) {
    entry->outcome.deadline_abs_seconds =
        entry->outcome.submit_seconds + submission.deadline_seconds;
  }
  entry->submission = std::move(submission);

  metrics_->counter("sched.admitted")->Increment();
  metrics_->counter(StrCat("sched.tenant.", entry->outcome.tenant,
                           ".submitted"))
      ->Increment();
  queue_.push_back(id);
  plans_.emplace(id, std::move(entry));
  metrics_->gauge("sched.queued")->Set(static_cast<int64_t>(queue_.size()));
  work_cv_.NotifyAll();
  return id;
}

void WorkloadManager::Start() {
  MutexLock lock(&mu_);
  started_ = true;
  work_cv_.NotifyAll();
}

Status WorkloadManager::Cancel(int64_t plan_id) {
  MutexLock lock(&mu_);
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) {
    return Status::NotFound(StrCat("no plan with id ", plan_id));
  }
  PlanEntry* entry = it->second.get();
  if (entry->terminal) {
    return Status::FailedPrecondition(
        StrCat("plan ", plan_id, " already ",
               PlanStateName(entry->outcome.state)));
  }
  entry->cancel.store(true, std::memory_order_relaxed);
  if (entry->outcome.state == PlanState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), plan_id),
                 queue_.end());
    metrics_->gauge("sched.queued")->Set(static_cast<int64_t>(queue_.size()));
    const double now = NowSecondsLocked();
    entry->outcome.state = PlanState::kCancelled;
    entry->outcome.status = Status::Cancelled("cancelled while queued");
    entry->outcome.start_seconds = now;
    entry->outcome.finish_seconds = now;
    entry->terminal = true;
    metrics_->counter("sched.cancelled")->Increment();
    terminal_cv_.NotifyAll();
  }
  // Running plans: the executor/engine observe the flag at the next task
  // boundary and resolve through FinishPlanLocked.
  return Status::OK();
}

PlanOutcome WorkloadManager::Wait(int64_t plan_id) {
  MutexLock lock(&mu_);
  auto it = plans_.find(plan_id);
  CUMULON_CHECK(it != plans_.end()) << "no plan with id " << plan_id;
  PlanEntry* entry = it->second.get();
  while (!entry->terminal) terminal_cv_.Wait(&mu_);
  return entry->outcome;
}

Result<PlanState> WorkloadManager::QueryState(int64_t plan_id) const {
  MutexLock lock(&mu_);
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) {
    return Status::NotFound(StrCat("no plan with id ", plan_id));
  }
  return it->second->outcome.state;
}

Result<PlanOutcome> WorkloadManager::TryGetOutcome(int64_t plan_id) const {
  MutexLock lock(&mu_);
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) {
    return Status::NotFound(StrCat("no plan with id ", plan_id));
  }
  if (!it->second->terminal) {
    return Status::FailedPrecondition(
        StrCat("plan ", plan_id, " still ",
               PlanStateName(it->second->outcome.state)));
  }
  return it->second->outcome;
}

std::vector<int64_t> WorkloadManager::CancelAllQueued() {
  MutexLock lock(&mu_);
  std::vector<int64_t> cancelled;
  cancelled.reserve(queue_.size());
  const double now = NowSecondsLocked();
  for (const int64_t id : queue_) {
    PlanEntry* entry = plans_.at(id).get();
    entry->cancel.store(true, std::memory_order_relaxed);
    entry->outcome.state = PlanState::kCancelled;
    entry->outcome.status = Status::Cancelled("cancelled while queued");
    entry->outcome.start_seconds = now;
    entry->outcome.finish_seconds = now;
    entry->terminal = true;
    metrics_->counter("sched.cancelled")->Increment();
    cancelled.push_back(id);
  }
  queue_.clear();
  metrics_->gauge("sched.queued")->Set(0);
  if (!cancelled.empty()) terminal_cv_.NotifyAll();
  return cancelled;
}

std::vector<PlanOutcome> WorkloadManager::Drain() {
  {
    MutexLock lock(&mu_);
    started_ = true;  // a deferred queue must flush before shutdown
    work_cv_.NotifyAll();
    while (!(queue_.empty() && running_ == 0)) terminal_cv_.Wait(&mu_);
    stopping_ = true;
    work_cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<PlanOutcome> outcomes;
  MutexLock lock(&mu_);
  outcomes.reserve(plans_.size());
  for (const auto& [id, entry] : plans_) {
    outcomes.push_back(entry->outcome);
  }
  return outcomes;
}

int WorkloadManager::queued_plans() const {
  MutexLock lock(&mu_);
  return static_cast<int>(queue_.size());
}

int WorkloadManager::running_plans() const {
  MutexLock lock(&mu_);
  return running_;
}

WorkloadManager::PlanEntry* WorkloadManager::PickNextLocked() {
  if (queue_.empty()) return nullptr;
  const double now = NowSecondsLocked();
  auto best = queue_.end();
  double best_key = std::numeric_limits<double>::infinity();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    PlanEntry* entry = plans_.at(*it).get();
    double key = 0.0;
    switch (options_.policy) {
      case SchedPolicy::kFifo:
        key = static_cast<double>(entry->outcome.plan_id);
        break;
      case SchedPolicy::kFairShare: {
        // Least-served tenant first; FIFO within a tenant via the id
        // tiebreak below.
        auto served = tenant_service_seconds_.find(entry->outcome.tenant);
        key = served == tenant_service_seconds_.end() ? 0.0 : served->second;
        break;
      }
      case SchedPolicy::kEdf: {
        const double effective_deadline =
            entry->outcome.deadline_abs_seconds > 0.0
                ? entry->outcome.deadline_abs_seconds
                : entry->outcome.submit_seconds +
                      options_.no_deadline_horizon_seconds;
        const double waited = now - entry->outcome.submit_seconds;
        key = effective_deadline - options_.aging_rate * waited;
        break;
      }
    }
    if (best == queue_.end() || key < best_key ||
        (key == best_key && *it < *best)) {
      best = it;
      best_key = key;
    }
  }
  PlanEntry* chosen = plans_.at(*best).get();
  queue_.erase(best);
  metrics_->gauge("sched.queued")->Set(static_cast<int64_t>(queue_.size()));
  return chosen;
}

void WorkloadManager::FinishPlanLocked(PlanEntry* entry, PlanState state,
                                       Status status, PlanStats stats,
                                       double start, double duration) {
  PlanOutcome& out = entry->outcome;
  out.state = state;
  out.status = std::move(status);
  out.stats = std::move(stats);
  out.start_seconds = start;
  out.finish_seconds = start + duration;
  if (options_.virtual_time) {
    virtual_now_seconds_ = std::max(virtual_now_seconds_, out.finish_seconds);
  }
  out.deadline_met = out.deadline_abs_seconds <= 0.0 ||
                     out.finish_seconds <= out.deadline_abs_seconds;
  tenant_service_seconds_[out.tenant] += duration;
  entry->terminal = true;

  switch (state) {
    case PlanState::kDone:
      metrics_->counter("sched.completed")->Increment();
      break;
    case PlanState::kFailed:
      metrics_->counter("sched.failed")->Increment();
      break;
    case PlanState::kCancelled:
      metrics_->counter("sched.cancelled")->Increment();
      break;
    default:
      break;
  }
  if (out.deadline_abs_seconds > 0.0 && state == PlanState::kDone) {
    metrics_->counter(out.deadline_met ? "sched.deadline.met"
                                       : "sched.deadline.missed")
        ->Increment();
  }
  metrics_->histogram("sched.queue_wait_seconds")
      ->Observe(out.queue_wait_seconds());
  metrics_->histogram("sched.run_seconds")->Observe(duration);
  metrics_->histogram("sched.turnaround_seconds")
      ->Observe(out.turnaround_seconds());
  metrics_->counter(StrCat("sched.tenant.", out.tenant, ".finished"))
      ->Increment();

  Tracer* tracer = options_.tracer;
  if (tracer != nullptr) {
    TraceSpan span;
    span.name = StrCat("plan ", out.name, " [", PlanStateName(state), "]");
    span.category = "plan";
    span.parent_id = -1;
    span.machine = -1;
    span.slot = static_cast<int>(out.plan_id);
    span.start_seconds = out.start_seconds;
    span.duration_seconds = duration;
    span.args = {
        {"plan", static_cast<double>(out.plan_id)},
        {"queue_wait_seconds", out.queue_wait_seconds()},
        {"deadline_abs_seconds", out.deadline_abs_seconds},
        {"deadline_met", out.deadline_met ? 1.0 : 0.0},
        {"estimate_seconds", out.estimate.valid ? out.estimate.seconds : 0.0},
    };
    tracer->AddSpan(std::move(span));
  }
  terminal_cv_.NotifyAll();
}

void WorkloadManager::WorkerLoop() {
  for (;;) {
    PlanEntry* entry = nullptr;
    double start = 0.0;
    {
      MutexLock lock(&mu_);
      while (!(stopping_ || (started_ && !queue_.empty()))) {
        work_cv_.Wait(&mu_);
      }
      if (stopping_ && queue_.empty()) return;
      entry = PickNextLocked();
      if (entry == nullptr) continue;
      entry->outcome.state = PlanState::kRunning;
      ++running_;
      metrics_->gauge("sched.running")->Set(running_);
      start = NowSecondsLocked();
    }

    slot_pool_.RegisterPlan(entry->outcome.plan_id);
    ExecutorOptions exec_options = options_.executor;
    exec_options.plan_id = entry->outcome.plan_id;
    exec_options.plan_tag = entry->outcome.name;
    exec_options.slot_pool = &slot_pool_;
    exec_options.cancel = &entry->cancel;
    if (exec_options.metrics == nullptr) exec_options.metrics = metrics_;
    if (exec_options.tracer == nullptr) exec_options.tracer = options_.tracer;
    Executor executor(store_, engine_, cost_, exec_options);

    const auto wall_before = std::chrono::steady_clock::now();
    Result<PlanStats> result = executor.Run(entry->submission.plan);
    const double wall_duration =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_before)
            .count();
    slot_pool_.UnregisterPlan(entry->outcome.plan_id);

    MutexLock lock(&mu_);
    --running_;
    metrics_->gauge("sched.running")->Set(running_);
    if (result.ok()) {
      // Virtual time: the plan occupied the cluster for its simulated
      // duration; wall time: for as long as it really ran.
      const double duration =
          options_.virtual_time ? result->total_seconds : wall_duration;
      FinishPlanLocked(entry, PlanState::kDone, Status::OK(),
                       std::move(result).value(), start, duration);
    } else if (result.status().code() == StatusCode::kCancelled) {
      FinishPlanLocked(entry, PlanState::kCancelled, result.status(),
                       PlanStats{}, start, wall_duration);
    } else {
      FinishPlanLocked(entry, PlanState::kFailed, result.status(),
                       PlanStats{}, start, wall_duration);
    }
    work_cv_.NotifyAll();
  }
}

}  // namespace cumulon
