#ifndef CUMULON_SCHED_ELASTIC_H_
#define CUMULON_SCHED_ELASTIC_H_

#include "cloud/machine.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cumulon {

/// Bounds and targets of the elastic re-planning loop (the paper's
/// elasticity story: grow the cluster with cheap transient machines under
/// backlog, shrink back when idle, and never let the expected revocation
/// rework eat the discount).
struct ElasticPolicy {
  int min_machines = 1;
  int max_machines = 16;

  /// The fleet is sized so each machine carries at most this much of the
  /// estimated backlog; more queued seconds per machine scales out.
  double target_backlog_seconds_per_machine = 120.0;

  /// Shrink to min_machines when the backlog is empty (idle epochs cost
  /// money under hourly billing either way; per-second billing makes the
  /// shrink pay off immediately).
  bool scale_in_when_idle = true;

  /// At most this fraction of the fleet may be transient: a reserved
  /// on-demand core keeps the whole fleet from vanishing at once.
  double max_spot_fraction = 0.75;

  /// Admission headroom: a deadline is treated as met only when the
  /// slowdown-inflated estimate fits within deadline / deadline_slack.
  double deadline_slack = 1.15;
};

/// The fleet a decision provisions: `machines` total, of which the last
/// `spot_machines` are transient (on-demand machines keep the low indices,
/// matching RevocationSchedule::Sample's first_transient_machine split).
struct FleetState {
  int machines = 0;
  int spot_machines = 0;

  int on_demand_machines() const { return machines - spot_machines; }
};

/// One re-planning step's outcome.
struct FleetDecision {
  FleetState fleet;
  bool scaled_out = false;
  bool scaled_in = false;

  /// The analytic rework multiplier the chosen spot mix carries
  /// (cost/cost_model.h ExpectedRevocationSlowdown); 1.0 for a pure
  /// on-demand fleet.
  double expected_slowdown = 1.0;
};

/// Online fleet sizing: turns a backlog estimate into the cheapest fleet
/// that drains it within the horizon, mixing discounted transient machines
/// in as long as their expected revocation rework keeps the effective
/// price-rate below on-demand and the slowdown within `max_slowdown`.
/// Emits sched.replan.* metrics (see docs/observability.md). Deterministic:
/// no clocks, no randomness — decisions depend only on the arguments.
class ElasticProvisioner {
 public:
  /// `spot_discount` / `spot_hazard_per_hour` describe the spot market the
  /// provisioner may buy from. Metrics borrowed; disabled when null.
  ElasticProvisioner(const ElasticPolicy& policy, double spot_discount,
                     double spot_hazard_per_hour,
                     MetricsRegistry* metrics = nullptr);

  /// Picks the next fleet for `backlog_seconds` of queued work over the
  /// coming `horizon_seconds` epoch. `max_slowdown` caps the acceptable
  /// rework multiplier (deadline pressure → lower cap → fewer spot
  /// machines).
  FleetDecision Replan(const FleetState& current, double backlog_seconds,
                       double horizon_seconds, double max_slowdown) const;

  const ElasticPolicy& policy() const { return policy_; }
  double spot_discount() const { return spot_discount_; }
  double spot_hazard_per_hour() const { return spot_hazard_per_hour_; }

 private:
  ElasticPolicy policy_;
  double spot_discount_;
  double spot_hazard_per_hour_;
  MetricsRegistry* metrics_;
};

class WorkloadManager;

struct ElasticControllerOptions {
  ElasticPolicy policy;

  /// Spot market the controller may buy from (cloud/machine.h defaults).
  double spot_discount = kDefaultSpotDiscount;
  double spot_hazard_per_hour = kDefaultSpotHazardPerHour;

  /// Task slots each provisioned machine contributes to the SlotPool.
  int slots_per_machine = 2;

  /// Epoch length the provisioner plans each fleet for.
  double horizon_seconds = 120.0;

  /// Acceptable revocation-rework multiplier when mixing in spot machines.
  double max_slowdown = 1.25;

  /// Destination of the sched.replan.* metrics. Borrowed; may be null.
  MetricsRegistry* metrics = nullptr;
};

/// Closes PR 7's loop: the provisioner that used to re-plan against the
/// predictor's offline backlog now follows a live WorkloadManager. Each
/// Tick reads the manager's actual queue backlog, asks the provisioner for
/// the next fleet, and applies the decision by resizing the manager's
/// SlotPool to machines x slots_per_machine — running plans keep their
/// leases while the pool drains toward the new size.
///
/// Thread-safe; the service daemon ticks it from a background thread.
class ElasticFleetController {
 public:
  ElasticFleetController(const FleetState& initial,
                         const ElasticControllerOptions& options);

  /// One control epoch: re-plan against `manager`'s BacklogSeconds() and
  /// resize its slot pool. Returns the decision taken.
  FleetDecision Tick(WorkloadManager* manager);

  FleetState fleet() const;
  int slots() const;
  const ElasticControllerOptions& options() const { return options_; }

 private:
  ElasticControllerOptions options_;
  ElasticProvisioner provisioner_;
  mutable Mutex mu_{"ElasticFleetController::mu_"};
  FleetState fleet_ CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_SCHED_ELASTIC_H_
