#ifndef CUMULON_SCHED_ELASTIC_H_
#define CUMULON_SCHED_ELASTIC_H_

#include "cloud/machine.h"
#include "obs/metrics.h"

namespace cumulon {

/// Bounds and targets of the elastic re-planning loop (the paper's
/// elasticity story: grow the cluster with cheap transient machines under
/// backlog, shrink back when idle, and never let the expected revocation
/// rework eat the discount).
struct ElasticPolicy {
  int min_machines = 1;
  int max_machines = 16;

  /// The fleet is sized so each machine carries at most this much of the
  /// estimated backlog; more queued seconds per machine scales out.
  double target_backlog_seconds_per_machine = 120.0;

  /// Shrink to min_machines when the backlog is empty (idle epochs cost
  /// money under hourly billing either way; per-second billing makes the
  /// shrink pay off immediately).
  bool scale_in_when_idle = true;

  /// At most this fraction of the fleet may be transient: a reserved
  /// on-demand core keeps the whole fleet from vanishing at once.
  double max_spot_fraction = 0.75;

  /// Admission headroom: a deadline is treated as met only when the
  /// slowdown-inflated estimate fits within deadline / deadline_slack.
  double deadline_slack = 1.15;
};

/// The fleet a decision provisions: `machines` total, of which the last
/// `spot_machines` are transient (on-demand machines keep the low indices,
/// matching RevocationSchedule::Sample's first_transient_machine split).
struct FleetState {
  int machines = 0;
  int spot_machines = 0;

  int on_demand_machines() const { return machines - spot_machines; }
};

/// One re-planning step's outcome.
struct FleetDecision {
  FleetState fleet;
  bool scaled_out = false;
  bool scaled_in = false;

  /// The analytic rework multiplier the chosen spot mix carries
  /// (cost/cost_model.h ExpectedRevocationSlowdown); 1.0 for a pure
  /// on-demand fleet.
  double expected_slowdown = 1.0;
};

/// Online fleet sizing: turns a backlog estimate into the cheapest fleet
/// that drains it within the horizon, mixing discounted transient machines
/// in as long as their expected revocation rework keeps the effective
/// price-rate below on-demand and the slowdown within `max_slowdown`.
/// Emits sched.replan.* metrics (see docs/observability.md). Deterministic:
/// no clocks, no randomness — decisions depend only on the arguments.
class ElasticProvisioner {
 public:
  /// `spot_discount` / `spot_hazard_per_hour` describe the spot market the
  /// provisioner may buy from. Metrics borrowed; disabled when null.
  ElasticProvisioner(const ElasticPolicy& policy, double spot_discount,
                     double spot_hazard_per_hour,
                     MetricsRegistry* metrics = nullptr);

  /// Picks the next fleet for `backlog_seconds` of queued work over the
  /// coming `horizon_seconds` epoch. `max_slowdown` caps the acceptable
  /// rework multiplier (deadline pressure → lower cap → fewer spot
  /// machines).
  FleetDecision Replan(const FleetState& current, double backlog_seconds,
                       double horizon_seconds, double max_slowdown) const;

  const ElasticPolicy& policy() const { return policy_; }
  double spot_discount() const { return spot_discount_; }
  double spot_hazard_per_hour() const { return spot_hazard_per_hour_; }

 private:
  ElasticPolicy policy_;
  double spot_discount_;
  double spot_hazard_per_hour_;
  MetricsRegistry* metrics_;
};

}  // namespace cumulon

#endif  // CUMULON_SCHED_ELASTIC_H_
