#ifndef CUMULON_SCHED_SLOT_POOL_H_
#define CUMULON_SCHED_SLOT_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// Arbitrates a cluster's task slots across concurrently running plans.
///
/// Historically the engines assumed exclusive ownership of every slot: one
/// Executor::Run at a time used config().total_slots(). A SlotPool makes
/// the slot count a shared, leased resource so several executors can drive
/// the same engine at once:
///
///  - The real engine acquires one lease per in-flight task (the plan's
///    driver thread blocks in Acquire while the cluster is saturated), so
///    the sum of concurrently executing tasks never exceeds the pool.
///  - The sim engine asks for the plan's current FairShare() and simulates
///    the job on that many slots — virtual clocks of concurrent plans
///    cannot interleave task-by-task, so contention is modeled as a
///    proportionally narrower cluster.
///
/// Grants are fair-share and work-conserving: while any *other* registered
/// plan is waiting for a slot, a plan already holding its share
/// (ceil(total / registered plans)) waits; when nobody else wants slots, a
/// single plan may take the whole pool.
///
/// Thread-safe. Plans are identified by the WorkloadManager's plan id; any
/// unique int64 works.
class SlotPool {
 public:
  explicit SlotPool(int total_slots);

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  /// Enters `plan_id` into the share accounting. Idempotent.
  void RegisterPlan(int64_t plan_id);

  /// Removes `plan_id` and returns any slots it still holds to the pool.
  void UnregisterPlan(int64_t plan_id);

  /// Blocks until one slot is leased to `plan_id`. Returns false without a
  /// lease if `cancel` (optional) becomes true while waiting. The plan
  /// must be registered.
  bool Acquire(int64_t plan_id, const std::atomic<bool>* cancel = nullptr);

  /// Returns one of `plan_id`'s leased slots to the pool.
  void Release(int64_t plan_id);

  /// Retargets the pool at `total_slots` (the elastic provisioner's fleet
  /// decisions land here: machines x slots_per_machine). Growing frees the
  /// new slots immediately; shrinking lets outstanding leases drain — the
  /// free count goes negative and no new grant happens until enough
  /// releases catch up. Must stay > 0.
  void Resize(int total_slots);

  /// Slots `plan_id` may use under the current load: its fair share of the
  /// pool among registered plans (ceil(total/plans), at least 1), or the
  /// whole pool when it is the only registered plan.
  int FairShare(int64_t plan_id) const;

  int total_slots() const;
  int free_slots() const;
  int held(int64_t plan_id) const;
  int registered_plans() const;

  struct PoolStats {
    int64_t acquires = 0;         // granted leases
    int64_t contended_waits = 0;  // Acquire calls that had to block
  };
  PoolStats stats() const;

 private:
  /// Grant policy, under mu_: a free slot exists and either the plan is
  /// under its fair share or no other plan is waiting.
  bool CanGrantLocked(int64_t plan_id) const CUMULON_REQUIRES(mu_);
  int FairShareLocked() const CUMULON_REQUIRES(mu_);

  mutable Mutex mu_{"SlotPool::mu_"};
  int total_slots_ CUMULON_GUARDED_BY(mu_);
  CondVar cv_;
  int free_ CUMULON_GUARDED_BY(mu_);
  // registered plan -> leased slots
  std::map<int64_t, int> held_ CUMULON_GUARDED_BY(mu_);
  // plan -> threads blocked in Acquire
  std::map<int64_t, int> waiting_ CUMULON_GUARDED_BY(mu_);
  int64_t acquires_ CUMULON_GUARDED_BY(mu_) = 0;
  int64_t contended_waits_ CUMULON_GUARDED_BY(mu_) = 0;
};

}  // namespace cumulon

#endif  // CUMULON_SCHED_SLOT_POOL_H_
