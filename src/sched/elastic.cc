#include "sched/elastic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "cost/cost_model.h"
#include "sched/workload_manager.h"

namespace cumulon {

ElasticProvisioner::ElasticProvisioner(const ElasticPolicy& policy,
                                       double spot_discount,
                                       double spot_hazard_per_hour,
                                       MetricsRegistry* metrics)
    : policy_(policy),
      spot_discount_(std::clamp(spot_discount, 0.0, 1.0)),
      spot_hazard_per_hour_(std::max(spot_hazard_per_hour, 0.0)),
      metrics_(metrics) {}

FleetDecision ElasticProvisioner::Replan(const FleetState& current,
                                         double backlog_seconds,
                                         double horizon_seconds,
                                         double max_slowdown) const {
  FleetDecision decision;

  // Size the fleet to the demand: enough machines that none carries more
  // than the per-machine backlog target, within the policy bounds. An
  // empty queue shrinks to the floor when the policy says idle fleets
  // should not be kept warm.
  int target = current.machines;
  if (backlog_seconds > 0.0) {
    const double per_machine =
        std::max(policy_.target_backlog_seconds_per_machine, 1.0);
    target = static_cast<int>(std::ceil(backlog_seconds / per_machine));
  } else if (policy_.scale_in_when_idle) {
    target = policy_.min_machines;
  }
  target = std::clamp(target, std::max(policy_.min_machines, 1),
                      std::max(policy_.max_machines, 1));

  // Choose the spot mix: among 0..floor(target * max_spot_fraction)
  // transient machines, take the cheapest effective price-rate — the
  // fleet's dollar rate times the rework slowdown the mix carries — that
  // stays inside the acceptable slowdown. With no discount (or no hazard
  // model worth trusting) this degenerates to all-on-demand.
  const int max_spot = std::clamp(
      static_cast<int>(std::floor(target * policy_.max_spot_fraction)), 0,
      target);
  const double cap = std::max(max_slowdown, 1.0);
  int best_spot = 0;
  double best_rate = static_cast<double>(target);  // all on-demand, unit price
  double best_slowdown = 1.0;
  for (int spot = 1; spot <= max_spot; ++spot) {
    const double slowdown = ExpectedRevocationSlowdown(
        target, spot, spot_hazard_per_hour_, horizon_seconds);
    if (slowdown > cap) break;  // monotone in spot count
    const double rate =
        ((target - spot) + spot * (1.0 - spot_discount_)) * slowdown;
    if (rate < best_rate) {
      best_rate = rate;
      best_spot = spot;
      best_slowdown = slowdown;
    }
  }

  decision.fleet.machines = target;
  decision.fleet.spot_machines = best_spot;
  decision.expected_slowdown = best_slowdown;
  decision.scaled_out = target > current.machines;
  decision.scaled_in = target < current.machines;

  if (metrics_ != nullptr) {
    metrics_->counter("sched.replan.decisions")->Increment();
    if (decision.scaled_out) {
      metrics_->counter("sched.replan.scale_out")->Increment();
    }
    if (decision.scaled_in) {
      metrics_->counter("sched.replan.scale_in")->Increment();
    }
    metrics_->gauge("sched.replan.fleet_machines")
        ->Set(decision.fleet.machines);
    metrics_->gauge("sched.replan.fleet_spot")
        ->Set(decision.fleet.spot_machines);
  }
  return decision;
}

ElasticFleetController::ElasticFleetController(
    const FleetState& initial, const ElasticControllerOptions& options)
    : options_(options),
      provisioner_(options.policy, options.spot_discount,
                   options.spot_hazard_per_hour, options.metrics),
      fleet_(initial) {
  CUMULON_CHECK_GT(options_.slots_per_machine, 0);
}

FleetDecision ElasticFleetController::Tick(WorkloadManager* manager) {
  const double backlog = manager->BacklogSeconds();
  FleetDecision decision;
  {
    MutexLock lock(&mu_);
    decision = provisioner_.Replan(fleet_, backlog, options_.horizon_seconds,
                                   options_.max_slowdown);
    fleet_ = decision.fleet;
  }
  manager->slot_pool()->Resize(decision.fleet.machines *
                               options_.slots_per_machine);
  return decision;
}

FleetState ElasticFleetController::fleet() const {
  MutexLock lock(&mu_);
  return fleet_;
}

int ElasticFleetController::slots() const {
  MutexLock lock(&mu_);
  return fleet_.machines * options_.slots_per_machine;
}

}  // namespace cumulon
