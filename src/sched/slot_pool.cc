#include "sched/slot_pool.h"

#include <chrono>

#include "common/logging.h"

namespace cumulon {

SlotPool::SlotPool(int total_slots)
    : total_slots_(total_slots), free_(total_slots) {
  CUMULON_CHECK_GT(total_slots, 0);
}

void SlotPool::RegisterPlan(int64_t plan_id) {
  MutexLock lock(&mu_);
  held_.emplace(plan_id, 0);
}

void SlotPool::UnregisterPlan(int64_t plan_id) {
  MutexLock lock(&mu_);
  auto it = held_.find(plan_id);
  if (it == held_.end()) return;
  free_ += it->second;
  held_.erase(it);
  // Fewer registered plans means a larger fair share for everyone else.
  cv_.NotifyAll();
}

int SlotPool::FairShareLocked() const {
  const int plans = static_cast<int>(held_.size());
  if (plans <= 1) return total_slots_;
  const int share = (total_slots_ + plans - 1) / plans;
  return share > 0 ? share : 1;
}

bool SlotPool::CanGrantLocked(int64_t plan_id) const {
  if (free_ <= 0) return false;
  auto it = held_.find(plan_id);
  const int mine = it == held_.end() ? 0 : it->second;
  if (mine < FairShareLocked()) return true;
  // Work conservation: over-share grants are fine while nobody else waits.
  for (const auto& [other, count] : waiting_) {
    if (other != plan_id && count > 0) return false;
  }
  return true;
}

bool SlotPool::Acquire(int64_t plan_id, const std::atomic<bool>* cancel) {
  MutexLock lock(&mu_);
  CUMULON_CHECK(held_.count(plan_id) > 0)
      << "plan " << plan_id << " not registered with the slot pool";
  if (!CanGrantLocked(plan_id)) {
    ++contended_waits_;
    ++waiting_[plan_id];
    // Poll the cancel flag: cancellation is rare and never notifies cv_.
    while (!CanGrantLocked(plan_id)) {
      if (cancel != nullptr &&
          cancel->load(std::memory_order_relaxed)) {
        if (--waiting_[plan_id] == 0) waiting_.erase(plan_id);
        return false;
      }
      cv_.WaitFor(&mu_, std::chrono::milliseconds(20));
    }
    if (--waiting_[plan_id] == 0) waiting_.erase(plan_id);
  }
  --free_;
  ++held_[plan_id];
  ++acquires_;
  return true;
}

void SlotPool::Resize(int total_slots) {
  CUMULON_CHECK_GT(total_slots, 0);
  MutexLock lock(&mu_);
  // Shrinking below the leased count drives free_ negative: outstanding
  // leases keep running, new grants wait for releases to catch up.
  free_ += total_slots - total_slots_;
  total_slots_ = total_slots;
  cv_.NotifyAll();
}

void SlotPool::Release(int64_t plan_id) {
  MutexLock lock(&mu_);
  auto it = held_.find(plan_id);
  CUMULON_CHECK(it != held_.end() && it->second > 0)
      << "plan " << plan_id << " released a slot it does not hold";
  --it->second;
  ++free_;
  cv_.NotifyAll();
}

int SlotPool::FairShare(int64_t plan_id) const {
  MutexLock lock(&mu_);
  if (held_.count(plan_id) == 0) return total_slots_;
  return FairShareLocked();
}

int SlotPool::total_slots() const {
  MutexLock lock(&mu_);
  return total_slots_;
}

int SlotPool::free_slots() const {
  MutexLock lock(&mu_);
  return free_;
}

int SlotPool::held(int64_t plan_id) const {
  MutexLock lock(&mu_);
  auto it = held_.find(plan_id);
  return it == held_.end() ? 0 : it->second;
}

int SlotPool::registered_plans() const {
  MutexLock lock(&mu_);
  return static_cast<int>(held_.size());
}

SlotPool::PoolStats SlotPool::stats() const {
  MutexLock lock(&mu_);
  return PoolStats{acquires_, contended_waits_};
}

}  // namespace cumulon
