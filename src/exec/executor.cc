#include "exec/executor.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace cumulon {

Executor::Executor(TileStore* store, Engine* engine,
                   const TileOpCostModel* cost, const ExecutorOptions& options)
    : store_(store),
      engine_(engine),
      cost_(cost),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &owned_metrics_) {
  CUMULON_CHECK(store_ != nullptr);
  CUMULON_CHECK(engine_ != nullptr);
  CUMULON_CHECK(cost_ != nullptr);
}

std::vector<int> Executor::JobLevels(const PhysicalPlan& plan) {
  // Producer of each matrix name. Names are unique per plan (lowering
  // versions reassigned targets), so one writer per matrix.
  std::map<std::string, size_t> producer;
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    for (const std::string& out : plan.jobs[j]->OutputMatrices()) {
      producer.emplace(out, j);
    }
  }
  std::vector<int> levels(plan.jobs.size(), 0);
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    int level = 0;
    for (const std::string& in : plan.jobs[j]->InputMatrices()) {
      auto it = producer.find(in);
      // Plans are emitted in dependency order, so a producer later in the
      // list (a later version writer) is not a dependency of this job.
      if (it != producer.end() && it->second < j) {
        level = std::max(level, levels[it->second] + 1);
      }
    }
    levels[j] = level;
  }
  return levels;
}

Status Executor::DropTemporaries(const PhysicalPlan& plan) {
  if (!options_.drop_temporaries) return Status::OK();
  for (const std::string& temp : plan.temporaries) {
    CUMULON_RETURN_IF_ERROR(store_->DeleteMatrix(temp));
  }
  return Status::OK();
}

Result<PlanStats> Executor::Run(const PhysicalPlan& plan) {
  const MetricsSnapshot before = metrics_->Snapshot();
  CUMULON_ASSIGN_OR_RETURN(PlanStats stats,
                           options_.parallelize_independent_jobs
                               ? RunLeveled(plan)
                               : RunSequential(plan));
  if (TileCacheGroup* caches = engine_->tile_caches()) {
    const TileCacheStats totals = caches->TotalStats();
    metrics_->gauge("cache.resident_bytes")->Set(totals.resident_bytes);
    metrics_->gauge("cache.resident_tiles")->Set(totals.resident_tiles);
  }
  stats.metrics = SnapshotDelta(before, metrics_->Snapshot());
  return stats;
}

BuildContext Executor::MakeBuildContext() const {
  BuildContext ctx;
  ctx.store = store_;
  ctx.cost = cost_;
  ctx.attach_work = options_.real_mode;
  ctx.query_locality = options_.query_locality;
  if (TileCacheGroup* caches = engine_->tile_caches()) {
    ctx.node_cache_bytes = caches->bytes_per_node();
    ctx.cache_nodes = engine_->config().num_machines;
  }
  return ctx;
}

Executor::JobTraceScope Executor::BeginJobTrace(
    const std::string& name) const {
  JobTraceScope scope;
  scope.tracer =
      options_.tracer != nullptr ? options_.tracer : GlobalTracer();
  if (scope.tracer == nullptr) return scope;
  // Sim mode charges every job a scheduling/setup latency before any task
  // starts; putting it on the timeline keeps the trace's total span equal
  // to the predicted plan time. Real mode never waits it out, so its
  // timeline carries only measured execution.
  if (!options_.real_mode && options_.job_startup_seconds > 0.0) {
    TraceSpan startup;
    startup.name = "job startup";
    startup.category = "startup";
    startup.machine = -1;
    startup.start_seconds = scope.tracer->time_offset();
    startup.duration_seconds = options_.job_startup_seconds;
    scope.tracer->AdvanceTime(options_.job_startup_seconds);
    scope.tracer->AddSpan(std::move(startup));
  }
  scope.job_id = scope.tracer->BeginJob(name);
  scope.offset_before = scope.tracer->time_offset();
  return scope;
}

void Executor::EndJobTrace(const JobTraceScope& scope,
                           const JobStats& stats) const {
  if (scope.tracer == nullptr) return;
  if (scope.tracer->time_offset() <= scope.offset_before) {
    scope.tracer->AdvanceTime(stats.duration_seconds);
  }
  scope.tracer->EndJob(scope.job_id);
}

void Executor::FoldJobStats(const std::string& name, JobStats stats,
                            PlanStats* totals) {
  totals->total_seconds +=
      stats.duration_seconds + options_.job_startup_seconds;
  totals->bytes_read += stats.bytes_read;
  totals->bytes_written += stats.bytes_written;
  totals->total_tasks += stats.num_tasks;
  totals->non_local_tasks += stats.num_non_local_tasks;
  totals->cache_hits += stats.cache_hits;
  totals->cache_misses += stats.cache_misses;
  totals->bytes_read_cached += stats.bytes_read_cached;

  metrics_->counter("exec.jobs")->Increment();
  metrics_->counter("exec.tasks")->Add(stats.num_tasks);
  metrics_->counter("exec.tasks.nonlocal")->Add(stats.num_non_local_tasks);
  metrics_->counter("exec.bytes.read")->Add(stats.bytes_read);
  metrics_->counter("exec.bytes.written")->Add(stats.bytes_written);
  metrics_->counter("exec.bytes.shuffle")->Add(stats.shuffle_bytes);
  metrics_->counter("exec.cache.hits")->Add(stats.cache_hits);
  metrics_->counter("exec.cache.misses")->Add(stats.cache_misses);
  metrics_->counter("exec.cache.hit_bytes")->Add(stats.bytes_read_cached);

  totals->jobs.push_back(JobRecord{name, std::move(stats)});
}

void Executor::RecordCacheActivity(const TileCacheStats& before,
                                   JobStats* stats) const {
  TileCacheGroup* caches = engine_->tile_caches();
  if (caches == nullptr) return;
  const TileCacheStats after = caches->TotalStats();
  stats->cache_hits = after.hits - before.hits;
  stats->cache_misses = after.misses - before.misses;
  if (options_.real_mode) {
    // Sim-mode cached bytes come from the declared task costs; real-mode
    // ones are measured at the cache.
    stats->bytes_read_cached = after.hit_bytes - before.hit_bytes;
  }
}

Result<PlanStats> Executor::RunSequential(const PhysicalPlan& plan) {
  const BuildContext ctx = MakeBuildContext();

  PlanStats totals;
  for (const auto& job : plan.jobs) {
    CUMULON_ASSIGN_OR_RETURN(BuiltJob built, job->Build(ctx));
    const TileCacheStats cache_before =
        engine_->tile_caches() != nullptr ? engine_->tile_caches()->TotalStats()
                                          : TileCacheStats{};
    const JobTraceScope trace = BeginJobTrace(job->name());
    CUMULON_ASSIGN_OR_RETURN(JobStats stats, engine_->RunJob(built.spec));
    EndJobTrace(trace, stats);
    RecordCacheActivity(cache_before, &stats);

    if (!options_.real_mode) {
      // Register output tile placement so later jobs get correct locality.
      CUMULON_CHECK_EQ(built.task_outputs.size(), stats.task_runs.size());
      for (size_t t = 0; t < built.task_outputs.size(); ++t) {
        const int machine = stats.task_runs[t].machine;
        for (const TileOutput& out : built.task_outputs[t]) {
          CUMULON_RETURN_IF_ERROR(
              store_->PutMeta(out.matrix, out.id, out.bytes, machine));
        }
      }
    }

    FoldJobStats(job->name(), std::move(stats), &totals);
  }

  CUMULON_RETURN_IF_ERROR(DropTemporaries(plan));
  return totals;
}

Result<PlanStats> Executor::RunLeveled(const PhysicalPlan& plan) {
  const BuildContext ctx = MakeBuildContext();

  const std::vector<int> levels = JobLevels(plan);
  const int max_level =
      levels.empty() ? -1 : *std::max_element(levels.begin(), levels.end());

  PlanStats totals;
  for (int level = 0; level <= max_level; ++level) {
    // Merge this level's independent jobs into one scheduling round: their
    // tasks share the cluster's slots, which is how concurrently submitted
    // Hadoop jobs behave.
    JobSpec merged;
    std::vector<std::vector<TileOutput>> merged_outputs;
    std::string level_name;
    for (size_t j = 0; j < plan.jobs.size(); ++j) {
      if (levels[j] != level) continue;
      CUMULON_ASSIGN_OR_RETURN(BuiltJob built, plan.jobs[j]->Build(ctx));
      for (auto& task : built.spec.tasks) {
        merged.tasks.push_back(std::move(task));
      }
      for (auto& outs : built.task_outputs) {
        merged_outputs.push_back(std::move(outs));
      }
      if (!level_name.empty()) level_name += "+";
      level_name += plan.jobs[j]->name();
    }
    merged.name = StrCat("level", level, "(", level_name, ")");

    const TileCacheStats cache_before =
        engine_->tile_caches() != nullptr ? engine_->tile_caches()->TotalStats()
                                          : TileCacheStats{};
    const JobTraceScope trace = BeginJobTrace(merged.name);
    CUMULON_ASSIGN_OR_RETURN(JobStats stats, engine_->RunJob(merged));
    EndJobTrace(trace, stats);
    RecordCacheActivity(cache_before, &stats);
    if (!options_.real_mode) {
      CUMULON_CHECK_EQ(merged_outputs.size(), stats.task_runs.size());
      for (size_t t = 0; t < merged_outputs.size(); ++t) {
        const int machine = stats.task_runs[t].machine;
        for (const TileOutput& out : merged_outputs[t]) {
          CUMULON_RETURN_IF_ERROR(
              store_->PutMeta(out.matrix, out.id, out.bytes, machine));
        }
      }
    }
    FoldJobStats(merged.name, std::move(stats), &totals);
  }

  CUMULON_RETURN_IF_ERROR(DropTemporaries(plan));
  return totals;
}

}  // namespace cumulon
