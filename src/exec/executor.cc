#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <memory>

#include "cluster/steal_domain.h"
#include "common/logging.h"
#include "common/strings.h"
#include "sched/slot_pool.h"

namespace cumulon {

Executor::Executor(TileStore* store, Engine* engine,
                   const TileOpCostModel* cost, const ExecutorOptions& options)
    : store_(store),
      engine_(engine),
      cost_(cost),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &owned_metrics_) {
  CUMULON_CHECK(store_ != nullptr);
  CUMULON_CHECK(engine_ != nullptr);
  CUMULON_CHECK(cost_ != nullptr);
}

std::vector<int> Executor::JobLevels(const PhysicalPlan& plan) {
  // Producer of each matrix name. Names are unique per plan (lowering
  // versions reassigned targets), so one writer per matrix.
  std::map<std::string, size_t> producer;
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    for (const std::string& out : plan.jobs[j]->OutputMatrices()) {
      producer.emplace(out, j);
    }
  }
  std::vector<int> levels(plan.jobs.size(), 0);
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    int level = 0;
    for (const std::string& in : plan.jobs[j]->InputMatrices()) {
      auto it = producer.find(in);
      // Plans are emitted in dependency order, so a producer later in the
      // list (a later version writer) is not a dependency of this job.
      if (it != producer.end() && it->second < j) {
        level = std::max(level, levels[it->second] + 1);
      }
    }
    levels[j] = level;
  }
  return levels;
}

Status Executor::DropTemporaries(const PhysicalPlan& plan) {
  if (!options_.drop_temporaries) return Status::OK();
  for (const std::string& temp : plan.temporaries) {
    CUMULON_RETURN_IF_ERROR(store_->DeleteMatrix(temp));
  }
  return Status::OK();
}

Status Executor::CheckCancelled() const {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(
        StrCat("plan '", options_.plan_tag, "' cancelled"));
  }
  return Status::OK();
}

void Executor::TagJobSpec(JobSpec* spec, int64_t trace_parent) const {
  spec->plan_id = options_.plan_id;
  spec->plan_tag = options_.plan_tag;
  spec->slot_pool = options_.slot_pool;
  spec->cancel = options_.cancel;
  spec->trace_parent_span = trace_parent;
}

Result<PlanStats> Executor::Run(const PhysicalPlan& plan) {
  // exec.* counters of this run go to a private registry as well as the
  // shared one: with concurrent Run calls the shared before/after delta
  // would fold other plans' activity in, so PlanStats::metrics takes its
  // exec.* values from the per-run registry instead.
  MetricsRegistry run_metrics;
  const MetricsSnapshot before = metrics_->Snapshot();
  // One stealing scope per run: task closures capture a borrowed pointer,
  // and every closure has finished (the engine's completion latch) before
  // Run returns, so the domain safely lives on this frame. Real mode only —
  // sim tasks have no work to split.
  std::unique_ptr<StealDomain> steal;
  if (options_.real_mode && options_.enable_work_stealing) {
    steal = std::make_unique<StealDomain>(
        engine_->config().total_slots(),
        options_.tracer != nullptr ? options_.tracer : GlobalTracer());
  }
  // One memory-budget group per run, on this frame for the same lifetime
  // reason as the steal domain. The engine's tile cache takes a standing
  // reservation on every node ledger up front — the cache enforces its own
  // LRU cap, so charging its full budget keeps the ledger an upper bound
  // on the node's resident bytes without per-insert accounting.
  std::unique_ptr<MemoryBudgetGroup> memory_budget;
  if (options_.real_mode && options_.memory_budget_bytes > 0) {
    const int64_t cache_reserve = CacheReserveBytes();
    if (cache_reserve >= options_.memory_budget_bytes) {
      return Status::InvalidArgument(StrCat(
          "memory_budget_bytes (", options_.memory_budget_bytes,
          ") does not cover the tile cache's per-node reservation (",
          cache_reserve, "); shrink the cache or raise the budget"));
    }
    memory_budget = std::make_unique<MemoryBudgetGroup>(
        engine_->config().num_machines, options_.memory_budget_bytes);
    for (int node = 0; node < memory_budget->num_nodes(); ++node) {
      CUMULON_CHECK(memory_budget->node(node)->TryAcquire(cache_reserve));
    }
  }
  CUMULON_ASSIGN_OR_RETURN(
      PlanStats stats,
      options_.parallelize_independent_jobs
          ? RunLeveled(plan, &run_metrics, steal.get(), memory_budget.get())
          : RunSequential(plan, &run_metrics, steal.get(),
                          memory_budget.get()));
  if (TileCacheGroup* caches = engine_->tile_caches()) {
    const TileCacheStats totals = caches->TotalStats();
    metrics_->gauge("cache.resident_bytes")->Set(totals.resident_bytes);
    metrics_->gauge("cache.resident_tiles")->Set(totals.resident_tiles);
  }
  if (memory_budget != nullptr) {
    stats.memory_peak_bytes = memory_budget->MaxPeakBytes();
    metrics_->gauge("mem.budget.bytes")
        ->Set(options_.memory_budget_bytes);
    metrics_->gauge("mem.budget.peak_bytes")->Set(stats.memory_peak_bytes);
    metrics_->gauge("mem.budget.cache_reserved_bytes")
        ->Set(CacheReserveBytes());
  }
  stats.metrics = SnapshotDelta(before, metrics_->Snapshot());
  // Replace the shared-delta exec.* counters with the per-run exact ones.
  for (auto it = stats.metrics.counters.begin();
       it != stats.metrics.counters.end();) {
    if (it->first.rfind("exec.", 0) == 0) {
      it = stats.metrics.counters.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, value] : run_metrics.Snapshot().counters) {
    stats.metrics.counters[name] = value;
  }
  return stats;
}

int64_t Executor::CacheReserveBytes() const {
  TileCacheGroup* caches = engine_->tile_caches();
  return caches != nullptr ? caches->bytes_per_node() : 0;
}

BuildContext Executor::MakeBuildContext(
    MemoryBudgetGroup* memory_budget) const {
  BuildContext ctx;
  ctx.store = store_;
  ctx.cost = cost_;
  ctx.attach_work = options_.real_mode;
  ctx.query_locality = options_.query_locality;
  ctx.kernel_mode = options_.kernel_mode;
  if (options_.real_mode) {
    ctx.prefetch_budget_bytes = options_.prefetch_budget_bytes;
  }
  if (TileCacheGroup* caches = engine_->tile_caches()) {
    ctx.node_cache_bytes = caches->bytes_per_node();
    ctx.cache_nodes = engine_->config().num_machines;
  }
  // task_pin_bytes feeds two consumers: real-mode task readers pin against
  // it, and the declared-cost streaming term predicts refetch reads from it
  // — so it is derived from the budget in both modes, while the ledger
  // group itself exists only in real mode.
  if (options_.memory_budget_bytes > 0) {
    const int slots = std::max(engine_->config().slots_per_machine, 1);
    ctx.task_pin_bytes = std::max<int64_t>(
        (options_.memory_budget_bytes - CacheReserveBytes()) / slots, 0);
  }
  ctx.memory_budget = memory_budget;
  return ctx;
}

Executor::JobTraceScope Executor::BeginJobTrace(
    const std::string& name) const {
  JobTraceScope scope;
  scope.tracer =
      options_.tracer != nullptr ? options_.tracer : GlobalTracer();
  if (scope.tracer == nullptr) return scope;
  // Concurrent plans render on one driver lane each, keyed by plan id;
  // serial runs keep the classic lane 0.
  const int lane =
      options_.plan_id > 0 ? static_cast<int>(options_.plan_id) : 0;
  // Sim mode charges every job a scheduling/setup latency before any task
  // starts; putting it on the timeline keeps the trace's total span equal
  // to the predicted plan time. Real mode never waits it out, so its
  // timeline carries only measured execution.
  if (!options_.real_mode && options_.job_startup_seconds > 0.0) {
    TraceSpan startup;
    startup.name = options_.plan_tag.empty()
                       ? std::string("job startup")
                       : StrCat(options_.plan_tag, "/job startup");
    startup.category = "startup";
    startup.parent_id = -1;  // never under another plan's open job
    startup.machine = -1;
    startup.slot = lane;
    startup.start_seconds = scope.tracer->time_offset();
    startup.duration_seconds = options_.job_startup_seconds;
    scope.tracer->AdvanceTime(options_.job_startup_seconds);
    scope.tracer->AddSpan(std::move(startup));
  }
  scope.job_id = scope.tracer->BeginJob(
      options_.plan_tag.empty() ? name : StrCat(options_.plan_tag, "/", name),
      lane);
  scope.offset_before = scope.tracer->time_offset();
  return scope;
}

void Executor::EndJobTrace(const JobTraceScope& scope,
                           const JobStats& stats) const {
  if (scope.tracer == nullptr) return;
  if (scope.tracer->time_offset() <= scope.offset_before) {
    scope.tracer->AdvanceTime(stats.duration_seconds);
  }
  scope.tracer->EndJob(scope.job_id);
}

void Executor::FoldJobStats(const std::string& name, JobStats stats,
                            PlanStats* totals,
                            MetricsRegistry* run_metrics) {
  totals->total_seconds +=
      stats.duration_seconds + options_.job_startup_seconds;
  totals->bytes_read += stats.bytes_read;
  totals->bytes_written += stats.bytes_written;
  totals->total_tasks += stats.num_tasks;
  totals->non_local_tasks += stats.num_non_local_tasks;
  totals->cache_hits += stats.cache_hits;
  totals->cache_misses += stats.cache_misses;
  totals->bytes_read_cached += stats.bytes_read_cached;
  totals->stall_seconds += stats.stall_seconds;
  totals->spill_evictions += stats.spill_evictions;
  totals->spill_evicted_bytes += stats.spill_evicted_bytes;
  totals->spill_refetches += stats.spill_refetches;
  totals->spill_refetch_bytes += stats.spill_refetch_bytes;
  totals->spill_unpinned_reads += stats.spill_unpinned_reads;
  totals->revoked_machines += stats.revoked_machines;
  totals->rescheduled_tasks += stats.rescheduled_tasks;
  totals->revoked_wasted_seconds += stats.revoked_wasted_seconds;

  // Every exec.* counter goes to the shared registry (global totals), the
  // per-run registry (PlanStats::metrics), and — when the plan is tagged —
  // a plan.<tag>.exec.* copy so concurrent tenants stay distinguishable.
  auto add = [&](const char* metric, int64_t delta) {
    metrics_->counter(metric)->Add(delta);
    run_metrics->counter(metric)->Add(delta);
    if (!options_.plan_tag.empty()) {
      metrics_->counter(StrCat("plan.", options_.plan_tag, ".", metric))
          ->Add(delta);
    }
  };
  add("exec.jobs", 1);
  add("exec.tasks", stats.num_tasks);
  add("exec.tasks.nonlocal", stats.num_non_local_tasks);
  add("exec.bytes.read", stats.bytes_read);
  add("exec.bytes.written", stats.bytes_written);
  add("exec.bytes.shuffle", stats.shuffle_bytes);
  add("exec.cache.hits", stats.cache_hits);
  add("exec.cache.misses", stats.cache_misses);
  add("exec.cache.hit_bytes", stats.bytes_read_cached);
  // Steal counters appear only when a stealing run actually published
  // splits, so non-stealing runs keep their exact historical metric set.
  if (stats.splits_enqueued > 0 || stats.steal_attempts > 0) {
    add("exec.steal.splits", stats.splits_enqueued);
    add("exec.steal.stolen", stats.splits_stolen);
    add("exec.steal.attempts", stats.steal_attempts);
  }
  // Spill counters likewise appear only when the job actually streamed
  // under budget pressure, so unbudgeted runs keep their exact historical
  // metric set.
  if (stats.spill_evictions > 0 || stats.spill_refetches > 0 ||
      stats.spill_unpinned_reads > 0) {
    add("exec.spill.evictions", stats.spill_evictions);
    add("exec.spill.bytes", stats.spill_evicted_bytes);
    add("exec.spill.refetches", stats.spill_refetches);
    add("exec.spill.refetch_bytes", stats.spill_refetch_bytes);
    add("exec.spill.unpinned", stats.spill_unpinned_reads);
  }

  totals->jobs.push_back(JobRecord{name, std::move(stats)});
}

void Executor::RecordCacheActivity(const TileCacheStats& before,
                                   JobStats* stats) const {
  TileCacheGroup* caches = engine_->tile_caches();
  if (caches == nullptr) return;
  const TileCacheStats after = caches->TotalStats();
  stats->cache_hits = after.hits - before.hits;
  stats->cache_misses = after.misses - before.misses;
  if (options_.real_mode) {
    // Sim-mode cached bytes come from the declared task costs; real-mode
    // ones are measured at the cache.
    stats->bytes_read_cached = after.hit_bytes - before.hit_bytes;
  }
}

void Executor::RecordStealActivity(const StealDomainStats& before,
                                   const StealDomain* steal,
                                   JobStats* stats) const {
  if (steal == nullptr) return;
  const StealDomainStats after = steal->stats();
  stats->splits_enqueued = after.splits_enqueued - before.splits_enqueued;
  stats->splits_stolen = after.splits_stolen - before.splits_stolen;
  stats->steal_attempts = after.steal_attempts - before.steal_attempts;
}

void Executor::RecordSpillActivity(const MemoryBudget::Counters& before,
                                   const MemoryBudgetGroup* memory_budget,
                                   JobStats* stats) const {
  if (memory_budget == nullptr) return;
  const MemoryBudget::Counters after = memory_budget->TotalCounters();
  stats->spill_evictions = after.evictions - before.evictions;
  stats->spill_evicted_bytes = after.evicted_bytes - before.evicted_bytes;
  stats->spill_refetches = after.refetches - before.refetches;
  stats->spill_refetch_bytes = after.refetch_bytes - before.refetch_bytes;
  stats->spill_unpinned_reads = after.unpinned_reads - before.unpinned_reads;
}

Result<PlanStats> Executor::RunSequential(const PhysicalPlan& plan,
                                          MetricsRegistry* run_metrics,
                                          StealDomain* steal,
                                          MemoryBudgetGroup* memory_budget) {
  BuildContext ctx = MakeBuildContext(memory_budget);
  ctx.steal = steal;

  PlanStats totals;
  for (const auto& job : plan.jobs) {
    CUMULON_RETURN_IF_ERROR(CheckCancelled());
    CUMULON_ASSIGN_OR_RETURN(BuiltJob built, job->Build(ctx));
    const TileCacheStats cache_before =
        engine_->tile_caches() != nullptr ? engine_->tile_caches()->TotalStats()
                                          : TileCacheStats{};
    const StealDomainStats steal_before =
        steal != nullptr ? steal->stats() : StealDomainStats{};
    const MemoryBudget::Counters spill_before =
        memory_budget != nullptr ? memory_budget->TotalCounters()
                                 : MemoryBudget::Counters{};
    const JobTraceScope trace = BeginJobTrace(job->name());
    TagJobSpec(&built.spec, trace.job_id);
    built.spec.steal_domain = steal;
    CUMULON_ASSIGN_OR_RETURN(JobStats stats, engine_->RunJob(built.spec));
    EndJobTrace(trace, stats);
    RecordCacheActivity(cache_before, &stats);
    RecordStealActivity(steal_before, steal, &stats);
    RecordSpillActivity(spill_before, memory_budget, &stats);

    if (!options_.real_mode) {
      // Register output tile placement so later jobs get correct locality.
      CUMULON_CHECK_EQ(built.task_outputs.size(), stats.task_runs.size());
      for (size_t t = 0; t < built.task_outputs.size(); ++t) {
        const int machine = stats.task_runs[t].machine;
        for (const TileOutput& out : built.task_outputs[t]) {
          CUMULON_RETURN_IF_ERROR(
              store_->PutMeta(out.matrix, out.id, out.bytes, machine));
        }
      }
    }

    FoldJobStats(job->name(), std::move(stats), &totals, run_metrics);
  }

  CUMULON_RETURN_IF_ERROR(DropTemporaries(plan));
  return totals;
}

Result<PlanStats> Executor::RunLeveled(const PhysicalPlan& plan,
                                       MetricsRegistry* run_metrics,
                                       StealDomain* steal,
                                       MemoryBudgetGroup* memory_budget) {
  BuildContext ctx = MakeBuildContext(memory_budget);
  ctx.steal = steal;

  const std::vector<int> levels = JobLevels(plan);
  const int max_level =
      levels.empty() ? -1 : *std::max_element(levels.begin(), levels.end());

  PlanStats totals;
  for (int level = 0; level <= max_level; ++level) {
    CUMULON_RETURN_IF_ERROR(CheckCancelled());
    // Merge this level's independent jobs into one scheduling round: their
    // tasks share the cluster's slots, which is how concurrently submitted
    // Hadoop jobs behave.
    JobSpec merged;
    std::vector<std::vector<TileOutput>> merged_outputs;
    std::string level_name;
    for (size_t j = 0; j < plan.jobs.size(); ++j) {
      if (levels[j] != level) continue;
      CUMULON_ASSIGN_OR_RETURN(BuiltJob built, plan.jobs[j]->Build(ctx));
      for (auto& task : built.spec.tasks) {
        merged.tasks.push_back(std::move(task));
      }
      for (auto& outs : built.task_outputs) {
        merged_outputs.push_back(std::move(outs));
      }
      if (!level_name.empty()) level_name += "+";
      level_name += plan.jobs[j]->name();
    }
    merged.name = StrCat("level", level, "(", level_name, ")");

    const TileCacheStats cache_before =
        engine_->tile_caches() != nullptr ? engine_->tile_caches()->TotalStats()
                                          : TileCacheStats{};
    const StealDomainStats steal_before =
        steal != nullptr ? steal->stats() : StealDomainStats{};
    const MemoryBudget::Counters spill_before =
        memory_budget != nullptr ? memory_budget->TotalCounters()
                                 : MemoryBudget::Counters{};
    const JobTraceScope trace = BeginJobTrace(merged.name);
    TagJobSpec(&merged, trace.job_id);
    merged.steal_domain = steal;
    CUMULON_ASSIGN_OR_RETURN(JobStats stats, engine_->RunJob(merged));
    EndJobTrace(trace, stats);
    RecordCacheActivity(cache_before, &stats);
    RecordStealActivity(steal_before, steal, &stats);
    RecordSpillActivity(spill_before, memory_budget, &stats);
    if (!options_.real_mode) {
      CUMULON_CHECK_EQ(merged_outputs.size(), stats.task_runs.size());
      for (size_t t = 0; t < merged_outputs.size(); ++t) {
        const int machine = stats.task_runs[t].machine;
        for (const TileOutput& out : merged_outputs[t]) {
          CUMULON_RETURN_IF_ERROR(
              store_->PutMeta(out.matrix, out.id, out.bytes, machine));
        }
      }
    }
    FoldJobStats(merged.name, std::move(stats), &totals, run_metrics);
  }

  CUMULON_RETURN_IF_ERROR(DropTemporaries(plan));
  return totals;
}

}  // namespace cumulon
