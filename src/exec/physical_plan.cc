#include "exec/physical_plan.h"

#include "common/strings.h"

namespace cumulon {

std::string PhysicalPlan::DebugString() const {
  std::string out;
  for (const auto& job : jobs) {
    out += job->DebugString();
    out += "\n";
  }
  return out;
}

Status AddMatMul(const TiledMatrix& a, const TiledMatrix& b,
                 const TiledMatrix& out, const MatMulParams& params,
                 std::vector<EwStep> epilogue, PhysicalPlan* plan) {
  const std::string job_name = StrCat("mm_", out.name);
  auto mm = std::make_unique<MatMulJob>(job_name, a, b, out, params,
                                        epilogue);
  const int64_t nk = mm->NumKSplits();
  plan->jobs.push_back(std::move(mm));
  if (nk > 1) {
    std::vector<std::string> parts;
    parts.reserve(nk);
    for (int64_t p = 0; p < nk; ++p) {
      parts.push_back(MatMulJob::PartialName(out.name, p));
      plan->temporaries.push_back(parts.back());
    }
    plan->jobs.push_back(std::make_unique<SumJob>(
        StrCat("sum_", out.name), std::move(parts), out,
        std::move(epilogue)));
  }
  return Status::OK();
}

Status AddEwChain(const TiledMatrix& in, const TiledMatrix& out,
                  std::vector<EwStep> steps, PhysicalPlan* plan,
                  int64_t tiles_per_task) {
  plan->jobs.push_back(std::make_unique<EwChainJob>(
      StrCat("ew_", out.name), in, out, std::move(steps), tiles_per_task));
  return Status::OK();
}

Status AddTranspose(const TiledMatrix& in, const TiledMatrix& out,
                    PhysicalPlan* plan, int64_t tiles_per_task) {
  plan->jobs.push_back(std::make_unique<TransposeJob>(
      StrCat("tr_", out.name), in, out, tiles_per_task));
  return Status::OK();
}

Status AddAggregate(const TiledMatrix& in, const TiledMatrix& out,
                    AggKind kind, std::vector<EwStep> epilogue,
                    PhysicalPlan* plan, int64_t stripes_per_task) {
  plan->jobs.push_back(std::make_unique<AggregateJob>(
      StrCat("agg_", out.name), in, out, kind, std::move(epilogue),
      stripes_per_task));
  return Status::OK();
}

}  // namespace cumulon
