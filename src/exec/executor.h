#ifndef CUMULON_EXEC_EXECUTOR_H_
#define CUMULON_EXEC_EXECUTOR_H_

#include <atomic>
#include <string>
#include <vector>

#include "cluster/engine.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "exec/memory_budget.h"
#include "exec/physical_plan.h"
#include "matrix/kernel_config.h"
#include "matrix/tile_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cumulon {

class SlotPool;      // sched/slot_pool.h
class StealDomain;   // cluster/steal_domain.h
struct StealDomainStats;

struct ExecutorOptions {
  /// true: attach work closures and actually compute tiles (RealEngine).
  /// false: simulation only; output tile metadata is registered in the
  /// store so downstream jobs still see placement.
  bool real_mode = true;

  /// Per-job scheduling/setup overhead added to the plan total (Hadoop job
  /// submission latency). Applied in both modes for comparability.
  double job_startup_seconds = 3.0;

  /// Ask the store where input tiles live and prefer those machines.
  bool query_locality = true;

  /// Delete `plan.temporaries` matrices after a successful run.
  bool drop_temporaries = true;

  /// Per-task in-flight budget of the asynchronous tile-prefetch pipeline
  /// (exec/prefetch_pipeline.h): task bodies hint their reads in compute
  /// order and keep up to this many bytes downloading ahead of the
  /// computation. <= 0 disables prefetching (plain blocking Gets). Only
  /// meaningful in real mode with a store whose GetAsync is actually
  /// asynchronous (DfsTileStore::EnablePrefetch).
  int64_t prefetch_budget_bytes = 64LL << 20;

  /// Schedule the plan as a DAG: jobs with no data dependency run
  /// concurrently, sharing the cluster's slots (their tasks interleave in
  /// one scheduling round per dependency level). Off = one job at a time,
  /// like stock Hadoop's job queue (ablation A3 measures the difference).
  bool parallelize_independent_jobs = false;

  /// Which tile-kernel implementation task bodies run (matrix/
  /// kernel_config.h): kAuto dispatches to the packed AVX2+FMA kernel via
  /// CPUID (honoring the CUMULON_KERNEL env override), kScalar forces the
  /// bit-exact oracle. Gemm results under kSimd/kAuto keep a fixed
  /// (ascending-k) accumulation order but use FMA rounding, so they are
  /// tolerance-equal — not bit-equal — to kScalar runs; element-wise and
  /// column-aggregate kernels are bit-identical across modes.
  KernelMode kernel_mode = KernelMode::kAuto;

  /// Intra-job split-level work stealing (cluster/steal_domain.h): task
  /// bodies publish their block-splits to per-slot deques and idle workers
  /// steal from the tail, shaving intra-job stragglers. Off by default:
  /// with stealing on, each split reads its inputs through its own
  /// prefetch reader (the per-task reader is single-threaded), so tasks
  /// whose splits share input tiles forgo task-level read memoization.
  /// Results are bit-identical either way — splits write disjoint tiles.
  /// Real mode only.
  bool enable_work_stealing = false;

  /// Out-of-core streaming (exec/memory_budget.h): per-node byte budget
  /// covering everything the node's tasks keep resident at once — the tile
  /// cache's standing reservation, in-flight prefetches, pinned operand
  /// panels, and task scratch, all weighed as aligned Tile::MemoryBytes
  /// footprints. Each task slot pins at most its share
  /// ((budget - cache reservation) / slots_per_machine); under pressure
  /// the least-recently-used panel spills (tiles are immutable and stay in
  /// the DFS, so a spill is a drop plus a possible later re-fetch).
  /// Compute order never changes, so results are bit-identical to an
  /// unbudgeted run; exec.spill.* / mem.budget.* metrics and the "spill"
  /// trace category expose the traffic. <= 0 = unbudgeted (resident
  /// execution). The ledger only runs in real mode — Run then fails with
  /// InvalidArgument when the budget cannot even fund the engine's
  /// tile-cache reservation; in sim mode the budget instead feeds the
  /// declared-cost streaming term (cost/cost_model.h
  /// StreamingRefetchBytes), so predictions show the stream-vs-resident
  /// crossover.
  int64_t memory_budget_bytes = 0;

  /// Records job spans (and, in sim mode, per-job startup spans) so every
  /// engine task span nests under its job. Borrowed; falls back to
  /// GlobalTracer() when null. Wire the same tracer into the engine's
  /// options for task-level spans.
  Tracer* tracer = nullptr;

  /// Destination of the exec.* metrics. PlanStats::metrics scopes its
  /// exec.* counters to this run (a private per-run registry), so two
  /// concurrent Run calls sharing this registry never double-count each
  /// other's deltas; non-exec names (engine.*, dfs.*) are still the shared
  /// registry's delta and are best-effort under concurrency. Borrowed; the
  /// executor owns a private registry when null.
  MetricsRegistry* metrics = nullptr;

  // --- Multi-tenant scheduling (sched/workload_manager.h) ---------------
  // Defaults preserve the classic exclusive-engine behavior.

  /// Identity of the plan this executor runs on behalf of. plan_tag
  /// prefixes job/task span names and scopes tagged metric copies
  /// (plan.<tag>.exec.*); plan_id picks the driver trace lane and tags
  /// span args. plan_id < 0 = untagged.
  int64_t plan_id = -1;
  std::string plan_tag;

  /// Slot arbiter shared with concurrently running plans, forwarded to the
  /// engine with every job. Borrowed; null = exclusive slots.
  SlotPool* slot_pool = nullptr;

  /// Cooperative cancellation: checked before each job and forwarded to
  /// the engine (checked between tasks). When it flips true, Run returns
  /// Status::Cancelled. Borrowed; null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

struct JobRecord {
  std::string name;
  JobStats stats;
};

/// Aggregate outcome of running a plan.
///
/// Concurrency contract: a PlanStats is built and read by the single driver
/// thread of one Executor::Run — its fields need no lock. The engine-side
/// inputs it aggregates are published to that thread with real
/// synchronization, not convention: per-task TaskRunInfo via the engine's
/// completion latch (RealEngine's JobSync mutex) and counter values via the
/// internally synchronized MetricsRegistry. Anything folded in from a
/// *shared* registry or cache under concurrent plans is best-effort, which
/// is why the exec.* counters come from the per-run private registry.
struct PlanStats {
  std::vector<JobRecord> jobs;
  double total_seconds = 0.0;  // job durations + per-job startup
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int total_tasks = 0;
  int non_local_tasks = 0;

  // Node-local tile-cache totals: measured hits/misses in real mode,
  // modeled cached bytes in sim mode. All zero when caching is off.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t bytes_read_cached = 0;

  /// Total task time spent blocked on tile I/O (sum of the jobs'
  /// JobStats::stall_seconds): measured waits in real mode, the overlap
  /// model's residual read time in sim mode.
  double stall_seconds = 0.0;

  // Out-of-core spill totals over the plan (sums of the jobs' JobStats
  // spill fields; all zero without a memory budget).
  int64_t spill_evictions = 0;
  int64_t spill_evicted_bytes = 0;
  int64_t spill_refetches = 0;
  int64_t spill_refetch_bytes = 0;
  /// Reads that streamed through the budget window without pinning (the
  /// degenerate tight-budget mode where the pin share is consumed by the
  /// prefetch in-flight window).
  int64_t spill_unpinned_reads = 0;
  /// Highest per-node ledger usage observed during the run; always <=
  /// ExecutorOptions::memory_budget_bytes when budgeted.
  int64_t memory_peak_bytes = 0;

  // Transient-machine losses over the plan (sums of the jobs'
  // JobStats revocation fields; all zero without an injected
  // RevocationController — see cloud/revocation.h).
  int revoked_machines = 0;
  int rescheduled_tasks = 0;
  double revoked_wasted_seconds = 0.0;

  /// Metrics recorded during this run: the exec.* counters mirroring the
  /// fields above come from a per-run registry (exact even when other
  /// plans run concurrently against the same shared registry), while
  /// engine.*/dfs.* names are the shared registry's delta across Run()
  /// (best-effort under concurrency). FormatPlanStats reads its
  /// cache/locality figures from here.
  MetricsSnapshot metrics;
};

/// Drives a PhysicalPlan through an Engine, job by job. The same executor
/// serves both real execution (validation, small scales) and simulated
/// execution (cluster-scale what-if runs and the optimizer's predictor),
/// selected by ExecutorOptions::real_mode and the Engine implementation.
///
/// Run is safe to call concurrently (same or different Executor instances
/// over one shared engine/store): all per-run state lives on the stack,
/// exec.* deltas are scoped to a per-run registry, and the engines
/// arbitrate slots through ExecutorOptions::slot_pool. The per-job cache
/// deltas in JobRecord::stats are best-effort under concurrency (the
/// engine's cache counters are shared).
class Executor {
 public:
  /// All pointers are borrowed and must outlive the executor.
  Executor(TileStore* store, Engine* engine, const TileOpCostModel* cost,
           const ExecutorOptions& options);

  Result<PlanStats> Run(const PhysicalPlan& plan);

  const ExecutorOptions& options() const { return options_; }

  /// Dependency level of every job in `plan` (0-based): a job's level is
  /// one past the deepest producer of any matrix it reads. Exposed for
  /// tests and plan inspection.
  static std::vector<int> JobLevels(const PhysicalPlan& plan);

 private:
  /// Trace bookkeeping around one engine RunJob call.
  struct JobTraceScope {
    Tracer* tracer = nullptr;
    int64_t job_id = 0;
    double offset_before = 0.0;
  };

  Result<PlanStats> RunSequential(const PhysicalPlan& plan,
                                  MetricsRegistry* run_metrics,
                                  StealDomain* steal,
                                  MemoryBudgetGroup* memory_budget);
  Result<PlanStats> RunLeveled(const PhysicalPlan& plan,
                               MetricsRegistry* run_metrics,
                               StealDomain* steal,
                               MemoryBudgetGroup* memory_budget);
  Status DropTemporaries(const PhysicalPlan& plan);

  /// Status::Cancelled when options_.cancel has flipped, OK otherwise.
  Status CheckCancelled() const;

  /// Stamps the plan identity / slot pool / cancel flag / trace parent
  /// onto a job spec about to be handed to the engine.
  void TagJobSpec(JobSpec* spec, int64_t trace_parent) const;

  /// Shared Build inputs, including the engine's node-cache budget so the
  /// declared task costs model the cache the engine actually has, and the
  /// per-run memory-budget group when streaming is on.
  BuildContext MakeBuildContext(MemoryBudgetGroup* memory_budget) const;

  /// Bytes of the per-node budget standing behind the engine's tile cache
  /// (0 when caching is off).
  int64_t CacheReserveBytes() const;

  /// Folds the engine's cache-counter delta across one job into `stats`.
  void RecordCacheActivity(const TileCacheStats& before,
                           JobStats* stats) const;

  /// Folds the steal domain's counter delta across one job into `stats`
  /// (no-op when stealing is off).
  void RecordStealActivity(const StealDomainStats& before,
                           const StealDomain* steal, JobStats* stats) const;

  /// Folds the memory-budget group's spill-counter delta across one job
  /// into `stats` (no-op when unbudgeted).
  void RecordSpillActivity(const MemoryBudget::Counters& before,
                           const MemoryBudgetGroup* memory_budget,
                           JobStats* stats) const;

  /// Opens the job span (after a sim-mode startup span) so the engine's
  /// task spans nest under it.
  JobTraceScope BeginJobTrace(const std::string& name) const;

  /// Closes the job span. If the engine did not advance the tracer's
  /// timeline (it has no tracer wired), advances it by the job makespan so
  /// later jobs still stack correctly.
  void EndJobTrace(const JobTraceScope& scope, const JobStats& stats) const;

  /// Accumulates one job's stats into the plan totals and the exec.*
  /// metrics: the shared registry (global totals, plus plan.<tag>.exec.*
  /// copies when tagged) and the per-run registry backing
  /// PlanStats::metrics.
  void FoldJobStats(const std::string& name, JobStats stats,
                    PlanStats* totals, MetricsRegistry* run_metrics);

  TileStore* store_;
  Engine* engine_;
  const TileOpCostModel* cost_;
  ExecutorOptions options_;
  MetricsRegistry* metrics_;            // options_.metrics or &owned_metrics_
  MetricsRegistry owned_metrics_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_EXECUTOR_H_
