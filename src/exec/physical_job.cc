#include "exec/physical_job.h"

#include <algorithm>
#include <memory>

#include "cluster/steal_domain.h"
#include "common/aligned_buffer.h"
#include "common/strings.h"
#include "exec/memory_budget.h"
#include "exec/prefetch_pipeline.h"

namespace cumulon {

namespace {

int64_t TileBytes(const TileLayout& layout, int64_t gr, int64_t gc) {
  return 16 + layout.TileRowsAt(gr) * layout.TileColsAt(gc) * 8;
}

/// Splits the tile grid of `layout` into groups of at most `per_task` tiles
/// in row-major order.
std::vector<std::vector<TileId>> GroupTiles(const TileLayout& layout,
                                            int64_t per_task) {
  per_task = std::max<int64_t>(per_task, 1);
  std::vector<std::vector<TileId>> groups;
  std::vector<TileId> current;
  for (int64_t gr = 0; gr < layout.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < layout.grid_cols(); ++gc) {
      current.push_back(TileId{gr, gc});
      if (static_cast<int64_t>(current.size()) == per_task) {
        groups.push_back(std::move(current));
        current.clear();
      }
    }
  }
  if (!current.empty()) groups.push_back(std::move(current));
  return groups;
}

/// Grid position of a binary step's operand tile for output tile `id`:
/// full operands align 1:1; broadcast vectors collapse one axis.
TileId OperandTileId(const EwStep& step, TileId id) {
  switch (step.operand) {
    case EwStep::Operand::kFull:
      return id;
    case EwStep::Operand::kRowVector:
      return TileId{0, id.col};
    case EwStep::Operand::kColVector:
      return TileId{id.row, 0};
  }
  return id;
}

/// CPU seconds and operand bytes of applying `steps` to one tile of
/// `layout` at grid position (gr, gc).
void AddEwStepsCost(const std::vector<EwStep>& steps, const TileLayout& layout,
                    int64_t gr, int64_t gc, const TileOpCostModel& cost,
                    TaskCost* task_cost) {
  const int64_t elems = layout.TileRowsAt(gr) * layout.TileColsAt(gc);
  for (const EwStep& step : steps) {
    task_cost->cpu_seconds_ref += cost.EwSeconds(elems);
    if (step.kind != EwStep::Kind::kBinary) continue;
    switch (step.operand) {
      case EwStep::Operand::kFull:
        task_cost->bytes_read += TileBytes(layout, gr, gc);
        break;
      case EwStep::Operand::kRowVector:
        task_cost->bytes_read += 16 + layout.TileColsAt(gc) * 8;
        break;
      case EwStep::Operand::kColVector:
        task_cost->bytes_read += 16 + layout.TileRowsAt(gr) * 8;
        break;
    }
  }
}

/// Serialized size of a binary step's operand tile for output grid
/// position (same shapes AddEwStepsCost charges).
int64_t EwOperandBytes(const EwStep& step, const TileLayout& layout,
                       int64_t gr, int64_t gc) {
  switch (step.operand) {
    case EwStep::Operand::kFull:
      return TileBytes(layout, gr, gc);
    case EwStep::Operand::kRowVector:
      return 16 + layout.TileColsAt(gc) * 8;
    case EwStep::Operand::kColVector:
      return 16 + layout.TileRowsAt(gr) * 8;
  }
  return 0;
}

/// Declares the operand reads RunEwSteps will issue for output tile `id`
/// to the prefetch pipeline, in step order.
void HintEwStepOperands(const std::vector<EwStep>& steps,
                        const TileLayout& layout, TileId id,
                        TaskTileReader* reader) {
  for (const EwStep& step : steps) {
    if (step.kind != EwStep::Kind::kBinary) continue;
    reader->Hint(step.other_matrix, OperandTileId(step, id),
                 EwOperandBytes(step, layout, id.row, id.col));
  }
}

/// Runs `steps` on `value` (grid position `id`), fetching binary operands
/// through the task's reader. Operands are memoized per task: broadcast
/// vectors recur for every output tile, and the memo turns those repeats
/// into local-memory lookups instead of cache-lock round trips.
Status RunEwSteps(const std::vector<EwStep>& steps, TaskTileReader* reader,
                  TileId id, Tile* value, KernelMode mode) {
  for (const EwStep& step : steps) {
    std::shared_ptr<const Tile> other;
    if (step.kind == EwStep::Kind::kBinary) {
      CUMULON_ASSIGN_OR_RETURN(
          other,
          reader->ReadMemoized(step.other_matrix, OperandTileId(step, id)));
    }
    CUMULON_RETURN_IF_ERROR(ApplyEwStep(step, value, other.get(), mode));
  }
  return Status::OK();
}

void MergePreferred(std::vector<int>* dst, const std::vector<int>& src,
                    size_t cap = 8) {
  for (int node : src) {
    if (dst->size() >= cap) return;
    if (std::find(dst->begin(), dst->end(), node) == dst->end()) {
      dst->push_back(node);
    }
  }
}

void AppendStepOperands(const std::vector<EwStep>& steps,
                        std::vector<std::string>* matrices) {
  for (const EwStep& step : steps) {
    if (step.kind == EwStep::Kind::kBinary) {
      matrices->push_back(step.other_matrix);
    }
  }
}

std::string EwChainToString(const std::vector<EwStep>& steps) {
  std::string s;
  for (const EwStep& step : steps) {
    if (!s.empty()) s += " . ";
    s += step.ToString();
  }
  return s;
}

}  // namespace

std::string MatMulParams::ToString() const {
  return StrCat("bi=", bi, ",bj=", bj, ",bk=", bk <= 0 ? -1 : bk);
}

// ---------------------------------------------------------------------------
// MatMulJob
// ---------------------------------------------------------------------------

MatMulJob::MatMulJob(std::string name, TiledMatrix a, TiledMatrix b,
                     TiledMatrix out, MatMulParams params,
                     std::vector<EwStep> epilogue)
    : name_(std::move(name)),
      a_(std::move(a)),
      b_(std::move(b)),
      out_(std::move(out)),
      params_(params),
      epilogue_(std::move(epilogue)) {}

int64_t MatMulJob::NumKSplits() const {
  const int64_t gk = a_.layout.grid_cols();
  const int64_t bk =
      params_.bk <= 0 ? gk : std::min<int64_t>(params_.bk, gk);
  return (gk + bk - 1) / bk;
}

std::string MatMulJob::PartialName(const std::string& out, int64_t p) {
  return StrCat(out, "#k", p);
}

int64_t MatMulJob::TaskMemoryBytes(const TileLayout& a, const TileLayout& b,
                                   const MatMulParams& params) {
  const int64_t gi = a.grid_rows();
  const int64_t gj = b.grid_cols();
  const int64_t gk = a.grid_cols();
  const int64_t bi = std::clamp<int64_t>(params.bi, 1, gi);
  const int64_t bj = std::clamp<int64_t>(params.bj, 1, gj);
  const int64_t bk =
      params.bk <= 0 ? gk : std::clamp<int64_t>(params.bk, 1, gk);
  const int64_t a_tile = a.tile_rows() * a.tile_cols() * 8;
  const int64_t b_tile = b.tile_rows() * b.tile_cols() * 8;
  const int64_t c_tile = a.tile_rows() * b.tile_cols() * 8;
  return bi * bk * a_tile + bk * bj * b_tile + c_tile;
}

std::vector<std::string> MatMulJob::InputMatrices() const {
  std::vector<std::string> in = {a_.name, b_.name};
  if (NumKSplits() == 1) AppendStepOperands(epilogue_, &in);
  return in;
}

std::vector<std::string> MatMulJob::OutputMatrices() const {
  const int64_t nk = NumKSplits();
  if (nk == 1) return {out_.name};
  std::vector<std::string> out;
  for (int64_t p = 0; p < nk; ++p) out.push_back(PartialName(out_.name, p));
  return out;
}

std::string MatMulJob::DebugString() const {
  return StrCat("MatMul[", name_, "] ", out_.name, " = ", a_.name, " * ",
                b_.name, " (", params_.ToString(), ")",
                epilogue_.empty() ? ""
                                  : StrCat(" epi{", EwChainToString(epilogue_),
                                           "}"));
}

Result<BuiltJob> MatMulJob::Build(const BuildContext& ctx) const {
  const TileLayout& la = a_.layout;
  const TileLayout& lb = b_.layout;
  const TileLayout& lc = out_.layout;
  if (la.cols() != lb.rows()) {
    return Status::InvalidArgument(
        StrCat(name_, ": inner dimensions differ: A ", la.ToString(), ", B ",
               lb.ToString()));
  }
  if (!InnerAligned(la, lb)) {
    return Status::InvalidArgument(
        StrCat(name_, ": tile grids not aligned on k: A ", la.ToString(),
               " vs B ", lb.ToString()));
  }
  if (!RowPartitionsEqual(lc, la) || !ColPartitionsEqual(lc, lb)) {
    return Status::InvalidArgument(
        StrCat(name_, ": output layout ", lc.ToString(),
               " inconsistent with A ", la.ToString(), " and B ",
               lb.ToString()));
  }

  const int64_t gi = la.grid_rows();
  const int64_t gj = lb.grid_cols();
  const int64_t gk = la.grid_cols();
  const int64_t bi = std::clamp<int64_t>(params_.bi, 1, gi);
  const int64_t bj = std::clamp<int64_t>(params_.bj, 1, gj);
  const int64_t bk =
      params_.bk <= 0 ? gk : std::clamp<int64_t>(params_.bk, 1, gk);
  const int64_t nk = (gk + bk - 1) / bk;

  // --- Node-local cache model ---
  // Each A tile is read by one task per j-block (gj/bj of them), each B
  // tile by one task per i-block. With a per-node cache those re-reads
  // collapse to roughly one DFS fetch per node that touches the tile:
  // expected misses per tile = min(readers, nodes), so the cached
  // fraction of a task's A/B bytes is 1 - nodes/readers. Hits only
  // materialize while the tiles stay resident, so the fractions are
  // scaled by how much of a node's share of the input set fits in its
  // cache budget.
  const int64_t a_readers = (gj + bj - 1) / bj;
  const int64_t b_readers = (gi + bi - 1) / bi;
  double a_hit_frac = 0.0, b_hit_frac = 0.0;
  if (ctx.node_cache_bytes > 0 && ctx.cache_nodes > 0) {
    const double nodes = static_cast<double>(ctx.cache_nodes);
    if (a_readers > ctx.cache_nodes) a_hit_frac = 1.0 - nodes / a_readers;
    if (b_readers > ctx.cache_nodes) b_hit_frac = 1.0 - nodes / b_readers;
    const double input_bytes =
        static_cast<double>(16 * gi * gk + la.rows() * la.cols() * 8) +
        static_cast<double>(16 * gk * gj + lb.rows() * lb.cols() * 8);
    const double per_node_share = input_bytes / nodes;
    const double fit =
        per_node_share <= 0.0
            ? 1.0
            : std::min(1.0, static_cast<double>(ctx.node_cache_bytes) /
                                per_node_share);
    a_hit_frac *= fit;
    b_hit_frac *= fit;
  }

  BuiltJob built;
  built.spec.name = name_;

  for (int64_t kb = 0; kb < nk; ++kb) {
    const int64_t k0 = kb * bk;
    const int64_t k1 = std::min(k0 + bk, gk);
    const std::string out_name =
        nk == 1 ? out_.name : PartialName(out_.name, kb);
    const bool apply_epilogue = (nk == 1) && !epilogue_.empty();

    for (int64_t ib = 0; ib < gi; ib += bi) {
      const int64_t i1 = std::min(ib + bi, gi);
      for (int64_t jb = 0; jb < gj; jb += bj) {
        const int64_t j1 = std::min(jb + bj, gj);

        Task task;
        task.name = StrCat(name_, "/t", ib, "_", jb, "_", kb);
        std::vector<TileOutput> outputs;

        // --- Declared cost ---
        int64_t a_bytes = 0, b_bytes = 0;
        for (int64_t i = ib; i < i1; ++i) {
          for (int64_t k = k0; k < k1; ++k) {
            a_bytes += TileBytes(la, i, k);
          }
        }
        for (int64_t k = k0; k < k1; ++k) {
          for (int64_t j = jb; j < j1; ++j) {
            b_bytes += TileBytes(lb, k, j);
          }
        }
        task.cost.bytes_read += a_bytes + b_bytes;
        task.cost.bytes_read_cached = static_cast<int64_t>(
            a_bytes * a_hit_frac + b_bytes * b_hit_frac);
        if (ctx.task_pin_bytes > 0) {
          // Out-of-core streaming term (cost/cost_model.h): the compute
          // order touches the A block once per j unit and the B block once
          // per i unit; whatever fraction of the working set exceeds the
          // task's pin share is re-fetched on each extra touch.
          const int64_t working_set =
              a_bytes + b_bytes + TileBytes(lc, ib, jb);
          task.cost.bytes_read += static_cast<int64_t>(
              StreamingRefetchBytes(a_bytes, static_cast<double>(j1 - jb),
                                    working_set, ctx.task_pin_bytes) +
              StreamingRefetchBytes(b_bytes, static_cast<double>(i1 - ib),
                                    working_set, ctx.task_pin_bytes));
        }
        for (int64_t i = ib; i < i1; ++i) {
          for (int64_t j = jb; j < j1; ++j) {
            const int64_t mi = lc.TileRowsAt(i);
            const int64_t nj = lc.TileColsAt(j);
            for (int64_t k = k0; k < k1; ++k) {
              task.cost.cpu_seconds_ref +=
                  ctx.cost->GemmSeconds(mi, nj, la.TileColsAt(k));
            }
            if (apply_epilogue) {
              AddEwStepsCost(epilogue_, lc, i, j, *ctx.cost, &task.cost);
            }
            const int64_t out_bytes = TileBytes(lc, i, j);
            task.cost.bytes_written += out_bytes;
            outputs.push_back(TileOutput{out_name, TileId{i, j}, out_bytes});
          }
        }

        // --- Locality preference: where this task's inputs live ---
        if (ctx.query_locality && ctx.store != nullptr) {
          MergePreferred(&task.preferred_machines,
                         ctx.store->PreferredNodes(a_.name, TileId{ib, k0}));
          MergePreferred(&task.preferred_machines,
                         ctx.store->PreferredNodes(b_.name, TileId{k0, jb}));
        }

        // --- Real-mode work closure ---
        if (ctx.attach_work) {
          TileStore* store = ctx.store;
          // Capture everything by value; the job object may not outlive
          // the engine run in all call patterns.
          const TiledMatrix a = a_;
          const TiledMatrix b = b_;
          const TileLayout out_layout = lc;
          const std::vector<EwStep> epilogue =
              apply_epilogue ? epilogue_ : std::vector<EwStep>{};
          const int64_t budget = ctx.prefetch_budget_bytes;
          StealDomain* const steal = ctx.steal;
          const KernelMode kmode = ctx.kernel_mode;
          MemoryBudgetGroup* const mem = ctx.memory_budget;
          const int64_t pin_bytes = ctx.task_pin_bytes;
          task.work = [store, a, b, out_layout, out_name, epilogue, ib, i1,
                       jb, j1, k0, k1, budget, steal, kmode, mem, pin_bytes,
                       task_name = task.name](int machine) -> Status {
            MemoryBudget* const ledger =
                mem != nullptr ? mem->node(machine) : nullptr;
            // One unit of work = one output tile (i,j): fold its k range,
            // run the epilogue, write the tile. Units write disjoint
            // tiles, so results do not depend on who executes them.
            auto hint_unit = [&](TaskTileReader* reader, int64_t i,
                                 int64_t j) {
              for (int64_t k = k0; k < k1; ++k) {
                reader->Hint(a.name, TileId{i, k},
                             TileBytes(a.layout, i, k));
                reader->Hint(b.name, TileId{k, j},
                             TileBytes(b.layout, k, j));
              }
              HintEwStepOperands(epilogue, out_layout, TileId{i, j}, reader);
            };
            auto compute_unit = [&](TaskTileReader* reader, int64_t i,
                                    int64_t j) -> Status {
              Tile acc(out_layout.TileRowsAt(i), out_layout.TileColsAt(j));
              const TaskTileReader::ScratchReservation scratch =
                  reader->PinScratch(acc.MemoryBytes());
              for (int64_t k = k0; k < k1; ++k) {
                CUMULON_ASSIGN_OR_RETURN(
                    std::shared_ptr<const Tile> ta,
                    reader->ReadMemoized(a.name, TileId{i, k}));
                CUMULON_ASSIGN_OR_RETURN(
                    std::shared_ptr<const Tile> tb,
                    reader->ReadMemoized(b.name, TileId{k, j}));
                CUMULON_RETURN_IF_ERROR(
                    GemmWithMode(kmode, *ta, *tb, 1.0, 1.0, &acc));
              }
              CUMULON_RETURN_IF_ERROR(RunEwSteps(epilogue, reader,
                                                 TileId{i, j}, &acc, kmode));
              return store->Put(out_name, TileId{i, j},
                                std::make_shared<Tile>(std::move(acc)),
                                machine);
            };
            if (steal == nullptr) {
              // Classic path: one task-wide double-buffered reader. Hint
              // every read in compute order, then compute — output block
              // (i,j+1)'s tiles download while (i,j) multiplies. A and B
              // tiles recur across the block (A per j, B per i), so they
              // go through the memo, which bounds the task's live set to
              // exactly the bi*bk + bk*bj tiles TaskMemoryBytes budgets
              // for (or, under a memory budget, to the pin window — older
              // panels spill and stream back in).
              TaskTileReader reader(store, machine, budget, ledger,
                                    pin_bytes);
              for (int64_t i = ib; i < i1; ++i) {
                for (int64_t j = jb; j < j1; ++j) hint_unit(&reader, i, j);
              }
              for (int64_t i = ib; i < i1; ++i) {
                for (int64_t j = jb; j < j1; ++j) {
                  CUMULON_RETURN_IF_ERROR(compute_unit(&reader, i, j));
                }
              }
              return Status::OK();
            }
            // Stealing path: publish one split per output tile. Each split
            // opens its own reader (TaskTileReader is single-threaded), so
            // stolen splits prefetch and read wherever they execute; the
            // lambdas capture this frame by reference, which RunAndWait
            // keeps alive until every split has run.
            TaskSplitScope scope(steal, task_name, machine);
            for (int64_t i = ib; i < i1; ++i) {
              for (int64_t j = jb; j < j1; ++j) {
                scope.Add([&, i, j]() -> Status {
                  TaskTileReader reader(store, machine, budget, ledger,
                                        pin_bytes);
                  hint_unit(&reader, i, j);
                  return compute_unit(&reader, i, j);
                });
              }
            }
            return scope.RunAndWait();
          };
        }

        built.spec.tasks.push_back(std::move(task));
        built.task_outputs.push_back(std::move(outputs));
      }
    }
  }
  return built;
}

// ---------------------------------------------------------------------------
// SumJob
// ---------------------------------------------------------------------------

SumJob::SumJob(std::string name, std::vector<std::string> parts,
               TiledMatrix out, std::vector<EwStep> epilogue,
               int64_t tiles_per_task)
    : name_(std::move(name)),
      parts_(std::move(parts)),
      out_(std::move(out)),
      epilogue_(std::move(epilogue)),
      tiles_per_task_(tiles_per_task) {}

std::vector<std::string> SumJob::InputMatrices() const {
  std::vector<std::string> in = parts_;
  AppendStepOperands(epilogue_, &in);
  return in;
}

std::vector<std::string> SumJob::OutputMatrices() const {
  return {out_.name};
}

std::string SumJob::DebugString() const {
  return StrCat("Sum[", name_, "] ", out_.name, " = sum of ", parts_.size(),
                " partials", epilogue_.empty()
                                 ? ""
                                 : StrCat(" epi{", EwChainToString(epilogue_),
                                          "}"));
}

Result<BuiltJob> SumJob::Build(const BuildContext& ctx) const {
  if (parts_.empty()) {
    return Status::InvalidArgument(StrCat(name_, ": no partials to sum"));
  }
  const TileLayout& lc = out_.layout;
  BuiltJob built;
  built.spec.name = name_;

  for (auto& group : GroupTiles(lc, tiles_per_task_)) {
    Task task;
    task.name = StrCat(name_, "/t", built.spec.tasks.size());
    std::vector<TileOutput> outputs;

    for (const TileId& id : group) {
      const int64_t bytes = TileBytes(lc, id.row, id.col);
      task.cost.bytes_read += bytes * static_cast<int64_t>(parts_.size());
      task.cost.cpu_seconds_ref +=
          static_cast<double>(parts_.size()) *
          ctx.cost->AccumulateSeconds(lc.TileRowsAt(id.row) *
                                      lc.TileColsAt(id.col));
      AddEwStepsCost(epilogue_, lc, id.row, id.col, *ctx.cost, &task.cost);
      task.cost.bytes_written += bytes;
      outputs.push_back(TileOutput{out_.name, id, bytes});
    }

    if (ctx.query_locality && ctx.store != nullptr) {
      MergePreferred(&task.preferred_machines,
                     ctx.store->PreferredNodes(parts_[0], group.front()));
    }

    if (ctx.attach_work) {
      TileStore* store = ctx.store;
      const std::vector<std::string> parts = parts_;
      const std::string out_name = out_.name;
      const TileLayout out_layout = lc;
      const std::vector<EwStep> epilogue = epilogue_;
      const int64_t budget = ctx.prefetch_budget_bytes;
      StealDomain* const steal = ctx.steal;
      const KernelMode kmode = ctx.kernel_mode;
      MemoryBudgetGroup* const mem = ctx.memory_budget;
      const int64_t pin_bytes = ctx.task_pin_bytes;
      task.work = [store, parts, out_name, out_layout, epilogue, group,
                   budget, steal, kmode, mem, pin_bytes,
                   task_name = task.name](int machine) -> Status {
        MemoryBudget* const ledger =
            mem != nullptr ? mem->node(machine) : nullptr;
        auto hint_unit = [&](TaskTileReader* reader, const TileId& id) {
          for (const std::string& part : parts) {
            reader->Hint(part, id, TileBytes(out_layout, id.row, id.col));
          }
          HintEwStepOperands(epilogue, out_layout, id, reader);
        };
        auto compute_unit = [&](TaskTileReader* reader,
                                const TileId& id) -> Status {
          Tile acc(out_layout.TileRowsAt(id.row),
                   out_layout.TileColsAt(id.col));
          const TaskTileReader::ScratchReservation scratch =
              reader->PinScratch(2 * acc.MemoryBytes());
          for (const std::string& part : parts) {
            CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> t,
                                     reader->Read(part, id));
            CUMULON_RETURN_IF_ERROR(AccumulateIntoWithMode(kmode, *t, &acc));
          }
          CUMULON_RETURN_IF_ERROR(
              RunEwSteps(epilogue, reader, id, &acc, kmode));
          return store->Put(out_name, id,
                            std::make_shared<Tile>(std::move(acc)), machine);
        };
        if (steal == nullptr) {
          TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
          for (const TileId& id : group) hint_unit(&reader, id);
          for (const TileId& id : group) {
            CUMULON_RETURN_IF_ERROR(compute_unit(&reader, id));
          }
          return Status::OK();
        }
        TaskSplitScope scope(steal, task_name, machine);
        for (const TileId& id : group) {
          scope.Add([&, id]() -> Status {
            TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
            hint_unit(&reader, id);
            return compute_unit(&reader, id);
          });
        }
        return scope.RunAndWait();
      };
    }

    built.spec.tasks.push_back(std::move(task));
    built.task_outputs.push_back(std::move(outputs));
  }
  return built;
}

// ---------------------------------------------------------------------------
// EwChainJob
// ---------------------------------------------------------------------------

EwChainJob::EwChainJob(std::string name, TiledMatrix in, TiledMatrix out,
                       std::vector<EwStep> steps, int64_t tiles_per_task)
    : name_(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      steps_(std::move(steps)),
      tiles_per_task_(tiles_per_task) {}

std::vector<std::string> EwChainJob::InputMatrices() const {
  std::vector<std::string> in = {in_.name};
  AppendStepOperands(steps_, &in);
  return in;
}

std::vector<std::string> EwChainJob::OutputMatrices() const {
  return {out_.name};
}

std::string EwChainJob::DebugString() const {
  return StrCat("EwChain[", name_, "] ", out_.name, " = {",
                EwChainToString(steps_), "}(", in_.name, ")");
}

Result<BuiltJob> EwChainJob::Build(const BuildContext& ctx) const {
  if (!GridsAlign(in_.layout, out_.layout)) {
    return Status::InvalidArgument(
        StrCat(name_, ": element-wise chain requires aligned grids (in ",
               in_.layout.ToString(), ", out ", out_.layout.ToString(), ")"));
  }
  const TileLayout& lc = out_.layout;
  BuiltJob built;
  built.spec.name = name_;

  for (auto& group : GroupTiles(lc, tiles_per_task_)) {
    Task task;
    task.name = StrCat(name_, "/t", built.spec.tasks.size());
    std::vector<TileOutput> outputs;

    for (const TileId& id : group) {
      const int64_t bytes = TileBytes(lc, id.row, id.col);
      task.cost.bytes_read += bytes;
      AddEwStepsCost(steps_, lc, id.row, id.col, *ctx.cost, &task.cost);
      task.cost.bytes_written += bytes;
      outputs.push_back(TileOutput{out_.name, id, bytes});
    }

    if (ctx.query_locality && ctx.store != nullptr) {
      MergePreferred(&task.preferred_machines,
                     ctx.store->PreferredNodes(in_.name, group.front()));
    }

    if (ctx.attach_work) {
      TileStore* store = ctx.store;
      const std::string in_name = in_.name;
      const std::string out_name = out_.name;
      const TileLayout out_layout = lc;
      const std::vector<EwStep> steps = steps_;
      const int64_t budget = ctx.prefetch_budget_bytes;
      StealDomain* const steal = ctx.steal;
      const KernelMode kmode = ctx.kernel_mode;
      MemoryBudgetGroup* const mem = ctx.memory_budget;
      const int64_t pin_bytes = ctx.task_pin_bytes;
      task.work = [store, in_name, out_name, out_layout, steps, group,
                   budget, steal, kmode, mem, pin_bytes,
                   task_name = task.name](int machine) -> Status {
        MemoryBudget* const ledger =
            mem != nullptr ? mem->node(machine) : nullptr;
        auto hint_unit = [&](TaskTileReader* reader, const TileId& id) {
          reader->Hint(in_name, id, TileBytes(out_layout, id.row, id.col));
          HintEwStepOperands(steps, out_layout, id, reader);
        };
        auto compute_unit = [&](TaskTileReader* reader,
                                const TileId& id) -> Status {
          CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> t,
                                   reader->Read(in_name, id));
          Tile value = *t;
          // Scratch covers the working copy plus the transient input tile
          // still alive in `t`.
          const TaskTileReader::ScratchReservation scratch =
              reader->PinScratch(2 * value.MemoryBytes());
          CUMULON_RETURN_IF_ERROR(
              RunEwSteps(steps, reader, id, &value, kmode));
          return store->Put(out_name, id,
                            std::make_shared<Tile>(std::move(value)),
                            machine);
        };
        if (steal == nullptr) {
          TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
          for (const TileId& id : group) hint_unit(&reader, id);
          for (const TileId& id : group) {
            CUMULON_RETURN_IF_ERROR(compute_unit(&reader, id));
          }
          return Status::OK();
        }
        TaskSplitScope scope(steal, task_name, machine);
        for (const TileId& id : group) {
          scope.Add([&, id]() -> Status {
            TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
            hint_unit(&reader, id);
            return compute_unit(&reader, id);
          });
        }
        return scope.RunAndWait();
      };
    }

    built.spec.tasks.push_back(std::move(task));
    built.task_outputs.push_back(std::move(outputs));
  }
  return built;
}

// ---------------------------------------------------------------------------
// AggregateJob
// ---------------------------------------------------------------------------

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kRowSums:
      return "row_sums";
    case AggKind::kColSums:
      return "col_sums";
  }
  return "?";
}

TileLayout AggOutputLayout(const TileLayout& in, AggKind kind) {
  if (kind == AggKind::kRowSums) {
    return TileLayout(in.rows(), 1, in.tile_rows(), 1);
  }
  return TileLayout(1, in.cols(), 1, in.tile_cols());
}

AggregateJob::AggregateJob(std::string name, TiledMatrix in, TiledMatrix out,
                           AggKind kind, std::vector<EwStep> epilogue,
                           int64_t stripes_per_task)
    : name_(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      kind_(kind),
      epilogue_(std::move(epilogue)),
      stripes_per_task_(std::max<int64_t>(stripes_per_task, 1)) {}

std::vector<std::string> AggregateJob::InputMatrices() const {
  std::vector<std::string> in = {in_.name};
  AppendStepOperands(epilogue_, &in);
  return in;
}

std::vector<std::string> AggregateJob::OutputMatrices() const {
  return {out_.name};
}

std::string AggregateJob::DebugString() const {
  return StrCat("Aggregate[", name_, "] ", out_.name, " = ",
                AggKindName(kind_), "(", in_.name, ")",
                epilogue_.empty() ? ""
                                  : StrCat(" epi{", EwChainToString(epilogue_),
                                           "}"));
}

Result<BuiltJob> AggregateJob::Build(const BuildContext& ctx) const {
  const TileLayout& li = in_.layout;
  if (!GridsAlign(out_.layout, AggOutputLayout(li, kind_))) {
    return Status::InvalidArgument(
        StrCat(name_, ": output layout ", out_.layout.ToString(),
               " is not the ", AggKindName(kind_), " of ", li.ToString()));
  }
  const bool row_sums = kind_ == AggKind::kRowSums;
  const int64_t num_stripes = row_sums ? li.grid_rows() : li.grid_cols();
  const int64_t cross = row_sums ? li.grid_cols() : li.grid_rows();
  const TileLayout& lo = out_.layout;

  BuiltJob built;
  built.spec.name = name_;
  for (int64_t s0 = 0; s0 < num_stripes; s0 += stripes_per_task_) {
    const int64_t s1 = std::min(s0 + stripes_per_task_, num_stripes);
    Task task;
    task.name = StrCat(name_, "/t", s0);
    std::vector<TileOutput> outputs;
    for (int64_t s = s0; s < s1; ++s) {
      for (int64_t x = 0; x < cross; ++x) {
        const int64_t gr = row_sums ? s : x;
        const int64_t gc = row_sums ? x : s;
        task.cost.bytes_read += TileBytes(li, gr, gc);
        task.cost.cpu_seconds_ref +=
            ctx.cost->EwSeconds(li.TileRowsAt(gr) * li.TileColsAt(gc));
      }
      const TileId out_id = row_sums ? TileId{s, 0} : TileId{0, s};
      AddEwStepsCost(epilogue_, lo, out_id.row, out_id.col, *ctx.cost,
                     &task.cost);
      const int64_t out_bytes = TileBytes(lo, out_id.row, out_id.col);
      task.cost.bytes_written += out_bytes;
      outputs.push_back(TileOutput{out_.name, out_id, out_bytes});
    }

    if (ctx.query_locality && ctx.store != nullptr) {
      const TileId first = row_sums ? TileId{s0, 0} : TileId{0, s0};
      MergePreferred(&task.preferred_machines,
                     ctx.store->PreferredNodes(in_.name, first));
    }

    if (ctx.attach_work) {
      TileStore* store = ctx.store;
      const std::string in_name = in_.name;
      const std::string out_name = out_.name;
      const TileLayout in_layout = li;
      const TileLayout out_layout = lo;
      const std::vector<EwStep> epilogue = epilogue_;
      const bool rows_mode = row_sums;
      const int64_t budget = ctx.prefetch_budget_bytes;
      StealDomain* const steal = ctx.steal;
      const KernelMode kmode = ctx.kernel_mode;
      MemoryBudgetGroup* const mem = ctx.memory_budget;
      const int64_t pin_bytes = ctx.task_pin_bytes;
      task.work = [store, in_name, out_name, in_layout, out_layout, epilogue,
                   rows_mode, s0, s1, cross, budget, steal, kmode, mem,
                   pin_bytes, task_name = task.name](int machine) -> Status {
        MemoryBudget* const ledger =
            mem != nullptr ? mem->node(machine) : nullptr;
        // One unit = one output stripe s (row sums: grid row; col sums:
        // grid column), reading its full cross range of input tiles.
        auto hint_unit = [&](TaskTileReader* reader, int64_t s) {
          for (int64_t x = 0; x < cross; ++x) {
            const TileId in_id = rows_mode ? TileId{s, x} : TileId{x, s};
            reader->Hint(in_name, in_id,
                         TileBytes(in_layout, in_id.row, in_id.col));
          }
          const TileId out_id = rows_mode ? TileId{s, 0} : TileId{0, s};
          HintEwStepOperands(epilogue, out_layout, out_id, reader);
        };
        auto compute_unit = [&](TaskTileReader* reader, int64_t s) -> Status {
          const TileId out_id = rows_mode ? TileId{s, 0} : TileId{0, s};
          Tile acc(out_layout.TileRowsAt(out_id.row),
                   out_layout.TileColsAt(out_id.col));
          // Scratch covers the accumulator, the per-chunk partial, and the
          // transient input tile being reduced.
          const TaskTileReader::ScratchReservation scratch =
              reader->PinScratch(
                  2 * acc.MemoryBytes() +
                  AlignedFootprintBytes(in_layout.tile_rows() *
                                        in_layout.tile_cols() * 8));
          // Panel-partial reduction (tile_ops.h): each kAggPanelTiles-wide
          // panel folds into a zero partial, combined left-to-right into
          // acc. Panel width is a constant, so resident and streamed runs
          // at any budget add in the identical order.
          for (int64_t x0 = 0; x0 < cross; x0 += kAggPanelTiles) {
            const int64_t x1 = std::min(x0 + kAggPanelTiles, cross);
            Tile partial(acc.rows(), acc.cols());
            for (int64_t x = x0; x < x1; ++x) {
              const TileId in_id = rows_mode ? TileId{s, x} : TileId{x, s};
              CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> t,
                                       reader->Read(in_name, in_id));
              CUMULON_RETURN_IF_ERROR(
                  rows_mode ? RowSumsPartialInto(*t, &partial)
                            : ColSumsIntoWithMode(kmode, *t, &partial));
            }
            CUMULON_RETURN_IF_ERROR(
                CombineAggPartialWithMode(kmode, partial, &acc));
          }
          CUMULON_RETURN_IF_ERROR(
              RunEwSteps(epilogue, reader, out_id, &acc, kmode));
          return store->Put(out_name, out_id,
                            std::make_shared<Tile>(std::move(acc)), machine);
        };
        if (steal == nullptr) {
          TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
          for (int64_t s = s0; s < s1; ++s) hint_unit(&reader, s);
          for (int64_t s = s0; s < s1; ++s) {
            CUMULON_RETURN_IF_ERROR(compute_unit(&reader, s));
          }
          return Status::OK();
        }
        TaskSplitScope scope(steal, task_name, machine);
        for (int64_t s = s0; s < s1; ++s) {
          scope.Add([&, s]() -> Status {
            TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
            hint_unit(&reader, s);
            return compute_unit(&reader, s);
          });
        }
        return scope.RunAndWait();
      };
    }

    built.spec.tasks.push_back(std::move(task));
    built.task_outputs.push_back(std::move(outputs));
  }
  return built;
}

// ---------------------------------------------------------------------------
// TransposeJob
// ---------------------------------------------------------------------------

TransposeJob::TransposeJob(std::string name, TiledMatrix in, TiledMatrix out,
                           int64_t tiles_per_task)
    : name_(std::move(name)),
      in_(std::move(in)),
      out_(std::move(out)),
      tiles_per_task_(tiles_per_task) {}

std::vector<std::string> TransposeJob::InputMatrices() const {
  return {in_.name};
}

std::vector<std::string> TransposeJob::OutputMatrices() const {
  return {out_.name};
}

std::string TransposeJob::DebugString() const {
  return StrCat("Transpose[", name_, "] ", out_.name, " = ", in_.name, "^T");
}

Result<BuiltJob> TransposeJob::Build(const BuildContext& ctx) const {
  if (!GridsAlign(in_.layout.Transposed(), out_.layout)) {
    return Status::InvalidArgument(
        StrCat(name_, ": output layout must be the transpose of the input (",
               in_.layout.ToString(), " -> ", out_.layout.ToString(), ")"));
  }
  const TileLayout& lc = out_.layout;
  BuiltJob built;
  built.spec.name = name_;

  for (auto& group : GroupTiles(lc, tiles_per_task_)) {
    Task task;
    task.name = StrCat(name_, "/t", built.spec.tasks.size());
    std::vector<TileOutput> outputs;

    for (const TileId& id : group) {
      const int64_t bytes = TileBytes(lc, id.row, id.col);
      task.cost.bytes_read += bytes;
      task.cost.cpu_seconds_ref += ctx.cost->TransposeSeconds(
          lc.TileRowsAt(id.row) * lc.TileColsAt(id.col));
      task.cost.bytes_written += bytes;
      outputs.push_back(TileOutput{out_.name, id, bytes});
    }

    if (ctx.query_locality && ctx.store != nullptr) {
      const TileId src{group.front().col, group.front().row};
      MergePreferred(&task.preferred_machines,
                     ctx.store->PreferredNodes(in_.name, src));
    }

    if (ctx.attach_work) {
      TileStore* store = ctx.store;
      const std::string in_name = in_.name;
      const std::string out_name = out_.name;
      const TileLayout out_layout = lc;
      const int64_t budget = ctx.prefetch_budget_bytes;
      StealDomain* const steal = ctx.steal;
      MemoryBudgetGroup* const mem = ctx.memory_budget;
      const int64_t pin_bytes = ctx.task_pin_bytes;
      task.work = [store, in_name, out_name, out_layout, group, budget,
                   steal, mem, pin_bytes,
                   task_name = task.name](int machine) -> Status {
        MemoryBudget* const ledger =
            mem != nullptr ? mem->node(machine) : nullptr;
        auto hint_unit = [&](TaskTileReader* reader, const TileId& id) {
          // Input tile (j,i) has the transposed shape of output (i,j),
          // which is the same serialized size.
          reader->Hint(in_name, TileId{id.col, id.row},
                       TileBytes(out_layout, id.row, id.col));
        };
        auto compute_unit = [&](TaskTileReader* reader,
                                const TileId& id) -> Status {
          CUMULON_ASSIGN_OR_RETURN(
              std::shared_ptr<const Tile> t,
              reader->Read(in_name, TileId{id.col, id.row}));
          Tile out_tile(out_layout.TileRowsAt(id.row),
                        out_layout.TileColsAt(id.col));
          // Scratch covers the output tile plus the transient input tile.
          const TaskTileReader::ScratchReservation scratch =
              reader->PinScratch(2 * out_tile.MemoryBytes());
          CUMULON_RETURN_IF_ERROR(TransposeTile(*t, &out_tile));
          return store->Put(out_name, id,
                            std::make_shared<Tile>(std::move(out_tile)),
                            machine);
        };
        if (steal == nullptr) {
          TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
          for (const TileId& id : group) hint_unit(&reader, id);
          for (const TileId& id : group) {
            CUMULON_RETURN_IF_ERROR(compute_unit(&reader, id));
          }
          return Status::OK();
        }
        TaskSplitScope scope(steal, task_name, machine);
        for (const TileId& id : group) {
          scope.Add([&, id]() -> Status {
            TaskTileReader reader(store, machine, budget, ledger, pin_bytes);
            hint_unit(&reader, id);
            return compute_unit(&reader, id);
          });
        }
        return scope.RunAndWait();
      };
    }

    built.spec.tasks.push_back(std::move(task));
    built.task_outputs.push_back(std::move(outputs));
  }
  return built;
}

}  // namespace cumulon
