#ifndef CUMULON_EXEC_PHYSICAL_PLAN_H_
#define CUMULON_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/physical_job.h"

namespace cumulon {

/// The determinism contract of a plan: everything a replay needs to be
/// bit-identical. Stamped by Lower() (the seed all randomized choices
/// derive from, plus the *resolved* — never kAuto — reduction order the
/// run will fold with) and checked at admission by the plan verifier
/// (verify.plan.determinism in src/verify).
struct PlanDeterminism {
  bool recorded = false;
  uint64_t seed = 0;
  ReduceMode reduce_mode = ReduceMode::kAuto;
};

/// An executable plan: jobs run sequentially in order (Cumulon materializes
/// every job's output in the DFS, so inter-job dependencies are implicit in
/// the matrix names). `temporaries` lists intermediate matrices the
/// executor may delete once the plan finishes.
struct PhysicalPlan {
  std::vector<std::unique_ptr<PhysicalJob>> jobs;
  std::vector<std::string> temporaries;
  PlanDeterminism determinism;

  PhysicalPlan() = default;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  std::string DebugString() const;
};

/// Appends the job(s) computing out = A * B with the fused element-wise
/// `epilogue`. With split-k parameters this is a MatMulJob producing
/// partial-product matrices plus a SumJob merging them (the partials are
/// registered as temporaries); otherwise a single MatMulJob.
Status AddMatMul(const TiledMatrix& a, const TiledMatrix& b,
                 const TiledMatrix& out, const MatMulParams& params,
                 std::vector<EwStep> epilogue, PhysicalPlan* plan);

/// Appends an element-wise chain job out = steps(in).
Status AddEwChain(const TiledMatrix& in, const TiledMatrix& out,
                  std::vector<EwStep> steps, PhysicalPlan* plan,
                  int64_t tiles_per_task = 8);

/// Appends a transpose job out = in^T.
Status AddTranspose(const TiledMatrix& in, const TiledMatrix& out,
                    PhysicalPlan* plan, int64_t tiles_per_task = 8);

/// Appends an aggregation job out = agg(in) with a fused epilogue.
Status AddAggregate(const TiledMatrix& in, const TiledMatrix& out,
                    AggKind kind, std::vector<EwStep> epilogue,
                    PhysicalPlan* plan, int64_t stripes_per_task = 1);

}  // namespace cumulon

#endif  // CUMULON_EXEC_PHYSICAL_PLAN_H_
