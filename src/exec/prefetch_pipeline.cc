#include "exec/prefetch_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/aligned_buffer.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/task_io_stats.h"
#include "exec/memory_budget.h"
#include "obs/trace.h"

namespace cumulon {

namespace {

/// Budget weight of a hinted tile: the aligned footprint its deserialized
/// payload will occupy (serialized size = 16-byte header + payload).
int64_t HintFootprintBytes(int64_t serialized_bytes) {
  return AlignedFootprintBytes(std::max<int64_t>(serialized_bytes - 16, 0));
}

}  // namespace

TaskTileReader::ScratchReservation&
TaskTileReader::ScratchReservation::operator=(
    ScratchReservation&& other) noexcept {
  if (this != &other) {
    if (ledger_ != nullptr && bytes_ > 0) ledger_->Release(bytes_);
    ledger_ = std::exchange(other.ledger_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

TaskTileReader::ScratchReservation::~ScratchReservation() {
  if (ledger_ != nullptr && bytes_ > 0) ledger_->Release(bytes_);
}

TaskTileReader::TaskTileReader(TileStore* store, int machine,
                               int64_t budget_bytes, MemoryBudget* ledger,
                               int64_t pin_budget_bytes)
    : store_(store),
      machine_(machine),
      budget_bytes_(budget_bytes),
      ledger_(ledger),
      pin_budget_bytes_(pin_budget_bytes) {}

TaskTileReader::~TaskTileReader() {
  for (auto& [key, flight] : in_flight_) {
    flight.future.Cancel();
    if (ledger_ != nullptr) ledger_->Release(flight.bytes);
  }
  if (ledger_ != nullptr) {
    for (const MemoEntry& entry : lru_) ledger_->Release(entry.bytes);
  }
}

std::string TaskTileReader::Key(const std::string& matrix, TileId id) {
  return StrCat(matrix, "/", id.row, "_", id.col);
}

void TaskTileReader::Hint(const std::string& matrix, TileId id,
                          int64_t bytes) {
  if (budget_bytes_ <= 0) return;
  pending_.push_back(
      PendingHint{Key(matrix, id), matrix, id, HintFootprintBytes(bytes)});
  Pump();
}

void TaskTileReader::Pump() {
  while (!pending_.empty()) {
    PendingHint& next = pending_.front();
    if (memo_.count(next.key) != 0 || in_flight_.count(next.key) != 0) {
      pending_.pop_front();  // already fetched or fetching
      continue;
    }
    // The budget caps the window, but a single oversized tile must still
    // go out or the pipeline would deadlock on it.
    if (!in_flight_.empty() &&
        in_flight_bytes_ + next.bytes > budget_bytes_) {
      return;
    }
    if (ledger_ != nullptr) {
      // Under a memory budget the in-flight window also counts against
      // this task's pinned-panel cap; an unissuable hint is not a
      // deadlock — Read falls back to a synchronous, unpinned fetch.
      if (in_flight_bytes_ + pinned_bytes_ + next.bytes >
          pin_budget_bytes_) {
        return;
      }
      while (!ledger_->TryAcquire(next.bytes)) {
        if (lru_.empty()) return;  // nothing left to spill; stay pending
        EvictLru();
      }
    }
    InFlight flight;
    flight.bytes = next.bytes;
    const std::string key = next.key;
    const std::string matrix = next.matrix;
    const TileId id = next.id;
    pending_.pop_front();
    // GetAsync may itself consume a synchronous store (ready future); the
    // bookkeeping is identical either way.
    flight.future = store_->GetAsync(matrix, id, machine_);
    in_flight_bytes_ += flight.bytes;
    in_flight_.emplace(key, std::move(flight));
  }
}

Result<std::shared_ptr<const Tile>> TaskTileReader::Read(
    const std::string& matrix, TileId id) {
  return ReadInternal(matrix, id, /*pin=*/false);
}

Result<std::shared_ptr<const Tile>> TaskTileReader::ReadMemoized(
    const std::string& matrix, TileId id) {
  return ReadInternal(matrix, id, /*pin=*/true);
}

Result<std::shared_ptr<const Tile>> TaskTileReader::ReadInternal(
    const std::string& matrix, TileId id, bool pin) {
  const std::string key = Key(matrix, id);
  if (auto memo_it = memo_.find(key); memo_it != memo_.end()) {
    // Touch: move to the front of the pinned LRU.
    lru_.splice(lru_.begin(), lru_, memo_it->second);
    return memo_it->second->tile;
  }
  Pump();
  auto it = in_flight_.find(key);
  if (it != in_flight_.end()) {
    TileFuture future = std::move(it->second.future);
    const int64_t flight_bytes = it->second.bytes;
    in_flight_bytes_ -= flight_bytes;
    in_flight_.erase(it);
    // Top the window back up before (possibly) blocking on this tile, so
    // later reads keep downloading while this one waits.
    Pump();
    auto result = future.Await();
    if (ledger_ != nullptr) {
      // The hint-estimate charge is returned; a pinned tile re-acquires
      // its exact resident footprint below, an unpinned one is covered by
      // the task's scratch reservation while the caller consumes it.
      ledger_->Release(flight_bytes);
    }
    if (result.ok()) {
      const int64_t bytes = result.value()->MemoryBytes();
      NoteRefetchIfSpilled(key, bytes);
      if (pin) {
        TryPin(key, result.value());
      } else if (ledger_ != nullptr) {
        ledger_->NoteUnpinnedRead(bytes);
      }
    }
    return result;
  }
  // Never hinted (or hint still pending past the budget): fetch on the
  // task thread. Drop a stale pending hint for the same tile so the
  // window does not waste budget re-fetching it later.
  for (auto pending_it = pending_.begin(); pending_it != pending_.end();
       ++pending_it) {
    if (pending_it->key == key) {
      pending_.erase(pending_it);
      break;
    }
  }
  Stopwatch blocked;
  auto result = store_->Get(matrix, id, machine_);
  TaskIoStats* io = TaskIoStats::Current();
  io->sync_read_seconds += blocked.ElapsedSeconds();
  ++io->sync_reads;
  if (result.ok()) {
    const int64_t bytes = result.value()->MemoryBytes();
    NoteRefetchIfSpilled(key, bytes);
    if (pin) {
      TryPin(key, result.value());
    } else if (ledger_ != nullptr) {
      ledger_->NoteUnpinnedRead(bytes);
    }
  }
  return result;
}

bool TaskTileReader::TryPin(const std::string& key,
                            std::shared_ptr<const Tile> tile) {
  const int64_t bytes = tile->MemoryBytes();
  if (ledger_ != nullptr) {
    while (pinned_bytes_ + in_flight_bytes_ + bytes > pin_budget_bytes_ &&
           !lru_.empty()) {
      EvictLru();
    }
    if (pinned_bytes_ + in_flight_bytes_ + bytes > pin_budget_bytes_) {
      ledger_->NoteUnpinnedRead(bytes);
      return false;
    }
    while (!ledger_->TryAcquire(bytes)) {
      if (lru_.empty()) {
        ledger_->NoteUnpinnedRead(bytes);
        return false;
      }
      EvictLru();
    }
  }
  pinned_bytes_ += bytes;
  lru_.push_front(MemoEntry{key, std::move(tile), bytes});
  memo_[key] = lru_.begin();
  return true;
}

void TaskTileReader::EvictLru() {
  MemoEntry& victim = lru_.back();
  pinned_bytes_ -= victim.bytes;
  if (ledger_ != nullptr) {
    ledger_->Release(victim.bytes);
    ledger_->NoteEviction(victim.bytes);
  }
  spilled_.insert(victim.key);
  if (Tracer* tracer = GlobalTracer()) {
    TraceSpan span;
    span.name = StrCat("spill ", victim.key);
    span.category = "spill";
    span.parent_id = -1;  // instant marker, not nested under a job span
    span.machine = machine_;
    span.start_seconds =
        tracer->time_offset() + task_clock_.ElapsedSeconds();
    span.duration_seconds = 0.0;
    span.args = {{"bytes", static_cast<double>(victim.bytes)}};
    tracer->AddSpan(std::move(span));
  }
  memo_.erase(victim.key);
  lru_.pop_back();
}

void TaskTileReader::NoteRefetchIfSpilled(const std::string& key,
                                          int64_t bytes) {
  if (ledger_ == nullptr) return;
  if (spilled_.erase(key) > 0) ledger_->NoteRefetch(bytes);
}

TaskTileReader::ScratchReservation TaskTileReader::PinScratch(
    int64_t bytes) {
  if (ledger_ == nullptr || bytes <= 0) return ScratchReservation();
  while (!ledger_->TryAcquire(bytes)) {
    if (lru_.empty()) return ScratchReservation();
    EvictLru();
  }
  return ScratchReservation(ledger_, bytes);
}

}  // namespace cumulon
