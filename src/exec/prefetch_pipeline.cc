#include "exec/prefetch_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/aligned_buffer.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/task_io_stats.h"

namespace cumulon {

namespace {

/// Budget weight of a hinted tile: the aligned footprint its deserialized
/// payload will occupy (serialized size = 16-byte header + payload).
int64_t HintFootprintBytes(int64_t serialized_bytes) {
  return AlignedFootprintBytes(std::max<int64_t>(serialized_bytes - 16, 0));
}

}  // namespace

TaskTileReader::TaskTileReader(TileStore* store, int machine,
                               int64_t budget_bytes)
    : store_(store), machine_(machine), budget_bytes_(budget_bytes) {}

TaskTileReader::~TaskTileReader() {
  for (auto& [key, flight] : in_flight_) flight.future.Cancel();
}

std::string TaskTileReader::Key(const std::string& matrix, TileId id) {
  return StrCat(matrix, "/", id.row, "_", id.col);
}

void TaskTileReader::Hint(const std::string& matrix, TileId id,
                          int64_t bytes) {
  if (budget_bytes_ <= 0) return;
  pending_.push_back(
      PendingHint{Key(matrix, id), matrix, id, HintFootprintBytes(bytes)});
  Pump();
}

void TaskTileReader::Pump() {
  while (!pending_.empty()) {
    PendingHint& next = pending_.front();
    if (memo_.count(next.key) != 0 || in_flight_.count(next.key) != 0) {
      pending_.pop_front();  // already fetched or fetching
      continue;
    }
    // The budget caps the window, but a single oversized tile must still
    // go out or the pipeline would deadlock on it.
    if (!in_flight_.empty() &&
        in_flight_bytes_ + next.bytes > budget_bytes_) {
      return;
    }
    InFlight flight;
    flight.bytes = next.bytes;
    const std::string key = next.key;
    const std::string matrix = next.matrix;
    const TileId id = next.id;
    pending_.pop_front();
    // GetAsync may itself consume a synchronous store (ready future); the
    // bookkeeping is identical either way.
    flight.future = store_->GetAsync(matrix, id, machine_);
    in_flight_bytes_ += flight.bytes;
    in_flight_.emplace(key, std::move(flight));
  }
}

Result<std::shared_ptr<const Tile>> TaskTileReader::Read(
    const std::string& matrix, TileId id) {
  const std::string key = Key(matrix, id);
  if (auto memo_it = memo_.find(key); memo_it != memo_.end()) {
    return memo_it->second;
  }
  Pump();
  auto it = in_flight_.find(key);
  if (it != in_flight_.end()) {
    TileFuture future = std::move(it->second.future);
    in_flight_bytes_ -= it->second.bytes;
    in_flight_.erase(it);
    // Top the window back up before (possibly) blocking on this tile, so
    // later reads keep downloading while this one waits.
    Pump();
    return future.Await();
  }
  // Never hinted (or hint still pending past the budget): fetch on the
  // task thread. Drop a stale pending hint for the same tile so the
  // window does not waste budget re-fetching it later.
  for (auto pending_it = pending_.begin(); pending_it != pending_.end();
       ++pending_it) {
    if (pending_it->key == key) {
      pending_.erase(pending_it);
      break;
    }
  }
  Stopwatch blocked;
  auto result = store_->Get(matrix, id, machine_);
  TaskIoStats* io = TaskIoStats::Current();
  io->sync_read_seconds += blocked.ElapsedSeconds();
  ++io->sync_reads;
  return result;
}

Result<std::shared_ptr<const Tile>> TaskTileReader::ReadMemoized(
    const std::string& matrix, TileId id) {
  const std::string key = Key(matrix, id);
  if (auto it = memo_.find(key); it != memo_.end()) return it->second;
  auto result = Read(matrix, id);
  if (result.ok()) memo_.emplace(key, result.value());
  return result;
}

}  // namespace cumulon
