#ifndef CUMULON_EXEC_REPORT_H_
#define CUMULON_EXEC_REPORT_H_

#include <string>

#include "exec/executor.h"

namespace cumulon {

/// Human-readable per-job breakdown of a plan run: tasks, waves, bytes,
/// locality, duration. What examples and benches print after Run().
std::string FormatPlanStats(const PlanStats& stats);

/// Task-level timeline in CSV ("job,task,machine,slot,start,duration,local")
/// for external plotting of slot occupancy / stragglers.
std::string PlanStatsCsv(const PlanStats& stats);

/// Human-readable dump of a metrics snapshot (counters, gauges, histogram
/// summaries), one metric per line, sorted by name.
std::string FormatMetrics(const MetricsSnapshot& snapshot);

}  // namespace cumulon

#endif  // CUMULON_EXEC_REPORT_H_
