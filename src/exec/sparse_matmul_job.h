#ifndef CUMULON_EXEC_SPARSE_MATMUL_JOB_H_
#define CUMULON_EXEC_SPARSE_MATMUL_JOB_H_

#include <string>
#include <vector>

#include "dfs/sparse_tile_store.h"
#include "exec/physical_job.h"

namespace cumulon {

/// C = S * B with S stored as CSR tiles (document-term matrices, one-hot
/// features) and B, C dense. One task per group of C tiles, folding the
/// whole k dimension with the SpMM kernel.
///
/// Costing uses the matrix's average density estimate: cpu scales with
/// nnz (2 * nnz * n flops at reduced efficiency) and S's bytes shrink to
/// the CSR footprint — the two effects experiment E14 quantifies.
/// Fused epilogues and split-k are not supported for the sparse operator
/// (DESIGN.md lists them as future work).
class SparseMatMulJob : public PhysicalJob {
 public:
  /// `sparse_store` is borrowed and must outlive the job's execution. `a`
  /// describes S's shape/tiling; `density` is S's nonzero fraction used
  /// for simulation-mode costs (real execution reads true nnz).
  SparseMatMulJob(std::string name, SparseTileStore* sparse_store,
                  TiledMatrix a, double density, TiledMatrix b,
                  TiledMatrix out, int64_t tiles_per_task = 1);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

 private:
  std::string name_;
  SparseTileStore* sparse_store_;
  TiledMatrix a_;
  double density_;
  TiledMatrix b_, out_;
  int64_t tiles_per_task_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_SPARSE_MATMUL_JOB_H_
