#ifndef CUMULON_EXEC_EW_STEP_H_
#define CUMULON_EXEC_EW_STEP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "matrix/tile_ops.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {

/// One element-wise step in a fused chain. Fusing element-wise work into
/// the job that produces (or consumes) a matrix — instead of running it as
/// its own MapReduce pass — is one of Cumulon's headline operator-level
/// optimizations (ablation A1).
///
/// A step transforms the job's running value v tile-by-tile:
///   unary:            v = uop(v, scalar)
///   binary:           v = bop(v, other)      (swapped: v = bop(other, v))
/// where `other` is a matrix with the same tile layout as the job output,
/// or — for broadcast steps — a 1 x cols row vector / rows x 1 column
/// vector applied across the value (centering, normalization).
struct EwStep {
  enum class Kind { kUnary, kBinary };

  /// Shape of a binary step's operand relative to the job output.
  enum class Operand { kFull, kRowVector, kColVector };

  Kind kind = Kind::kUnary;

  // kUnary
  UnaryOp uop = UnaryOp::kScale;
  double scalar = 1.0;

  // kBinary
  BinaryOp bop = BinaryOp::kAdd;
  std::string other_matrix;
  bool swapped = false;  // result = bop(other, v) instead of bop(v, other)
  Operand operand = Operand::kFull;

  static EwStep Unary(UnaryOp op, double scalar = 0.0) {
    EwStep s;
    s.kind = Kind::kUnary;
    s.uop = op;
    s.scalar = scalar;
    return s;
  }

  static EwStep Binary(BinaryOp op, std::string other, bool swapped = false,
                       Operand operand = Operand::kFull) {
    EwStep s;
    s.kind = Kind::kBinary;
    s.bop = op;
    s.other_matrix = std::move(other);
    s.swapped = swapped;
    s.operand = operand;
    return s;
  }

  std::string ToString() const;
};

/// Applies `step` to `value` in place. For binary steps `other` must be
/// non-null and shape-compatible (full or broadcast per step.operand).
/// `mode` selects the tile-kernel implementation (matrix/kernel_config.h);
/// element-wise kernels are bit-identical across modes, so this is purely a
/// performance knob. The two-operand overload uses kAuto.
Status ApplyEwStep(const EwStep& step, Tile* value, const Tile* other,
                   KernelMode mode);
Status ApplyEwStep(const EwStep& step, Tile* value, const Tile* other);

}  // namespace cumulon

#endif  // CUMULON_EXEC_EW_STEP_H_
