#include "exec/ew_step.h"

#include "common/strings.h"

namespace cumulon {

std::string EwStep::ToString() const {
  if (kind == Kind::kUnary) {
    return StrCat(UnaryOpName(uop), "(", scalar, ")");
  }
  const char* suffix = operand == Operand::kRowVector   ? "[row]"
                       : operand == Operand::kColVector ? "[col]"
                                                        : "";
  return swapped
             ? StrCat(BinaryOpName(bop), "(", other_matrix, ", v)", suffix)
             : StrCat(BinaryOpName(bop), "(v, ", other_matrix, ")", suffix);
}

Status ApplyEwStep(const EwStep& step, Tile* value, const Tile* other,
                   KernelMode mode) {
  if (step.kind == EwStep::Kind::kUnary) {
    return EwUnaryWithMode(mode, step.uop, *value, step.scalar, value);
  }
  if (other == nullptr) {
    return Status::InvalidArgument(
        StrCat("binary ew step '", step.ToString(), "' missing operand"));
  }
  switch (step.operand) {
    case EwStep::Operand::kFull:
      return step.swapped
                 ? EwBinaryWithMode(mode, step.bop, *other, *value, value)
                 : EwBinaryWithMode(mode, step.bop, *value, *other, value);
    case EwStep::Operand::kRowVector:
      return EwBroadcastWithMode(mode, step.bop, *value, *other,
                                 /*row_vector=*/true, step.swapped, value);
    case EwStep::Operand::kColVector:
      return EwBroadcastWithMode(mode, step.bop, *value, *other,
                                 /*row_vector=*/false, step.swapped, value);
  }
  return Status::Internal("unhandled operand kind");
}

Status ApplyEwStep(const EwStep& step, Tile* value, const Tile* other) {
  return ApplyEwStep(step, value, other, KernelMode::kAuto);
}

}  // namespace cumulon
