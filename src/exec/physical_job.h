#ifndef CUMULON_EXEC_PHYSICAL_JOB_H_
#define CUMULON_EXEC_PHYSICAL_JOB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/task.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "exec/ew_step.h"
#include "matrix/kernel_config.h"
#include "matrix/tile_store.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {

class StealDomain;        // cluster/steal_domain.h
class MemoryBudgetGroup;  // exec/memory_budget.h

/// Inputs a physical job needs to turn itself into schedulable tasks.
struct BuildContext {
  TileStore* store = nullptr;            // closures + locality
  const TileOpCostModel* cost = nullptr; // cpu_seconds_ref per task
  bool attach_work = true;               // false for simulation-only plans
  bool query_locality = true;            // consult store->PreferredNodes

  /// Kernel implementation the task bodies pass to the *WithMode tile ops
  /// (matrix/kernel_config.h): kAuto = packed SIMD when the CPU has it,
  /// kScalar = the bit-exact oracle. The executor fills it from
  /// ExecutorOptions::kernel_mode.
  KernelMode kernel_mode = KernelMode::kAuto;

  /// Intra-job work stealing (cluster/steal_domain.h). When non-null, task
  /// bodies publish their block-splits through a TaskSplitScope instead of
  /// running them inline, so idle workers can steal straggler splits.
  /// Borrowed from the executor; null = splits run inline (exact classic
  /// behavior, including task-level read memoization).
  StealDomain* steal = nullptr;

  /// Node-local tile-cache budget per machine (0 = caching off) and the
  /// number of machines the job's tasks spread over. When set, jobs whose
  /// splits re-read input tiles declare the expected cache-served bytes in
  /// TaskCost::bytes_read_cached — each reused tile is fetched roughly
  /// once per node instead of once per split. The executor fills both from
  /// the engine, so the cost model and the engine's cache agree on one
  /// budget.
  int64_t node_cache_bytes = 0;
  int cache_nodes = 0;

  /// Per-task in-flight prefetch budget in bytes for the double-buffered
  /// task bodies (TaskTileReader): each task hints its reads in compute
  /// order and keeps up to this many bytes downloading ahead of the
  /// computation. <= 0 disables the pipeline (plain blocking Gets).
  /// Only meaningful with attach_work; the executor fills it from
  /// ExecutorOptions::prefetch_budget_bytes.
  int64_t prefetch_budget_bytes = 0;

  /// Out-of-core streaming (exec/memory_budget.h). When non-null, every
  /// task reader charges its held bytes — in-flight prefetches, pinned
  /// operand panels, scratch reservations — to its node's ledger, pinning
  /// at most `task_pin_bytes` at once and spilling least-recently-used
  /// panels under pressure (they are re-fetched from the DFS on the next
  /// touch). Compute order is unchanged, so budgeted runs stay
  /// bit-identical to resident ones. Borrowed from the executor's per-run
  /// group; null = classic resident behavior. The executor derives
  /// task_pin_bytes as the node budget minus the tile-cache reservation,
  /// divided by the machine's task slots.
  MemoryBudgetGroup* memory_budget = nullptr;
  int64_t task_pin_bytes = 0;
};

/// One output tile a task will produce; used by the executor in simulation
/// mode to register metadata (placement) for downstream jobs.
struct TileOutput {
  std::string matrix;
  TileId id;
  int64_t bytes = 0;
};

/// A job lowered to concrete tasks.
struct BuiltJob {
  JobSpec spec;
  std::vector<std::vector<TileOutput>> task_outputs;  // parallel to tasks
};

/// Base class of Cumulon's physical operators. Each job is map-only: a set
/// of independent tasks that read whatever tiles they need from the DFS
/// and write result tiles back — no shuffle barrier (this is the paper's
/// "flexible execution model" that avoids MapReduce's limitations).
class PhysicalJob {
 public:
  virtual ~PhysicalJob() = default;

  virtual const std::string& name() const = 0;

  /// Validates shapes/parameters and produces the task list.
  virtual Result<BuiltJob> Build(const BuildContext& ctx) const = 0;

  /// Matrices this job reads / writes, for DAG scheduling: two jobs are
  /// independent iff neither reads or writes a matrix the other writes.
  virtual std::vector<std::string> InputMatrices() const = 0;
  virtual std::vector<std::string> OutputMatrices() const = 0;

  virtual std::string DebugString() const = 0;
};

/// Parameters of a multiply job: how many result-tile rows/columns one task
/// covers (bi x bj) and how many k-tiles it folds (bk). These are exactly
/// the per-operator knobs Cumulon's optimizer tunes: larger blocks amortize
/// input reads (each A tile is read by fewer tasks) but reduce parallelism.
/// bk <= 0 means "fold the entire k dimension in one task" (no split-k).
struct MatMulParams {
  int64_t bi = 1;
  int64_t bj = 1;
  int64_t bk = 0;

  std::string ToString() const;
};

/// C = A * B over tile grids, with an optional fused element-wise epilogue
/// applied to each produced C tile. One task covers a (bi x bj)-tile block
/// of C and a bk-tile range of k. When bk splits the k dimension into nk>1
/// ranges, each task writes its partial products to PartialName(out, p) and
/// the epilogue is deferred to the SumJob that merges the partials (see
/// AddMatMul in physical_plan.h, which wires that follow-up job).
class MatMulJob : public PhysicalJob {
 public:
  MatMulJob(std::string name, TiledMatrix a, TiledMatrix b, TiledMatrix out,
            MatMulParams params, std::vector<EwStep> epilogue);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

  /// Number of k ranges the params split this multiply into.
  int64_t NumKSplits() const;

  /// Structural accessors for the plan verifier's split-arithmetic pass
  /// (src/verify), which re-derives tile coverage from first principles.
  const MatMulParams& params() const { return params_; }
  const TiledMatrix& a() const { return a_; }
  const TiledMatrix& b() const { return b_; }
  const TiledMatrix& out() const { return out_; }

  /// Worst-case working set of one task: the input block a task buffers
  /// (bi x bk tiles of A, bk x bj of B) plus one output accumulator. The
  /// optimizer rejects split parameters whose tasks exceed a slot's share
  /// of machine memory.
  static int64_t TaskMemoryBytes(const TileLayout& a, const TileLayout& b,
                                 const MatMulParams& params);

  /// Name of the partial-product matrix for k-range `p`.
  static std::string PartialName(const std::string& out, int64_t p);

 private:
  std::string name_;
  TiledMatrix a_, b_, out_;
  MatMulParams params_;
  std::vector<EwStep> epilogue_;
};

/// out = sum(parts) with an optional fused epilogue; merges the partial
/// products of a split-k multiply. All parts share out's layout.
class SumJob : public PhysicalJob {
 public:
  SumJob(std::string name, std::vector<std::string> parts, TiledMatrix out,
         std::vector<EwStep> epilogue, int64_t tiles_per_task = 8);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

 private:
  std::string name_;
  std::vector<std::string> parts_;
  TiledMatrix out_;
  std::vector<EwStep> epilogue_;
  int64_t tiles_per_task_;
};

/// out = steps(in) applied tile-by-tile (no multiply involved). The
/// unfused fallback for element-wise expressions.
class EwChainJob : public PhysicalJob {
 public:
  EwChainJob(std::string name, TiledMatrix in, TiledMatrix out,
             std::vector<EwStep> steps, int64_t tiles_per_task = 8);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

 private:
  std::string name_;
  TiledMatrix in_, out_;
  std::vector<EwStep> steps_;
  int64_t tiles_per_task_;
};

/// Aggregation flavors: fold a matrix to a column (row sums) or a row
/// (column sums). Statistical programs use these for normalizations,
/// means, and convergence checks.
enum class AggKind { kRowSums, kColSums };

const char* AggKindName(AggKind kind);

/// Layout of the aggregate of a matrix with layout `in`: rows x 1 for row
/// sums (tile grid collapses along columns), 1 x cols for column sums.
TileLayout AggOutputLayout(const TileLayout& in, AggKind kind);

/// out = agg(in) with an optional fused element-wise epilogue (e.g. a
/// 1/n scale to turn sums into means). One task covers `stripes_per_task`
/// tile-grid rows (row sums) or columns (column sums) and reads the full
/// stripe of input tiles.
class AggregateJob : public PhysicalJob {
 public:
  AggregateJob(std::string name, TiledMatrix in, TiledMatrix out,
               AggKind kind, std::vector<EwStep> epilogue,
               int64_t stripes_per_task = 1);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

 private:
  std::string name_;
  TiledMatrix in_, out_;
  AggKind kind_;
  std::vector<EwStep> epilogue_;
  int64_t stripes_per_task_;
};

/// out = in^T; tile (i,j) of the output is the transpose of tile (j,i).
class TransposeJob : public PhysicalJob {
 public:
  TransposeJob(std::string name, TiledMatrix in, TiledMatrix out,
               int64_t tiles_per_task = 8);

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext& ctx) const override;
  std::vector<std::string> InputMatrices() const override;
  std::vector<std::string> OutputMatrices() const override;
  std::string DebugString() const override;

 private:
  std::string name_;
  TiledMatrix in_, out_;
  int64_t tiles_per_task_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_PHYSICAL_JOB_H_
