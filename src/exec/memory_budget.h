#ifndef CUMULON_EXEC_MEMORY_BUDGET_H_
#define CUMULON_EXEC_MEMORY_BUDGET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// Per-node memory ledger for out-of-core streaming execution. One ledger
/// accounts for every byte a node's tasks pin at once — the standing tile
/// cache reservation, in-flight prefetches, memoized (pinned) operand
/// panels, and task scratch (accumulator) tiles — all weighed as aligned
/// resident footprints (Tile::MemoryBytes). The cap is hard: TryAcquire
/// never lets `used` exceed `budget`; callers that cannot acquire must
/// shed pinned bytes (spill) or fall back to unpinned streaming reads,
/// never overcommit. bench_e19_oom CHECK-enforces peak <= budget.
///
/// Spill activity (panel evictions, re-fetches of previously spilled
/// panels, reads that could not be pinned at all) is counted here too so
/// the executor can surface per-job deltas as exec.spill.* metrics the
/// same way it folds steal and cache activity.
///
/// Thread-safe: one ledger is shared by every task slot on a node.
class MemoryBudget {
 public:
  /// `budget_bytes` <= 0 means unlimited (the ledger still tracks usage).
  explicit MemoryBudget(int64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against the budget. Returns false — changing
  /// nothing — if the reservation would push usage past the budget.
  bool TryAcquire(int64_t bytes);

  /// Returns a reservation made with TryAcquire.
  void Release(int64_t bytes);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t used_bytes() const;
  int64_t peak_bytes() const;

  // --- Spill accounting (reported by budget-aware readers) ---

  /// A pinned panel was dropped to make room (its bytes were released).
  void NoteEviction(int64_t bytes);
  /// A previously evicted panel had to be fetched again.
  void NoteRefetch(int64_t bytes);
  /// A read could not be pinned at all and streamed through unpinned.
  void NoteUnpinnedRead(int64_t bytes);
  /// A reservation attempt failed (budget pressure observed).
  void NoteAcquireFailure();

  struct Counters {
    int64_t evictions = 0;
    int64_t evicted_bytes = 0;
    int64_t refetches = 0;
    int64_t refetch_bytes = 0;
    int64_t unpinned_reads = 0;
    int64_t acquire_failures = 0;

    Counters& operator+=(const Counters& o) {
      evictions += o.evictions;
      evicted_bytes += o.evicted_bytes;
      refetches += o.refetches;
      refetch_bytes += o.refetch_bytes;
      unpinned_reads += o.unpinned_reads;
      acquire_failures += o.acquire_failures;
      return *this;
    }
  };
  Counters counters() const;

 private:
  const int64_t budget_bytes_;
  mutable Mutex mu_;
  int64_t used_bytes_ CUMULON_GUARDED_BY(mu_) = 0;
  int64_t peak_bytes_ CUMULON_GUARDED_BY(mu_) = 0;
  Counters counters_ CUMULON_GUARDED_BY(mu_);
};

/// One MemoryBudget per cluster node, machine-indexed the same way
/// TileCacheGroup is (machine % nodes). The executor creates a group per
/// Run when ExecutorOptions::memory_budget_bytes is set; it lives on the
/// Run stack frame like the per-run StealDomain, so task closures may
/// borrow node ledgers for the duration of the plan.
class MemoryBudgetGroup {
 public:
  MemoryBudgetGroup(int num_nodes, int64_t budget_bytes_per_node);

  MemoryBudget* node(int machine) {
    return nodes_[static_cast<size_t>(machine) % nodes_.size()].get();
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int64_t budget_bytes_per_node() const { return budget_bytes_per_node_; }

  /// Sum of per-node spill counters right now.
  MemoryBudget::Counters TotalCounters() const;
  /// Highest per-node peak usage observed so far.
  int64_t MaxPeakBytes() const;

 private:
  const int64_t budget_bytes_per_node_;
  std::vector<std::unique_ptr<MemoryBudget>> nodes_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_MEMORY_BUDGET_H_
