#include "exec/sparse_matmul_job.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"

namespace cumulon {

namespace {

int64_t DenseTileBytes(const TileLayout& layout, int64_t gr, int64_t gc) {
  return 16 + layout.TileRowsAt(gr) * layout.TileColsAt(gc) * 8;
}

int64_t CsrTileBytes(const TileLayout& layout, int64_t gr, int64_t gc,
                     double density) {
  const int64_t rows = layout.TileRowsAt(gr);
  const int64_t nnz =
      static_cast<int64_t>(density * rows * layout.TileColsAt(gc));
  return 24 + (rows + 1) * 8 + nnz * 16;
}

}  // namespace

SparseMatMulJob::SparseMatMulJob(std::string name,
                                 SparseTileStore* sparse_store, TiledMatrix a,
                                 double density, TiledMatrix b,
                                 TiledMatrix out, int64_t tiles_per_task)
    : name_(std::move(name)),
      sparse_store_(sparse_store),
      a_(std::move(a)),
      density_(density),
      b_(std::move(b)),
      out_(std::move(out)),
      tiles_per_task_(std::max<int64_t>(tiles_per_task, 1)) {
  CUMULON_CHECK(sparse_store_ != nullptr);
}

std::vector<std::string> SparseMatMulJob::InputMatrices() const {
  return {a_.name, b_.name};
}

std::vector<std::string> SparseMatMulJob::OutputMatrices() const {
  return {out_.name};
}

std::string SparseMatMulJob::DebugString() const {
  return StrCat("SparseMatMul[", name_, "] ", out_.name, " = ", a_.name,
                "(sparse, d=", density_, ") * ", b_.name);
}

Result<BuiltJob> SparseMatMulJob::Build(const BuildContext& ctx) const {
  const TileLayout& la = a_.layout;
  const TileLayout& lb = b_.layout;
  const TileLayout& lc = out_.layout;
  if (la.cols() != lb.rows() || !InnerAligned(la, lb)) {
    return Status::InvalidArgument(
        StrCat(name_, ": incompatible layouts ", la.ToString(), " * ",
               lb.ToString()));
  }
  if (!RowPartitionsEqual(lc, la) || !ColPartitionsEqual(lc, lb)) {
    return Status::InvalidArgument(
        StrCat(name_, ": output layout ", lc.ToString(), " mismatched"));
  }
  if (density_ < 0.0 || density_ > 1.0) {
    return Status::InvalidArgument(
        StrCat(name_, ": density ", density_, " out of [0,1]"));
  }

  const int64_t gk = la.grid_cols();
  BuiltJob built;
  built.spec.name = name_;

  std::vector<TileId> c_tiles;
  for (int64_t i = 0; i < lc.grid_rows(); ++i) {
    for (int64_t j = 0; j < lc.grid_cols(); ++j) {
      c_tiles.push_back(TileId{i, j});
    }
  }

  for (size_t base = 0; base < c_tiles.size();
       base += static_cast<size_t>(tiles_per_task_)) {
    const size_t end =
        std::min(c_tiles.size(), base + static_cast<size_t>(tiles_per_task_));
    std::vector<TileId> group(c_tiles.begin() + base, c_tiles.begin() + end);
    Task task;
    task.name = StrCat(name_, "/t", base);
    std::vector<TileOutput> outputs;

    for (const TileId& id : group) {
      const int64_t n = lc.TileColsAt(id.col);
      for (int64_t k = 0; k < gk; ++k) {
        task.cost.bytes_read += CsrTileBytes(la, id.row, k, density_);
        task.cost.bytes_read += DenseTileBytes(lb, k, id.col);
        const int64_t nnz = static_cast<int64_t>(
            density_ * la.TileRowsAt(id.row) * la.TileColsAt(k));
        task.cost.cpu_seconds_ref += ctx.cost->SpmmSeconds(nnz, n);
      }
      const int64_t out_bytes = DenseTileBytes(lc, id.row, id.col);
      task.cost.bytes_written += out_bytes;
      outputs.push_back(TileOutput{out_.name, id, out_bytes});
    }

    if (ctx.query_locality) {
      task.preferred_machines =
          sparse_store_->PreferredNodes(a_.name, group.front());
    }

    if (ctx.attach_work) {
      SparseTileStore* sparse = sparse_store_;
      TileStore* dense = ctx.store;
      const TiledMatrix a = a_, b = b_;
      const TileLayout out_layout = lc;
      const std::string out_name = out_.name;
      task.work = [sparse, dense, a, b, out_layout, out_name, group,
                   gk](int machine) -> Status {
        for (const TileId& id : group) {
          Tile acc(out_layout.TileRowsAt(id.row),
                   out_layout.TileColsAt(id.col));
          for (int64_t k = 0; k < gk; ++k) {
            CUMULON_ASSIGN_OR_RETURN(
                std::shared_ptr<const SparseTile> ts,
                sparse->Get(a.name, TileId{id.row, k}, machine));
            CUMULON_ASSIGN_OR_RETURN(
                std::shared_ptr<const Tile> tb,
                dense->Get(b.name, TileId{k, id.col}, machine));
            CUMULON_RETURN_IF_ERROR(
                SparseTile::SpMM(*ts, *tb, 1.0, 1.0, &acc));
          }
          CUMULON_RETURN_IF_ERROR(
              dense->Put(out_name, id, std::make_shared<Tile>(std::move(acc)),
                         machine));
        }
        return Status::OK();
      };
    }

    built.spec.tasks.push_back(std::move(task));
    built.task_outputs.push_back(std::move(outputs));
  }
  return built;
}

}  // namespace cumulon
