#ifndef CUMULON_EXEC_PREFETCH_PIPELINE_H_
#define CUMULON_EXEC_PREFETCH_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/result.h"
#include "common/stopwatch.h"
#include "matrix/tile_store.h"

namespace cumulon {

class MemoryBudget;  // exec/memory_budget.h; borrowed per-node ledger

/// Per-task double-buffered tile reader: the task body hints its reads in
/// compute order up front, and the reader keeps a byte-budgeted window of
/// them in flight through TileStore::GetAsync while the task computes —
/// split k+1's tiles download while split k multiplies. Owned by exactly
/// one task closure and only touched from its thread, so it needs no
/// locks; all cross-thread coordination lives in the store's futures and
/// the (internally synchronized) node memory ledger.
///
/// With a budget of 0 (prefetch off) or a store without an async path, the
/// reader degrades to plain synchronous Gets, making it safe to use
/// unconditionally in every job body: results are bit-identical either
/// way, only the waiting moves.
///
/// Out-of-core streaming: when a node MemoryBudget ledger is attached, the
/// reader becomes the task's panel-streaming window. Every byte it holds —
/// in-flight prefetches, memoized (pinned) operand panels, and scratch
/// reservations taken by the task body — is charged to the ledger, and the
/// pinned set becomes an LRU capped at `pin_budget_bytes`: under pressure
/// the least-recently-used panel is dropped ("spilled" — tiles are
/// immutable and remain in the DFS, so spilling is releasing the pin) and
/// transparently re-fetched if touched again. Compute order is unchanged,
/// so budgeted and unbudgeted runs produce bit-identical results; only
/// residency and re-read traffic differ.
class TaskTileReader {
 public:
  /// RAII ledger reservation for task-local scratch (accumulator tiles and
  /// the transient operand the body is currently consuming). Releases on
  /// destruction. Empty (no-op) when the reader is unbudgeted or the
  /// ledger could not cover the bytes even after spilling every pinned
  /// panel — execution proceeds either way; the failed acquisition is
  /// counted on the ledger.
  class ScratchReservation {
   public:
    ScratchReservation() = default;
    ScratchReservation(ScratchReservation&& other) noexcept
        : ledger_(std::exchange(other.ledger_, nullptr)),
          bytes_(std::exchange(other.bytes_, 0)) {}
    ScratchReservation& operator=(ScratchReservation&& other) noexcept;
    ~ScratchReservation();

    ScratchReservation(const ScratchReservation&) = delete;
    ScratchReservation& operator=(const ScratchReservation&) = delete;

    int64_t bytes() const { return bytes_; }

   private:
    friend class TaskTileReader;
    ScratchReservation(MemoryBudget* ledger, int64_t bytes)
        : ledger_(ledger), bytes_(bytes) {}

    MemoryBudget* ledger_ = nullptr;
    int64_t bytes_ = 0;
  };

  /// `store` is borrowed and must outlive the reader. `budget_bytes` caps
  /// the in-memory footprint of in-flight prefetches; at least one hint is
  /// kept in flight even when it alone exceeds the budget (<= 0 disables
  /// prefetching entirely). `ledger` (borrowed, may be null) is the node
  /// memory ledger all held bytes are charged to; `pin_budget_bytes` caps
  /// this task's pinned panels + in-flight window (0 with a ledger =
  /// nothing may be pinned; ignored without a ledger).
  TaskTileReader(TileStore* store, int machine, int64_t budget_bytes,
                 MemoryBudget* ledger = nullptr,
                 int64_t pin_budget_bytes = 0);

  /// Cancels any in-flight fetches the task never consumed and returns
  /// every charged byte to the ledger.
  ~TaskTileReader();

  TaskTileReader(const TaskTileReader&) = delete;
  TaskTileReader& operator=(const TaskTileReader&) = delete;

  /// Declares an upcoming Read, in the order the task will issue them.
  /// `bytes` is the tile's serialized size; the reader weighs it against
  /// the budget as the aligned in-memory footprint the deserialized tile
  /// will actually pin (Tile::MemoryBytes of the same shape). Duplicate
  /// hints are fine — already-fetched or in-flight tiles are skipped at
  /// issue time.
  void Hint(const std::string& matrix, TileId id, int64_t bytes);

  /// Fetches a tile: consumes the matching in-flight prefetch when one
  /// exists (awaiting it if needed), falls back to a synchronous Get
  /// otherwise, and tops the prefetch window back up either way. The
  /// returned tile is not pinned; under a ledger its transient residency
  /// is covered by the task's scratch reservation.
  Result<std::shared_ptr<const Tile>> Read(const std::string& matrix,
                                           TileId id);

  /// Read through the pinned-panel set: repeated reads of one tile
  /// (broadcast epilogue operands, A/B panels reused across a task's
  /// output block) return the pinned copy without touching the store.
  /// Under a ledger the set is LRU-bounded; an evicted panel is re-fetched
  /// on the next touch and counted as a spill re-fetch.
  Result<std::shared_ptr<const Tile>> ReadMemoized(const std::string& matrix,
                                                   TileId id);

  /// Reserves `bytes` of task scratch on the ledger, spilling pinned
  /// panels if that is what it takes. No-op reservation when unbudgeted.
  ScratchReservation PinScratch(int64_t bytes);

  /// In-flight prefetched bytes right now (test hook).
  int64_t in_flight_bytes() const { return in_flight_bytes_; }
  /// Pinned (memoized) panel bytes right now (test hook).
  int64_t pinned_bytes() const { return pinned_bytes_; }

 private:
  struct PendingHint {
    std::string key;
    std::string matrix;
    TileId id;
    int64_t bytes = 0;
  };
  struct InFlight {
    TileFuture future;
    int64_t bytes = 0;
  };
  struct MemoEntry {
    std::string key;
    std::shared_ptr<const Tile> tile;
    int64_t bytes = 0;
  };

  static std::string Key(const std::string& matrix, TileId id);

  /// Issues pending hints while the budget (and ledger) allows.
  void Pump();

  /// Shared Read/ReadMemoized body; `pin` selects whether a fetched tile
  /// joins the pinned set.
  Result<std::shared_ptr<const Tile>> ReadInternal(const std::string& matrix,
                                                   TileId id, bool pin);

  /// Inserts a fetched tile into the pinned LRU, spilling older panels to
  /// fit the pin budget / ledger. Returns false (tile stays unpinned) when
  /// it cannot fit even with the set empty.
  bool TryPin(const std::string& key, std::shared_ptr<const Tile> tile);

  /// Drops the least-recently-used pinned panel, returning its bytes to
  /// the ledger and recording the spill.
  void EvictLru();

  /// Marks `key` fetched-again-after-spill if it was previously evicted.
  void NoteRefetchIfSpilled(const std::string& key, int64_t bytes);

  TileStore* store_;
  int machine_;
  int64_t budget_bytes_;
  MemoryBudget* ledger_;       // borrowed; null = unbudgeted
  int64_t pin_budget_bytes_;   // cap on pinned + in-flight bytes
  int64_t in_flight_bytes_ = 0;
  int64_t pinned_bytes_ = 0;
  Stopwatch task_clock_;  // for spill trace span timestamps
  std::deque<PendingHint> pending_;
  std::unordered_map<std::string, InFlight> in_flight_;
  /// Pinned panels, most recently used first.
  std::list<MemoEntry> lru_;
  std::unordered_map<std::string, std::list<MemoEntry>::iterator> memo_;
  /// Panels spilled at least once; a later fetch counts as a re-fetch.
  std::unordered_set<std::string> spilled_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_PREFETCH_PIPELINE_H_
