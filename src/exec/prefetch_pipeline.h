#ifndef CUMULON_EXEC_PREFETCH_PIPELINE_H_
#define CUMULON_EXEC_PREFETCH_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "matrix/tile_store.h"

namespace cumulon {

/// Per-task double-buffered tile reader: the task body hints its reads in
/// compute order up front, and the reader keeps a byte-budgeted window of
/// them in flight through TileStore::GetAsync while the task computes —
/// split k+1's tiles download while split k multiplies. Owned by exactly
/// one task closure and only touched from its thread, so it needs no
/// locks; all cross-thread coordination lives in the store's futures.
///
/// With a budget of 0 (prefetch off) or a store without an async path, the
/// reader degrades to plain synchronous Gets, making it safe to use
/// unconditionally in every job body: results are bit-identical either
/// way, only the waiting moves.
class TaskTileReader {
 public:
  /// `store` is borrowed and must outlive the reader. `budget_bytes` caps
  /// the in-memory footprint of in-flight prefetches; at least one hint is
  /// kept in flight even when it alone exceeds the budget (<= 0 disables
  /// prefetching entirely).
  TaskTileReader(TileStore* store, int machine, int64_t budget_bytes);

  /// Cancels any in-flight fetches the task never consumed.
  ~TaskTileReader();

  TaskTileReader(const TaskTileReader&) = delete;
  TaskTileReader& operator=(const TaskTileReader&) = delete;

  /// Declares an upcoming Read, in the order the task will issue them.
  /// `bytes` is the tile's serialized size; the reader weighs it against
  /// the budget as the aligned in-memory footprint the deserialized tile
  /// will actually pin (Tile::MemoryBytes of the same shape). Duplicate
  /// hints are fine — already-fetched or in-flight tiles are skipped at
  /// issue time.
  void Hint(const std::string& matrix, TileId id, int64_t bytes);

  /// Fetches a tile: consumes the matching in-flight prefetch when one
  /// exists (awaiting it if needed), falls back to a synchronous Get
  /// otherwise, and tops the prefetch window back up either way.
  Result<std::shared_ptr<const Tile>> Read(const std::string& matrix,
                                           TileId id);

  /// Read through a per-task memo: repeated reads of one tile (broadcast
  /// epilogue operands, A/B tiles reused across a task's output block)
  /// return the local copy without touching the store or the cache lock.
  Result<std::shared_ptr<const Tile>> ReadMemoized(const std::string& matrix,
                                                   TileId id);

  /// In-flight prefetched bytes right now (test hook).
  int64_t in_flight_bytes() const { return in_flight_bytes_; }

 private:
  struct PendingHint {
    std::string key;
    std::string matrix;
    TileId id;
    int64_t bytes = 0;
  };
  struct InFlight {
    TileFuture future;
    int64_t bytes = 0;
  };

  static std::string Key(const std::string& matrix, TileId id);

  /// Issues pending hints while the budget allows.
  void Pump();

  TileStore* store_;
  int machine_;
  int64_t budget_bytes_;
  int64_t in_flight_bytes_ = 0;
  std::deque<PendingHint> pending_;
  std::unordered_map<std::string, InFlight> in_flight_;
  std::unordered_map<std::string, std::shared_ptr<const Tile>> memo_;
};

}  // namespace cumulon

#endif  // CUMULON_EXEC_PREFETCH_PIPELINE_H_
