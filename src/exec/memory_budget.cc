#include "exec/memory_budget.h"

#include <algorithm>

namespace cumulon {

bool MemoryBudget::TryAcquire(int64_t bytes) {
  if (bytes < 0) return false;
  MutexLock lock(&mu_);
  if (budget_bytes_ > 0 && used_bytes_ + bytes > budget_bytes_) {
    ++counters_.acquire_failures;
    return false;
  }
  used_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, used_bytes_);
  return true;
}

void MemoryBudget::Release(int64_t bytes) {
  MutexLock lock(&mu_);
  used_bytes_ -= bytes;
  if (used_bytes_ < 0) used_bytes_ = 0;  // defensive; callers pair acquire
}

int64_t MemoryBudget::used_bytes() const {
  MutexLock lock(&mu_);
  return used_bytes_;
}

int64_t MemoryBudget::peak_bytes() const {
  MutexLock lock(&mu_);
  return peak_bytes_;
}

void MemoryBudget::NoteEviction(int64_t bytes) {
  MutexLock lock(&mu_);
  ++counters_.evictions;
  counters_.evicted_bytes += bytes;
}

void MemoryBudget::NoteRefetch(int64_t bytes) {
  MutexLock lock(&mu_);
  ++counters_.refetches;
  counters_.refetch_bytes += bytes;
}

void MemoryBudget::NoteUnpinnedRead(int64_t /*bytes*/) {
  MutexLock lock(&mu_);
  ++counters_.unpinned_reads;
}

void MemoryBudget::NoteAcquireFailure() {
  MutexLock lock(&mu_);
  ++counters_.acquire_failures;
}

MemoryBudget::Counters MemoryBudget::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

MemoryBudgetGroup::MemoryBudgetGroup(int num_nodes,
                                     int64_t budget_bytes_per_node)
    : budget_bytes_per_node_(budget_bytes_per_node) {
  nodes_.reserve(static_cast<size_t>(std::max(num_nodes, 1)));
  for (int i = 0; i < std::max(num_nodes, 1); ++i) {
    nodes_.push_back(std::make_unique<MemoryBudget>(budget_bytes_per_node));
  }
}

MemoryBudget::Counters MemoryBudgetGroup::TotalCounters() const {
  MemoryBudget::Counters total;
  for (const auto& node : nodes_) total += node->counters();
  return total;
}

int64_t MemoryBudgetGroup::MaxPeakBytes() const {
  int64_t peak = 0;
  for (const auto& node : nodes_) {
    peak = std::max(peak, node->peak_bytes());
  }
  return peak;
}

}  // namespace cumulon
