#include "exec/report.h"

#include <cstdio>

#include "common/strings.h"

namespace cumulon {

std::string FormatPlanStats(const PlanStats& stats) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %7s %6s %12s %12s %10s\n", "job",
                "tasks", "waves", "read", "written", "time");
  out += line;
  for (const JobRecord& record : stats.jobs) {
    std::snprintf(line, sizeof(line), "%-28s %7d %6d %12s %12s %10s\n",
                  record.name.c_str(), record.stats.num_tasks,
                  record.stats.waves,
                  FormatBytes(record.stats.bytes_read).c_str(),
                  FormatBytes(record.stats.bytes_written).c_str(),
                  FormatDuration(record.stats.duration_seconds).c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %d tasks (%d non-local), %s read, %s written, %s\n",
                stats.total_tasks, stats.non_local_tasks,
                FormatBytes(stats.bytes_read).c_str(),
                FormatBytes(stats.bytes_written).c_str(),
                FormatDuration(stats.total_seconds).c_str());
  out += line;
  if (stats.cache_hits > 0 || stats.cache_misses > 0 ||
      stats.bytes_read_cached > 0) {
    const int64_t lookups = stats.cache_hits + stats.cache_misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
    std::snprintf(line, sizeof(line),
                  "tile cache: %lld hits / %lld lookups (%.1f%%), %s served "
                  "from cache\n",
                  static_cast<long long>(stats.cache_hits),
                  static_cast<long long>(lookups), 100.0 * hit_rate,
                  FormatBytes(stats.bytes_read_cached).c_str());
    out += line;
  }
  return out;
}

std::string PlanStatsCsv(const PlanStats& stats) {
  std::string out = "job,task,machine,start,duration,local\n";
  for (const JobRecord& record : stats.jobs) {
    for (size_t t = 0; t < record.stats.task_runs.size(); ++t) {
      const TaskRunInfo& run = record.stats.task_runs[t];
      out += StrCat(record.name, ",", t, ",", run.machine, ",",
                    run.start_seconds, ",", run.duration_seconds, ",",
                    run.local ? 1 : 0, "\n");
    }
  }
  return out;
}

}  // namespace cumulon
