#include "exec/report.h"

#include <cstdio>

#include "common/strings.h"
#include "obs/quantile_sketch.h"

namespace cumulon {

std::string FormatPlanStats(const PlanStats& stats) {
  // The cache/locality figures come from the run's metrics snapshot (the
  // exec.* counters the executor maintains); hand-built PlanStats without
  // a snapshot fall back to the legacy aggregate fields, which the
  // executor keeps in lockstep.
  const MetricsSnapshot& m = stats.metrics;
  const int64_t non_local =
      m.CounterOr("exec.tasks.nonlocal", stats.non_local_tasks);
  const int64_t cache_hits = m.CounterOr("exec.cache.hits", stats.cache_hits);
  const int64_t cache_misses =
      m.CounterOr("exec.cache.misses", stats.cache_misses);
  const int64_t cached_bytes =
      m.CounterOr("exec.cache.hit_bytes", stats.bytes_read_cached);

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %7s %6s %12s %12s %10s\n", "job",
                "tasks", "waves", "read", "written", "time");
  out += line;
  for (const JobRecord& record : stats.jobs) {
    std::snprintf(line, sizeof(line), "%-28s %7d %6d %12s %12s %10s\n",
                  record.name.c_str(), record.stats.num_tasks,
                  record.stats.waves,
                  FormatBytes(record.stats.bytes_read).c_str(),
                  FormatBytes(record.stats.bytes_written).c_str(),
                  FormatDuration(record.stats.duration_seconds).c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %d tasks (%d non-local), %s read, %s written, %s\n",
                stats.total_tasks, static_cast<int>(non_local),
                FormatBytes(stats.bytes_read).c_str(),
                FormatBytes(stats.bytes_written).c_str(),
                FormatDuration(stats.total_seconds).c_str());
  out += line;
  if (cache_hits > 0 || cache_misses > 0 || cached_bytes > 0) {
    const int64_t lookups = cache_hits + cache_misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(cache_hits) / lookups : 0.0;
    std::snprintf(line, sizeof(line),
                  "tile cache: %lld hits / %lld lookups (%.1f%%), %s served "
                  "from cache\n",
                  static_cast<long long>(cache_hits),
                  static_cast<long long>(lookups), 100.0 * hit_rate,
                  FormatBytes(cached_bytes).c_str());
    out += line;
  }
  if (stats.stall_seconds > 0.0) {
    double task_seconds = 0.0;
    for (const JobRecord& record : stats.jobs) {
      task_seconds += record.stats.total_task_seconds;
    }
    std::snprintf(line, sizeof(line),
                  "io stall: %s blocked on tile reads (%.1f%% of %s task "
                  "time)\n",
                  FormatDuration(stats.stall_seconds).c_str(),
                  task_seconds > 0.0
                      ? 100.0 * stats.stall_seconds / task_seconds
                      : 0.0,
                  FormatDuration(task_seconds).c_str());
    out += line;
  }
  if (stats.spill_evictions > 0 || stats.spill_refetches > 0) {
    std::snprintf(line, sizeof(line),
                  "spill: %lld panels evicted (%s), %lld refetched (%s); "
                  "peak resident %s\n",
                  static_cast<long long>(stats.spill_evictions),
                  FormatBytes(stats.spill_evicted_bytes).c_str(),
                  static_cast<long long>(stats.spill_refetches),
                  FormatBytes(stats.spill_refetch_bytes).c_str(),
                  FormatBytes(stats.memory_peak_bytes).c_str());
    out += line;
  }
  // Task-duration quantiles from a bounded-memory sketch
  // (obs/quantile_sketch.h): exact for plans up to a few thousand tasks,
  // within the sketch's rank-error bound beyond that.
  QuantileSketch durations;
  for (const JobRecord& record : stats.jobs) {
    for (const TaskRunInfo& run : record.stats.task_runs) {
      durations.Add(run.duration_seconds);
    }
  }
  if (durations.count() > 1) {
    std::snprintf(line, sizeof(line),
                  "task time: p50=%s p99=%s max=%s over %lld tasks\n",
                  FormatDuration(durations.Quantile(0.50)).c_str(),
                  FormatDuration(durations.Quantile(0.99)).c_str(),
                  FormatDuration(durations.max()).c_str(),
                  static_cast<long long>(durations.count()));
    out += line;
  }
  return out;
}

std::string PlanStatsCsv(const PlanStats& stats) {
  std::string out = "job,task,machine,slot,start,duration,local\n";
  for (const JobRecord& record : stats.jobs) {
    for (size_t t = 0; t < record.stats.task_runs.size(); ++t) {
      const TaskRunInfo& run = record.stats.task_runs[t];
      out += StrCat(record.name, ",", t, ",", run.machine, ",", run.slot,
                    ",", run.start_seconds, ",", run.duration_seconds, ",",
                    run.local ? 1 : 0, "\n");
    }
  }
  return out;
}

std::string FormatMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-36s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "%-36s %lld (gauge)\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-36s n=%lld mean=%.3g p50<=%.3g p95<=%.3g max=%.3g\n",
                  name.c_str(), static_cast<long long>(h.count), h.mean(),
                  h.p50, h.p95, h.max);
    out += line;
  }
  return out;
}

}  // namespace cumulon
