#include "dfs/sim_dfs.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"

namespace cumulon {

SimDfs::SimDfs(const DfsOptions& options)
    : options_(options),
      rng_(options.seed),
      per_node_(options.num_nodes),
      node_live_(options.num_nodes, true) {
  CUMULON_CHECK_GT(options_.num_nodes, 0);
  CUMULON_CHECK_GT(options_.replication, 0);
  CUMULON_CHECK_GT(options_.block_size, 0);
}

std::vector<int> SimDfs::PlaceReplicasLocked(int writer_node) {
  const int n = options_.num_nodes;
  int live = 0;
  for (bool alive : node_live_) live += alive ? 1 : 0;
  const int r = std::min(options_.replication, live);
  std::vector<int> replicas;
  replicas.reserve(r);
  if (writer_node >= 0 && writer_node < n && node_live_[writer_node]) {
    replicas.push_back(writer_node);  // HDFS: first replica on the writer.
  }
  while (static_cast<int>(replicas.size()) < r) {
    const int candidate = static_cast<int>(rng_.NextUint64(n));
    if (node_live_[candidate] &&
        std::find(replicas.begin(), replicas.end(), candidate) ==
            replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

int64_t SimDfs::KillNode(int node) {
  MutexLock lock(&mu_);
  CUMULON_CHECK(node >= 0 && node < options_.num_nodes);
  if (!node_live_[node]) return 0;
  node_live_[node] = false;
  int64_t lost = 0;
  for (auto& [path, entry] : files_) {
    for (BlockInfo& block : entry.info.blocks) {
      auto it = std::find(block.replicas.begin(), block.replicas.end(), node);
      if (it != block.replicas.end()) {
        block.replicas.erase(it);
        ++lost;
      }
    }
  }
  return lost;
}

int64_t SimDfs::ReReplicate() {
  MutexLock lock(&mu_);
  std::vector<int> live_nodes;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (node_live_[n]) live_nodes.push_back(n);
  }
  if (live_nodes.empty()) return 0;
  const int target = std::min<int>(options_.replication,
                                   static_cast<int>(live_nodes.size()));
  int64_t bytes_copied = 0;
  for (auto& [path, entry] : files_) {
    for (BlockInfo& block : entry.info.blocks) {
      // A block whose last replica died is gone; re-replication cannot
      // resurrect it.
      if (block.replicas.empty()) continue;
      while (static_cast<int>(block.replicas.size()) < target) {
        const int candidate =
            live_nodes[rng_.NextUint64(live_nodes.size())];
        if (std::find(block.replicas.begin(), block.replicas.end(),
                      candidate) == block.replicas.end()) {
          block.replicas.push_back(candidate);
          bytes_copied += block.size;
        }
      }
    }
  }
  return bytes_copied;
}

bool SimDfs::IsNodeLive(int node) const {
  MutexLock lock(&mu_);
  CUMULON_CHECK(node >= 0 && node < options_.num_nodes);
  return node_live_[node];
}

int SimDfs::NumLiveNodes() const {
  MutexLock lock(&mu_);
  int live = 0;
  for (bool alive : node_live_) live += alive ? 1 : 0;
  return live;
}

Status SimDfs::Write(const std::string& path, int64_t size, int writer_node,
                     std::shared_ptr<const void> payload) {
  if (size < 0) return Status::InvalidArgument("negative file size");
  MutexLock lock(&mu_);
  FileEntry entry;
  entry.info.size = size;
  int64_t remaining = size;
  do {
    BlockInfo block;
    block.size = std::min(remaining, options_.block_size);
    block.replicas = PlaceReplicasLocked(writer_node);
    entry.info.blocks.push_back(std::move(block));
    remaining -= entry.info.blocks.back().size;
  } while (remaining > 0);
  entry.payload = std::move(payload);
  files_[path] = std::move(entry);
  total_.bytes_written += size;
  total_.writes += 1;
  if (writer_node >= 0 && writer_node < options_.num_nodes) {
    per_node_[writer_node].bytes_written += size;
    per_node_[writer_node].writes += 1;
  }
  return Status::OK();
}

Result<std::shared_ptr<const void>> SimDfs::Read(const std::string& path,
                                                 int reader_node) {
  std::shared_ptr<const void> payload;
  double service_seconds = 0.0;
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound(StrCat("DFS file not found: ", path));
    }
    for (const BlockInfo& block : it->second.info.blocks) {
      if (block.replicas.empty()) {
        return Status::FailedPrecondition(
            StrCat("block of ", path, " lost all replicas (node failures)"));
      }
    }
    total_.reads += 1;
    const bool known_node =
        reader_node >= 0 && reader_node < options_.num_nodes;
    if (known_node) per_node_[reader_node].reads += 1;
    for (const BlockInfo& block : it->second.info.blocks) {
      const bool local =
          known_node && std::find(block.replicas.begin(),
                                  block.replicas.end(),
                                  reader_node) != block.replicas.end();
      if (local) {
        total_.bytes_read_local += block.size;
        per_node_[reader_node].bytes_read_local += block.size;
      } else {
        total_.bytes_read_remote += block.size;
        if (known_node) {
          per_node_[reader_node].bytes_read_remote += block.size;
        }
      }
    }
    payload = it->second.payload;
    // Injected service time for payload reads only; metadata reads stay
    // instant. Computed under the lock, slept outside it so concurrent
    // readers overlap their service times like independent disks would.
    if (payload != nullptr) {
      service_seconds = options_.read_latency_seconds;
      if (options_.read_bytes_per_sec > 0.0) {
        service_seconds += static_cast<double>(it->second.info.size) /
                           options_.read_bytes_per_sec;
      }
    }
  }
  if (service_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(service_seconds));
  }
  return payload;
}

Status SimDfs::Delete(const std::string& path) {
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound(StrCat("DFS file not found: ", path));
  }
  return Status::OK();
}

int64_t SimDfs::DeletePrefix(const std::string& prefix) {
  MutexLock lock(&mu_);
  int64_t count = 0;
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
    ++count;
  }
  return count;
}

bool SimDfs::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Result<DfsFileInfo> SimDfs::Stat(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("DFS file not found: ", path));
  }
  return it->second.info;
}

Result<std::vector<int>> SimDfs::NodesHosting(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("DFS file not found: ", path));
  }
  std::vector<int> nodes;
  for (const BlockInfo& block : it->second.info.blocks) {
    for (int r : block.replicas) {
      if (std::find(nodes.begin(), nodes.end(), r) == nodes.end()) {
        nodes.push_back(r);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

DfsStats SimDfs::TotalStats() const {
  MutexLock lock(&mu_);
  return total_;
}

DfsStats SimDfs::NodeStats(int node) const {
  MutexLock lock(&mu_);
  CUMULON_CHECK(node >= 0 && node < options_.num_nodes);
  return per_node_[node];
}

void SimDfs::ResetStats() {
  MutexLock lock(&mu_);
  total_ = DfsStats();
  for (auto& s : per_node_) s = DfsStats();
}

int64_t SimDfs::NumFiles() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(files_.size());
}

int64_t SimDfs::TotalStoredBytes() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [path, entry] : files_) total += entry.info.size;
  return total;
}

int64_t SimDfs::NodeStoredBytes(int node) const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [path, entry] : files_) {
    for (const BlockInfo& block : entry.info.blocks) {
      if (std::find(block.replicas.begin(), block.replicas.end(), node) !=
          block.replicas.end()) {
        total += block.size;
      }
    }
  }
  return total;
}

}  // namespace cumulon
