#ifndef CUMULON_DFS_SIM_DFS_H_
#define CUMULON_DFS_SIM_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// Configuration for the simulated distributed file system.
struct DfsOptions {
  int num_nodes = 4;                         // data nodes in the cluster
  int replication = 3;                       // replicas per block
  int64_t block_size = 64LL * 1024 * 1024;   // HDFS-style 64 MiB blocks
  uint64_t seed = 42;                        // replica placement randomness

  /// Injected service time of payload reads: each Read that returns data
  /// sleeps read_latency_seconds + size / read_bytes_per_sec (term skipped
  /// when the respective knob is 0). The in-process DFS is otherwise
  /// instant, which makes real-engine IO/compute-overlap experiments
  /// meaningless — these knobs recreate the disk/network latency a real
  /// DFS read would have. Metadata-only reads (simulation mode) never
  /// sleep, so predictor runs are unaffected.
  double read_latency_seconds = 0.0;
  double read_bytes_per_sec = 0.0;
};

/// One block of a file and the nodes holding its replicas.
struct BlockInfo {
  int64_t size = 0;
  std::vector<int> replicas;
};

/// Metadata for a stored file.
struct DfsFileInfo {
  int64_t size = 0;
  std::vector<BlockInfo> blocks;
};

/// Aggregate transfer counters, queryable globally or per node.
struct DfsStats {
  int64_t bytes_written = 0;
  int64_t bytes_read_local = 0;
  int64_t bytes_read_remote = 0;
  int64_t reads = 0;
  int64_t writes = 0;

  int64_t bytes_read() const { return bytes_read_local + bytes_read_remote; }
  double locality_fraction() const {
    const int64_t total = bytes_read();
    return total == 0 ? 1.0 : static_cast<double>(bytes_read_local) / total;
  }
};

/// An in-process simulator of an HDFS-like distributed file system.
///
/// What it models (the aspects Cumulon's results depend on): files split
/// into blocks, blocks replicated across named data nodes, the
/// first-replica-on-the-writer placement policy, and local- vs
/// remote-read accounting. What it does not model: permissions, append,
/// failures of the namenode, wire formats.
///
/// Payloads are optional type-erased pointers so the real execution engine
/// can round-trip actual tile data through the same path the simulator
/// meters; simulation-only runs pass nullptr and only metadata moves.
///
/// Thread-safe.
class SimDfs {
 public:
  explicit SimDfs(const DfsOptions& options);

  const DfsOptions& options() const { return options_; }

  /// Creates (or overwrites) `path` with `size` bytes. `writer_node` gets
  /// the first replica of every block when in [0, num_nodes); remaining
  /// replicas go to distinct random nodes.
  Status Write(const std::string& path, int64_t size, int writer_node,
               std::shared_ptr<const void> payload);

  /// Reads the whole file, attributing each block to a local read if
  /// `reader_node` holds a replica and a remote read otherwise.
  /// Returns the payload stored at write time (may be null).
  Result<std::shared_ptr<const void>> Read(const std::string& path,
                                           int reader_node);

  Status Delete(const std::string& path);

  /// Deletes every file whose path starts with `prefix`; returns the count.
  int64_t DeletePrefix(const std::string& prefix);

  bool Exists(const std::string& path) const;

  Result<DfsFileInfo> Stat(const std::string& path) const;

  /// Distinct nodes holding at least one replica of at least one block.
  Result<std::vector<int>> NodesHosting(const std::string& path) const;

  /// Simulates the crash of a data node: every replica it held vanishes
  /// and it stops receiving new ones. Returns the number of blocks that
  /// lost a replica. Blocks whose last replica is lost become unreadable
  /// until overwritten.
  int64_t KillNode(int node);

  /// Restores redundancy for under-replicated blocks by copying them to
  /// random live nodes (the HDFS namenode's re-replication). Returns the
  /// bytes copied — the cluster's recovery network traffic.
  int64_t ReReplicate();

  bool IsNodeLive(int node) const;
  int NumLiveNodes() const;

  DfsStats TotalStats() const;
  DfsStats NodeStats(int node) const;
  void ResetStats();

  int64_t NumFiles() const;
  int64_t TotalStoredBytes() const;

  /// Bytes physically stored on `node` (i.e., counting replication).
  int64_t NodeStoredBytes(int node) const;

 private:
  struct FileEntry {
    DfsFileInfo info;
    std::shared_ptr<const void> payload;
  };

  std::vector<int> PlaceReplicasLocked(int writer_node) CUMULON_REQUIRES(mu_);

  const DfsOptions options_;
  mutable Mutex mu_{"SimDfs::mu_"};
  Rng rng_ CUMULON_GUARDED_BY(mu_);
  std::map<std::string, FileEntry> files_ CUMULON_GUARDED_BY(mu_);
  DfsStats total_ CUMULON_GUARDED_BY(mu_);
  std::vector<DfsStats> per_node_ CUMULON_GUARDED_BY(mu_);
  std::vector<bool> node_live_ CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_DFS_SIM_DFS_H_
