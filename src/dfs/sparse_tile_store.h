#ifndef CUMULON_DFS_SPARSE_TILE_STORE_H_
#define CUMULON_DFS_SPARSE_TILE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "dfs/sim_dfs.h"
#include "matrix/layout.h"
#include "matrix/sparse_tile.h"

namespace cumulon {

/// CSR-tile storage over the simulated DFS, the sparse sibling of
/// DfsTileStore. Bytes written/read reflect CSR footprints (16 bytes per
/// nonzero plus row offsets), which is where sparse storage wins.
/// Path scheme: /sparse/<name>/t_<row>_<col>.
class SparseTileStore {
 public:
  /// Does not take ownership of `dfs`, which must outlive this store.
  explicit SparseTileStore(SimDfs* dfs) : dfs_(dfs) {}

  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const SparseTile> tile, int writer_node);
  Result<std::shared_ptr<const SparseTile>> Get(const std::string& matrix,
                                                TileId id, int reader_node);
  Status DeleteMatrix(const std::string& matrix);
  std::vector<int> PreferredNodes(const std::string& matrix, TileId id);

  static std::string TilePath(const std::string& matrix, TileId id);

  SimDfs* dfs() const { return dfs_; }

 private:
  SimDfs* dfs_;
};

}  // namespace cumulon

#endif  // CUMULON_DFS_SPARSE_TILE_STORE_H_
