#include "dfs/sparse_tile_store.h"

#include "common/strings.h"

namespace cumulon {

std::string SparseTileStore::TilePath(const std::string& matrix, TileId id) {
  return StrCat("/sparse/", matrix, "/t_", id.row, "_", id.col);
}

Status SparseTileStore::Put(const std::string& matrix, TileId id,
                            std::shared_ptr<const SparseTile> tile,
                            int writer_node) {
  const int64_t bytes = tile->SizeBytes();
  return dfs_->Write(TilePath(matrix, id), bytes, writer_node,
                     std::move(tile));
}

Result<std::shared_ptr<const SparseTile>> SparseTileStore::Get(
    const std::string& matrix, TileId id, int reader_node) {
  CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const void> payload,
                           dfs_->Read(TilePath(matrix, id), reader_node));
  if (payload == nullptr) {
    return Status::Internal(
        StrCat("sparse tile ", id, " of '", matrix, "' has no payload"));
  }
  return std::static_pointer_cast<const SparseTile>(payload);
}

Status SparseTileStore::DeleteMatrix(const std::string& matrix) {
  dfs_->DeletePrefix(StrCat("/sparse/", matrix, "/"));
  return Status::OK();
}

std::vector<int> SparseTileStore::PreferredNodes(const std::string& matrix,
                                                 TileId id) {
  auto nodes = dfs_->NodesHosting(TilePath(matrix, id));
  if (!nodes.ok()) return {};
  return std::move(nodes).value();
}

}  // namespace cumulon
