#ifndef CUMULON_DFS_TILE_CACHE_H_
#define CUMULON_DFS_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "matrix/tile.h"

namespace cumulon {

/// Aggregate counters of one cache (or a group of them). hit_bytes counts
/// serialized tile sizes (Tile::SizeBytes), the same unit the DFS accounts
/// in, so hit bytes are directly comparable to DfsStats reads.
/// resident_bytes counts the allocator's actual in-memory footprint
/// (Tile::MemoryBytes — cache-line aligned and padded), which is what the
/// capacity budget is spent against.
struct TileCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  int64_t hit_bytes = 0;
  int64_t resident_bytes = 0;
  int64_t resident_tiles = 0;

  int64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const int64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A byte-budgeted LRU cache of immutable tiles, keyed by their DFS path.
/// One instance represents the page-cache / reader-buffer memory of a
/// single cluster node, so tasks placed on the same machine reuse input
/// tiles instead of re-fetching (and re-checksumming) them from the DFS.
///
/// The key space is sharded and each shard has its own mutex and LRU list,
/// so concurrent task slots of a machine do not serialize on one lock.
/// Each shard manages an equal fraction of the byte budget; tiles larger
/// than a shard's budget are not cached. Cached tiles are shared_ptrs to
/// the same immutable payloads the DFS holds — the cache adds bookkeeping,
/// not copies.
///
/// Thread-safe.
class TileCache {
 public:
  /// `capacity_bytes` <= 0 disables caching (every Get misses).
  explicit TileCache(int64_t capacity_bytes, int num_shards = 8);

  /// Returns the cached tile and promotes it to most-recently-used, or
  /// nullptr on a miss.
  std::shared_ptr<const Tile> Get(const std::string& key);

  /// Inserts (or replaces) `tile` under `key`, evicting least-recently-used
  /// entries of the shard until it fits. No-op for null tiles and tiles
  /// larger than the shard budget.
  void Put(const std::string& key, std::shared_ptr<const Tile> tile);

  /// Drops `key` if present (tile overwritten or deleted in the DFS).
  void Invalidate(const std::string& key);

  /// Drops every entry whose key starts with `prefix`; returns the count.
  int64_t InvalidatePrefix(const std::string& prefix);

  void Clear();

  TileCacheStats Stats() const;

  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Tile> tile;
    int64_t size_bytes = 0;    // serialized (DFS-comparable hit accounting)
    int64_t memory_bytes = 0;  // aligned in-memory footprint (budgeting)
  };
  struct Shard {
    mutable Mutex mu{"TileCache::Shard::mu"};
    std::list<Entry> lru CUMULON_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        CUMULON_GUARDED_BY(mu);
    int64_t bytes CUMULON_GUARDED_BY(mu) = 0;
    int64_t hits CUMULON_GUARDED_BY(mu) = 0;
    int64_t misses CUMULON_GUARDED_BY(mu) = 0;
    int64_t insertions CUMULON_GUARDED_BY(mu) = 0;
    int64_t evictions CUMULON_GUARDED_BY(mu) = 0;
    int64_t invalidations CUMULON_GUARDED_BY(mu) = 0;
    int64_t hit_bytes CUMULON_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key);
  void EvictLockedUntilFits(Shard* shard, int64_t incoming_bytes)
      CUMULON_REQUIRES(shard->mu);

  int64_t capacity_bytes_;
  int64_t shard_capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Per-node caches of a whole cluster: node i of the DFS gets caches_[i].
/// Owned by the engines (real and sim) so cache capacity is derived from
/// the same MachineProfile the scheduler and memory-feasibility filter use.
class TileCacheGroup {
 public:
  TileCacheGroup(int num_nodes, int64_t bytes_per_node, int shards_per_node = 8);

  /// Cache of `node`, or nullptr when the node index is out of range
  /// (e.g. reads attributed to the client, reader_node = -1).
  TileCache* node(int node);

  int num_nodes() const { return static_cast<int>(caches_.size()); }
  int64_t bytes_per_node() const { return bytes_per_node_; }

  /// Summed counters across all nodes.
  TileCacheStats TotalStats() const;

  /// Drops `key` from every node's cache (a Put made all copies stale).
  void InvalidateAll(const std::string& key);

  /// Drops every entry under `prefix` from every node's cache.
  int64_t InvalidatePrefixAll(const std::string& prefix);

  /// Drops everything cached on one node — the node's memory is gone (e.g.
  /// its transient machine was revoked). Returns the tile count dropped;
  /// no-op (0) for out-of-range nodes.
  int64_t ClearNode(int node);

  void Clear();

 private:
  int64_t bytes_per_node_;
  std::vector<std::unique_ptr<TileCache>> caches_;
};

/// Cache budget of one node: machine memory minus the slots' task working
/// sets. `slot_memory_fraction` is the fraction of a slot's RAM share that
/// tasks may use (the same knob as TuneOptions::memory_fraction, default
/// 0.8), so the optimizer's memory-feasibility filter and the cache agree
/// on how machine memory is divided.
int64_t NodeTileCacheBudget(double machine_memory_bytes, int slots_per_machine,
                            double slot_memory_fraction);

}  // namespace cumulon

#endif  // CUMULON_DFS_TILE_CACHE_H_
