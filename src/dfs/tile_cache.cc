#include "dfs/tile_cache.h"

#include <algorithm>
#include <functional>

namespace cumulon {

TileCache::TileCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(std::max<int64_t>(capacity_bytes, 0)) {
  num_shards = std::max(num_shards, 1);
  shard_capacity_bytes_ = capacity_bytes_ / num_shards;
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TileCache::Shard& TileCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const Tile> TileCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Promote to most-recently-used.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  shard.hit_bytes += it->second->size_bytes;
  return it->second->tile;
}

void TileCache::EvictLockedUntilFits(Shard* shard, int64_t incoming_bytes) {
  while (!shard->lru.empty() &&
         shard->bytes + incoming_bytes > shard_capacity_bytes_) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.memory_bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

void TileCache::Put(const std::string& key, std::shared_ptr<const Tile> tile) {
  if (tile == nullptr) return;
  // Budget against what the entry actually pins in memory — the aligned,
  // padded allocation — not its smaller serialized form.
  const int64_t memory_bytes = tile->MemoryBytes();
  const int64_t size_bytes = tile->SizeBytes();
  if (memory_bytes > shard_capacity_bytes_) return;  // would evict the shard
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->memory_bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  EvictLockedUntilFits(&shard, memory_bytes);
  shard.lru.push_front(Entry{key, std::move(tile), size_bytes, memory_bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += memory_bytes;
  ++shard.insertions;
}

void TileCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->memory_bytes;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.invalidations;
}

int64_t TileCache::InvalidatePrefix(const std::string& prefix) {
  int64_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.compare(0, prefix.size(), prefix) == 0) {
        shard.bytes -= it->memory_bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.invalidations;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void TileCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

TileCacheStats TileCache::Stats() const {
  TileCacheStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.hit_bytes += shard.hit_bytes;
    stats.resident_bytes += shard.bytes;
    stats.resident_tiles += static_cast<int64_t>(shard.lru.size());
  }
  return stats;
}

TileCacheGroup::TileCacheGroup(int num_nodes, int64_t bytes_per_node,
                               int shards_per_node)
    : bytes_per_node_(std::max<int64_t>(bytes_per_node, 0)) {
  num_nodes = std::max(num_nodes, 0);
  caches_.reserve(num_nodes);
  for (int n = 0; n < num_nodes; ++n) {
    caches_.push_back(
        std::make_unique<TileCache>(bytes_per_node_, shards_per_node));
  }
}

TileCache* TileCacheGroup::node(int node) {
  if (node < 0 || node >= static_cast<int>(caches_.size())) return nullptr;
  return caches_[node].get();
}

TileCacheStats TileCacheGroup::TotalStats() const {
  TileCacheStats total;
  for (const auto& cache : caches_) {
    const TileCacheStats s = cache->Stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.hit_bytes += s.hit_bytes;
    total.resident_bytes += s.resident_bytes;
    total.resident_tiles += s.resident_tiles;
  }
  return total;
}

void TileCacheGroup::InvalidateAll(const std::string& key) {
  for (auto& cache : caches_) cache->Invalidate(key);
}

int64_t TileCacheGroup::InvalidatePrefixAll(const std::string& prefix) {
  int64_t dropped = 0;
  for (auto& cache : caches_) dropped += cache->InvalidatePrefix(prefix);
  return dropped;
}

int64_t TileCacheGroup::ClearNode(int node) {
  if (node < 0 || node >= num_nodes()) return 0;
  TileCache* cache = caches_[node].get();
  const int64_t dropped = cache->Stats().resident_tiles;
  cache->Clear();
  return dropped;
}

void TileCacheGroup::Clear() {
  for (auto& cache : caches_) cache->Clear();
}

int64_t NodeTileCacheBudget(double machine_memory_bytes, int slots_per_machine,
                            double slot_memory_fraction) {
  slots_per_machine = std::max(slots_per_machine, 1);
  const double slot_share = machine_memory_bytes / slots_per_machine;
  const double working_sets =
      slots_per_machine * slot_share * slot_memory_fraction;
  const double budget = machine_memory_bytes - working_sets;
  return budget <= 0.0 ? 0 : static_cast<int64_t>(budget);
}

}  // namespace cumulon
