#ifndef CUMULON_DFS_DFS_TILE_STORE_H_
#define CUMULON_DFS_DFS_TILE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "dfs/sim_dfs.h"
#include "dfs/tile_cache.h"
#include "matrix/tile_store.h"
#include "obs/metrics.h"

namespace cumulon {

/// TileStore backed by the simulated DFS. Tile payloads round-trip through
/// SimDfs so both the bytes-moved accounting and the actual data share one
/// code path. Path scheme: /matrix/<name>/t_<row>_<col>.
///
/// With `verify_checksums` the store records an FNV-1a checksum of each
/// tile at write time and re-verifies it on every read (HDFS's block
/// checksumming), turning silent corruption into a loud Internal error.
///
/// With a TileCacheGroup attached (AttachCaches), Get consults the reading
/// node's local cache first: hits skip the DFS entirely — no bytes-moved
/// accounting, no checksum pass — which is where map-only matrix jobs that
/// read the same input tile from many splits get their IO back. Misses are
/// verified as usual and then inserted into the reader's cache; Put and
/// DeleteMatrix invalidate every node's cached copy before the DFS write
/// so a cache can never serve stale data.
class DfsTileStore : public TileStore {
 public:
  /// Does not take ownership of `dfs`, which must outlive this store.
  explicit DfsTileStore(SimDfs* dfs, bool verify_checksums = false)
      : dfs_(dfs), verify_checksums_(verify_checksums) {}

  /// Attaches the per-node caches (owned by the engine; must outlive this
  /// store). nullptr detaches.
  void AttachCaches(TileCacheGroup* caches) { caches_ = caches; }

  TileCacheGroup* caches() const { return caches_; }

  /// Publishes dfs.* and cache.* counters (docs/observability.md) to
  /// `metrics` on every Get/Put/Delete. Borrowed; nullptr detaches. The
  /// counter handles are cached here, so the per-operation cost is a few
  /// relaxed atomic adds.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Turns on the asynchronous prefetch path: GetAsync/Prefetch fetch on a
  /// bounded background pool instead of the calling thread, and concurrent
  /// requests for one (tile, node) coalesce onto a single DFS read whose
  /// result lands in the reader's tile cache. Without this call, GetAsync
  /// degrades to a synchronous Get wrapped in a ready future. Futures and
  /// hints issued through the async API must not outlive the store.
  void EnablePrefetch(int num_threads = 4);

  bool prefetch_enabled() const { return prefetch_pool_ != nullptr; }

  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const Tile> tile, int writer_node) override;
  Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                          TileId id, int reader_node) override;
  TileFuture GetAsync(const std::string& matrix, TileId id,
                      int reader_node) override;
  void Prefetch(const std::string& matrix, TileId id,
                int reader_node) override;
  Status DeleteMatrix(const std::string& matrix) override;
  std::vector<int> PreferredNodes(const std::string& matrix,
                                  TileId id) override;
  Status PutMeta(const std::string& matrix, TileId id, int64_t bytes,
                 int writer_node) override;

  static std::string TilePath(const std::string& matrix, TileId id);

  SimDfs* dfs() const { return dfs_; }

 private:
  /// Cached counter handles of the attached registry; all null when
  /// metrics are detached.
  struct StoreCounters {
    Counter* read_ops = nullptr;
    Counter* read_bytes = nullptr;
    Counter* write_ops = nullptr;
    Counter* write_bytes = nullptr;
    Counter* delete_ops = nullptr;
    Counter* cache_hits = nullptr;
    Counter* cache_misses = nullptr;
    Counter* cache_hit_bytes = nullptr;
    Counter* prefetch_issued = nullptr;
    Counter* prefetch_hits = nullptr;
    Counter* prefetch_coalesced = nullptr;
    Counter* prefetch_stall_ns = nullptr;
    Histogram* prefetch_stall_seconds = nullptr;
  };

  /// Reading node's cached copy of `path`, or null. Bumps cache.hits on a
  /// hit; misses are counted only when `count_miss` (the async fast path
  /// leaves the miss to the pool worker's Get so each lookup miss is
  /// counted once).
  std::shared_ptr<const Tile> CacheLookup(const std::string& path,
                                          int reader_node, bool count_miss);

  /// Returns the (possibly coalesced) in-flight fetch state for
  /// (matrix tile, reader node), submitting a pool worker for new fetches.
  /// `add_waiter` distinguishes GetAsync (a future will Await/Cancel) from
  /// fire-and-forget Prefetch hints.
  std::shared_ptr<TileFetchState> StartFetch(const std::string& matrix,
                                             TileId id, int reader_node,
                                             bool add_waiter);

  SimDfs* dfs_;
  bool verify_checksums_;
  TileCacheGroup* caches_ = nullptr;
  StoreCounters counters_;
  Mutex checksum_mu_{"DfsTileStore::checksum_mu_"};
  std::map<std::string, uint64_t> checksums_ CUMULON_GUARDED_BY(checksum_mu_);

  // Prefetch state. prefetch_mu_ serializes the in-flight map AND the
  // abandon-or-fetch decision of pool workers: a fetch may only resolve as
  // Cancelled after it has been unpublished from in_flight_, so a request
  // can never coalesce onto (and then spuriously fail with) a fetch that is
  // about to cancel. The pool is declared last so its destructor joins the
  // workers before the in-flight map (and the rest of the store) goes away.
  Mutex prefetch_mu_{"DfsTileStore::prefetch_mu_"};
  std::map<std::pair<std::string, int>, std::shared_ptr<TileFetchState>>
      in_flight_ CUMULON_GUARDED_BY(prefetch_mu_);
  Stopwatch prefetch_clock_;       // span timestamps, restarted at enable
  double prefetch_trace_base_ = 0; // tracer offset at enable time
  std::unique_ptr<ThreadPool> prefetch_pool_;
};

}  // namespace cumulon

#endif  // CUMULON_DFS_DFS_TILE_STORE_H_
