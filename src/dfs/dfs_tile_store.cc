#include "dfs/dfs_tile_store.h"

#include "common/strings.h"
#include "matrix/tile_io.h"

namespace cumulon {

namespace {
uint64_t TileChecksum(const Tile& tile) {
  return Fnv1a(reinterpret_cast<const uint8_t*>(tile.data()),
               tile.size() * sizeof(double));
}
}  // namespace

std::string DfsTileStore::TilePath(const std::string& matrix, TileId id) {
  return StrCat("/matrix/", matrix, "/t_", id.row, "_", id.col);
}

void DfsTileStore::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    counters_ = StoreCounters{};
    return;
  }
  counters_.read_ops = metrics->counter("dfs.read.ops");
  counters_.read_bytes = metrics->counter("dfs.read.bytes");
  counters_.write_ops = metrics->counter("dfs.write.ops");
  counters_.write_bytes = metrics->counter("dfs.write.bytes");
  counters_.delete_ops = metrics->counter("dfs.delete.ops");
  counters_.cache_hits = metrics->counter("cache.hits");
  counters_.cache_misses = metrics->counter("cache.misses");
  counters_.cache_hit_bytes = metrics->counter("cache.hit_bytes");
}

Status DfsTileStore::Put(const std::string& matrix, TileId id,
                         std::shared_ptr<const Tile> tile, int writer_node) {
  const int64_t bytes = tile->SizeBytes();
  const std::string path = TilePath(matrix, id);
  if (verify_checksums_) {
    std::lock_guard<std::mutex> lock(checksum_mu_);
    checksums_[path] = TileChecksum(*tile);
  }
  if (caches_ != nullptr) {
    // Every node's cached copy is stale once the overwrite lands; the
    // writer keeps the fresh tile (its next reader is likely local).
    caches_->InvalidateAll(path);
    if (TileCache* cache = caches_->node(writer_node)) cache->Put(path, tile);
  }
  if (counters_.write_ops != nullptr) {
    counters_.write_ops->Increment();
    counters_.write_bytes->Add(bytes);
  }
  return dfs_->Write(path, bytes, writer_node, std::move(tile));
}

Result<std::shared_ptr<const Tile>> DfsTileStore::Get(
    const std::string& matrix, TileId id, int reader_node) {
  const std::string path = TilePath(matrix, id);
  TileCache* cache =
      caches_ != nullptr ? caches_->node(reader_node) : nullptr;
  if (cache != nullptr) {
    if (std::shared_ptr<const Tile> cached = cache->Get(path)) {
      if (counters_.cache_hits != nullptr) {
        counters_.cache_hits->Increment();
        counters_.cache_hit_bytes->Add(cached->SizeBytes());
      }
      return cached;  // verified at miss time; no DFS traffic
    }
    if (counters_.cache_misses != nullptr) {
      counters_.cache_misses->Increment();
    }
  }
  CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const void> payload,
                           dfs_->Read(path, reader_node));
  if (payload == nullptr) {
    return Status::Internal(
        StrCat("tile ", id, " of '", matrix, "' has no payload (metadata-only",
               " write read back through DfsTileStore)"));
  }
  auto tile = std::static_pointer_cast<const Tile>(payload);
  if (counters_.read_ops != nullptr) {
    counters_.read_ops->Increment();
    counters_.read_bytes->Add(tile->SizeBytes());
  }
  if (verify_checksums_) {
    uint64_t expected = 0;
    bool have_expected = false;
    {
      std::lock_guard<std::mutex> lock(checksum_mu_);
      auto it = checksums_.find(path);
      if (it != checksums_.end()) {
        expected = it->second;
        have_expected = true;
      }
    }
    if (have_expected && TileChecksum(*tile) != expected) {
      return Status::Internal(
          StrCat("checksum mismatch reading tile ", id, " of '", matrix,
                 "' (corrupted block)"));
    }
  }
  if (cache != nullptr) cache->Put(path, tile);
  return tile;
}

Status DfsTileStore::DeleteMatrix(const std::string& matrix) {
  const std::string prefix = StrCat("/matrix/", matrix, "/");
  if (caches_ != nullptr) caches_->InvalidatePrefixAll(prefix);
  if (counters_.delete_ops != nullptr) counters_.delete_ops->Increment();
  dfs_->DeletePrefix(prefix);
  return Status::OK();
}

Status DfsTileStore::PutMeta(const std::string& matrix, TileId id,
                             int64_t bytes, int writer_node) {
  if (counters_.write_ops != nullptr) {
    counters_.write_ops->Increment();
    counters_.write_bytes->Add(bytes);
  }
  return dfs_->Write(TilePath(matrix, id), bytes, writer_node, nullptr);
}

std::vector<int> DfsTileStore::PreferredNodes(const std::string& matrix,
                                              TileId id) {
  auto nodes = dfs_->NodesHosting(TilePath(matrix, id));
  if (!nodes.ok()) return {};
  return std::move(nodes).value();
}

}  // namespace cumulon
