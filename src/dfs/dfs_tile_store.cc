#include "dfs/dfs_tile_store.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "matrix/tile_io.h"
#include "obs/trace.h"

namespace cumulon {

namespace {
uint64_t TileChecksum(const Tile& tile) {
  return Fnv1a(reinterpret_cast<const uint8_t*>(tile.data()),
               tile.size() * sizeof(double));
}
}  // namespace

std::string DfsTileStore::TilePath(const std::string& matrix, TileId id) {
  return StrCat("/matrix/", matrix, "/t_", id.row, "_", id.col);
}

void DfsTileStore::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    counters_ = StoreCounters{};
    return;
  }
  counters_.read_ops = metrics->counter("dfs.read.ops");
  counters_.read_bytes = metrics->counter("dfs.read.bytes");
  counters_.write_ops = metrics->counter("dfs.write.ops");
  counters_.write_bytes = metrics->counter("dfs.write.bytes");
  counters_.delete_ops = metrics->counter("dfs.delete.ops");
  counters_.cache_hits = metrics->counter("cache.hits");
  counters_.cache_misses = metrics->counter("cache.misses");
  counters_.cache_hit_bytes = metrics->counter("cache.hit_bytes");
  counters_.prefetch_issued = metrics->counter("prefetch.issued");
  counters_.prefetch_hits = metrics->counter("prefetch.hit");
  counters_.prefetch_coalesced = metrics->counter("prefetch.coalesced");
  counters_.prefetch_stall_ns = metrics->counter("prefetch.stall_ns");
  counters_.prefetch_stall_seconds =
      metrics->histogram("prefetch.stall_seconds");
}

void DfsTileStore::EnablePrefetch(int num_threads) {
  if (prefetch_pool_ != nullptr) return;
  prefetch_clock_.Restart();
  if (Tracer* tracer = GlobalTracer()) {
    prefetch_trace_base_ = tracer->time_offset();
  }
  prefetch_pool_ = std::make_unique<ThreadPool>(std::max(num_threads, 1));
}

std::shared_ptr<const Tile> DfsTileStore::CacheLookup(const std::string& path,
                                                      int reader_node,
                                                      bool count_miss) {
  TileCache* cache = caches_ != nullptr ? caches_->node(reader_node) : nullptr;
  if (cache == nullptr) return nullptr;
  if (std::shared_ptr<const Tile> cached = cache->Get(path)) {
    if (counters_.cache_hits != nullptr) {
      counters_.cache_hits->Increment();
      counters_.cache_hit_bytes->Add(cached->SizeBytes());
    }
    return cached;
  }
  if (count_miss && counters_.cache_misses != nullptr) {
    counters_.cache_misses->Increment();
  }
  return nullptr;
}

std::shared_ptr<TileFetchState> DfsTileStore::StartFetch(
    const std::string& matrix, TileId id, int reader_node, bool add_waiter) {
  auto key = std::make_pair(TilePath(matrix, id), reader_node);
  std::shared_ptr<TileFetchState> state;
  {
    MutexLock lock(&prefetch_mu_);
    auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      if (add_waiter) it->second->AddWaiter();
      if (counters_.prefetch_coalesced != nullptr) {
        counters_.prefetch_coalesced->Increment();
      }
      return it->second;
    }
    state = std::make_shared<TileFetchState>();
    // Prefetch hints create the state with one implicit waiter that never
    // cancels, so hinted fetches always run; GetAsync's first future is
    // that waiter and CAN withdraw it.
    state->stall_callback = [this](double seconds) {
      if (counters_.prefetch_stall_ns != nullptr) {
        counters_.prefetch_stall_ns->Add(
            static_cast<int64_t>(seconds * 1e9));
      }
      if (counters_.prefetch_stall_seconds != nullptr) {
        counters_.prefetch_stall_seconds->Observe(seconds);
      }
    };
    in_flight_.emplace(key, state);
    if (counters_.prefetch_issued != nullptr) {
      counters_.prefetch_issued->Increment();
    }
  }
  prefetch_pool_->Submit([this, state, key = std::move(key), matrix, id,
                          reader_node] {
    // The abandon decision must be made under prefetch_mu_ and paired with
    // unpublishing the state: AddWaiter (a coalescing GetAsync) also runs
    // under prefetch_mu_, so once we observe "abandoned" here no new waiter
    // can join before the state leaves in_flight_ — without this, a live
    // request could coalesce onto the fetch an instant before it resolves
    // as Cancelled and spuriously fail.
    {
      bool abandoned = false;
      {
        MutexLock lock(&prefetch_mu_);
        if (state->abandoned()) {
          abandoned = true;
          auto it = in_flight_.find(key);
          if (it != in_flight_.end() && it->second == state) {
            in_flight_.erase(it);
          }
        }
      }
      if (abandoned) {
        state->Resolve(Status::Cancelled(
            StrCat("prefetch of tile ", id, " of '", matrix, "' cancelled")));
        return;
      }
    }
    const double t0 = prefetch_clock_.ElapsedSeconds();
    state->Resolve(Get(matrix, id, reader_node));
    if (Tracer* tracer = GlobalTracer()) {
      TraceSpan span;
      span.name = StrCat("prefetch ", key.first);
      span.category = "prefetch";
      span.parent_id = -1;  // pool work is not nested under any job span
      span.machine = reader_node;
      span.slot = 1000 + ThreadPool::CurrentWorkerIndex();
      span.start_seconds = prefetch_trace_base_ + t0;
      span.duration_seconds = prefetch_clock_.ElapsedSeconds() - t0;
      tracer->AddSpan(std::move(span));
    }
    MutexLock lock(&prefetch_mu_);
    auto it = in_flight_.find(key);
    if (it != in_flight_.end() && it->second == state) in_flight_.erase(it);
  });
  return state;
}

TileFuture DfsTileStore::GetAsync(const std::string& matrix, TileId id,
                                  int reader_node) {
  if (prefetch_pool_ == nullptr) {
    return TileFuture::Ready(Get(matrix, id, reader_node));
  }
  // Cache fast path: resolved futures for resident tiles, no pool hop.
  if (std::shared_ptr<const Tile> cached =
          CacheLookup(TilePath(matrix, id), reader_node,
                      /*count_miss=*/false)) {
    if (counters_.prefetch_hits != nullptr) {
      counters_.prefetch_hits->Increment();
    }
    return TileFuture::Ready(std::move(cached));
  }
  // Coalescing onto an existing fetch registers one more waiter so this
  // future's Cancel cannot abandon the fetch for the others; a freshly
  // created state already counts its creator as the first waiter.
  return TileFuture::FromState(
      StartFetch(matrix, id, reader_node, /*add_waiter=*/true));
}

void DfsTileStore::Prefetch(const std::string& matrix, TileId id,
                            int reader_node) {
  if (prefetch_pool_ == nullptr) return;
  if (CacheLookup(TilePath(matrix, id), reader_node, /*count_miss=*/false) !=
      nullptr) {
    if (counters_.prefetch_hits != nullptr) {
      counters_.prefetch_hits->Increment();
    }
    return;  // already resident on the reader
  }
  StartFetch(matrix, id, reader_node, /*add_waiter=*/false);
}

Status DfsTileStore::Put(const std::string& matrix, TileId id,
                         std::shared_ptr<const Tile> tile, int writer_node) {
  const int64_t bytes = tile->SizeBytes();
  const std::string path = TilePath(matrix, id);
  if (verify_checksums_) {
    MutexLock lock(&checksum_mu_);
    checksums_[path] = TileChecksum(*tile);
  }
  if (caches_ != nullptr) {
    // Every node's cached copy is stale once the overwrite lands; the
    // writer keeps the fresh tile (its next reader is likely local).
    caches_->InvalidateAll(path);
    if (TileCache* cache = caches_->node(writer_node)) cache->Put(path, tile);
  }
  if (counters_.write_ops != nullptr) {
    counters_.write_ops->Increment();
    counters_.write_bytes->Add(bytes);
  }
  return dfs_->Write(path, bytes, writer_node, std::move(tile));
}

Result<std::shared_ptr<const Tile>> DfsTileStore::Get(
    const std::string& matrix, TileId id, int reader_node) {
  const std::string path = TilePath(matrix, id);
  if (std::shared_ptr<const Tile> cached =
          CacheLookup(path, reader_node, /*count_miss=*/true)) {
    return cached;  // verified at miss time; no DFS traffic
  }
  CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const void> payload,
                           dfs_->Read(path, reader_node));
  if (payload == nullptr) {
    return Status::Internal(
        StrCat("tile ", id, " of '", matrix, "' has no payload (metadata-only",
               " write read back through DfsTileStore)"));
  }
  auto tile = std::static_pointer_cast<const Tile>(payload);
  if (counters_.read_ops != nullptr) {
    counters_.read_ops->Increment();
    counters_.read_bytes->Add(tile->SizeBytes());
  }
  if (verify_checksums_) {
    uint64_t expected = 0;
    bool have_expected = false;
    {
      MutexLock lock(&checksum_mu_);
      auto it = checksums_.find(path);
      if (it != checksums_.end()) {
        expected = it->second;
        have_expected = true;
      }
    }
    if (have_expected && TileChecksum(*tile) != expected) {
      return Status::Internal(
          StrCat("checksum mismatch reading tile ", id, " of '", matrix,
                 "' (corrupted block)"));
    }
  }
  if (caches_ != nullptr) {
    if (TileCache* cache = caches_->node(reader_node)) cache->Put(path, tile);
  }
  return tile;
}

Status DfsTileStore::DeleteMatrix(const std::string& matrix) {
  const std::string prefix = StrCat("/matrix/", matrix, "/");
  if (caches_ != nullptr) caches_->InvalidatePrefixAll(prefix);
  if (counters_.delete_ops != nullptr) counters_.delete_ops->Increment();
  dfs_->DeletePrefix(prefix);
  return Status::OK();
}

Status DfsTileStore::PutMeta(const std::string& matrix, TileId id,
                             int64_t bytes, int writer_node) {
  if (counters_.write_ops != nullptr) {
    counters_.write_ops->Increment();
    counters_.write_bytes->Add(bytes);
  }
  return dfs_->Write(TilePath(matrix, id), bytes, writer_node, nullptr);
}

std::vector<int> DfsTileStore::PreferredNodes(const std::string& matrix,
                                              TileId id) {
  auto nodes = dfs_->NodesHosting(TilePath(matrix, id));
  if (!nodes.ok()) return {};
  return std::move(nodes).value();
}

}  // namespace cumulon
