#ifndef CUMULON_COMMON_TASK_IO_STATS_H_
#define CUMULON_COMMON_TASK_IO_STATS_H_

#include <cstdint>

namespace cumulon {

/// Per-thread accounting of the time a task spends blocked on tile IO.
/// The real engine resets the running worker's instance before each task
/// attempt and reads it back afterwards (TaskRunInfo::stall_seconds);
/// stores and the prefetch pipeline add to it wherever a task thread
/// actually waits. Thread-local, so no synchronization is needed — but it
/// also means only waits on the task's own thread are captured, which is
/// exactly the definition of a stall (time the prefetcher failed to hide).
struct TaskIoStats {
  /// Time blocked in TileFuture::Await on fetches that were in flight —
  /// read latency the prefetcher did not (fully) hide.
  double stall_seconds = 0.0;

  /// Time blocked in synchronous Get calls issued by the task thread
  /// itself (prefetch off, or a read that was never hinted).
  double sync_read_seconds = 0.0;

  int64_t async_awaits = 0;
  int64_t sync_reads = 0;

  void Reset() { *this = TaskIoStats{}; }

  /// All time the task thread spent blocked on tile reads.
  double total_wait_seconds() const {
    return stall_seconds + sync_read_seconds;
  }

  /// The calling thread's instance.
  static TaskIoStats* Current() {
    static thread_local TaskIoStats stats;
    return &stats;
  }
};

}  // namespace cumulon

#endif  // CUMULON_COMMON_TASK_IO_STATS_H_
