#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace cumulon {

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (std::abs(v) >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%dh%02dm",
                  static_cast<int>(seconds) / 3600,
                  (static_cast<int>(seconds) % 3600) / 60);
  }
  return buf;
}

std::string FormatMoney(double dollars) {
  char buf[64];
  if (dollars < 1.0) {
    std::snprintf(buf, sizeof(buf), "$%.4f", dollars);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.2f", dollars);
  }
  return buf;
}

}  // namespace cumulon
