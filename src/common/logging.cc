#include "common/logging.h"

#include <cstring>

namespace cumulon {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace cumulon
