#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cumulon {

namespace {
// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CUMULON_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CUMULON_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full int64 range; fall back to raw bits.
  if (span == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace cumulon
