#ifndef CUMULON_COMMON_STOPWATCH_H_
#define CUMULON_COMMON_STOPWATCH_H_

#include <chrono>

namespace cumulon {

/// Wall-clock stopwatch used by the real execution engine and the cost-model
/// calibration benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cumulon

#endif  // CUMULON_COMMON_STOPWATCH_H_
