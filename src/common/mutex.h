#ifndef CUMULON_COMMON_MUTEX_H_
#define CUMULON_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

/// Annotated mutex wrappers. All locking in `src/` goes through these types
/// (enforced by tools/cumulon_lint.py — raw `std::mutex` is banned outside
/// this header/TU) so that
///   (a) Clang's Thread Safety Analysis sees every acquisition and release
///       and can prove GUARDED_BY fields are only touched under their lock
///       (the CI clang lane builds with -Werror=thread-safety), and
///   (b) debug builds run every acquisition through a global lock-order
///       validator that aborts on the first cycle in the acquisition-order
///       graph — i.e. a potential deadlock aborts deterministically on the
///       *first* inconsistent ordering, not on the unlucky interleaving.
///
/// The validator is compiled out under NDEBUG (the tier-1 RelWithDebInfo
/// build and all sanitizer lanes pay a null inline call). Override with
/// -DCUMULON_LOCK_ORDER_CHECKS=0/1.

#ifndef CUMULON_LOCK_ORDER_CHECKS
#ifdef NDEBUG
#define CUMULON_LOCK_ORDER_CHECKS 0
#else
#define CUMULON_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace cumulon {

/// True when this build runs the lock-order validator (debug builds unless
/// overridden). `tests/lock_order_test.cc` branches on this.
constexpr bool LockOrderChecksEnabled() {
  return CUMULON_LOCK_ORDER_CHECKS != 0;
}

namespace lock_order_internal {
#if CUMULON_LOCK_ORDER_CHECKS
/// Called *before* blocking on the underlying mutex, so an inconsistent
/// ordering aborts without ever taking the inner lock (the real mutexes
/// never observe the inversion; TSan lanes stay quiet).
void OnAcquire(const void* mu, const char* name);
void OnRelease(const void* mu);
void OnDestroy(const void* mu);
#else
inline void OnAcquire(const void* /*mu*/, const char* /*name*/) {}
inline void OnRelease(const void* /*mu*/) {}
inline void OnDestroy(const void* /*mu*/) {}
#endif
}  // namespace lock_order_internal

class CondVar;

/// std::mutex with Clang thread-safety annotations and (debug builds) the
/// lock-order validator. Optionally named for diagnostics.
class CUMULON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { lock_order_internal::OnDestroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CUMULON_ACQUIRE() {
    lock_order_internal::OnAcquire(this, name_);
    mu_.lock();
  }

  void Unlock() CUMULON_RELEASE() {
    mu_.unlock();
    lock_order_internal::OnRelease(this);
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* name_ = nullptr;
};

/// RAII lock scope; the only way code in this repo acquires a Mutex.
class CUMULON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CUMULON_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CUMULON_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable over cumulon::Mutex. Wait() must be called with the
/// mutex held (spurious wakeups possible — always wait in a predicate loop).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) CUMULON_REQUIRES(mu);

  /// Returns false on timeout, true when notified (either way the lock is
  /// re-held on return).
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout)
      CUMULON_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

inline void CondVar::Wait(Mutex* mu) CUMULON_NO_THREAD_SAFETY_ANALYSIS {
  // The wait releases and re-acquires mu; mirror that in the validator's
  // held-lock bookkeeping. adopt_lock/release keep the ownership with the
  // caller's scope (typically a MutexLock) across the wait.
  lock_order_internal::OnRelease(mu);
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
  lock_order_internal::OnAcquire(mu, mu->name_);
}

inline bool CondVar::WaitFor(Mutex* mu, std::chrono::nanoseconds timeout)
    CUMULON_NO_THREAD_SAFETY_ANALYSIS {
  lock_order_internal::OnRelease(mu);
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(lk, timeout);
  lk.release();
  lock_order_internal::OnAcquire(mu, mu->name_);
  return status == std::cv_status::no_timeout;
}

}  // namespace cumulon

#endif  // CUMULON_COMMON_MUTEX_H_
