#include "common/thread_pool.h"

#include "common/logging.h"

namespace cumulon {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(int num_threads) {
  CUMULON_CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CUMULON_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace cumulon
