#include "common/thread_pool.h"

#include "common/logging.h"

namespace cumulon {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(int num_threads) {
  CUMULON_CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    CUMULON_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(fn));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait(&mu_);
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
    }
    idle_cv_.NotifyAll();
  }
}

}  // namespace cumulon
