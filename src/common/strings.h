#ifndef CUMULON_COMMON_STRINGS_H_
#define CUMULON_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace cumulon {

/// Concatenates any streamable arguments into a std::string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// "1.5 GiB", "312.0 MiB", ... for human-readable byte counts.
std::string FormatBytes(int64_t bytes);

/// "2h03m", "41.2s", "850ms" for human-readable durations.
std::string FormatDuration(double seconds);

/// "$1.23" with four significant decimals below a dollar.
std::string FormatMoney(double dollars);

}  // namespace cumulon

#endif  // CUMULON_COMMON_STRINGS_H_
