#ifndef CUMULON_COMMON_STATUS_H_
#define CUMULON_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cumulon {

/// Canonical error space, modeled after the usual database-system Status
/// idiom (Arrow / RocksDB / absl): functions that can fail return a Status
/// (or a Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kCancelled,
};

/// Returns a short human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (empty message).
/// [[nodiscard]]: dropping a returned Status on the floor is a build error
/// under -Werror=unused-result; a deliberate discard must say so via
/// IgnoreError() (the linter bans `(void)` casts of calls, which would
/// silence the warning without leaving a greppable trace).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// Explicitly discards this status. The sanctioned alternative to a
  /// naked `(void)` cast at sites where failure is genuinely ignorable
  /// (best-effort cleanup, test teardown) — grep for IgnoreError() to
  /// audit every swallowed error in the tree.
  void IgnoreError() const {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cumulon

/// Propagates a non-OK Status to the caller.
#define CUMULON_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::cumulon::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

#endif  // CUMULON_COMMON_STATUS_H_
