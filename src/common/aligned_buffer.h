#ifndef CUMULON_COMMON_ALIGNED_BUFFER_H_
#define CUMULON_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

/// Cache-line-aligned allocation for tile payloads and kernel packing
/// buffers. SIMD kernels (matrix/gemm_packed.cc) assume every tile payload
/// and packed panel starts on a 64-byte boundary; the tile cache and
/// prefetch window account memory in the allocator's actual padded
/// footprint, not the raw rows*cols*sizeof(double).
///
/// This header is the only place in `src/` allowed to call the raw aligned
/// allocation primitives (tools/cumulon_lint.py bans `new double[...]` /
/// `malloc` for buffers elsewhere, mirroring the raw-`std::mutex` ban).

namespace cumulon {

/// Alignment of every tile payload and packing buffer. 64 bytes = one cache
/// line on x86 = two AVX2 vectors, so a 4-wide double load at any packed
/// panel boundary is aligned and never splits a line.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Rounds `n` up to the next multiple of `align` (a power of two).
constexpr std::int64_t AlignUp(std::int64_t n, std::int64_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Actual heap footprint of an aligned payload of `bytes` bytes: the
/// allocator pads every request to whole cache lines so adjacent buffers
/// never share a line (no false sharing between worker threads writing
/// neighbouring tiles).
constexpr std::int64_t AlignedFootprintBytes(std::int64_t bytes) {
  return AlignUp(bytes, static_cast<std::int64_t>(kCacheLineBytes));
}

namespace aligned_internal {
/// Raw aligned allocation. Size is padded to whole cache lines; the pointer
/// is 64-byte aligned. Callers outside this header go through
/// AlignedAllocator / AlignedVector.
void* Allocate(std::size_t bytes);
void Deallocate(void* p, std::size_t bytes) noexcept;
}  // namespace aligned_internal

/// First-touch placement hook: invoked once per fresh aligned allocation
/// with the new region before it is handed to the container. The default is
/// a no-op; a NUMA-aware build can install a hook that touches (or
/// `mbind`s) pages from the worker that will own the tile, so first-touch
/// policy places them on the local node. Installation is process-wide and
/// expected at startup, before worker threads allocate.
using FirstTouchHook = void (*)(void* data, std::size_t bytes);
void SetFirstTouchHook(FirstTouchHook hook);
FirstTouchHook GetFirstTouchHook();

/// std::allocator drop-in whose allocations are cache-line aligned and
/// padded to whole lines. Used by Tile / SparseTile payload vectors and the
/// kernel packing buffers.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(aligned_internal::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    aligned_internal::Deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Vector whose payload is cache-line aligned; `v.data()` is 64-byte
/// aligned whenever non-null.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cumulon

#endif  // CUMULON_COMMON_ALIGNED_BUFFER_H_
