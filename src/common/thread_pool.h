#ifndef CUMULON_COMMON_THREAD_POOL_H_
#define CUMULON_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// Fixed-size worker pool used by the real execution engine. Tasks are
/// plain std::function<void()>; completion is observed via WaitIdle().
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> fn);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the pool worker running the calling thread (0-based within
  /// its pool), or -1 off-pool. Tasks use it as a stable execution-lane id
  /// (e.g. the real engine's trace slot).
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);

  Mutex mu_{"ThreadPool::mu_"};
  CondVar work_cv_;  // signaled when work arrives / shutdown
  CondVar idle_cv_;  // signaled when a task finishes
  std::deque<std::function<void()>> queue_ CUMULON_GUARDED_BY(mu_);
  int active_ CUMULON_GUARDED_BY(mu_) = 0;
  bool shutdown_ CUMULON_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace cumulon

#endif  // CUMULON_COMMON_THREAD_POOL_H_
