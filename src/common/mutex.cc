#include "common/mutex.h"

#if CUMULON_LOCK_ORDER_CHECKS

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Debug-build lock-order validator. Every Mutex::Lock first records an edge
// held-top -> new-lock in a global acquisition-order graph; if the new edge
// closes a cycle, the process aborts with the acquisition stack of *this*
// thread and the stored stack from when each reverse edge was first
// established — a deterministic report of a potential deadlock, produced the
// first time the two orders ever occur, on any interleaving.

namespace cumulon {
namespace lock_order_internal {
namespace {

constexpr int kMaxFrames = 32;

struct Backtrace {
  void* frames[kMaxFrames];
  int depth = 0;

  void Capture() { depth = ::backtrace(frames, kMaxFrames); }
  void Dump() const {
    if (depth > 0) ::backtrace_symbols_fd(frames, depth, STDERR_FILENO);
  }
};

struct Edge {
  const void* to = nullptr;
  const char* to_name = nullptr;
  Backtrace stack;  // where this ordering was first observed
};

struct Node {
  const char* name = nullptr;
  std::vector<Edge> out;
};

// The graph itself is guarded by a raw std::mutex: the validator cannot be
// built on cumulon::Mutex without recursing into itself. This file is on the
// lint allowlist for exactly that reason.
std::mutex& GraphMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

using Graph = std::unordered_map<const void*, Node>;

Graph& GetGraph() {
  static Graph* g = new Graph();  // leaked: outlives static destructors
  return *g;
}

struct Held {
  const void* mu;
  const char* name;
};

thread_local std::vector<Held>* t_held = nullptr;

std::vector<Held>& HeldStack() {
  if (t_held == nullptr) t_held = new std::vector<Held>();
  return *t_held;
}

const char* NameOr(const char* name, const void* mu, char* buf, size_t n) {
  if (name != nullptr) return name;
  std::snprintf(buf, n, "<unnamed mutex %p>", mu);
  return buf;
}

// DFS for a path from -> to through the acquisition-order graph. On success
// fills `path` with the edges along it. Caller holds GraphMu().
bool FindPath(const Graph& g, const void* from, const void* to,
              std::unordered_set<const void*>& seen,
              std::vector<const Edge*>& path) {
  if (from == to) return true;
  if (!seen.insert(from).second) return false;
  auto it = g.find(from);
  if (it == g.end()) return false;
  for (const Edge& e : it->second.out) {
    path.push_back(&e);
    if (FindPath(g, e.to, to, seen, path)) return true;
    path.pop_back();
  }
  return false;
}

[[noreturn]] void AbortWithCycle(const void* mu, const char* name,
                                 const Held& top,
                                 const std::vector<const Edge*>& reverse_path) {
  char buf1[64], buf2[64];
  std::fprintf(stderr,
               "cumulon: lock-order cycle detected (potential deadlock)\n"
               "  acquiring %s while holding %s,\n"
               "  but the opposite order was established earlier.\n"
               "--- acquisition stack (this thread) ---\n",
               NameOr(name, mu, buf1, sizeof(buf1)),
               NameOr(top.name, top.mu, buf2, sizeof(buf2)));
  Backtrace here;
  here.Capture();
  here.Dump();
  const void* hop = mu;
  for (const Edge* e : reverse_path) {
    char b1[64], b2[64];
    std::fprintf(stderr,
                 "--- stack that first ordered %s before %s ---\n",
                 NameOr(nullptr, hop, b1, sizeof(b1)),
                 NameOr(e->to_name, e->to, b2, sizeof(b2)));
    e->stack.Dump();
    hop = e->to;
  }
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu, const char* name) {
  std::vector<Held>& held = HeldStack();
  for (const Held& h : held) {
    if (h.mu == mu) {
      char buf[64];
      std::fprintf(stderr,
                   "cumulon: lock-order violation: recursive acquisition "
                   "of %s (cumulon::Mutex is not reentrant)\n",
                   NameOr(name, mu, buf, sizeof(buf)));
      Backtrace here;
      here.Capture();
      here.Dump();
      std::abort();
    }
  }
  if (!held.empty()) {
    const Held top = held.back();
    std::lock_guard<std::mutex> g(GraphMu());
    Graph& graph = GetGraph();
    Node& from = graph[top.mu];
    from.name = top.name;
    bool have_edge = false;
    for (const Edge& e : from.out) {
      if (e.to == mu) {
        have_edge = true;
        break;
      }
    }
    if (!have_edge) {
      // New ordering top -> mu: reject it if mu -> ... -> top already exists.
      std::unordered_set<const void*> seen;
      std::vector<const Edge*> path;
      if (FindPath(graph, mu, top.mu, seen, path)) {
        AbortWithCycle(mu, name, top, path);
      }
      Edge e;
      e.to = mu;
      e.to_name = name;
      e.stack.Capture();
      from.out.push_back(e);
    }
  }
  held.push_back({mu, name});
}

void OnRelease(const void* mu) {
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void OnDestroy(const void* mu) {
  // Mutexes can live on the stack (e.g. RealEngine's per-job completion
  // latch), so addresses recur; drop the node and every edge touching it or
  // a later unrelated mutex at the same address would inherit its history.
  std::lock_guard<std::mutex> g(GraphMu());
  Graph& graph = GetGraph();
  graph.erase(mu);
  for (auto& [from, node] : graph) {
    (void)from;
    auto& out = node.out;
    for (size_t i = 0; i < out.size();) {
      if (out[i].to == mu) {
        out[i] = out.back();
        out.pop_back();
      } else {
        ++i;
      }
    }
  }
}

}  // namespace lock_order_internal
}  // namespace cumulon

#endif  // CUMULON_LOCK_ORDER_CHECKS
