#ifndef CUMULON_COMMON_THREAD_ANNOTATIONS_H_
#define CUMULON_COMMON_THREAD_ANNOTATIONS_H_

/// Macros over Clang's Thread Safety Analysis attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// Under Clang every annotation participates in the static analysis and the
/// CI lane compiles with -Werror=thread-safety, so reading a GUARDED_BY
/// field outside its lock is a build failure. Under GCC (which has no such
/// analysis) every macro expands to nothing, so the tier-1 build is
/// unaffected.
///
/// Usage convention in this repo:
///   - shared fields:      `int x_ CUMULON_GUARDED_BY(mu_);`
///   - `...Locked()` private helpers: `CUMULON_REQUIRES(mu_)`
///   - public entry points that must not be called with the lock held
///     (because they take it themselves and callbacks could re-enter):
///     `CUMULON_EXCLUDES(mu_)`
///   - `cumulon::Mutex` / `cumulon::MutexLock` (common/mutex.h) carry the
///     CAPABILITY/SCOPED_CAPABILITY/ACQUIRE/RELEASE side of the contract.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CUMULON_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif

#ifndef CUMULON_THREAD_ANNOTATION_
#define CUMULON_THREAD_ANNOTATION_(x)  // no-op (GCC, MSVC, old Clang)
#endif

#define CUMULON_CAPABILITY(x) CUMULON_THREAD_ANNOTATION_(capability(x))

#define CUMULON_SCOPED_CAPABILITY CUMULON_THREAD_ANNOTATION_(scoped_lockable)

#define CUMULON_GUARDED_BY(x) CUMULON_THREAD_ANNOTATION_(guarded_by(x))

#define CUMULON_PT_GUARDED_BY(x) CUMULON_THREAD_ANNOTATION_(pt_guarded_by(x))

#define CUMULON_REQUIRES(...) \
  CUMULON_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define CUMULON_REQUIRES_SHARED(...) \
  CUMULON_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define CUMULON_EXCLUDES(...) \
  CUMULON_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define CUMULON_ACQUIRE(...) \
  CUMULON_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define CUMULON_RELEASE(...) \
  CUMULON_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define CUMULON_TRY_ACQUIRE(...) \
  CUMULON_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define CUMULON_ACQUIRED_BEFORE(...) \
  CUMULON_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define CUMULON_ACQUIRED_AFTER(...) \
  CUMULON_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define CUMULON_RETURN_CAPABILITY(x) \
  CUMULON_THREAD_ANNOTATION_(lock_returned(x))

#define CUMULON_ASSERT_CAPABILITY(x) \
  CUMULON_THREAD_ANNOTATION_(assert_capability(x))

#define CUMULON_NO_THREAD_SAFETY_ANALYSIS \
  CUMULON_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CUMULON_COMMON_THREAD_ANNOTATIONS_H_
