#ifndef CUMULON_COMMON_LOGGING_H_
#define CUMULON_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cumulon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is actually emitted; default kInfo. Not thread-safe to
/// mutate concurrently with logging (set it once at startup / test setup).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace cumulon

#define CUMULON_LOG(level)                                                    \
  if (::cumulon::LogLevel::k##level < ::cumulon::GetLogLevel()) {             \
  } else                                                                      \
    ::cumulon::internal::LogMessage(::cumulon::LogLevel::k##level, __FILE__,  \
                                    __LINE__)                                 \
        .stream()

/// Aborts with a message when `cond` is false. For programmer errors and
/// invariant violations, not for recoverable conditions (use Status there).
#define CUMULON_CHECK(cond)                                             \
  if (cond) {                                                           \
  } else                                                                \
    ::cumulon::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define CUMULON_CHECK_EQ(a, b) CUMULON_CHECK((a) == (b))
#define CUMULON_CHECK_NE(a, b) CUMULON_CHECK((a) != (b))
#define CUMULON_CHECK_LT(a, b) CUMULON_CHECK((a) < (b))
#define CUMULON_CHECK_LE(a, b) CUMULON_CHECK((a) <= (b))
#define CUMULON_CHECK_GT(a, b) CUMULON_CHECK((a) > (b))
#define CUMULON_CHECK_GE(a, b) CUMULON_CHECK((a) >= (b))

#ifdef NDEBUG
#define CUMULON_DCHECK(cond) \
  if (true) {                \
  } else                     \
    ::cumulon::internal::NullStream()
#else
#define CUMULON_DCHECK(cond) CUMULON_CHECK(cond)
#endif

#endif  // CUMULON_COMMON_LOGGING_H_
