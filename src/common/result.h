#ifndef CUMULON_COMMON_RESULT_H_
#define CUMULON_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace cumulon {

/// Holds either a value of type T or an error Status. The usual accessor
/// contract applies: callers must check ok() (or status()) before calling
/// value(); violating that is a programmer error and aborts via CHECK.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversions from T and Status keep call sites terse, matching
  /// the absl::StatusOr idiom.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CUMULON_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Explicitly discards this result, value and error alike (see
  /// Status::IgnoreError()).
  void IgnoreError() const {}

  const T& value() const& {
    CUMULON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CUMULON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CUMULON_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace cumulon

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status. `lhs` may declare a new variable.
#define CUMULON_ASSIGN_OR_RETURN(lhs, expr)                    \
  CUMULON_ASSIGN_OR_RETURN_IMPL_(                              \
      CUMULON_RESULT_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define CUMULON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define CUMULON_RESULT_CONCAT_INNER_(a, b) a##b
#define CUMULON_RESULT_CONCAT_(a, b) CUMULON_RESULT_CONCAT_INNER_(a, b)

#endif  // CUMULON_COMMON_RESULT_H_
