#include "common/aligned_buffer.h"

#include <atomic>

namespace cumulon {

namespace {
std::atomic<FirstTouchHook> g_first_touch_hook{nullptr};
}  // namespace

void SetFirstTouchHook(FirstTouchHook hook) {
  g_first_touch_hook.store(hook, std::memory_order_release);
}

FirstTouchHook GetFirstTouchHook() {
  return g_first_touch_hook.load(std::memory_order_acquire);
}

namespace aligned_internal {

void* Allocate(std::size_t bytes) {
  const std::size_t padded = static_cast<std::size_t>(
      AlignedFootprintBytes(static_cast<std::int64_t>(bytes)));
  void* p = ::operator new(padded == 0 ? kCacheLineBytes : padded,
                           std::align_val_t{kCacheLineBytes});
  if (FirstTouchHook hook = GetFirstTouchHook()) hook(p, padded);
  return p;
}

void Deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t padded = static_cast<std::size_t>(
      AlignedFootprintBytes(static_cast<std::int64_t>(bytes)));
  ::operator delete(p, padded == 0 ? kCacheLineBytes : padded,
                    std::align_val_t{kCacheLineBytes});
}

}  // namespace aligned_internal

}  // namespace cumulon
