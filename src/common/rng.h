#ifndef CUMULON_COMMON_RNG_H_
#define CUMULON_COMMON_RNG_H_

#include <cstdint>

namespace cumulon {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
/// All randomness in the system (data generation, replica placement,
/// simulated task-time noise) flows through explicitly seeded Rng instances
/// so that experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Lognormal with the given underlying mu/sigma. Useful for simulated
  /// task-duration noise (heavy right tail, like real cluster stragglers).
  double NextLogNormal(double mu, double sigma);

  /// Forks an independent stream; deterministic given this Rng's state.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cumulon

#endif  // CUMULON_COMMON_RNG_H_
