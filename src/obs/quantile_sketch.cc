#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cumulon {

namespace {

Counter* CollapseCounter() {
  static Counter* counter =
      MetricsRegistry::Default()->counter("obs.quantile.collapses");
  return counter;
}

Counter* SampleCounter() {
  static Counter* counter =
      MetricsRegistry::Default()->counter("obs.quantile.samples");
  return counter;
}

}  // namespace

QuantileSketch::QuantileSketch(int buffer_size, int max_buffers)
    : buffer_size_(std::max(buffer_size, 2)),
      max_buffers_(std::max(max_buffers, 2)) {
  partial_.reserve(static_cast<size_t>(buffer_size_));
}

void QuantileSketch::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  SampleCounter()->Increment();
  partial_.push_back(value);
  if (static_cast<int>(partial_.size()) >= buffer_size_) {
    FlushPartial();
    CollapseWhileOver();
  }
}

void QuantileSketch::FlushPartial() {
  if (partial_.empty()) return;
  // A short partial (merge leftovers) still becomes a weight-1 buffer;
  // Buffer::values need not be full — the weighted merge in CollapseOnce
  // handles runs of any length.
  Buffer buffer;
  buffer.weight = 1;
  buffer.values = std::move(partial_);
  std::sort(buffer.values.begin(), buffer.values.end());
  partial_.clear();
  partial_.reserve(static_cast<size_t>(buffer_size_));
  buffers_.push_back(std::move(buffer));
}

void QuantileSketch::CollapseWhileOver() {
  while (static_cast<int>(buffers_.size()) > max_buffers_) CollapseOnce();
}

void QuantileSketch::CollapseOnce() {
  // Pick the two smallest-weight buffers (ties: the older one first) so
  // heavy summaries collapse rarely and the error bound grows slowly.
  size_t i1 = 0;
  for (size_t i = 1; i < buffers_.size(); ++i) {
    if (buffers_[i].weight < buffers_[i1].weight) i1 = i;
  }
  size_t i2 = i1 == 0 ? 1 : 0;
  for (size_t i = 0; i < buffers_.size(); ++i) {
    if (i != i1 && buffers_[i].weight < buffers_[i2].weight) i2 = i;
  }
  if (i1 > i2) std::swap(i1, i2);
  const Buffer& b1 = buffers_[i1];
  const Buffer& b2 = buffers_[i2];
  const int64_t w1 = b1.weight;
  const int64_t w2 = b2.weight;
  const int64_t w = w1 + w2;

  // Weighted merge of the two sorted runs, emitting the element covering
  // every target rank offset + j*w (offset centered in the first stride,
  // deterministic so repeated runs produce identical sketches).
  const int64_t total_weight =
      w1 * static_cast<int64_t>(b1.values.size()) +
      w2 * static_cast<int64_t>(b2.values.size());
  const int64_t out_size = total_weight / w;  // == buffer_size_ when full
  Buffer merged;
  merged.weight = w;
  merged.values.reserve(static_cast<size_t>(std::max<int64_t>(out_size, 1)));
  size_t p1 = 0;
  size_t p2 = 0;
  int64_t cumulative = 0;
  const int64_t offset = (w + 1) / 2;
  int64_t next_rank = offset;
  while (p1 < b1.values.size() || p2 < b2.values.size()) {
    double value;
    int64_t weight;
    if (p2 >= b2.values.size() ||
        (p1 < b1.values.size() && b1.values[p1] <= b2.values[p2])) {
      value = b1.values[p1++];
      weight = w1;
    } else {
      value = b2.values[p2++];
      weight = w2;
    }
    cumulative += weight;
    while (next_rank <= cumulative &&
           static_cast<int64_t>(merged.values.size()) < out_size) {
      merged.values.push_back(value);
      next_rank += w;
    }
  }
  if (merged.values.empty()) merged.values.push_back(b1.values.front());

  error_items_ += static_cast<double>(w) / 2.0;
  ++collapses_;
  CollapseCounter()->Increment();

  buffers_.erase(buffers_.begin() + static_cast<ptrdiff_t>(i2));
  buffers_[i1] = std::move(merged);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  error_items_ += other.error_items_;
  for (const Buffer& buffer : other.buffers_) buffers_.push_back(buffer);
  for (double value : other.partial_) {
    partial_.push_back(value);
    if (static_cast<int>(partial_.size()) >= buffer_size_) FlushPartial();
  }
  CollapseWhileOver();
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Gather every (value, weight) pair, including the exact partial buffer.
  std::vector<std::pair<double, int64_t>> items;
  size_t total_values = partial_.size();
  for (const Buffer& buffer : buffers_) total_values += buffer.values.size();
  items.reserve(total_values);
  int64_t total_weight = 0;
  for (const Buffer& buffer : buffers_) {
    for (double value : buffer.values) {
      items.emplace_back(value, buffer.weight);
      total_weight += buffer.weight;
    }
  }
  for (double value : partial_) {
    items.emplace_back(value, 1);
    total_weight += 1;
  }
  if (items.empty()) return 0.0;
  std::sort(items.begin(), items.end());
  // Same convention as ExactPercentile: 1-based rank ceil(q*n), clamped.
  int64_t target = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(total_weight)));
  target = std::min(std::max<int64_t>(target, 1), total_weight);
  int64_t cumulative = 0;
  for (const auto& [value, weight] : items) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return items.back().first;
}

double QuantileSketch::rank_error_bound() const {
  if (count_ == 0 || error_items_ == 0.0) return 0.0;
  return error_items_ / static_cast<double>(count_);
}

int64_t QuantileSketch::MemoryBytes() const {
  size_t values = partial_.capacity();
  for (const Buffer& buffer : buffers_) values += buffer.values.capacity();
  return static_cast<int64_t>(values * sizeof(double) +
                              buffers_.capacity() * sizeof(Buffer));
}

}  // namespace cumulon
