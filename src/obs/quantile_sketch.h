#ifndef CUMULON_OBS_QUANTILE_SKETCH_H_
#define CUMULON_OBS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

namespace cumulon {

/// Bounded-memory approximate quantiles via Manku-Rajagopalan-Lindsay
/// (MRL, SIGMOD'98) buffer collapse, the scheme DataSeries (FAST'09) uses
/// for its streaming statistics. Replaces the exact sorted-vector
/// percentile tracking in the executor report and svc/loadgen, whose
/// memory grew linearly with the number of samples.
///
/// Structure: incoming values fill an unsorted partial buffer of
/// `buffer_size` slots; a full partial becomes a weight-1 sorted buffer.
/// When more than `max_buffers` sorted buffers exist, the two with the
/// smallest weights collapse into one of combined weight w1+w2 by
/// selecting every w-th element (deterministic centered offsets) of the
/// weighted merge — so memory never exceeds
/// (max_buffers + 1) * buffer_size doubles regardless of stream length.
///
/// Error contract: Quantile(q) returns a value whose rank in the observed
/// stream differs from ceil(q*n) by at most rank_error_bound() * n. The
/// bound is maintained conservatively: each collapse of buffers with
/// weights w1 and w2 can displace a query rank by at most (w1+w2)/2
/// positions, and the partial buffer is merged exactly at query time, so
/// the sketch is exact until the first collapse (n < buffer_size *
/// (max_buffers + 1)). While equal-weight pairings remain available the
/// collapses form a balanced binary tree and the bound stays near
/// log2(n / buffer_size) / (2 * buffer_size); once the stream outgrows
/// buffer_size * 2^(max_buffers-1) the forced unequal merges dominate and
/// the bound degrades, so the defaults (512 x 12) are sized to keep the
/// balanced regime — bound around 1%, observed error lower — out to ~1M
/// samples at ~53 KiB of state (quantile_sketch_test asserts the bound on
/// adversarial and random streams).
///
/// Not thread-safe; each producer owns a sketch and merges later (the
/// loadgen workers do exactly this).
class QuantileSketch {
 public:
  explicit QuantileSketch(int buffer_size = 512, int max_buffers = 12);

  void Add(double value);

  /// Folds `other`'s buffers (and partial values) into this sketch.
  /// Equivalent to having observed both streams; error bounds compose.
  void Merge(const QuantileSketch& other);

  /// q in [0, 1]. Matches ExactPercentile's convention (the value at
  /// 1-based rank ceil(q*n), clamped) up to the rank-error bound.
  /// Returns 0.0 on an empty sketch.
  double Quantile(double q) const;

  int64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Guaranteed rank-error ceiling as a fraction of count(); 0.0 until
  /// the first collapse.
  double rank_error_bound() const;

  /// Collapse operations performed so far (also surfaced process-wide as
  /// the obs.quantile.collapses counter).
  int64_t collapses() const { return collapses_; }

  /// Upper bound on heap bytes held: capped by construction parameters,
  /// independent of count().
  int64_t MemoryBytes() const;

 private:
  struct Buffer {
    int64_t weight = 1;
    std::vector<double> values;  // sorted ascending, exactly buffer_size_
  };

  void FlushPartial();
  void CollapseWhileOver();
  /// Collapses the two smallest-weight buffers into one.
  void CollapseOnce();

  int buffer_size_;
  int max_buffers_;
  int64_t count_ = 0;
  int64_t collapses_ = 0;
  /// Sum over collapses of (w1+w2)/2 — conservative absolute rank slack.
  double error_items_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> partial_;
  std::vector<Buffer> buffers_;
};

}  // namespace cumulon

#endif  // CUMULON_OBS_QUANTILE_SKETCH_H_
