#ifndef CUMULON_OBS_TRACE_H_
#define CUMULON_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// One closed interval on the execution timeline. Task spans live on a
/// (machine, slot) lane; job and startup spans live on the driver lane
/// (machine = -1). Times are absolute trace seconds: wall-clock seconds in
/// real mode, virtual-clock seconds in sim mode — both offset by the
/// tracer's running time offset so consecutive jobs line up end to end.
struct TraceSpan {
  int64_t id = 0;  // assigned by the tracer, > 0
  /// Enclosing job span. 0 = unknown: the tracer parents the span under
  /// the innermost open job, which is only right when one plan traces at a
  /// time — concurrent producers pass the job span id explicitly
  /// (JobSpec::trace_parent_span). -1 = explicitly top level (recorded as
  /// 0, never inferred).
  int64_t parent_id = 0;
  std::string name;
  std::string category;  // "job", "task", "startup"
  int machine = -1;      // -1 = driver/coordinator lane
  int slot = 0;          // sim: scheduler slot; real: worker thread
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  double end_seconds() const { return start_seconds + duration_seconds; }

  /// Numeric annotations (queue_wait_seconds, bytes_read, cached_bytes,
  /// local, ...), exported as Chrome trace args.
  std::vector<std::pair<std::string, double>> args;
};

/// Collects spans from the executor and the engines and exports them as
/// Chrome trace_event JSON (chrome://tracing / Perfetto: one row per
/// machine, one lane per slot). Thread-safe: the real engine records task
/// spans from pool threads.
///
/// The tracer carries a monotone *time offset*: engines stamp spans
/// relative to their per-job clock (the sim engine's virtual clock restarts
/// at 0 every job) plus the current offset, then advance the offset by the
/// job's makespan, so simulated schedules concatenate into one inspectable
/// timeline whose total span is the predicted plan time.
class Tracer {
 public:
  enum class ClockDomain { kWall, kVirtual };

  explicit Tracer(ClockDomain domain = ClockDomain::kWall)
      : domain_(domain) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a completed span. `span.start_seconds` must already be
  /// absolute (caller adds time_offset()). Fills id and, for spans with no
  /// explicit parent, the currently open job. Returns the span id.
  int64_t AddSpan(TraceSpan span);

  /// Opens a job span starting at the current time offset. Task spans
  /// recorded until the matching EndJob are parented under it (unless they
  /// carry an explicit parent_id). `lane` selects the driver-row lane the
  /// job span renders on: concurrent plans pass their plan id so their job
  /// spans do not interleave on one lane (serial runs keep lane 0).
  int64_t BeginJob(const std::string& name, int lane = 0);

  /// Closes the job span: its duration becomes the time-offset advance
  /// since BeginJob (the engine advanced the offset by the job makespan).
  void EndJob(int64_t job_id);

  /// Advances the timeline cursor (end of a job's makespan, per-job
  /// startup latency, ...).
  void AdvanceTime(double seconds);
  double time_offset() const;

  ClockDomain clock_domain() const { return domain_; }

  std::vector<TraceSpan> spans() const;
  int64_t span_count() const;

  /// {"traceEvents":[...]} with "X" complete events (ts/dur in
  /// microseconds), process metadata naming each machine row and thread
  /// metadata naming each slot lane. Loadable by chrome://tracing and
  /// Perfetto.
  std::string ToChromeJson() const;

  Status WriteChromeJson(const std::string& path) const;

 private:
  const ClockDomain domain_;
  mutable Mutex mu_{"Tracer::mu_"};
  std::vector<TraceSpan> spans_ CUMULON_GUARDED_BY(mu_);
  std::vector<int64_t> open_jobs_ CUMULON_GUARDED_BY(mu_);  // innermost last
  int64_t next_id_ CUMULON_GUARDED_BY(mu_) = 1;
  double time_offset_ CUMULON_GUARDED_BY(mu_) = 0.0;
};

/// Process-wide tracer used by engines and executors whose options carry no
/// explicit tracer. Null (tracing off) until SetGlobalTracer; the pointer
/// is borrowed and must outlive its use.
Tracer* GlobalTracer();
void SetGlobalTracer(Tracer* tracer);

}  // namespace cumulon

#endif  // CUMULON_OBS_TRACE_H_
