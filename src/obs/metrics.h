#ifndef CUMULON_OBS_METRICS_H_
#define CUMULON_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// Monotonically increasing counter. Increments are sharded across
/// cache-line-padded atomics keyed by the calling thread, so concurrent
/// task slots never contend on one line; Value() folds the shards.
class Counter {
 public:
  void Add(int64_t delta);
  void Increment() { Add(1); }

  int64_t Value() const;

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Point-in-time value (e.g. resident cache bytes). Last write wins.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Summary of a histogram at one point in time. Percentiles are upper
/// bounds of the log-scale bucket the rank falls in (factor-of-2 accuracy).
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Lock-free histogram over positive doubles (durations in seconds, byte
/// counts). Values land in power-of-two buckets spanning [2^-32, 2^32);
/// out-of-range values clamp to the edge buckets.
class Histogram {
 public:
  void Observe(double value);

  HistogramSnapshot Snapshot() const;

 private:
  static constexpr int kBuckets = 64;
  static constexpr int kExponentBias = 32;  // bucket 0 holds values < 2^-32

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Every metric of a registry at one point in time, by name. Counters from
/// two snapshots of the same registry subtract cleanly (SnapshotDelta).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter `name`, or `fallback` when the snapshot does not carry it.
  int64_t CounterOr(const std::string& name, int64_t fallback) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

/// Activity between two snapshots of one registry: counters subtract,
/// gauges and histograms keep the `after` state (histogram percentiles do
/// not compose, so a windowed histogram is the lifetime one).
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Named metrics of one process component. Lookup takes a mutex (cache the
/// returned pointer in hot paths); updates through the returned handles are
/// lock-free. Handles stay valid for the registry's lifetime. The metric
/// name space is the stable contract documented in docs/observability.md.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Process-wide default registry, for components not wired explicitly.
  static MetricsRegistry* Default();

 private:
  mutable Mutex mu_{"MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CUMULON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      CUMULON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_OBS_METRICS_H_
