#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "common/strings.h"

namespace cumulon {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Chrome pids must be non-negative; the driver lane (machine -1) maps to
/// pid 0 and machine m to pid m + 1.
int MachinePid(int machine) { return machine + 1; }

}  // namespace

Tracer* GlobalTracer() { return g_tracer.load(std::memory_order_acquire); }

void SetGlobalTracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

int64_t Tracer::AddSpan(TraceSpan span) {
  MutexLock lock(&mu_);
  span.id = next_id_++;
  if (span.parent_id == 0 && !open_jobs_.empty()) {
    span.parent_id = open_jobs_.back();
  } else if (span.parent_id < 0) {
    span.parent_id = 0;
  }
  const int64_t id = span.id;
  spans_.push_back(std::move(span));
  return id;
}

int64_t Tracer::BeginJob(const std::string& name, int lane) {
  MutexLock lock(&mu_);
  TraceSpan span;
  span.id = next_id_++;
  span.parent_id = open_jobs_.empty() ? 0 : open_jobs_.back();
  span.name = name;
  span.category = "job";
  span.machine = -1;
  span.slot = lane;
  span.start_seconds = time_offset_;
  open_jobs_.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndJob(int64_t job_id) {
  MutexLock lock(&mu_);
  open_jobs_.erase(std::remove(open_jobs_.begin(), open_jobs_.end(), job_id),
                   open_jobs_.end());
  for (TraceSpan& span : spans_) {
    if (span.id == job_id) {
      span.duration_seconds =
          std::max(0.0, time_offset_ - span.start_seconds);
      return;
    }
  }
}

void Tracer::AdvanceTime(double seconds) {
  MutexLock lock(&mu_);
  if (seconds > 0.0) time_offset_ += seconds;
}

double Tracer::time_offset() const {
  MutexLock lock(&mu_);
  return time_offset_;
}

std::vector<TraceSpan> Tracer::spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

int64_t Tracer::span_count() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(spans_.size());
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceSpan> spans = this->spans();

  // One Chrome "process" per machine (sorted with the driver row on top),
  // one "thread" per slot lane.
  std::set<int> machines;
  std::set<std::pair<int, int>> lanes;
  for (const TraceSpan& span : spans) {
    machines.insert(span.machine);
    lanes.insert({span.machine, span.slot});
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  for (int machine : machines) {
    const int pid = MachinePid(machine);
    const std::string name =
        machine < 0 ? std::string("driver") : StrCat("machine ", machine);
    emit(StrCat("{\"ph\":\"M\",\"pid\":", pid,
                ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"",
                name, "\"}}"));
    emit(StrCat("{\"ph\":\"M\",\"pid\":", pid,
                ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{"
                "\"sort_index\":",
                pid, "}}"));
  }
  for (const auto& [machine, slot] : lanes) {
    // Driver lane 0 is the classic serial "jobs" lane; concurrent plans
    // get one driver lane each, keyed by plan id.
    const std::string lane_name =
        machine >= 0 ? StrCat("slot ", slot)
                     : (slot == 0 ? std::string("jobs")
                                  : StrCat("plan ", slot));
    emit(StrCat("{\"ph\":\"M\",\"pid\":", MachinePid(machine), ",\"tid\":",
                slot, ",\"name\":\"thread_name\",\"args\":{\"name\":\"",
                lane_name, "\"}}"));
  }

  for (const TraceSpan& span : spans) {
    std::string args = StrCat("\"span_id\":", span.id);
    if (span.parent_id != 0) {
      args += StrCat(",\"parent_span_id\":", span.parent_id);
    }
    for (const auto& [key, value] : span.args) {
      args += StrCat(",\"", EscapeJson(key), "\":", JsonNumber(value));
    }
    emit(StrCat("{\"ph\":\"X\",\"pid\":", MachinePid(span.machine),
                ",\"tid\":", span.slot, ",\"ts\":",
                JsonNumber(span.start_seconds * 1e6), ",\"dur\":",
                JsonNumber(span.duration_seconds * 1e6), ",\"name\":\"",
                EscapeJson(span.name), "\",\"cat\":\"",
                EscapeJson(span.category), "\",\"args\":{", args, "}}"));
  }

  out += StrCat("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"",
                domain_ == ClockDomain::kVirtual ? "virtual" : "wall",
                "\"}}\n");
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(StrCat("cannot open trace file '", path, "'"));
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal(StrCat("short write to trace file '", path, "'"));
  }
  return Status::OK();
}

}  // namespace cumulon
