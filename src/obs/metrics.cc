#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace cumulon {

namespace {

/// Stable small integer per thread, assigned on first use, so a thread
/// always hits the same counter shard without hashing its id.
int ThreadShardIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Lowest non-negative JSON-safe rendering of a double (no NaN/inf).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Add(int64_t delta) {
  shards_[ThreadShardIndex() % kShards].value.fetch_add(
      delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Observe(double value) {
  int bucket = 0;
  if (value > 0.0) {
    const int exponent = static_cast<int>(std::ceil(std::log2(value)));
    bucket = exponent + kExponentBias;
    if (bucket < 0) bucket = 0;
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  std::array<int64_t, kBuckets> counts;
  int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  auto percentile = [&](double p) {
    const int64_t rank =
        static_cast<int64_t>(std::ceil(p * static_cast<double>(total)));
    int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank && counts[b] > 0) {
        // Upper edge of bucket b: 2^(b - bias).
        return std::ldexp(1.0, b - kExponentBias);
      }
    }
    return snap.max;
  };
  snap.p50 = percentile(0.50);
  snap.p95 = percentile(0.95);
  snap.p99 = percentile(0.99);
  return snap;
}

int64_t MetricsSnapshot::CounterOr(const std::string& name,
                                   int64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":", value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", name, "\":{\"count\":", h.count,
                  ",\"sum\":", JsonNumber(h.sum), ",\"min\":",
                  JsonNumber(h.min), ",\"max\":", JsonNumber(h.max),
                  ",\"p50\":", JsonNumber(h.p50), ",\"p95\":",
                  JsonNumber(h.p95), ",\"p99\":", JsonNumber(h.p99), "}");
  }
  out += "}}";
  return out;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    delta.counters[name] =
        value - (it == before.counters.end() ? 0 : it->second);
  }
  delta.gauges = after.gauges;
  delta.histograms = after.histograms;
  return delta;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace cumulon
