#include "cluster/steal_domain.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace cumulon {

namespace {
/// Participants with nothing runnable re-check for stealable work at this
/// cadence while waiting; notifications wake them earlier for the exit
/// conditions (latch drained / job finished).
constexpr std::chrono::milliseconds kIdleRecheck{1};
}  // namespace

StealDomain::StealDomain(int num_slots, Tracer* tracer)
    : num_slots_(num_slots > 0 ? num_slots : 1), tracer_(tracer) {
  slots_.reserve(num_slots_);
  for (int i = 0; i < num_slots_; ++i) {
    slots_.push_back(std::make_unique<SlotDeque>());
  }
}

void StealDomain::BeginJob(size_t expected_tasks, double trace_time_offset) {
  {
    MutexLock lock(&mu_);
    tasks_remaining_ = expected_tasks;
  }
  trace_offset_.store(trace_time_offset, std::memory_order_relaxed);
  clock_.Restart();
}

void StealDomain::NoteTaskFinished() {
  MutexLock lock(&mu_);
  if (tasks_remaining_ > 0) --tasks_remaining_;
  if (tasks_remaining_ == 0) activity_cv_.NotifyAll();
}

void StealDomain::ReduceExpected(size_t not_submitted) {
  MutexLock lock(&mu_);
  tasks_remaining_ =
      tasks_remaining_ > not_submitted ? tasks_remaining_ - not_submitted : 0;
  if (tasks_remaining_ == 0) activity_cv_.NotifyAll();
}

int StealDomain::CurrentSlot() {
  const int worker = ThreadPool::CurrentWorkerIndex();
  if (worker >= 0) return worker % num_slots_;
  // Off-pool participant (tests, driver thread): spread over the slots.
  return static_cast<int>(
      fallback_slot_.fetch_add(1, std::memory_order_relaxed) % num_slots_);
}

void StealDomain::Publish(int slot, std::vector<Split>* splits) {
  if (splits->empty()) return;
  splits_enqueued_.fetch_add(static_cast<int64_t>(splits->size()),
                             std::memory_order_relaxed);
  {
    MutexLock lock(&slots_[slot]->mu);
    for (Split& s : *splits) {
      slots_[slot]->dq.push_front(std::move(s));
    }
  }
  splits->clear();
}

bool StealDomain::TryPopLocal(int slot, Split* out) {
  MutexLock lock(&slots_[slot]->mu);
  if (slots_[slot]->dq.empty()) return false;
  *out = std::move(slots_[slot]->dq.front());
  slots_[slot]->dq.pop_front();
  return true;
}

bool StealDomain::TrySteal(int thief_slot, Split* out) {
  steal_attempts_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 1; i < num_slots_; ++i) {
    const int victim = (thief_slot + i) % num_slots_;
    MutexLock lock(&slots_[victim]->mu);
    if (slots_[victim]->dq.empty()) continue;
    *out = std::move(slots_[victim]->dq.back());
    slots_[victim]->dq.pop_back();
    return true;
  }
  return false;
}

void StealDomain::RunSplit(Split split, int exec_slot) {
  TaskSplitScope* scope = split.scope;
  const bool stolen = exec_slot != scope->slot_;
  const double t0 = clock_.ElapsedSeconds();
  Status st = split.fn();
  const double dt = clock_.ElapsedSeconds() - t0;
  if (stolen) {
    splits_stolen_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) {
      TraceSpan span;
      span.name = StrCat(scope->task_name_, "/steal");
      span.category = "steal";
      span.machine = scope->machine_;
      span.slot = exec_slot;
      span.start_seconds =
          trace_offset_.load(std::memory_order_relaxed) + t0;
      span.duration_seconds = dt;
      span.args = {{"owner_slot", static_cast<double>(scope->slot_)}};
      tracer_->AddSpan(std::move(span));
    }
  }
  MutexLock lock(&scope->latch_mu_);
  if (!st.ok() && scope->first_error_.ok()) {
    scope->first_error_ = std::move(st);
  }
  CUMULON_CHECK_GT(scope->remaining_, 0u);
  if (--scope->remaining_ == 0) scope->latch_cv_.NotifyAll();
}

void StealDomain::HelpDrain() {
  const int slot = CurrentSlot();
  while (true) {
    Split s;
    if (TryPopLocal(slot, &s) || TrySteal(slot, &s)) {
      RunSplit(std::move(s), slot);
      continue;
    }
    MutexLock lock(&mu_);
    if (tasks_remaining_ == 0) return;
    activity_cv_.WaitFor(&mu_, kIdleRecheck);
    if (tasks_remaining_ == 0) return;
  }
}

StealDomainStats StealDomain::stats() const {
  StealDomainStats s;
  s.splits_enqueued = splits_enqueued_.load(std::memory_order_relaxed);
  s.splits_stolen = splits_stolen_.load(std::memory_order_relaxed);
  s.steal_attempts = steal_attempts_.load(std::memory_order_relaxed);
  return s;
}

TaskSplitScope::TaskSplitScope(StealDomain* domain, std::string task_name,
                               int machine)
    : domain_(domain), task_name_(std::move(task_name)), machine_(machine) {
  if (domain_ != nullptr) slot_ = domain_->CurrentSlot();
}

TaskSplitScope::~TaskSplitScope() {
  // A scope that buffered splits but never ran them is a task-body bug
  // (the work would silently not happen). Published splits are always
  // drained before RunAndWait returns, so this can only fire on misuse.
  CUMULON_CHECK(buffered_.empty())
      << "TaskSplitScope destroyed without RunAndWait";
}

void TaskSplitScope::Add(std::function<Status()> fn) {
  if (domain_ == nullptr) {
    // Inline mode: run now unless an earlier split already failed —
    // matching the sequential task body this replaces (stop at first
    // error). Single-threaded, but the latch mutex keeps the annotated
    // fields uniform with the stealing path.
    {
      MutexLock lock(&latch_mu_);
      if (!first_error_.ok()) return;
    }
    Status st = fn();
    if (!st.ok()) {
      MutexLock lock(&latch_mu_);
      if (first_error_.ok()) first_error_ = std::move(st);
    }
    return;
  }
  StealDomain::Split split;
  split.fn = std::move(fn);
  split.scope = this;
  buffered_.push_back(std::move(split));
}

Status TaskSplitScope::RunAndWait() {
  if (domain_ == nullptr) {
    MutexLock lock(&latch_mu_);
    return first_error_;
  }
  {
    MutexLock lock(&latch_mu_);
    remaining_ = buffered_.size();
  }
  domain_->Publish(slot_, &buffered_);
  while (true) {
    StealDomain::Split s;
    if (domain_->TryPopLocal(slot_, &s) || domain_->TrySteal(slot_, &s)) {
      domain_->RunSplit(std::move(s), slot_);
      continue;
    }
    MutexLock lock(&latch_mu_);
    if (remaining_ == 0) return first_error_;
    latch_cv_.WaitFor(&latch_mu_, kIdleRecheck);
    if (remaining_ == 0) return first_error_;
  }
}

}  // namespace cumulon
