#include "cluster/sim_engine.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "cloud/revocation.h"
#include "common/logging.h"
#include "common/strings.h"
#include "cost/cost_model.h"
#include "sched/slot_pool.h"

namespace cumulon {

SimEngine::SimEngine(const ClusterConfig& config,
                     const SimEngineOptions& options)
    : config_(config), options_(options), rng_(options.seed) {
  CUMULON_CHECK_GT(config_.num_machines, 0);
  CUMULON_CHECK_GT(config_.slots_per_machine, 0);
  if (options_.enable_tile_cache) {
    const int64_t bytes =
        options_.cache_bytes_per_node > 0
            ? options_.cache_bytes_per_node
            : NodeTileCacheBudget(config_.machine.memory_bytes(),
                                  config_.slots_per_machine,
                                  options_.cache_slot_memory_fraction);
    caches_ = std::make_unique<TileCacheGroup>(config_.num_machines, bytes);
  }
}

double SimEngine::TaskDuration(const TaskCost& cost, bool local_read,
                               double* stall_seconds) const {
  const MachineProfile& m = config_.machine;
  const int s = config_.slots_per_machine;

  // Slots oversubscribing cores share them.
  const double cpu_slowdown =
      std::max(1.0, static_cast<double>(s) / m.cores);
  const double cpu =
      cost.cpu_seconds_ref / m.cpu_gflops * cpu_slowdown;

  // All slots of a machine share its disk and NIC; we charge each task the
  // worst-case 1/s share, which is what a fully loaded wave experiences.
  const double disk_bw = m.disk_bytes_per_sec() / s;
  const double net_bw = m.net_bytes_per_sec() / s;

  // Bytes expected from the node-local tile cache never touch disk or
  // NIC; only the residual miss bytes are charged below.
  const double uncached_read = static_cast<double>(
      std::max<int64_t>(cost.bytes_read - cost.bytes_read_cached, 0));
  double local_bytes, remote_bytes;
  if (local_read) {
    local_bytes = uncached_read;
    remote_bytes = 0.0;
  } else {
    local_bytes = options_.nonlocal_local_fraction * uncached_read;
    remote_bytes = uncached_read - local_bytes;
  }
  // Shuffle traffic always crosses the network; spills hit the local disk
  // exactly once (MapReduce-baseline cost fields).
  remote_bytes += static_cast<double>(cost.shuffle_bytes);
  const double read_time = local_bytes / disk_bw + remote_bytes / net_bw;

  // First replica to local disk, the rest pipelined over the network.
  const double extra_replicas =
      static_cast<double>(std::max(0, options_.replication - 1));
  const double write_time = cost.bytes_written / disk_bw +
                            extra_replicas * cost.bytes_written / net_bw +
                            cost.local_spill_bytes / disk_bw;

  // The prefetch pipeline overlaps DFS reads with compute; only the
  // residual read time extends the task. Startup and write-back are
  // serial either way.
  if (stall_seconds != nullptr) {
    *stall_seconds =
        ResidualStallSeconds(cpu, read_time, options_.io_overlap_fraction);
  }
  return options_.task_startup_seconds +
         PipelinedPhaseSeconds(cpu, read_time,
                               options_.io_overlap_fraction) +
         write_time;
}

int DrawTaskAttempts(Rng* rng, double failure_probability, int max_attempts) {
  int attempt = 1;
  while (rng->NextDouble() < failure_probability) {
    if (++attempt > max_attempts) return 0;
  }
  return attempt;
}

Result<JobStats> SimEngine::RunJob(const JobSpec& job) {
  // One simulated job at a time: concurrent plans' virtual clocks cannot
  // interleave, so runs serialize and contention is expressed through the
  // slot-share restriction below.
  MutexLock run_lock(&run_mu_);

  if (job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(StrCat("job '", job.name, "' cancelled"));
  }

  const int machines = config_.num_machines;
  int slots = config_.slots_per_machine;
  // Under a slot pool the plan only gets its fair share of the cluster;
  // model that as proportionally fewer slots per machine (at least one in
  // total, rounded up so a share never silently widens).
  if (job.slot_pool != nullptr) {
    const int allowed = std::clamp(job.slot_pool->FairShare(job.plan_id), 1,
                                   config_.total_slots());
    slots = std::max(1, (allowed + machines - 1) / machines);
  }

  Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : GlobalTracer();
  // Spans of this job start after everything already on the timeline; the
  // virtual clock below restarts at 0 for every job.
  const double trace_t0 = tracer != nullptr ? tracer->time_offset() : 0.0;

  // free_at[machine][slot] = virtual time the slot becomes available.
  std::vector<std::vector<double>> free_at(
      machines, std::vector<double>(slots, 0.0));

  JobStats stats;
  stats.num_tasks = static_cast<int>(job.tasks.size());
  stats.waves = stats.num_tasks == 0
                    ? 0
                    : (stats.num_tasks + config_.total_slots() - 1) /
                          config_.total_slots();
  stats.task_runs.reserve(job.tasks.size());

  // Job-relative death instant per machine under the injected revocation
  // schedule; +inf everywhere when no controller (or an empty schedule) is
  // set, which makes every eligibility test below vacuously true and keeps
  // the schedule bit-identical to the pre-revocation engine.
  RevocationController* ctrl = options_.revocation;
  std::vector<double> dead_at(machines, RevocationSchedule::kNever);
  if (ctrl != nullptr) {
    const double origin = ctrl->origin_seconds();
    for (int mch = 0; mch < machines; ++mch) {
      dead_at[mch] = ctrl->RevokedAtSeconds(mch) - origin;
    }
  }
  std::vector<int> kills_per_machine(machines, 0);
  std::vector<double> wasted_draws;

  // Earliest slot on `machine` that can still START work, i.e. whose
  // effective start max(free, ready_floor) precedes the machine's death.
  auto earliest_slot = [&](int machine, double ready_floor, int* slot_out,
                           double* time_out) {
    bool found = false;
    for (int i = 0; i < slots; ++i) {
      const double eff = std::max(free_at[machine][i], ready_floor);
      if (eff >= dead_at[machine]) continue;
      if (!found || eff < *time_out) {
        found = true;
        *slot_out = i;
        *time_out = eff;
      }
    }
    return found;
  };

  // Greedy placement over eligible slots: globally earliest, then delay
  // scheduling toward the task's preferred machines. `ready_floor` is 0 for
  // a first attempt and the kill instant for a revocation retry (the
  // scheduler only learns of the loss when the machine dies). False when
  // the whole fleet is dead.
  auto place = [&](const Task& task, double ready_floor, int* machine_out,
                   int* slot_out, bool* local_out) {
    int best_machine = -1, best_slot = -1;
    double best_time = std::numeric_limits<double>::infinity();
    for (int mch = 0; mch < machines; ++mch) {
      int sl = 0;
      double t = 0.0;
      if (!earliest_slot(mch, ready_floor, &sl, &t)) continue;
      if (t < best_time) {
        best_machine = mch;
        best_slot = sl;
        best_time = t;
      }
    }
    if (best_machine < 0) return false;

    int chosen_machine = best_machine;
    int chosen_slot = best_slot;
    bool local = true;
    if (!task.preferred_machines.empty()) {
      local = false;
      if (options_.locality_aware) {
        int pref_machine = -1, pref_slot = -1;
        double pref_time = std::numeric_limits<double>::infinity();
        for (int mch : task.preferred_machines) {
          if (mch < 0 || mch >= machines) continue;
          int sl = 0;
          double t = 0.0;
          if (!earliest_slot(mch, ready_floor, &sl, &t)) continue;
          if (t < pref_time) {
            pref_time = t;
            pref_machine = mch;
            pref_slot = sl;
          }
        }
        if (pref_machine >= 0 &&
            pref_time <= best_time + options_.locality_delay_seconds) {
          chosen_machine = pref_machine;
          chosen_slot = pref_slot;
          local = true;
        }
      }
      if (!local) {
        // The scheduler may still have gotten lucky.
        local = std::find(task.preferred_machines.begin(),
                          task.preferred_machines.end(),
                          chosen_machine) != task.preferred_machines.end();
      }
    }
    *machine_out = chosen_machine;
    *slot_out = chosen_slot;
    *local_out = local;
    return true;
  };

  for (const Task& task : job.tasks) {
    if (job.cancel != nullptr &&
        job.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled(
          StrCat("job '", job.name, "' cancelled mid-schedule"));
    }

    int chosen_machine = 0, chosen_slot = 0;
    bool local = true;
    if (!place(task, 0.0, &chosen_machine, &chosen_slot, &local)) {
      return Status::Internal(
          StrCat("task '", task.name,
                 "' has no machine to run on: whole fleet revoked"));
    }

    double modeled_stall = 0.0;
    const double base_duration =
        TaskDuration(task.cost, local, &modeled_stall);
    double duration = base_duration;
    if (options_.noise_sigma > 0.0) {
      // Lognormal with mean 1: mu = -sigma^2/2.
      const double sigma = options_.noise_sigma;
      duration *= rng_.NextLogNormal(-0.5 * sigma * sigma, sigma);
      if (options_.speculative_execution) {
        // Backup attempt launched after the task overruns its expectation;
        // the first finisher wins.
        const double backup = base_duration + options_.task_startup_seconds +
                              base_duration *
                                  rng_.NextLogNormal(-0.5 * sigma * sigma,
                                                     sigma);
        duration = std::min(duration, backup);
      }
    }

    // Failed attempts waste their whole duration and rerun.
    int attempts = 1;
    if (options_.task_failure_probability > 0.0) {
      attempts = DrawTaskAttempts(&rng_, options_.task_failure_probability,
                                  options_.max_task_attempts);
      if (attempts == 0) {
        return Status::Internal(
            StrCat("task '", task.name, "' failed ",
                   options_.max_task_attempts, " attempts"));
      }
      duration *= attempts;
    }

    // Noise and failure rerolls are a multiplier on the modeled duration;
    // preserve it across revocation re-placements so the task keeps its
    // drawn fate without consuming new randomness.
    const double ratio = base_duration > 0.0 ? duration / base_duration : 1.0;

    // Commit the attempt, or — when its span crosses the machine's death —
    // kill it at the instant, charge the elapsed time as waste, and re-place
    // on a surviving machine. The retry cannot start before the kill.
    double ready_floor = 0.0;
    double start;
    for (;;) {
      start = std::max(free_at[chosen_machine][chosen_slot], ready_floor);
      if (start + duration <= dead_at[chosen_machine]) break;
      const double kill_time = dead_at[chosen_machine];
      const double wasted = kill_time - start;
      free_at[chosen_machine][chosen_slot] = kill_time;
      ++stats.rescheduled_tasks;
      stats.revoked_wasted_seconds += wasted;
      stats.total_task_seconds += wasted;
      wasted_draws.push_back(wasted);
      ++kills_per_machine[chosen_machine];
      ++attempts;
      ready_floor = kill_time;
      if (!place(task, ready_floor, &chosen_machine, &chosen_slot, &local)) {
        return Status::Internal(
            StrCat("task '", task.name,
                   "' has no machine to run on: whole fleet revoked"));
      }
      duration = TaskDuration(task.cost, local, &modeled_stall) * ratio;
    }
    free_at[chosen_machine][chosen_slot] = start + duration;

    stats.total_task_seconds += duration;
    stats.bytes_read += task.cost.bytes_read;
    stats.bytes_written += task.cost.bytes_written;
    stats.shuffle_bytes += task.cost.shuffle_bytes;
    stats.bytes_read_cached += task.cost.bytes_read_cached;
    if (!local) ++stats.num_non_local_tasks;
    stats.stall_seconds += modeled_stall;
    TaskRunInfo run;
    run.machine = chosen_machine;
    run.slot = chosen_slot;
    run.start_seconds = start;
    run.duration_seconds = duration;
    run.local = local;
    run.stall_seconds = modeled_stall;
    run.attempts = std::max(attempts, 1);
    stats.task_runs.push_back(run);

    if (tracer != nullptr) {
      TraceSpan span;
      span.name = job.plan_tag.empty() ? task.name
                                       : StrCat(job.plan_tag, "/", task.name);
      span.category = "task";
      span.parent_id = job.trace_parent_span;
      span.machine = chosen_machine;
      span.slot = chosen_slot;
      span.start_seconds = trace_t0 + start;
      span.duration_seconds = duration;
      // The slot was idle until `start`, so in a job submitted at virtual
      // time 0 the start time IS the task's queue wait.
      span.args = {{"queue_wait_seconds", start},
                   {"bytes_read", static_cast<double>(task.cost.bytes_read)},
                   {"bytes_written",
                    static_cast<double>(task.cost.bytes_written)},
                   {"bytes_read_cached",
                    static_cast<double>(task.cost.bytes_read_cached)},
                   {"shuffle_bytes",
                    static_cast<double>(task.cost.shuffle_bytes)},
                   {"stall_seconds", modeled_stall},
                   {"local", local ? 1.0 : 0.0}};
      if (run.attempts > 1) {
        span.args.emplace_back("attempts", static_cast<double>(run.attempts));
      }
      if (job.plan_id >= 0) {
        span.args.emplace_back("plan", static_cast<double>(job.plan_id));
      }
      tracer->AddSpan(std::move(span));
    }
  }

  double makespan = 0.0;
  for (const auto& machine_slots : free_at) {
    for (double t : machine_slots) makespan = std::max(makespan, t);
  }
  stats.duration_seconds = makespan;

  if (ctrl != nullptr) {
    // Observe every revocation whose instant fell inside this job's window
    // (including instants an earlier, shorter job slid past): drop the dead
    // node's tile cache, bump the loss stats, and emit a zero-width
    // "revoke" marker on the machine's lane. ClaimFired gates each machine
    // to exactly one observation across the controller's lifetime.
    for (int mch = 0; mch < machines; ++mch) {
      if (dead_at[mch] > makespan) continue;  // not lost yet (or never)
      if (!ctrl->ClaimFired(mch)) continue;   // an earlier job observed it
      ++stats.revoked_machines;
      if (caches_ != nullptr) caches_->ClearNode(mch);
      if (tracer != nullptr) {
        TraceSpan span;
        const std::string marker = StrCat("revoke:m", mch);
        span.name = job.plan_tag.empty()
                        ? marker
                        : StrCat(job.plan_tag, "/", marker);
        span.category = "revoke";
        span.parent_id = job.trace_parent_span;
        span.machine = mch;
        span.slot = 0;
        span.start_seconds = trace_t0 + std::max(dead_at[mch], 0.0);
        span.duration_seconds = 0.0;
        span.args = {{"machine", static_cast<double>(mch)},
                     {"tasks_rescheduled",
                      static_cast<double>(kills_per_machine[mch])}};
        if (job.plan_id >= 0) {
          span.args.emplace_back("plan", static_cast<double>(job.plan_id));
        }
        tracer->AddSpan(std::move(span));
      }
    }
    // Schedule time is cumulative engine-busy time: the next job's virtual
    // clock starts where this one's makespan left off.
    ctrl->AdvanceOrigin(makespan);
  }

  if (tracer != nullptr) tracer->AdvanceTime(makespan);

  if (options_.metrics != nullptr) {
    MetricsRegistry* m = options_.metrics;
    m->counter("engine.jobs")->Increment();
    m->counter("engine.tasks")->Add(stats.num_tasks);
    m->counter("engine.tasks.nonlocal")->Add(stats.num_non_local_tasks);
    Histogram* task_seconds = m->histogram("engine.task.seconds");
    Histogram* queue_wait = m->histogram("engine.task.queue_wait_seconds");
    Histogram* stall = m->histogram("engine.task.stall_seconds");
    for (const TaskRunInfo& run : stats.task_runs) {
      task_seconds->Observe(run.duration_seconds);
      queue_wait->Observe(run.start_seconds);
      stall->Observe(run.stall_seconds);
    }
    if (stats.revoked_machines > 0 || stats.rescheduled_tasks > 0) {
      m->counter("cluster.revoked.machines")->Add(stats.revoked_machines);
      m->counter("cluster.revoked.tasks")->Add(stats.rescheduled_tasks);
      Histogram* wasted = m->histogram("cluster.revoked.wasted_seconds");
      for (double w : wasted_draws) wasted->Observe(w);
    }
  }
  return stats;
}

}  // namespace cumulon
