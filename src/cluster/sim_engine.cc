#include "cluster/sim_engine.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "cost/cost_model.h"
#include "sched/slot_pool.h"

namespace cumulon {

SimEngine::SimEngine(const ClusterConfig& config,
                     const SimEngineOptions& options)
    : config_(config), options_(options), rng_(options.seed) {
  CUMULON_CHECK_GT(config_.num_machines, 0);
  CUMULON_CHECK_GT(config_.slots_per_machine, 0);
  if (options_.enable_tile_cache) {
    const int64_t bytes =
        options_.cache_bytes_per_node > 0
            ? options_.cache_bytes_per_node
            : NodeTileCacheBudget(config_.machine.memory_bytes(),
                                  config_.slots_per_machine,
                                  options_.cache_slot_memory_fraction);
    caches_ = std::make_unique<TileCacheGroup>(config_.num_machines, bytes);
  }
}

double SimEngine::TaskDuration(const TaskCost& cost, bool local_read,
                               double* stall_seconds) const {
  const MachineProfile& m = config_.machine;
  const int s = config_.slots_per_machine;

  // Slots oversubscribing cores share them.
  const double cpu_slowdown =
      std::max(1.0, static_cast<double>(s) / m.cores);
  const double cpu =
      cost.cpu_seconds_ref / m.cpu_gflops * cpu_slowdown;

  // All slots of a machine share its disk and NIC; we charge each task the
  // worst-case 1/s share, which is what a fully loaded wave experiences.
  const double disk_bw = m.disk_bytes_per_sec() / s;
  const double net_bw = m.net_bytes_per_sec() / s;

  // Bytes expected from the node-local tile cache never touch disk or
  // NIC; only the residual miss bytes are charged below.
  const double uncached_read = static_cast<double>(
      std::max<int64_t>(cost.bytes_read - cost.bytes_read_cached, 0));
  double local_bytes, remote_bytes;
  if (local_read) {
    local_bytes = uncached_read;
    remote_bytes = 0.0;
  } else {
    local_bytes = options_.nonlocal_local_fraction * uncached_read;
    remote_bytes = uncached_read - local_bytes;
  }
  // Shuffle traffic always crosses the network; spills hit the local disk
  // exactly once (MapReduce-baseline cost fields).
  remote_bytes += static_cast<double>(cost.shuffle_bytes);
  const double read_time = local_bytes / disk_bw + remote_bytes / net_bw;

  // First replica to local disk, the rest pipelined over the network.
  const double extra_replicas =
      static_cast<double>(std::max(0, options_.replication - 1));
  const double write_time = cost.bytes_written / disk_bw +
                            extra_replicas * cost.bytes_written / net_bw +
                            cost.local_spill_bytes / disk_bw;

  // The prefetch pipeline overlaps DFS reads with compute; only the
  // residual read time extends the task. Startup and write-back are
  // serial either way.
  if (stall_seconds != nullptr) {
    *stall_seconds =
        ResidualStallSeconds(cpu, read_time, options_.io_overlap_fraction);
  }
  return options_.task_startup_seconds +
         PipelinedPhaseSeconds(cpu, read_time,
                               options_.io_overlap_fraction) +
         write_time;
}

Result<JobStats> SimEngine::RunJob(const JobSpec& job) {
  // One simulated job at a time: concurrent plans' virtual clocks cannot
  // interleave, so runs serialize and contention is expressed through the
  // slot-share restriction below.
  MutexLock run_lock(&run_mu_);

  if (job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(StrCat("job '", job.name, "' cancelled"));
  }

  const int machines = config_.num_machines;
  int slots = config_.slots_per_machine;
  // Under a slot pool the plan only gets its fair share of the cluster;
  // model that as proportionally fewer slots per machine (at least one in
  // total, rounded up so a share never silently widens).
  if (job.slot_pool != nullptr) {
    const int allowed = std::clamp(job.slot_pool->FairShare(job.plan_id), 1,
                                   config_.total_slots());
    slots = std::max(1, (allowed + machines - 1) / machines);
  }

  Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : GlobalTracer();
  // Spans of this job start after everything already on the timeline; the
  // virtual clock below restarts at 0 for every job.
  const double trace_t0 = tracer != nullptr ? tracer->time_offset() : 0.0;

  // free_at[machine][slot] = virtual time the slot becomes available.
  std::vector<std::vector<double>> free_at(
      machines, std::vector<double>(slots, 0.0));

  JobStats stats;
  stats.num_tasks = static_cast<int>(job.tasks.size());
  stats.waves = stats.num_tasks == 0
                    ? 0
                    : (stats.num_tasks + config_.total_slots() - 1) /
                          config_.total_slots();
  stats.task_runs.reserve(job.tasks.size());

  auto earliest_slot = [&](int machine) {
    int best = 0;
    for (int i = 1; i < slots; ++i) {
      if (free_at[machine][i] < free_at[machine][best]) best = i;
    }
    return best;
  };

  for (const Task& task : job.tasks) {
    if (job.cancel != nullptr &&
        job.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled(
          StrCat("job '", job.name, "' cancelled mid-schedule"));
    }
    // Globally earliest slot.
    int best_machine = 0;
    int best_slot = earliest_slot(0);
    for (int mch = 1; mch < machines; ++mch) {
      const int sl = earliest_slot(mch);
      if (free_at[mch][sl] < free_at[best_machine][best_slot]) {
        best_machine = mch;
        best_slot = sl;
      }
    }

    // Delay scheduling: prefer a machine holding the task's input if one
    // frees up soon enough.
    int chosen_machine = best_machine;
    int chosen_slot = best_slot;
    bool local = true;
    if (!task.preferred_machines.empty()) {
      local = false;
      if (options_.locality_aware) {
        int pref_machine = -1, pref_slot = -1;
        double pref_time = std::numeric_limits<double>::infinity();
        for (int mch : task.preferred_machines) {
          if (mch < 0 || mch >= machines) continue;
          const int sl = earliest_slot(mch);
          if (free_at[mch][sl] < pref_time) {
            pref_time = free_at[mch][sl];
            pref_machine = mch;
            pref_slot = sl;
          }
        }
        if (pref_machine >= 0 &&
            pref_time <= free_at[best_machine][best_slot] +
                             options_.locality_delay_seconds) {
          chosen_machine = pref_machine;
          chosen_slot = pref_slot;
          local = true;
        }
      }
      if (!local) {
        // The scheduler may still have gotten lucky.
        local = std::find(task.preferred_machines.begin(),
                          task.preferred_machines.end(),
                          chosen_machine) != task.preferred_machines.end();
      }
    }

    double modeled_stall = 0.0;
    const double base_duration =
        TaskDuration(task.cost, local, &modeled_stall);
    double duration = base_duration;
    if (options_.noise_sigma > 0.0) {
      // Lognormal with mean 1: mu = -sigma^2/2.
      const double sigma = options_.noise_sigma;
      duration *= rng_.NextLogNormal(-0.5 * sigma * sigma, sigma);
      if (options_.speculative_execution) {
        // Backup attempt launched after the task overruns its expectation;
        // the first finisher wins.
        const double backup = base_duration + options_.task_startup_seconds +
                              base_duration *
                                  rng_.NextLogNormal(-0.5 * sigma * sigma,
                                                     sigma);
        duration = std::min(duration, backup);
      }
    }

    // Failed attempts waste their whole duration and rerun.
    if (options_.task_failure_probability > 0.0) {
      double total = 0.0;
      int attempt = 1;
      while (rng_.NextDouble() < options_.task_failure_probability) {
        total += duration;
        if (++attempt > options_.max_task_attempts) {
          return Status::Internal(
              StrCat("task '", task.name, "' failed ",
                     options_.max_task_attempts, " attempts"));
        }
      }
      duration += total;
    }

    const double start = free_at[chosen_machine][chosen_slot];
    free_at[chosen_machine][chosen_slot] = start + duration;

    stats.total_task_seconds += duration;
    stats.bytes_read += task.cost.bytes_read;
    stats.bytes_written += task.cost.bytes_written;
    stats.shuffle_bytes += task.cost.shuffle_bytes;
    stats.bytes_read_cached += task.cost.bytes_read_cached;
    if (!local) ++stats.num_non_local_tasks;
    stats.stall_seconds += modeled_stall;
    stats.task_runs.push_back(TaskRunInfo{chosen_machine, chosen_slot, start,
                                          duration, local, modeled_stall});

    if (tracer != nullptr) {
      TraceSpan span;
      span.name = job.plan_tag.empty() ? task.name
                                       : StrCat(job.plan_tag, "/", task.name);
      span.category = "task";
      span.parent_id = job.trace_parent_span;
      span.machine = chosen_machine;
      span.slot = chosen_slot;
      span.start_seconds = trace_t0 + start;
      span.duration_seconds = duration;
      // The slot was idle until `start`, so in a job submitted at virtual
      // time 0 the start time IS the task's queue wait.
      span.args = {{"queue_wait_seconds", start},
                   {"bytes_read", static_cast<double>(task.cost.bytes_read)},
                   {"bytes_written",
                    static_cast<double>(task.cost.bytes_written)},
                   {"bytes_read_cached",
                    static_cast<double>(task.cost.bytes_read_cached)},
                   {"shuffle_bytes",
                    static_cast<double>(task.cost.shuffle_bytes)},
                   {"stall_seconds", modeled_stall},
                   {"local", local ? 1.0 : 0.0}};
      if (job.plan_id >= 0) {
        span.args.emplace_back("plan", static_cast<double>(job.plan_id));
      }
      tracer->AddSpan(std::move(span));
    }
  }

  double makespan = 0.0;
  for (const auto& machine_slots : free_at) {
    for (double t : machine_slots) makespan = std::max(makespan, t);
  }
  stats.duration_seconds = makespan;
  if (tracer != nullptr) tracer->AdvanceTime(makespan);

  if (options_.metrics != nullptr) {
    MetricsRegistry* m = options_.metrics;
    m->counter("engine.jobs")->Increment();
    m->counter("engine.tasks")->Add(stats.num_tasks);
    m->counter("engine.tasks.nonlocal")->Add(stats.num_non_local_tasks);
    Histogram* task_seconds = m->histogram("engine.task.seconds");
    Histogram* queue_wait = m->histogram("engine.task.queue_wait_seconds");
    Histogram* stall = m->histogram("engine.task.stall_seconds");
    for (const TaskRunInfo& run : stats.task_runs) {
      task_seconds->Observe(run.duration_seconds);
      queue_wait->Observe(run.start_seconds);
      stall->Observe(run.stall_seconds);
    }
  }
  return stats;
}

}  // namespace cumulon
