#ifndef CUMULON_CLUSTER_ENGINE_H_
#define CUMULON_CLUSTER_ENGINE_H_

#include "cluster/cluster_config.h"
#include "cluster/task.h"
#include "common/result.h"
#include "dfs/tile_cache.h"

namespace cumulon {

/// Runs jobs on a (real or simulated) cluster. Implementations:
///  - SimEngine: discrete-event simulation with a virtual clock; durations
///    come from TaskCost + the machine profile (the paper's simulation
///    technique, also used as the optimizer's time predictor).
///  - RealEngine: executes task closures on a thread pool and measures
///    wall-clock time (used for correctness tests and model validation).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual Result<JobStats> RunJob(const JobSpec& job) = 0;

  virtual const ClusterConfig& config() const = 0;

  /// Per-machine tile caches owned by this engine, or nullptr when node-
  /// local caching is disabled. The real engine's caches hold actual tiles
  /// (attach them to the DfsTileStore); the sim engine's exist so the cost
  /// model reads the byte budget the cluster would really have.
  virtual TileCacheGroup* tile_caches() const { return nullptr; }
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_ENGINE_H_
