#include "cluster/cluster_config.h"

#include "common/strings.h"

namespace cumulon {

std::string ClusterConfig::ToString() const {
  return StrCat(num_machines, "x", machine.name, " (", slots_per_machine,
                " slots/machine)");
}

}  // namespace cumulon
