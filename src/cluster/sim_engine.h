#ifndef CUMULON_CLUSTER_SIM_ENGINE_H_
#define CUMULON_CLUSTER_SIM_ENGINE_H_

#include <memory>

#include "cluster/engine.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cumulon {

class RevocationController;  // cloud/revocation.h; borrowed by the engine

/// Knobs of the cluster simulation. The defaults mirror a 2013 Hadoop
/// deployment: ~1 s task launch overhead, 3-way replication, delay
/// scheduling for locality, and moderate task-duration noise.
struct SimEngineOptions {
  /// Fixed per-task overhead (JVM launch, heartbeat scheduling latency).
  double task_startup_seconds = 1.0;

  /// Lognormal sigma of multiplicative task-duration noise; 0 disables
  /// noise, which is what the cost model's predictor uses.
  double noise_sigma = 0.0;

  /// Replication factor of task output writes (first copy to local disk,
  /// the rest over the network), matching the DFS configuration.
  int replication = 3;

  /// Place tasks on machines holding their input replicas when one is
  /// available within `locality_delay_seconds` of the globally earliest
  /// slot (Hadoop-style delay scheduling).
  bool locality_aware = true;
  double locality_delay_seconds = 3.0;

  /// Fraction of a non-local task's reads that still hit the local disk
  /// (e.g. cached side inputs); 0 = all remote.
  double nonlocal_local_fraction = 0.0;

  /// Hadoop-style speculative execution: when a task runs long, a backup
  /// attempt is launched and the earlier finisher wins. Modeled as
  /// completion = min(noisy duration,
  ///                  expected duration + startup + second noisy duration):
  /// the backup starts once the task has overrun its expected duration.
  /// Only meaningful with noise_sigma > 0.
  bool speculative_execution = false;

  /// Probability that one task attempt fails (lost node, bad disk). A
  /// failed attempt wastes its full duration and is retried; after
  /// `max_task_attempts` consecutive failures the job fails, as in
  /// Hadoop.
  double task_failure_probability = 0.0;
  int max_task_attempts = 4;

  /// Model a node-local tile cache: the engine owns per-machine cache
  /// instances (sized like the real engine's — machine memory minus the
  /// slots' task working sets) and charges disk/net time only for the
  /// bytes a task's declared cost does NOT expect to find cached
  /// (TaskCost::bytes_read_cached).
  bool enable_tile_cache = false;

  /// Fraction of a slot's RAM share reserved for task working sets when
  /// sizing the cache (mirrors TuneOptions::memory_fraction).
  double cache_slot_memory_fraction = 0.8;

  /// Overrides the derived per-machine cache size when > 0.
  int64_t cache_bytes_per_node = 0;

  /// Models the asynchronous tile-prefetch pipeline: the fraction of the
  /// overlappable window — min(cpu, read) — that tasks hide by fetching
  /// split k+1 while computing split k. 0 keeps the historical serial
  /// model (cpu + read); 1 is a perfect pipeline (max(cpu, read)).
  /// Startup and write-back never overlap. See cost/cost_model.h
  /// (PipelinedPhaseSeconds).
  double io_overlap_fraction = 0.0;

  /// Injects a transient-machine fault plan (cloud/revocation.h): machines
  /// the schedule revokes die mid-job at their instant on the controller's
  /// cumulative virtual clock. The in-flight attempt on a dying machine is
  /// killed at the instant (its elapsed time is wasted and counted), the
  /// task is re-placed on a surviving machine with its noise/failure
  /// multiplier preserved (no extra RNG draws, so seeded runs replay
  /// bit-identically), the node's tile cache is dropped, and a zero-width
  /// "revoke" span plus cluster.revoked.* metrics record the loss. Borrowed;
  /// null (or a controller with an empty schedule) leaves every schedule
  /// decision and RNG draw exactly as before.
  RevocationController* revocation = nullptr;

  /// Records one span per task, stamped from the *virtual clock* (plus the
  /// tracer's running offset), so simulated schedules become inspectable
  /// timelines. Borrowed; falls back to GlobalTracer() when null.
  Tracer* tracer = nullptr;

  /// Engine-level counters/histograms (engine.* names; see
  /// docs/observability.md). Borrowed; disabled when null.
  MetricsRegistry* metrics = nullptr;

  uint64_t seed = 7;
};

/// Draws the simulated failure/retry outcome of one task: consumes exactly
/// one `rng` draw per decided attempt (a draw below `failure_probability`
/// fails that attempt and forces another) and returns the total number of
/// attempts consumed (>= 1) when one succeeds within `max_attempts`, or 0
/// when all `max_attempts` attempts failed — the Hadoop job-kill boundary.
/// Success after k-1 failures is possible for every k <= max_attempts; the
/// max_attempts-th consecutive failure kills the job. Callers must skip the
/// call entirely when `failure_probability` is 0 so a failure-free
/// configuration consumes no randomness.
int DrawTaskAttempts(Rng* rng, double failure_probability, int max_attempts);

/// Discrete-event simulator of slot-scheduled execution. Task durations
/// are derived from TaskCost and the cluster's machine profile:
///
///   duration = startup
///            + cpu_seconds_ref / machine.cpu_gflops * max(1, slots/cores)
///            + local_bytes  / (disk_bw / slots)
///            + remote_bytes / (net_bw  / slots)
///            + write time (disk for the first copy, net for the rest)
///
/// i.e. slots on the same machine contend for cores, disk and NIC — which
/// is what makes slots-per-machine a real optimization knob (experiment
/// E3). Scheduling is greedy list scheduling over all slots with optional
/// locality preference. A virtual clock advances; nothing executes.
///
/// RunJob is safe to call from concurrent plans: runs serialize on an
/// internal mutex (virtual clocks cannot interleave task-by-task), and a
/// job arriving with a JobSpec::slot_pool is simulated on the plan's fair
/// share of the slots instead of the whole cluster, which is how slot
/// contention between concurrent tenants is modeled.
class SimEngine : public Engine {
 public:
  SimEngine(const ClusterConfig& config, const SimEngineOptions& options);

  Result<JobStats> RunJob(const JobSpec& job) override;

  const ClusterConfig& config() const override { return config_; }
  const SimEngineOptions& options() const { return options_; }

  TileCacheGroup* tile_caches() const override { return caches_.get(); }

  /// Duration of a single task on a machine of this cluster, given whether
  /// its reads are local. Bytes the task expects from the node-local cache
  /// (cost.bytes_read_cached) are served from memory — no disk or net
  /// charge. With io_overlap_fraction > 0 the read phase overlaps compute
  /// per the pipelined cost model; `stall_seconds`, when non-null,
  /// receives the residual (unhidden) read time. Exposed for the cost
  /// model and tests.
  double TaskDuration(const TaskCost& cost, bool local_read,
                      double* stall_seconds = nullptr) const;

 private:
  ClusterConfig config_;
  SimEngineOptions options_;
  Mutex run_mu_{"SimEngine::run_mu_"};  // serializes RunJob (tracer offset)
  Rng rng_ CUMULON_GUARDED_BY(run_mu_);
  std::unique_ptr<TileCacheGroup> caches_;
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_SIM_ENGINE_H_
