#ifndef CUMULON_CLUSTER_STEAL_DOMAIN_H_
#define CUMULON_CLUSTER_STEAL_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"

/// Intra-job split-level work stealing.
///
/// A Cumulon task typically produces several independent block-splits (one
/// output tile, one stripe, ...). Without stealing, a task whose splits are
/// slow — cache-cold inputs, a large k range — stretches the job's tail
/// while other workers idle after finishing their own tasks. With a
/// StealDomain attached (ExecutorOptions::enable_work_stealing), task
/// bodies enqueue their splits into a per-slot deque and execute them via
/// TaskSplitScope::RunAndWait; any other participant — a task out of its
/// own work, or one of the engine's helper drains on idle workers — steals
/// from the tail of a busy slot's deque.
///
/// Invariants (see DESIGN.md "Kernel architecture"):
///  - Owners push and pop at the deque head (LIFO locality in their own
///    enqueue order); thieves pop at the tail — head and tail contention
///    never meet on the same split except when one remains.
///  - Each split is executed exactly once, by whoever dequeued it; its
///    completion is recorded on the owning scope's latch, so RunAndWait
///    returns only after every one of its splits ran (possibly elsewhere).
///  - No lock is held while a split body runs, and no two StealDomain locks
///    are ever held at once (deque mutexes, the domain mutex and each
///    scope's latch mutex are acquired strictly one at a time), so the
///    debug lock-order validator sees no edges from this subsystem.
///  - Results are unaffected by who runs a split: splits of one task write
///    disjoint output tiles.

namespace cumulon {

class Tracer;
class TaskSplitScope;

/// Counters exposed as `exec.steal.*` (docs/observability.md).
struct StealDomainStats {
  int64_t splits_enqueued = 0;  // splits published to deques
  int64_t splits_stolen = 0;    // executed by a non-owner participant
  int64_t steal_attempts = 0;   // tail-pop scans (successful or not)
};

/// One stealing scope, shared by every task of an executor run. The
/// executor owns it (shared_ptr captured by task closures); the engine
/// borrows it through JobSpec::steal_domain for per-job accounting and
/// helper drains.
class StealDomain {
 public:
  /// num_slots: per-slot deque count, normally the engine's worker-thread
  /// count. Participants on unknown threads are mapped onto [0, num_slots).
  /// tracer: when non-null, stolen splits emit spans with category "steal".
  explicit StealDomain(int num_slots, Tracer* tracer = nullptr);

  StealDomain(const StealDomain&) = delete;
  StealDomain& operator=(const StealDomain&) = delete;

  /// Engine-side job accounting (RealEngine::RunJob): BeginJob arms the
  /// helper-drain exit condition with the number of tasks about to be
  /// submitted and re-anchors the trace clock; every finished task calls
  /// NoteTaskFinished; a cancelled submission loop returns the difference
  /// via ReduceExpected. One job at a time per domain (the executor runs
  /// jobs of a plan sequentially).
  void BeginJob(size_t expected_tasks, double trace_time_offset = 0.0);
  void NoteTaskFinished();
  void ReduceExpected(size_t not_submitted);

  /// Runs any available splits (own deque first, then steals) until every
  /// task of the current job has finished. Submitted by the engine on each
  /// pool worker so that workers with no tasks left still serve the
  /// stragglers' splits.
  void HelpDrain();

  StealDomainStats stats() const;

 private:
  friend class TaskSplitScope;

  /// A published block-split. `scope` outlives the split: RunAndWait only
  /// returns once its latch saw every split complete.
  struct Split {
    std::function<Status()> fn;
    TaskSplitScope* scope = nullptr;
  };

  struct SlotDeque {
    Mutex mu{"StealDomain::SlotDeque::mu"};
    std::deque<Split> dq CUMULON_GUARDED_BY(mu);
  };

  /// Maps the calling thread onto a deque slot (pool worker index when on a
  /// pool, round-robin fallback otherwise).
  int CurrentSlot();

  void Publish(int slot, std::vector<Split>* splits);
  bool TryPopLocal(int slot, Split* out);
  bool TrySteal(int thief_slot, Split* out);

  /// Executes a split and records completion on its scope's latch. Emits a
  /// "steal" trace span when the executing slot is not the owner's.
  void RunSplit(Split split, int exec_slot);

  const int num_slots_;
  Tracer* const tracer_;
  std::vector<std::unique_ptr<SlotDeque>> slots_;

  std::atomic<int64_t> splits_enqueued_{0};
  std::atomic<int64_t> splits_stolen_{0};
  std::atomic<int64_t> steal_attempts_{0};
  std::atomic<int64_t> fallback_slot_{0};

  Mutex mu_{"StealDomain::mu"};
  CondVar activity_cv_;
  size_t tasks_remaining_ CUMULON_GUARDED_BY(mu_) = 0;

  /// Trace clock for stolen-split spans: BeginJob anchors offset_ at the
  /// tracer's current offset and restarts clock_, mirroring the engine's
  /// per-job span timing.
  Stopwatch clock_;
  std::atomic<double> trace_offset_{0.0};
};

/// Per-task split collector. Usage inside a task body:
///
///   TaskSplitScope scope(ctx.steal, task_name, machine);
///   for (...) scope.Add([=]() -> Status { ... one block-split ... });
///   return scope.RunAndWait();
///
/// With a null domain the scope degrades to inline execution: Add runs the
/// split immediately (skipping the rest after the first error), RunAndWait
/// just returns the outcome — so task bodies need no separate non-stealing
/// code path for the work itself.
class TaskSplitScope {
 public:
  TaskSplitScope(StealDomain* domain, std::string task_name, int machine);
  ~TaskSplitScope();

  TaskSplitScope(const TaskSplitScope&) = delete;
  TaskSplitScope& operator=(const TaskSplitScope&) = delete;

  /// Buffers (or, with a null domain, runs) one split.
  void Add(std::function<Status()> fn);

  /// Publishes buffered splits, participates (own deque first, stealing
  /// while waiting), and returns the first split error once all this
  /// scope's splits have executed.
  Status RunAndWait();

 private:
  friend class StealDomain;

  StealDomain* const domain_;
  const std::string task_name_;
  const int machine_;
  int slot_ = 0;

  std::vector<StealDomain::Split> buffered_;

  Mutex latch_mu_{"TaskSplitScope::latch_mu"};
  CondVar latch_cv_;
  size_t remaining_ CUMULON_GUARDED_BY(latch_mu_) = 0;
  Status first_error_ CUMULON_GUARDED_BY(latch_mu_);
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_STEAL_DOMAIN_H_
