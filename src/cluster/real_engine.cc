#include "cluster/real_engine.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "cloud/revocation.h"
#include "cluster/steal_domain.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/task_io_stats.h"
#include "sched/slot_pool.h"

namespace cumulon {

RealEngine::RealEngine(const ClusterConfig& config,
                       const RealEngineOptions& options)
    : config_(config), options_(options) {
  int threads = options_.max_threads > 0
                    ? std::min(options_.max_threads, config_.total_slots())
                    : config_.total_slots();
  threads = std::max(threads, 1);
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.enable_tile_cache) {
    const int64_t bytes =
        options_.cache_bytes_per_node > 0
            ? options_.cache_bytes_per_node
            : NodeTileCacheBudget(config_.machine.memory_bytes(),
                                  config_.slots_per_machine,
                                  options_.cache_slot_memory_fraction);
    caches_ = std::make_unique<TileCacheGroup>(config_.num_machines, bytes);
  }
}

std::vector<int> RealEngine::PlaceTasks(const JobSpec& job) const {
  const int machines = config_.num_machines;
  std::vector<int> placement(job.tasks.size());
  if (!options_.locality_aware) {
    for (size_t i = 0; i < job.tasks.size(); ++i) {
      placement[i] = static_cast<int>(i) % machines;
    }
    return placement;
  }
  // A machine may take at most its balanced share of the job (its slots'
  // worth per wave, i.e. tasks/machines rounded up) before locality stops
  // justifying the skew; beyond that, or without preferences, assignment
  // falls back to the task-index round-robin.
  const int64_t cap =
      (static_cast<int64_t>(job.tasks.size()) + machines - 1) / machines;
  std::vector<int64_t> load(machines, 0);
  for (size_t i = 0; i < job.tasks.size(); ++i) {
    const Task& task = job.tasks[i];
    int chosen = -1;
    for (int mch : task.preferred_machines) {
      if (mch < 0 || mch >= machines || load[mch] >= cap) continue;
      if (chosen < 0 || load[mch] < load[chosen]) chosen = mch;
    }
    if (chosen < 0) chosen = static_cast<int>(i) % machines;
    placement[i] = chosen;
    ++load[chosen];
  }
  return placement;
}

Result<JobStats> RealEngine::RunJob(const JobSpec& job) {
  JobStats stats;
  stats.num_tasks = static_cast<int>(job.tasks.size());
  stats.waves = stats.num_tasks == 0
                    ? 0
                    : (stats.num_tasks + config_.total_slots() - 1) /
                          config_.total_slots();
  stats.task_runs.resize(job.tasks.size());

  const std::vector<int> placement = PlaceTasks(job);

  Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : GlobalTracer();
  // Spans of this job start after everything already on the timeline; the
  // job stopwatch below restarts at 0.
  const double trace_t0 = tracer != nullptr ? tracer->time_offset() : 0.0;

  Stopwatch job_clock;

  // Per-job completion latch and first-error slot, under one mutex: with
  // concurrent plans sharing the pool, ThreadPool::WaitIdle would wait for
  // *everyone's* tasks, so each RunJob counts down only its own. first_error
  // shares the latch's mutex so the final read below is under the same lock
  // the workers write through (it used to be read lock-free after the wait,
  // relying on the latch's ordering alone — exactly the pattern the
  // thread-safety annotations exist to reject).
  struct JobSync {
    Mutex mu{"RealEngine::JobSync::mu"};
    CondVar done_cv;
    size_t remaining CUMULON_GUARDED_BY(mu) = 0;
    Status first_error CUMULON_GUARDED_BY(mu);
    // Transient-machine losses observed by this job's workers.
    int revoked_machines CUMULON_GUARDED_BY(mu) = 0;
    int rescheduled_tasks CUMULON_GUARDED_BY(mu) = 0;
    double revoked_wasted_seconds CUMULON_GUARDED_BY(mu) = 0.0;
    std::vector<double> wasted_draws CUMULON_GUARDED_BY(mu);
  } sync;

  // One-shot consequences of a machine's revocation: drop its tile cache,
  // count it, and mark the instant on its trace lane. ClaimFired serializes
  // racing workers so the loss is observed exactly once per machine across
  // the controller's lifetime (not once per job).
  RevocationController* ctrl = options_.revocation;
  auto observe_revocation = [&](int machine) {
    if (!ctrl->ClaimFired(machine)) return;
    if (caches_ != nullptr) caches_->ClearNode(machine);
    {
      MutexLock lock(&sync.mu);
      ++sync.revoked_machines;
    }
    if (tracer != nullptr) {
      TraceSpan span;
      const std::string marker = StrCat("revoke:m", machine);
      span.name = job.plan_tag.empty() ? marker
                                       : StrCat(job.plan_tag, "/", marker);
      span.category = "revoke";
      span.parent_id = job.trace_parent_span;
      span.machine = machine;
      span.slot = 0;
      span.start_seconds = trace_t0 + job_clock.ElapsedSeconds();
      span.duration_seconds = 0.0;
      span.args = {{"machine", static_cast<double>(machine)}};
      if (job.plan_id >= 0) {
        span.args.emplace_back("plan", static_cast<double>(job.plan_id));
      }
      tracer->AddSpan(std::move(span));
    }
  };

  // Work stealing: arm the per-job accounting before any task can start,
  // so helper drains submitted below don't observe a stale zero and exit.
  StealDomain* steal = job.steal_domain;
  if (steal != nullptr) steal->BeginJob(job.tasks.size(), trace_t0);

  bool cancelled = false;
  size_t submitted = 0;
  for (size_t i = 0; i < job.tasks.size(); ++i) {
    if (job.cancel != nullptr &&
        job.cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      break;
    }
    // Multi-tenant mode: lease one slot per in-flight task. This driver
    // thread blocks while the plan is at its share; workers never block.
    if (job.slot_pool != nullptr &&
        !job.slot_pool->Acquire(job.plan_id, job.cancel)) {
      cancelled = true;  // cancel flag flipped while waiting for a slot
      break;
    }
    const Task& task = job.tasks[i];
    const int machine = placement[i];
    TaskRunInfo* run = &stats.task_runs[i];
    run->machine = machine;
    if (!task.preferred_machines.empty()) {
      run->local = std::find(task.preferred_machines.begin(),
                             task.preferred_machines.end(),
                             machine) != task.preferred_machines.end();
      if (!run->local) ++stats.num_non_local_tasks;
    }
    stats.bytes_read += task.cost.bytes_read;
    stats.bytes_written += task.cost.bytes_written;
    stats.shuffle_bytes += task.cost.shuffle_bytes;
    {
      MutexLock lock(&sync.mu);
      ++sync.remaining;
    }
    ++submitted;
    pool_->Submit([&, run, machine = machine, tracer, trace_t0,
                   &task = task]() mutable {
      Stopwatch task_clock;
      run->start_seconds = job_clock.ElapsedSeconds();
      // Tasks are all submitted up front, so the time a task spent waiting
      // for a worker is its start offset within the job.
      run->slot = ThreadPool::CurrentWorkerIndex();
      // Thread-local I/O wait accounting: the task body (TileFuture::Await,
      // TaskTileReader sync reads) accumulates into it on this worker.
      TaskIoStats* io = TaskIoStats::Current();
      io->Reset();
      int attempts_used = 0;
      if (task.work) {
        Status st;
        const int attempts = std::max(options_.max_attempts, 1);
        int failures = 0;
        bool fleet_gone = false;
        for (;;) {
          // Never start an attempt on a machine the schedule has revoked:
          // relocate to a survivor first, observing each loss on the way.
          while (ctrl != nullptr &&
                 ctrl->IsRevokedAt(machine, ctrl->WallNowSeconds())) {
            observe_revocation(machine);
            const int next = ctrl->FallbackMachine(
                machine, config_.num_machines, ctrl->WallNowSeconds());
            if (next < 0) {
              fleet_gone = true;
              break;
            }
            machine = next;
          }
          if (fleet_gone) {
            st = Status::Internal(
                StrCat("task '", task.name,
                       "' has no machine to run on: whole fleet revoked"));
            break;
          }
          ++attempts_used;
          Stopwatch attempt_clock;
          st = task.work(machine);
          if (ctrl != nullptr &&
              ctrl->IsRevokedAt(machine, ctrl->WallNowSeconds())) {
            // The machine died while this attempt ran: the elapsed time is
            // revocation waste and the task reruns on a survivor (tile Puts
            // are overwrite-idempotent, so the rerun converges to the same
            // output). A loss is not a task failure — it burns no retry.
            const double wasted = attempt_clock.ElapsedSeconds();
            MutexLock lock(&sync.mu);
            ++sync.rescheduled_tasks;
            sync.revoked_wasted_seconds += wasted;
            sync.wasted_draws.push_back(wasted);
            continue;
          }
          if (st.ok()) break;
          if (++failures >= attempts) break;
        }
        run->machine = machine;
        if (!st.ok()) {
          MutexLock lock(&sync.mu);
          if (sync.first_error.ok()) {
            sync.first_error =
                fleet_gone
                    ? st
                    : Status(st.code(),
                             StrCat("task '", task.name, "' failed after ",
                                    attempts, " attempt(s): ", st.message()));
          }
        }
      }
      run->attempts = std::max(attempts_used, 1);
      run->duration_seconds = task_clock.ElapsedSeconds();
      run->stall_seconds = io->total_wait_seconds();
      if (tracer != nullptr) {
        TraceSpan span;
        span.name = job.plan_tag.empty()
                        ? task.name
                        : StrCat(job.plan_tag, "/", task.name);
        span.category = "task";
        span.parent_id = job.trace_parent_span;
        span.machine = machine;
        span.slot = run->slot;
        span.start_seconds = trace_t0 + run->start_seconds;
        span.duration_seconds = run->duration_seconds;
        span.args = {
            {"queue_wait_seconds", run->start_seconds},
            {"bytes_read", static_cast<double>(task.cost.bytes_read)},
            {"bytes_written", static_cast<double>(task.cost.bytes_written)},
            {"attempts", static_cast<double>(attempts_used)},
            {"stall_seconds", run->stall_seconds},
            {"local", run->local ? 1.0 : 0.0}};
        if (job.plan_id >= 0) {
          span.args.emplace_back("plan", static_cast<double>(job.plan_id));
        }
        tracer->AddSpan(std::move(span));
      }
      if (job.slot_pool != nullptr) job.slot_pool->Release(job.plan_id);
      if (job.steal_domain != nullptr) job.steal_domain->NoteTaskFinished();
      MutexLock lock(&sync.mu);
      if (--sync.remaining == 0) sync.done_cv.NotifyAll();
    });
  }
  if (steal != nullptr && cancelled) {
    steal->ReduceExpected(job.tasks.size() - submitted);
  }
  // Helper drains: one per pool worker, queued behind the tasks, so any
  // worker that runs out of tasks serves the remaining tasks' splits until
  // the job finishes. Skipped in multi-tenant mode (see JobSpec) — there,
  // stealing happens only between concurrently running tasks.
  if (steal != nullptr && job.slot_pool == nullptr && submitted > 0) {
    for (int h = 0; h < pool_->num_threads(); ++h) {
      {
        MutexLock lock(&sync.mu);
        ++sync.remaining;
      }
      pool_->Submit([&sync, steal]() {
        steal->HelpDrain();
        MutexLock lock(&sync.mu);
        if (--sync.remaining == 0) sync.done_cv.NotifyAll();
      });
    }
  }
  Status first_error;
  std::vector<double> wasted_draws;
  {
    MutexLock lock(&sync.mu);
    while (sync.remaining != 0) sync.done_cv.Wait(&sync.mu);
    first_error = sync.first_error;
    stats.revoked_machines = sync.revoked_machines;
    stats.rescheduled_tasks = sync.rescheduled_tasks;
    stats.revoked_wasted_seconds = sync.revoked_wasted_seconds;
    wasted_draws = std::move(sync.wasted_draws);
  }

  if (cancelled) {
    return Status::Cancelled(
        StrCat("job '", job.name, "' cancelled after ", submitted, " of ",
               job.tasks.size(), " tasks"));
  }
  if (!first_error.ok()) return first_error;

  stats.duration_seconds = job_clock.ElapsedSeconds();
  for (const TaskRunInfo& run : stats.task_runs) {
    stats.total_task_seconds += run.duration_seconds;
    stats.stall_seconds += run.stall_seconds;
  }
  if (tracer != nullptr) tracer->AdvanceTime(stats.duration_seconds);

  if (options_.metrics != nullptr) {
    MetricsRegistry* m = options_.metrics;
    m->counter("engine.jobs")->Increment();
    m->counter("engine.tasks")->Add(stats.num_tasks);
    m->counter("engine.tasks.nonlocal")->Add(stats.num_non_local_tasks);
    Histogram* task_seconds = m->histogram("engine.task.seconds");
    Histogram* queue_wait = m->histogram("engine.task.queue_wait_seconds");
    Histogram* stall = m->histogram("engine.task.stall_seconds");
    for (const TaskRunInfo& run : stats.task_runs) {
      task_seconds->Observe(run.duration_seconds);
      queue_wait->Observe(run.start_seconds);
      stall->Observe(run.stall_seconds);
    }
    if (stats.revoked_machines > 0 || stats.rescheduled_tasks > 0) {
      m->counter("cluster.revoked.machines")->Add(stats.revoked_machines);
      m->counter("cluster.revoked.tasks")->Add(stats.rescheduled_tasks);
      Histogram* wasted = m->histogram("cluster.revoked.wasted_seconds");
      for (double w : wasted_draws) wasted->Observe(w);
    }
  }
  return stats;
}

}  // namespace cumulon
