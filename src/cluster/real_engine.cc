#include "cluster/real_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace cumulon {

RealEngine::RealEngine(const ClusterConfig& config,
                       const RealEngineOptions& options)
    : config_(config), options_(options) {
  int threads = options_.max_threads > 0
                    ? std::min(options_.max_threads, config_.total_slots())
                    : config_.total_slots();
  threads = std::max(threads, 1);
  pool_ = std::make_unique<ThreadPool>(threads);
}

Result<JobStats> RealEngine::RunJob(const JobSpec& job) {
  JobStats stats;
  stats.num_tasks = static_cast<int>(job.tasks.size());
  stats.waves = stats.num_tasks == 0
                    ? 0
                    : (stats.num_tasks + config_.total_slots() - 1) /
                          config_.total_slots();
  stats.task_runs.resize(job.tasks.size());

  std::mutex err_mu;
  Status first_error;
  Stopwatch job_clock;

  for (size_t i = 0; i < job.tasks.size(); ++i) {
    const Task& task = job.tasks[i];
    const int machine = static_cast<int>(i) % config_.num_machines;
    TaskRunInfo* run = &stats.task_runs[i];
    run->machine = machine;
    stats.bytes_read += task.cost.bytes_read;
    stats.bytes_written += task.cost.bytes_written;
    stats.shuffle_bytes += task.cost.shuffle_bytes;
    pool_->Submit([&, run, machine]() {
      Stopwatch task_clock;
      run->start_seconds = job_clock.ElapsedSeconds();
      if (task.work) {
        Status st;
        const int attempts = std::max(options_.max_attempts, 1);
        for (int attempt = 0; attempt < attempts; ++attempt) {
          st = task.work(machine);
          if (st.ok()) break;
        }
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) {
            first_error = Status(
                st.code(), StrCat("task '", task.name, "' failed after ",
                                  attempts, " attempt(s): ", st.message()));
          }
        }
      }
      run->duration_seconds = task_clock.ElapsedSeconds();
    });
  }
  pool_->WaitIdle();

  if (!first_error.ok()) return first_error;

  stats.duration_seconds = job_clock.ElapsedSeconds();
  for (const TaskRunInfo& run : stats.task_runs) {
    stats.total_task_seconds += run.duration_seconds;
  }
  return stats;
}

}  // namespace cumulon
