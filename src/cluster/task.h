#ifndef CUMULON_CLUSTER_TASK_H_
#define CUMULON_CLUSTER_TASK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace cumulon {

class SlotPool;     // sched/slot_pool.h; engines only hold a borrowed pointer
class StealDomain;  // cluster/steal_domain.h; borrowed, owned by the executor

/// Declared resource demands of one task, used by the simulator / cost
/// model to derive its duration on a given machine.
///
/// cpu_seconds_ref is normalized to the *reference machine* (1.0 effective
/// GFLOP/s per core); the engine divides by the target machine's
/// cpu_gflops. The cost model produces these numbers from its calibrated
/// per-tile operation models.
struct TaskCost {
  double cpu_seconds_ref = 0.0;
  int64_t bytes_read = 0;     // DFS reads; local disk when placement matches
  int64_t bytes_written = 0;  // DFS writes; replicated per engine options

  /// Of bytes_read, the bytes expected to be served by the node-local tile
  /// cache (reuse across tasks placed on the same machine). The simulator
  /// charges disk/net time only for the difference. 0 when caching is off.
  int64_t bytes_read_cached = 0;

  // MapReduce-baseline extras (zero for Cumulon's map-only jobs):
  int64_t shuffle_bytes = 0;      // always read over the network
  int64_t local_spill_bytes = 0;  // map-output spill: one local-disk copy
};

/// One schedulable unit of a job: a closure for real execution plus the
/// declared cost for simulation. `work` receives the machine index the task
/// was placed on (so tile reads/writes carry correct locality) and may be
/// empty for simulation-only plans.
struct Task {
  std::string name;
  std::function<Status(int machine)> work;
  TaskCost cost;
  std::vector<int> preferred_machines;  // replica holders of its inputs
};

/// A Cumulon job: a named bag of independent tasks (map-only; the paper's
/// execution model deliberately has no shuffle barrier inside a job).
///
/// The multi-tenant fields below are filled by the executor when the job
/// belongs to a plan running under a WorkloadManager; with their defaults
/// the engines behave exactly as before (exclusive slots, untagged spans).
struct JobSpec {
  std::string name;
  std::vector<Task> tasks;

  /// Identity of the submitting plan. plan_id tags engine metrics/span
  /// args; plan_tag prefixes task span names so concurrent runs are
  /// distinguishable in the Chrome trace export. plan_id < 0 = untagged.
  int64_t plan_id = -1;
  std::string plan_tag;

  /// Arbitrates the cluster's slots across concurrently running plans.
  /// The real engine leases one slot per in-flight task; the sim engine
  /// simulates on the plan's fair share. Borrowed; null = exclusive slots.
  SlotPool* slot_pool = nullptr;

  /// Checked between tasks: when it flips true the engine stops launching
  /// work and returns Status::Cancelled. Borrowed; null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;

  /// Trace span id of the enclosing job span (Executor::BeginJobTrace);
  /// engines stamp it as every task span's parent so nesting stays correct
  /// when several plans trace concurrently. 0 = let the tracer infer.
  int64_t trace_parent_span = 0;

  /// Intra-job work stealing (cluster/steal_domain.h). When set, the real
  /// engine arms the domain's per-job accounting and submits helper drains
  /// so idle workers serve straggler tasks' splits. Helpers are skipped
  /// under a slot_pool: a parked helper would hold a leased worker while
  /// other tenants' tasks queue behind it. Borrowed; null = no stealing.
  StealDomain* steal_domain = nullptr;
};

/// Where and when one task ran.
///
/// Concurrency contract: each TaskRunInfo is written by exactly one pool
/// worker (the one executing the task) and read by the RunJob driver only
/// after the job's completion latch observed every task finish — the latch
/// mutex (RealEngine's JobSync) publishes the writes, so no field here
/// needs its own guard. JobSpec is immutable while a job runs; the two
/// borrowed channels that ARE touched concurrently are `slot_pool`
/// (internally synchronized, sched/slot_pool.h) and `cancel` (an atomic
/// the submitter flips while engines poll it).
struct TaskRunInfo {
  int machine = -1;
  /// Execution lane within the machine: the scheduler slot in sim mode,
  /// the worker-thread index in real mode. Trace lanes key on
  /// (machine, slot).
  int slot = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool local = true;  // were its preferred machines honored?

  /// Time the task spent blocked on tile I/O: measured wait (async awaits
  /// + synchronous Gets) in real mode, the cost model's residual read time
  /// under the configured overlap fraction in sim mode.
  double stall_seconds = 0.0;

  /// Placement attempts this run consumed: 1 on the happy path, +1 for
  /// every retry after a failure or a mid-task machine revocation.
  int attempts = 1;
};

/// Outcome of running a job on an engine.
struct JobStats {
  double duration_seconds = 0.0;      // makespan
  double total_task_seconds = 0.0;    // sum of task durations
  int num_tasks = 0;
  int waves = 0;                      // ceil(tasks / total slots)
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t shuffle_bytes = 0;
  int num_non_local_tasks = 0;

  // Node-local tile-cache activity during the job: measured hit/miss
  // counts in real mode (engine cache counters), modeled cached bytes in
  // sim mode (sum of TaskCost::bytes_read_cached).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t bytes_read_cached = 0;

  /// Sum of TaskRunInfo::stall_seconds over the job — how much task time
  /// was I/O wait the prefetch pipeline did not hide.
  double stall_seconds = 0.0;

  // Intra-job work-stealing activity during the job (the executor fills
  // these from the StealDomain's counter deltas around RunJob; all zero
  // when stealing is off). Surfaced as exec.steal.* metrics.
  int64_t splits_enqueued = 0;
  int64_t splits_stolen = 0;
  int64_t steal_attempts = 0;

  // Out-of-core streaming activity during the job (the executor fills
  // these from the MemoryBudgetGroup's counter deltas around RunJob; all
  // zero without a memory budget). Evictions are pinned panels dropped
  // under budget pressure, refetches are previously spilled panels read
  // again from the DFS, unpinned reads streamed through without ever
  // being pinned. Surfaced as exec.spill.* metrics.
  int64_t spill_evictions = 0;
  int64_t spill_evicted_bytes = 0;
  int64_t spill_refetches = 0;
  int64_t spill_refetch_bytes = 0;
  int64_t spill_unpinned_reads = 0;

  // Transient-machine losses observed during the job (cloud/revocation.h):
  // machines whose revocation fired while this job ran, tasks whose
  // in-flight attempt was killed and re-placed on a surviving machine, and
  // the task-seconds those killed attempts had already burned.
  int revoked_machines = 0;
  int rescheduled_tasks = 0;
  double revoked_wasted_seconds = 0.0;

  std::vector<TaskRunInfo> task_runs;
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_TASK_H_
