#ifndef CUMULON_CLUSTER_REAL_ENGINE_H_
#define CUMULON_CLUSTER_REAL_ENGINE_H_

#include <memory>

#include "cluster/engine.h"
#include "common/thread_pool.h"

namespace cumulon {

struct RealEngineOptions {
  /// Caps the worker-thread count regardless of the configured slots, so
  /// large simulated clusters can still be "really" executed on a small
  /// host. 0 = use config.total_slots().
  int max_threads = 0;

  /// Hadoop-style task retry: a failing task is re-attempted up to this
  /// many times before its error fails the job.
  int max_attempts = 1;
};

/// Executes task closures for real on a thread pool and measures wall-clock
/// time. Tasks are assigned to virtual machines round-robin (so the DFS
/// locality accounting still sees a spread of reader/writer nodes).
class RealEngine : public Engine {
 public:
  RealEngine(const ClusterConfig& config, const RealEngineOptions& options);

  Result<JobStats> RunJob(const JobSpec& job) override;

  const ClusterConfig& config() const override { return config_; }

 private:
  ClusterConfig config_;
  RealEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_REAL_ENGINE_H_
