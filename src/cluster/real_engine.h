#ifndef CUMULON_CLUSTER_REAL_ENGINE_H_
#define CUMULON_CLUSTER_REAL_ENGINE_H_

#include <memory>

#include "cluster/engine.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cumulon {

class RevocationController;  // cloud/revocation.h; borrowed by the engine

struct RealEngineOptions {
  /// Caps the worker-thread count regardless of the configured slots, so
  /// large simulated clusters can still be "really" executed on a small
  /// host. 0 = use config.total_slots().
  int max_threads = 0;

  /// Hadoop-style task retry: a failing task is re-attempted up to this
  /// many times before its error fails the job.
  int max_attempts = 1;

  /// Place tasks that declare preferred_machines (DFS replica holders) on
  /// one of those machines when it still has spare capacity this job,
  /// instead of blind round-robin — the real-engine analogue of the sim
  /// engine's delay scheduling. Tasks without preferences keep the exact
  /// round-robin assignment. Also what makes the per-node tile cache hit:
  /// tasks sharing inputs land on the same machines.
  bool locality_aware = true;

  /// Own a per-machine node-local tile cache (attach it to the DfsTileStore
  /// via AttachCaches to activate). Sized from the machine profile's memory
  /// minus the slots' task working sets, the same split the optimizer's
  /// memory-feasibility filter assumes.
  bool enable_tile_cache = false;

  /// Fraction of a slot's RAM share reserved for task working sets when
  /// sizing the cache (mirrors TuneOptions::memory_fraction).
  double cache_slot_memory_fraction = 0.8;

  /// Overrides the derived per-machine cache size when > 0 (tests/benches).
  int64_t cache_bytes_per_node = 0;

  /// Injects a transient-machine fault plan (cloud/revocation.h) on the
  /// controller's wall clock (armed at its first use). Workers refuse to
  /// start attempts on a revoked machine and, when a machine dies under a
  /// running attempt, count the elapsed time as waste and rerun the task on
  /// a surviving machine — revocation reruns do not burn failure retries.
  /// The dead node's tile cache is dropped and a zero-width "revoke" span
  /// plus cluster.revoked.* metrics record the loss, exactly once per
  /// machine across the controller's lifetime. Borrowed; null disables
  /// fault injection entirely.
  RevocationController* revocation = nullptr;

  /// Records one span per task, stamped from the wall-clock stopwatch
  /// (plus the tracer's running offset); the span's lane is the worker
  /// thread that ran the task. Borrowed; falls back to GlobalTracer()
  /// when null.
  Tracer* tracer = nullptr;

  /// Engine-level counters/histograms (engine.* names; see
  /// docs/observability.md). Borrowed; disabled when null.
  MetricsRegistry* metrics = nullptr;
};

/// Executes task closures for real on a thread pool and measures wall-clock
/// time. Tasks preferring the machines that hold their inputs are placed
/// there while capacity lasts (see RealEngineOptions::locality_aware);
/// everything else is assigned round-robin so the DFS locality accounting
/// still sees a spread of reader/writer nodes.
class RealEngine : public Engine {
 public:
  RealEngine(const ClusterConfig& config, const RealEngineOptions& options);

  Result<JobStats> RunJob(const JobSpec& job) override;

  const ClusterConfig& config() const override { return config_; }

  TileCacheGroup* tile_caches() const override { return caches_.get(); }

 private:
  /// Greedy placement of every task of `job`: preferred machines first
  /// (least-loaded, capped at a balanced share), round-robin fallback.
  std::vector<int> PlaceTasks(const JobSpec& job) const;

  ClusterConfig config_;
  RealEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TileCacheGroup> caches_;
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_REAL_ENGINE_H_
