#ifndef CUMULON_CLUSTER_CLUSTER_CONFIG_H_
#define CUMULON_CLUSTER_CLUSTER_CONFIG_H_

#include <string>

#include "cloud/machine.h"

namespace cumulon {

/// A provisioned cluster: which machine type, how many of them, and how
/// many task slots each machine exposes. All three are decision variables
/// of Cumulon's deployment optimizer (the paper's "hardware provisioning
/// and configuration settings").
struct ClusterConfig {
  MachineProfile machine;
  int num_machines = 1;
  int slots_per_machine = 2;

  int total_slots() const { return num_machines * slots_per_machine; }

  std::string ToString() const;
};

}  // namespace cumulon

#endif  // CUMULON_CLUSTER_CLUSTER_CONFIG_H_
