#include "verify/verify.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/physical_job.h"
#include "matrix/kernel_config.h"

namespace cumulon {

bool VerifyChecksAreFatal() { return CUMULON_VERIFY_FATAL != 0; }

bool VerifyReport::Has(const std::string& reason) const {
  for (const VerifyIssue& issue : issues_) {
    if (issue.reason == reason) return true;
  }
  return false;
}

Status VerifyReport::ToStatus() const {
  if (issues_.empty()) return Status::OK();
  // Lead with the first issue's typed "[reason] " prefix so the slug
  // survives every Status-returning layer up to the wire (svc's
  // ErrorReason extracts it for the ERROR frame).
  std::string msg = StrCat("[", issues_[0].reason, "] ", issues_[0].message);
  if (issues_.size() > 1) {
    msg = StrCat(msg, " (+", issues_.size() - 1, " more: ");
    for (size_t i = 1; i < issues_.size(); ++i) {
      msg = StrCat(msg, i > 1 ? "; " : "", issues_[i].reason, ": ",
                   issues_[i].message);
    }
    msg = StrCat(msg, ")");
  }
  return Status::FailedPrecondition(std::move(msg));
}

std::string VerifyReport::ToString() const {
  if (issues_.empty()) return "ok";
  std::string out;
  for (const VerifyIssue& issue : issues_) {
    out = StrCat(out, issue.reason, ": ", issue.message, "\n");
  }
  return out;
}

namespace {

const char* KindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kInput:
      return "Input";
    case ExprKind::kMatMul:
      return "MatMul";
    case ExprKind::kEwBinary:
      return "EwBinary";
    case ExprKind::kEwUnary:
      return "EwUnary";
    case ExprKind::kTranspose:
      return "Transpose";
    case ExprKind::kRowSums:
      return "RowSums";
    case ExprKind::kColSums:
      return "ColSums";
  }
  return "?";
}

std::string NodeLabel(const Expr& node) {
  std::string label = StrCat(KindName(node.kind()), " ", node.rows(), "x",
                             node.cols());
  if (node.kind() == ExprKind::kInput) {
    label = StrCat(label, " '", node.input_name(), "'");
  }
  return label;
}

bool IsLeaf(ExprKind kind) { return kind == ExprKind::kInput; }
bool IsBinary(ExprKind kind) {
  return kind == ExprKind::kMatMul || kind == ExprKind::kEwBinary;
}

/// Collects every reachable node. Terminates on cyclic (corrupted) graphs
/// and reports the cycle; per-node passes then run over the collected set.
struct ExprWalk {
  std::vector<const Expr*> nodes;  // visit order
  bool cyclic = false;
};

ExprWalk CollectNodes(const ExprPtr& root) {
  ExprWalk walk;
  if (root == nullptr) return walk;
  // Iterative colored DFS: 1 = on the current path, 2 = done. A child on
  // the current path closes a cycle.
  std::map<const Expr*, int> color;
  struct Frame {
    const Expr* node;
    int next_child;  // 0 = left, 1 = right, 2 = done
  };
  std::vector<Frame> stack;
  stack.push_back({root.get(), 0});
  color[root.get()] = 1;
  walk.nodes.push_back(root.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Expr* child = nullptr;
    if (frame.next_child == 0) {
      child = frame.node->left().get();
    } else if (frame.next_child == 1) {
      child = frame.node->right().get();
    } else {
      color[frame.node] = 2;
      stack.pop_back();
      continue;
    }
    ++frame.next_child;
    if (child == nullptr) continue;
    auto it = color.find(child);
    if (it == color.end()) {
      color[child] = 1;
      walk.nodes.push_back(child);
      stack.push_back({child, 0});
    } else if (it->second == 1) {
      walk.cyclic = true;  // back edge onto the active path
    }
  }
  return walk;
}

void CheckNodeShape(const Expr& node, VerifyReport* report) {
  if (node.rows() <= 0 || node.cols() <= 0) {
    report->Add("verify.expr.shape",
                StrCat(NodeLabel(node), ": non-positive dimensions"));
    return;
  }
  const Expr* l = node.left().get();
  const Expr* r = node.right().get();
  switch (node.kind()) {
    case ExprKind::kInput:
      return;
    case ExprKind::kMatMul: {
      if (l == nullptr || r == nullptr) return;  // dangling pass reports
      if (l->cols() != r->rows()) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": inner dimensions disagree (",
                           l->cols(), " vs ", r->rows(), ")"));
      }
      if (node.rows() != l->rows() || node.cols() != r->cols()) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": result shape is not ",
                           l->rows(), "x", r->cols()));
      }
      return;
    }
    case ExprKind::kEwBinary: {
      if (l == nullptr || r == nullptr) return;
      // One side carries the full result shape; the other is the same
      // shape or a broadcast row (1 x cols) / column (rows x 1) vector.
      auto full = [&](const Expr* e) {
        return e->rows() == node.rows() && e->cols() == node.cols();
      };
      auto broadcastable = [&](const Expr* e) {
        return full(e) || (e->rows() == 1 && e->cols() == node.cols()) ||
               (e->cols() == 1 && e->rows() == node.rows());
      };
      if (!((full(l) && broadcastable(r)) || (full(r) && broadcastable(l)))) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": operands ", l->rows(), "x",
                           l->cols(), " and ", r->rows(), "x", r->cols(),
                           " do not combine element-wise to this shape"));
      }
      return;
    }
    case ExprKind::kEwUnary: {
      if (l == nullptr) return;
      if (node.rows() != l->rows() || node.cols() != l->cols()) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": shape differs from operand ",
                           l->rows(), "x", l->cols()));
      }
      return;
    }
    case ExprKind::kTranspose: {
      if (l == nullptr) return;
      if (node.rows() != l->cols() || node.cols() != l->rows()) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": not the transpose of ",
                           l->rows(), "x", l->cols()));
      }
      return;
    }
    case ExprKind::kRowSums: {
      if (l == nullptr) return;
      if (node.rows() != l->rows() || node.cols() != 1) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": row sums of ", l->rows(), "x",
                           l->cols(), " must be ", l->rows(), "x1"));
      }
      return;
    }
    case ExprKind::kColSums: {
      if (l == nullptr) return;
      if (node.rows() != 1 || node.cols() != l->cols()) {
        report->Add("verify.expr.shape",
                    StrCat(NodeLabel(node), ": column sums of ", l->rows(),
                           "x", l->cols(), " must be 1x", l->cols()));
      }
      return;
    }
  }
}

void CheckNodeEdges(const Expr& node, VerifyReport* report) {
  const bool has_left = node.left() != nullptr;
  const bool has_right = node.right() != nullptr;
  if (IsLeaf(node.kind())) {
    if (node.input_name().empty()) {
      report->Add("verify.expr.dangling",
                  StrCat(NodeLabel(node), ": input has no matrix name"));
    }
    if (has_left || has_right) {
      report->Add("verify.expr.dangling",
                  StrCat(NodeLabel(node), ": leaf node has child edges"));
    }
    return;
  }
  if (!has_left) {
    report->Add("verify.expr.dangling",
                StrCat(NodeLabel(node), ": missing left operand"));
  }
  if (IsBinary(node.kind()) && !has_right) {
    report->Add("verify.expr.dangling",
                StrCat(NodeLabel(node), ": missing right operand"));
  }
  if (!IsBinary(node.kind()) && has_right) {
    report->Add("verify.expr.dangling",
                StrCat(NodeLabel(node), ": unary node has a right operand"));
  }
}

/// Structural key of a node given its children's keys (name-based, the
/// same equivalence lowering's CSE uses before input resolution).
std::string StructuralKey(const Expr& node, const std::string& l,
                          const std::string& r) {
  switch (node.kind()) {
    case ExprKind::kInput:
      return StrCat("@", node.input_name());
    case ExprKind::kMatMul:
      return StrCat("(", l, "*", r, ")");
    case ExprKind::kEwBinary:
      return StrCat("(", l, " ", BinaryOpName(node.bop()), " ", r, ")");
    case ExprKind::kEwUnary:
      return StrCat(UnaryOpName(node.uop()), "[", node.scalar(), "](", l,
                    ")");
    case ExprKind::kTranspose:
      return StrCat("T(", l, ")");
    case ExprKind::kRowSums:
      return StrCat("rsum(", l, ")");
    case ExprKind::kColSums:
      return StrCat("csum(", l, ")");
  }
  return "?";
}

/// Memoized bottom-up structural key (each shared node keyed once).
const std::string& KeyOf(const Expr* node,
                         std::map<const Expr*, std::string>* memo) {
  static const std::string kEmpty;
  if (node == nullptr) return kEmpty;
  auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  const std::string l = KeyOf(node->left().get(), memo);
  const std::string r = KeyOf(node->right().get(), memo);
  return memo->emplace(node, StructuralKey(*node, l, r)).first->second;
}

/// CSE soundness: two nodes the structural key equates must agree on
/// shape, or lowering's key-indexed reuse substitutes a wrong-shaped
/// matrix. Skipped on cyclic graphs (the key recursion would not
/// terminate; the cycle pass already failed the report).
void CheckCseSoundness(const ExprWalk& walk, VerifyReport* report) {
  if (walk.cyclic) return;
  std::map<const Expr*, std::string> keys;
  std::map<std::string, const Expr*> first_with_key;
  for (const Expr* node : walk.nodes) {
    const std::string& key = KeyOf(node, &keys);
    auto [pos, inserted] = first_with_key.emplace(key, node);
    if (!inserted) {
      const Expr* other = pos->second;
      if (other->rows() != node->rows() || other->cols() != node->cols()) {
        report->Add("verify.expr.cse",
                    StrCat("structurally equal subtrees '", key,
                           "' have shapes ", other->rows(), "x",
                           other->cols(), " and ", node->rows(), "x",
                           node->cols()));
      }
    }
  }
}

VerifyReport VerifyExprInternal(const ExprPtr& root) {
  VerifyReport report;
  if (root == nullptr) {
    report.Add("verify.expr.dangling", "null expression root");
    return report;
  }
  const ExprWalk walk = CollectNodes(root);
  if (walk.cyclic) {
    report.Add("verify.expr.cycle",
               StrCat("expression graph rooted at ", NodeLabel(*root),
                      " contains a cycle"));
  }
  for (const Expr* node : walk.nodes) {
    CheckNodeEdges(*node, &report);
    CheckNodeShape(*node, &report);
  }
  CheckCseSoundness(walk, &report);
  return report;
}

/// Every Input leaf of every assignment resolves — against an earlier
/// target or an external binding — with a matching shape.
void PassProgramBindings(const Program& program,
                         const LogicalVerifyOptions& options,
                         VerifyReport* report) {
  std::map<std::string, std::pair<int64_t, int64_t>> bound =
      options.bindings;
  for (const Assignment& a : program.assignments) {
    if (a.expr == nullptr) continue;  // per-expr pass reports the null
    for (const Expr* node : CollectNodes(a.expr).nodes) {
      if (node->kind() != ExprKind::kInput) continue;
      auto it = bound.find(node->input_name());
      if (it == bound.end()) {
        if (options.require_bound) {
          report->Add("verify.program.unbound",
                      StrCat("assignment '", a.target, "' reads matrix '",
                             node->input_name(),
                             "' which is neither an input binding nor an "
                             "earlier target"));
        }
        continue;
      }
      if (it->second.first != node->rows() ||
          it->second.second != node->cols()) {
        report->Add("verify.program.unbound",
                    StrCat("assignment '", a.target, "' reads matrix '",
                           node->input_name(), "' as ", node->rows(), "x",
                           node->cols(), " but it is bound as ",
                           it->second.first, "x", it->second.second));
      }
    }
    bound.insert_or_assign(a.target, std::make_pair(a.expr->rows(),
                                                    a.expr->cols()));
  }
}

void PassProgramExprs(const Program& program, const LogicalVerifyOptions&,
                      VerifyReport* report) {
  for (const Assignment& a : program.assignments) {
    VerifyReport sub = VerifyExprInternal(a.expr);
    for (const VerifyIssue& issue : sub.issues()) {
      report->Add(issue.reason,
                  StrCat("assignment '", a.target, "': ", issue.message));
    }
  }
}

// ---------------------------------------------------------------------------
// Physical-plan passes.

void CheckSplit(const MatMulParams& params, int64_t gi, int64_t gj,
                int64_t gk, const std::string& where, VerifyReport* report) {
  if (params.bi < 1 || params.bj < 1) {
    report->Add("verify.split",
                StrCat(where, ": block extents bi=", params.bi,
                       " bj=", params.bj, " must be >= 1"));
    return;
  }
  if (params.bk < 0) {
    report->Add("verify.split",
                StrCat(where, ": bk=", params.bk,
                       " is negative (use 0 for no split-k)"));
    return;
  }
  if (gi < 0 || gj < 0 || gk < 0) return;  // shape-generic screening only
  // Ceil-division tiling arithmetic: the block ranges must cover the grid
  // exactly, with a final short tail in [1, b]. This recomputes the
  // coverage from first principles instead of trusting the job's loops.
  auto covers = [&](int64_t grid, int64_t block, const char* axis) {
    const int64_t blocks = (grid + block - 1) / block;
    const int64_t tail = grid - (blocks - 1) * block;
    if (blocks < 1 || tail < 1 || tail > block ||
        (blocks - 1) * block + tail != grid) {
      report->Add("verify.split",
                  StrCat(where, ": blocks of ", block, " cannot tile the ",
                         axis, " grid of ", grid));
    }
  };
  covers(gi, params.bi, "i");
  covers(gj, params.bj, "j");
  if (params.bk > 0) covers(gk, params.bk, "k");
}

/// True when this MatMul job's split parameters are well-formed; used both
/// as the split pass and as the coverage pass's guard (a bi=0 job would
/// hang Build's blocking loops, so it must never reach them).
bool MatMulSplitOk(const MatMulJob& mm) {
  VerifyReport scratch;
  CheckSplit(mm.params(), mm.a().layout.grid_rows(),
             mm.b().layout.grid_cols(), mm.a().layout.grid_cols(), "",
             &scratch);
  return scratch.ok();
}

void PassPlanSplits(const PhysicalPlan& plan, const PlanVerifyOptions&,
                    VerifyReport* report) {
  for (const auto& job : plan.jobs) {
    const auto* mm = dynamic_cast<const MatMulJob*>(job.get());
    if (mm == nullptr) continue;
    CheckSplit(mm->params(), mm->a().layout.grid_rows(),
               mm->b().layout.grid_cols(), mm->a().layout.grid_cols(),
               StrCat("job '", mm->name(), "'"), report);
  }
}

/// Job-dependency soundness over the sequential job order: a matrix is
/// produced by at most one job, every consumer runs after its producer
/// (a violation is exactly a cycle in the implicit dependency DAG), and —
/// when the caller knows the resident set — every consumed matrix is
/// either produced in-plan or already in the DFS.
void PassPlanDependencies(const PhysicalPlan& plan,
                          const PlanVerifyOptions& options,
                          VerifyReport* report) {
  std::map<std::string, size_t> producer;
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    if (plan.jobs[j] == nullptr) {
      report->Add("verify.plan.dependency",
                  StrCat("job #", j, " is null"));
      continue;
    }
    for (const std::string& out : plan.jobs[j]->OutputMatrices()) {
      auto [pos, inserted] = producer.emplace(out, j);
      if (!inserted) {
        report->Add("verify.plan.dependency",
                    StrCat("matrix '", out, "' is produced by both job '",
                           plan.jobs[pos->second]->name(), "' and job '",
                           plan.jobs[j]->name(), "'"));
      }
    }
  }
  for (size_t j = 0; j < plan.jobs.size(); ++j) {
    if (plan.jobs[j] == nullptr) continue;
    for (const std::string& in : plan.jobs[j]->InputMatrices()) {
      auto it = producer.find(in);
      if (it != producer.end()) {
        if (it->second >= j) {
          report->Add(
              "verify.plan.dependency",
              StrCat("job '", plan.jobs[j]->name(), "' consumes '", in,
                     "' which is not produced until job '",
                     plan.jobs[it->second]->name(),
                     "' (dependency cycle / order violation)"));
        }
      } else if (options.check_external &&
                 options.external_matrices.count(in) == 0) {
        report->Add("verify.plan.dependency",
                    StrCat("job '", plan.jobs[j]->name(), "' consumes '", in,
                           "' which no job produces and which is not "
                           "resident in the DFS"));
      }
    }
  }
}

/// Exactly-once tile production: a dry Build (attach_work off, the same
/// simulation-only mode the tuner probes with) yields every task's
/// declared output tiles; per matrix they must form a dense grid with no
/// tile produced twice and no gap.
void PassPlanCoverage(const PhysicalPlan& plan,
                      const PlanVerifyOptions& options,
                      VerifyReport* report) {
  static const TileOpCostModel kDefaultCost;
  BuildContext ctx;
  ctx.store = nullptr;
  ctx.cost = options.cost != nullptr ? options.cost : &kDefaultCost;
  ctx.attach_work = false;
  ctx.query_locality = false;

  std::map<std::string, std::map<TileId, int>> produced;
  std::map<std::string, std::string> producer_name;
  for (const auto& job : plan.jobs) {
    if (job == nullptr) continue;  // dependency pass reports it
    if (const auto* mm = dynamic_cast<const MatMulJob*>(job.get())) {
      if (!MatMulSplitOk(*mm)) continue;  // split pass reports it
    }
    auto built = job->Build(ctx);
    if (!built.ok()) {
      report->Add("verify.plan.build",
                  StrCat("job '", job->name(), "' fails to build: ",
                         built.status().message()));
      continue;
    }
    std::set<std::string> tiled;
    for (const auto& task : built->task_outputs) {
      for (const TileOutput& out : task) {
        ++produced[out.matrix][out.id];
        producer_name.emplace(out.matrix, job->name());
        tiled.insert(out.matrix);
      }
    }
    for (const std::string& out : job->OutputMatrices()) {
      if (tiled.count(out) == 0) {
        report->Add("verify.plan.coverage",
                    StrCat("job '", job->name(), "' declares output '", out,
                           "' but produces no tiles for it"));
      }
    }
  }

  for (const auto& [matrix, tiles] : produced) {
    int64_t grid_rows = 0;
    int64_t grid_cols = 0;
    for (const auto& [id, count] : tiles) {
      grid_rows = std::max(grid_rows, id.row + 1);
      grid_cols = std::max(grid_cols, id.col + 1);
      if (count > 1) {
        report->Add("verify.plan.coverage",
                    StrCat("tile (", id.row, ",", id.col, ") of '", matrix,
                           "' is produced ", count, " times by job '",
                           producer_name[matrix], "'"));
      }
      if (id.row < 0 || id.col < 0) {
        report->Add("verify.plan.coverage",
                    StrCat("tile (", id.row, ",", id.col, ") of '", matrix,
                           "' has a negative grid index"));
      }
    }
    if (static_cast<int64_t>(tiles.size()) < grid_rows * grid_cols) {
      for (int64_t r = 0; r < grid_rows; ++r) {
        for (int64_t c = 0; c < grid_cols; ++c) {
          if (tiles.count(TileId{r, c}) == 0) {
            report->Add("verify.plan.coverage",
                        StrCat("tile (", r, ",", c, ") of '", matrix,
                               "' is never produced (grid ", grid_rows, "x",
                               grid_cols, ")"));
          }
        }
      }
    }
  }
}

void PassPlanBudget(const PhysicalPlan&, const PlanVerifyOptions& options,
                    VerifyReport* report) {
  if (options.memory_budget_bytes <= 0) return;
  if (options.cache_reserve_bytes >= options.memory_budget_bytes) {
    report->Add("verify.budget.infeasible",
                StrCat("memory_budget_bytes (", options.memory_budget_bytes,
                       ") does not cover the tile cache's per-node "
                       "reservation (", options.cache_reserve_bytes, ")"));
  }
}

void PassPlanDeterminism(const PhysicalPlan& plan,
                         const PlanVerifyOptions& options,
                         VerifyReport* report) {
  if (!plan.determinism.recorded) {
    if (options.require_determinism) {
      report->Add("verify.plan.determinism",
                  "plan carries no determinism contract (seed + resolved "
                  "ReduceMode); replays are not guaranteed bit-identical");
    }
    return;
  }
  if (plan.determinism.reduce_mode == ReduceMode::kAuto) {
    report->Add("verify.plan.determinism",
                "recorded ReduceMode is kAuto — the contract must record "
                "the resolved (ordered/fast) mode, or a replay under a "
                "different CUMULON_REDUCE differs bit-wise");
  }
}

}  // namespace

const std::vector<LogicalPassInfo>& LogicalPasses() {
  static const std::vector<LogicalPassInfo> passes = {
      {"expr-invariants",
       "verify.expr.shape / verify.expr.cycle / verify.expr.dangling / "
       "verify.expr.cse",
       &PassProgramExprs},
      {"program-bindings", "verify.program.unbound", &PassProgramBindings},
  };
  return passes;
}

const std::vector<PlanPassInfo>& PlanPasses() {
  static const std::vector<PlanPassInfo> passes = {
      {"job-dependencies", "verify.plan.dependency", &PassPlanDependencies},
      {"matmul-splits", "verify.split", &PassPlanSplits},
      {"tile-coverage", "verify.plan.build / verify.plan.coverage",
       &PassPlanCoverage},
      {"budget-feasibility", "verify.budget.infeasible", &PassPlanBudget},
      {"determinism-contract", "verify.plan.determinism",
       &PassPlanDeterminism},
  };
  return passes;
}

VerifyReport VerifyExpr(const ExprPtr& root) {
  return VerifyExprInternal(root);
}

VerifyReport VerifyProgram(const Program& program,
                           const LogicalVerifyOptions& options) {
  VerifyReport report;
  for (const LogicalPassInfo& pass : LogicalPasses()) {
    pass.run(program, options, &report);
  }
  return report;
}

VerifyReport VerifyPlan(const PhysicalPlan& plan,
                        const PlanVerifyOptions& options) {
  VerifyReport report;
  for (const PlanPassInfo& pass : PlanPasses()) {
    pass.run(plan, options, &report);
  }
  return report;
}

VerifyReport VerifyMatMulSplit(const MatMulParams& params, int64_t gi,
                               int64_t gj, int64_t gk) {
  VerifyReport report;
  CheckSplit(params, gi, gj, gk, StrCat("split ", params.ToString()),
             &report);
  return report;
}

namespace {

Status Finish(const VerifyReport& report, const char* what,
              MetricsRegistry* metrics, Tracer* tracer) {
  MetricsRegistry* reg =
      metrics != nullptr ? metrics : MetricsRegistry::Default();
  reg->counter("verify.runs")->Increment();
  if (!report.ok()) {
    reg->counter("verify.failures")->Increment();
    reg->counter("verify.issues")
        ->Add(static_cast<int64_t>(report.issues().size()));
  }
  Tracer* tr = tracer != nullptr ? tracer : GlobalTracer();
  if (tr != nullptr) {
    TraceSpan span;
    span.name = what;
    span.category = "verify";
    span.parent_id = -1;  // driver-lane marker, never under a job span
    span.machine = -1;
    span.args.emplace_back("issues",
                           static_cast<double>(report.issues().size()));
    tr->AddSpan(std::move(span));
  }
  return report.ToStatus();
}

}  // namespace

Status VerifyProgramStatus(const Program& program,
                           const LogicalVerifyOptions& options,
                           MetricsRegistry* metrics, Tracer* tracer) {
  return Finish(VerifyProgram(program, options), "verify-program", metrics,
                tracer);
}

Status VerifyPlanStatus(const PhysicalPlan& plan,
                        const PlanVerifyOptions& options,
                        MetricsRegistry* metrics, Tracer* tracer) {
  return Finish(VerifyPlan(plan, options), "verify-plan", metrics, tracer);
}

void VerifyProgramOrDie(const Program& program,
                        const LogicalVerifyOptions& options) {
  const Status status = VerifyProgramStatus(program, options);
  if (VerifyChecksAreFatal()) {
    CUMULON_CHECK(status.ok()) << "logical IR verification failed:\n"
                               << status.ToString();
  }
}

void VerifyPlanOrDie(const PhysicalPlan& plan,
                     const PlanVerifyOptions& options) {
  const Status status = VerifyPlanStatus(plan, options);
  if (VerifyChecksAreFatal()) {
    CUMULON_CHECK(status.ok()) << "physical plan verification failed:\n"
                               << status.ToString();
  }
}

}  // namespace cumulon
