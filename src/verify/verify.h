#ifndef CUMULON_VERIFY_VERIFY_H_
#define CUMULON_VERIFY_VERIFY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "exec/physical_plan.h"
#include "lang/expr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// Static-analysis passes over both IRs (the logical Expr DAG and the
/// physical job plan), LLVM-verifier style: every pipeline stage that
/// rewrites or hands off a plan re-checks the invariants the next stage
/// silently assumes, so a miscompile fails immediately at the stage that
/// introduced it instead of corrupting results mid-execution on a paid
/// fleet.
///
/// Each pass reports issues under a typed `verify.*` reason slug (the same
/// "[reason] " Status-message prefix the service's wire errors use, so a
/// rejected SUBMIT carries the exact invariant that failed):
///
///   verify.expr.shape        node dims not derivable from its children
///   verify.expr.cycle        the expression graph is not a DAG
///   verify.expr.dangling     missing/extra child edges for the node kind
///   verify.expr.cse          structurally equal subtrees disagree on shape
///   verify.program.unbound   an Input leaf has no binding or a shape clash
///   verify.plan.dependency   consumed before produced / produced twice /
///                            consumed but never produced nor DFS-resident
///   verify.plan.build        a job fails its own Build-time validation
///   verify.plan.coverage     an output tile produced twice or never
///   verify.split             MatMul split params cannot tile the grid
///   verify.budget.infeasible memory budget below the cache reservation
///   verify.plan.determinism  seed / resolved ReduceMode not recorded
///
/// Pipeline edges wired to these checks: after logical_optimizer rewrites,
/// at the end of Lower(), inside opt/search + opt/job_tuner candidate
/// enumeration, at WorkloadManager::Submit admission, and at svc SUBMIT.
/// Internal edges die via CHECK when CUMULON_VERIFY_FATAL is on (default
/// in !NDEBUG builds); external admission edges always return the typed
/// Status — rejection is their contract, not a crash.
namespace cumulon {

/// Compile-time switch for the die-on-failure behavior, following the
/// lock-order validator's pattern: on in debug builds, off under NDEBUG,
/// overridable either way with -DCUMULON_VERIFY_FATAL=0/1.
#if !defined(CUMULON_VERIFY_FATAL)
#if defined(NDEBUG)
#define CUMULON_VERIFY_FATAL 0
#else
#define CUMULON_VERIFY_FATAL 1
#endif
#endif

/// True when verifier failures on internal compiler edges abort the
/// process (CUMULON_VERIFY_FATAL) instead of degrading to a Status.
bool VerifyChecksAreFatal();

/// One invariant violation: the typed reason slug plus a human message.
struct VerifyIssue {
  std::string reason;   // "verify.plan.dependency", ...
  std::string message;
};

/// Accumulated findings of a verifier run. Empty = the IR is sound.
class [[nodiscard]] VerifyReport {
 public:
  void Add(std::string reason, std::string message) {
    issues_.push_back({std::move(reason), std::move(message)});
  }
  void Merge(VerifyReport other) {
    for (VerifyIssue& issue : other.issues_) {
      issues_.push_back(std::move(issue));
    }
  }

  bool ok() const { return issues_.empty(); }
  const std::vector<VerifyIssue>& issues() const { return issues_; }

  /// True if any issue carries exactly this reason slug.
  bool Has(const std::string& reason) const;

  /// OK, or FailedPrecondition whose message leads with the first issue's
  /// "[reason] " prefix (svc's typed-error idiom) and lists every issue.
  Status ToStatus() const;

  /// "ok" or one line per issue.
  std::string ToString() const;

 private:
  std::vector<VerifyIssue> issues_;
};

/// Options of the logical-IR passes.
struct LogicalVerifyOptions {
  /// Shapes (rows, cols) of externally bound input matrices. Inputs bound
  /// here are shape-checked against their uses.
  std::map<std::string, std::pair<int64_t, int64_t>> bindings;

  /// Flag Input leaves that are neither in `bindings` nor produced by an
  /// earlier assignment. Off by default: the optimizer edge runs before
  /// bindings are known, so only shape clashes are detectable there.
  bool require_bound = false;
};

/// Options of the physical-plan passes.
struct PlanVerifyOptions {
  /// Cost model for the dry Build the coverage pass runs (attach_work off;
  /// exactly the simulation-only build the tuner uses). Null = a shared
  /// default-constructed model — coverage only needs the task split
  /// arithmetic, not calibrated constants.
  const TileOpCostModel* cost = nullptr;

  /// Matrices resident in the DFS before the plan runs. Only enforced when
  /// `check_external` is on (the lowering edge knows its bindings; the
  /// admission edges cannot enumerate a TileStore and skip residency).
  std::set<std::string> external_matrices;
  bool check_external = false;

  /// Budget feasibility (verify.budget.infeasible): with a positive
  /// budget, it must exceed the per-node tile-cache reservation or the
  /// executor cannot even fund the cache. 0 = pass skipped.
  int64_t memory_budget_bytes = 0;
  int64_t cache_reserve_bytes = 0;

  /// Require the lowering-stamped determinism contract (seed + resolved
  /// ReduceMode) so a replay of this plan is bit-identical. On for lowered
  /// plans; off for hand-assembled plans submitted directly.
  bool require_determinism = false;
};

/// A named pass, so callers can enumerate/compose the suite (DESIGN.md
/// "Plan verification" documents the table).
struct LogicalPassInfo {
  const char* name;
  const char* reason;  // primary verify.* slug the pass emits
  void (*run)(const Program& program, const LogicalVerifyOptions& options,
              VerifyReport* report);
};
struct PlanPassInfo {
  const char* name;
  const char* reason;
  void (*run)(const PhysicalPlan& plan, const PlanVerifyOptions& options,
              VerifyReport* report);
};
const std::vector<LogicalPassInfo>& LogicalPasses();
const std::vector<PlanPassInfo>& PlanPasses();

/// Runs the expression-DAG passes (shape, cycle, dangling, cse) on one
/// expression. Cycle-safe: traversal uses a visited set, so even a
/// corrupted cyclic graph terminates.
VerifyReport VerifyExpr(const ExprPtr& root);

/// Runs every logical pass over a whole program (per-assignment VerifyExpr
/// plus the unbound-input pass).
VerifyReport VerifyProgram(const Program& program,
                           const LogicalVerifyOptions& options = {});

/// Runs every physical pass over a plan.
VerifyReport VerifyPlan(const PhysicalPlan& plan,
                        const PlanVerifyOptions& options = {});

/// Checks that MatMul split parameters (bi, bj, bk) tile a (gi x gj x gk)
/// tile grid: positive block extents, and the ceil-division block ranges
/// cover every tile exactly once with a correct short tail. Negative grid
/// extents skip the grid-dependent arithmetic (shape-generic candidates in
/// opt/search are screened before the grid is known).
VerifyReport VerifyMatMulSplit(const MatMulParams& params, int64_t gi = -1,
                               int64_t gj = -1, int64_t gk = -1);

/// Status-returning entry points: run the suite, bump the verify.runs /
/// verify.failures / verify.issues counters, record a "verify" trace
/// marker, and return VerifyReport::ToStatus(). Null registry/tracer =
/// MetricsRegistry::Default() / GlobalTracer().
Status VerifyProgramStatus(const Program& program,
                           const LogicalVerifyOptions& options = {},
                           MetricsRegistry* metrics = nullptr,
                           Tracer* tracer = nullptr);
Status VerifyPlanStatus(const PhysicalPlan& plan,
                        const PlanVerifyOptions& options = {},
                        MetricsRegistry* metrics = nullptr,
                        Tracer* tracer = nullptr);

/// Die-in-debug wrappers for internal compiler edges: CHECK-fail with the
/// full report when VerifyChecksAreFatal(), otherwise just record the
/// metrics (the caller's Status path handles release-mode degradation).
void VerifyProgramOrDie(const Program& program,
                        const LogicalVerifyOptions& options = {});
void VerifyPlanOrDie(const PhysicalPlan& plan,
                     const PlanVerifyOptions& options = {});

}  // namespace cumulon

#endif  // CUMULON_VERIFY_VERIFY_H_
