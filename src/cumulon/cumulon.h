#ifndef CUMULON_CUMULON_H_
#define CUMULON_CUMULON_H_

/// Umbrella header: the public API of the Cumulon reproduction.
///
/// Layering (bottom to top):
///   common   - Status/Result, logging, RNG, thread pool
///   matrix   - tiles, tile kernels, layouts, tile stores
///   dfs      - simulated HDFS and the DFS-backed tile store
///   cloud    - machine catalog and pricing
///   cluster  - jobs/tasks, simulated & real execution engines
///   cost     - calibrated per-tile operation cost models
///   exec     - Cumulon physical operators, plans, executor
///   lang     - logical matrix algebra, optimizer, lowering, workloads
///   baseline - MapReduce-style RMM/CPMM comparison strategies
///   sched    - slot arbitration and the multi-tenant workload manager
///   opt      - deployment predictor and time/budget-constrained search
///   svc      - long-lived service daemon: wire protocol, tenant sessions,
///              submission service, socket server, closed-loop load gen
///   obs      - metrics registry and execution tracer (cross-cutting)

#include "baseline/mr_matmul.h"
#include "cloud/machine.h"
#include "cloud/revocation.h"
#include "cluster/cluster_config.h"
#include "cluster/engine.h"
#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "cost/regression.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "dfs/sparse_tile_store.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "exec/report.h"
#include "exec/sparse_matmul_job.h"
#include "lang/driver.h"
#include "lang/expr.h"
#include "lang/interpreter.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_tile.h"
#include "matrix/tile_io.h"
#include "matrix/tiled_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/elastic.h"
#include "opt/job_tuner.h"
#include "opt/predictor.h"
#include "opt/search.h"
#include "sched/elastic.h"
#include "sched/slot_pool.h"
#include "sched/workload_manager.h"
#include "svc/catalog.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/loadgen.h"
#include "svc/message.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/session.h"
#include "svc/wire.h"

#endif  // CUMULON_CUMULON_H_
