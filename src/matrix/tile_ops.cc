#include "matrix/tile_ops.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "matrix/gemm_packed.h"
#include "matrix/kernel_config.h"

namespace cumulon {

namespace {
/// True when `mode` resolves to the packed/vector path on this machine
/// (CPUID + CUMULON_KERNEL override, see kernel_config.h).
bool UseSimd(KernelMode mode) {
  return ResolveKernelMode(mode) == KernelMode::kSimd;
}

/// True when `mode` resolves to the reorder-tolerant fast reduction path
/// (CUMULON_REDUCE override, see kernel_config.h).
bool UseFastReduce(ReduceMode mode) {
  return ResolveReduceMode(mode) == ReduceMode::kFast;
}

/// Four-lane unrolled sum: splits the serial dependency chain so the adds
/// pipeline (and the compiler may vectorize the lanes). Reassociates the
/// terms — fast-mode only, never the oracle.
double SumFast(const double* d, int64_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += d[i];
    s1 += d[i + 1];
    s2 += d[i + 2];
    s3 += d[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += d[i];
  return s;
}

double SumSquaresFast(const double* d, int64_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += d[i] * d[i];
    s1 += d[i + 1] * d[i + 1];
    s2 += d[i + 2] * d[i + 2];
    s3 += d[i + 3] * d[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += d[i] * d[i];
  return s;
}
}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "add";
    case BinaryOp::kSub:
      return "sub";
    case BinaryOp::kMul:
      return "mul";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMax:
      return "max";
    case BinaryOp::kMin:
      return "min";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kScale:
      return "scale";
    case UnaryOp::kAddScalar:
      return "add_scalar";
    case UnaryOp::kPow:
      return "pow";
    case UnaryOp::kExp:
      return "exp";
    case UnaryOp::kLog:
      return "log";
    case UnaryOp::kAbs:
      return "abs";
    case UnaryOp::kSqrt:
      return "sqrt";
    case UnaryOp::kSigmoid:
      return "sigmoid";
    case UnaryOp::kRecip:
      return "recip";
  }
  return "?";
}

double ApplyBinary(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return a / b;
    case BinaryOp::kMax:
      return std::max(a, b);
    case BinaryOp::kMin:
      return std::min(a, b);
  }
  return 0.0;
}

double ApplyUnary(UnaryOp op, double x, double scalar) {
  switch (op) {
    case UnaryOp::kScale:
      return x * scalar;
    case UnaryOp::kAddScalar:
      return x + scalar;
    case UnaryOp::kPow:
      return std::pow(x, scalar);
    case UnaryOp::kExp:
      return std::exp(x);
    case UnaryOp::kLog:
      return std::log(x);
    case UnaryOp::kAbs:
      return std::abs(x);
    case UnaryOp::kSqrt:
      return std::sqrt(x);
    case UnaryOp::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case UnaryOp::kRecip:
      return 1.0 / x;
  }
  return 0.0;
}

Status Gemm(const Tile& a, const Tile& b, double alpha, double beta, Tile* c) {
  return GemmWithMode(KernelMode::kAuto, a, b, alpha, beta, c);
}

Status GemmWithMode(KernelMode mode, const Tile& a, const Tile& b,
                    double alpha, double beta, Tile* c) {
  if (UseSimd(mode)) {
    return kernel_internal::GemmPackedAvx2(a, b, alpha, beta, c);
  }
  return GemmScalar(a, b, alpha, beta, c);
}

Status GemmScalar(const Tile& a, const Tile& b, double alpha, double beta,
                  Tile* c) {
  if (a.cols() != b.rows() || a.rows() != c->rows() || b.cols() != c->cols()) {
    return Status::InvalidArgument(
        StrCat("gemm shape mismatch: A ", a.rows(), "x", a.cols(), ", B ",
               b.rows(), "x", b.cols(), ", C ", c->rows(), "x", c->cols()));
  }
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  double* cd = c->mutable_data();
  if (beta == 0.0) {
    // Overwrite semantics: never read stale C memory (also avoids NaN/Inf
    // leakage from uninitialized accumulators, since 0 * NaN != 0).
    std::fill(cd, cd + m * n, 0.0);
  } else if (beta != 1.0) {
    for (int64_t i = 0; i < m * n; ++i) cd[i] *= beta;
  }
  const double* ad = a.data();
  const double* bd = b.data();
  // i-k-j order with cache blocking, plus a 2x4 register block inside each
  // cache block: two C rows and four C columns live in registers across the
  // whole kk range, so each loaded B value feeds two FMAs and each A value
  // four, instead of one. Every C element still receives its k terms in
  // ascending order as separate adds (the accumulator starts from the
  // element's current value), so results are bit-identical to the plain
  // i-k-j loop — for any block size, which is why cache_block is freely
  // tunable (kernel_config.h, derived from L2 at startup).
  const int64_t kBlock = GetKernelConfig().cache_block;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const int64_t k1 = std::min(k0 + kBlock, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
        const int64_t j1 = std::min(j0 + kBlock, n);
        int64_t i = i0;
        for (; i + 1 < i1; i += 2) {
          double* __restrict c0 = cd + i * n;
          double* __restrict c1 = cd + (i + 1) * n;
          const double* __restrict a0 = ad + i * k;
          const double* __restrict a1 = ad + (i + 1) * k;
          int64_t j = j0;
          for (; j + 3 < j1; j += 4) {
            double s00 = c0[j], s01 = c0[j + 1];
            double s02 = c0[j + 2], s03 = c0[j + 3];
            double s10 = c1[j], s11 = c1[j + 1];
            double s12 = c1[j + 2], s13 = c1[j + 3];
            for (int64_t kk = k0; kk < k1; ++kk) {
              const double av0 = alpha * a0[kk];
              const double av1 = alpha * a1[kk];
              const double* __restrict brow = bd + kk * n;
              s00 += av0 * brow[j];
              s01 += av0 * brow[j + 1];
              s02 += av0 * brow[j + 2];
              s03 += av0 * brow[j + 3];
              s10 += av1 * brow[j];
              s11 += av1 * brow[j + 1];
              s12 += av1 * brow[j + 2];
              s13 += av1 * brow[j + 3];
            }
            c0[j] = s00;
            c0[j + 1] = s01;
            c0[j + 2] = s02;
            c0[j + 3] = s03;
            c1[j] = s10;
            c1[j + 1] = s11;
            c1[j + 2] = s12;
            c1[j + 3] = s13;
          }
          for (; j < j1; ++j) {
            double s0 = c0[j], s1 = c1[j];
            for (int64_t kk = k0; kk < k1; ++kk) {
              const double av0 = alpha * a0[kk];
              const double av1 = alpha * a1[kk];
              const double* __restrict brow = bd + kk * n;
              s0 += av0 * brow[j];
              s1 += av1 * brow[j];
            }
            c0[j] = s0;
            c1[j] = s1;
          }
        }
        for (; i < i1; ++i) {
          double* __restrict crow = cd + i * n;
          const double* __restrict arow = ad + i * k;
          int64_t j = j0;
          for (; j + 3 < j1; j += 4) {
            double s0 = crow[j], s1 = crow[j + 1];
            double s2 = crow[j + 2], s3 = crow[j + 3];
            for (int64_t kk = k0; kk < k1; ++kk) {
              const double av = alpha * arow[kk];
              const double* __restrict brow = bd + kk * n;
              s0 += av * brow[j];
              s1 += av * brow[j + 1];
              s2 += av * brow[j + 2];
              s3 += av * brow[j + 3];
            }
            crow[j] = s0;
            crow[j + 1] = s1;
            crow[j + 2] = s2;
            crow[j + 3] = s3;
          }
          for (; j < j1; ++j) {
            double s = crow[j];
            for (int64_t kk = k0; kk < k1; ++kk) {
              const double av = alpha * arow[kk];
              s += av * bd[kk * n + j];
            }
            crow[j] = s;
          }
        }
      }
    }
  }
  return Status::OK();
}

Status EwBinary(BinaryOp op, const Tile& a, const Tile& b, Tile* out) {
  return EwBinaryWithMode(KernelMode::kAuto, op, a, b, out);
}

Status EwBinaryWithMode(KernelMode mode, BinaryOp op, const Tile& a,
                        const Tile& b, Tile* out) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      a.rows() != out->rows() || a.cols() != out->cols()) {
    return Status::InvalidArgument("element-wise shape mismatch");
  }
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->mutable_data();
  const int64_t n = a.size();
  if (UseSimd(mode)) {
    kernel_internal::EwBinaryAvx2(op, ad, bd, od, n);
    return Status::OK();
  }
  switch (op) {
    case BinaryOp::kAdd:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] + bd[i];
      break;
    case BinaryOp::kSub:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] - bd[i];
      break;
    case BinaryOp::kMul:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] * bd[i];
      break;
    case BinaryOp::kDiv:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] / bd[i];
      break;
    case BinaryOp::kMax:
      for (int64_t i = 0; i < n; ++i) od[i] = std::max(ad[i], bd[i]);
      break;
    case BinaryOp::kMin:
      for (int64_t i = 0; i < n; ++i) od[i] = std::min(ad[i], bd[i]);
      break;
  }
  return Status::OK();
}

Status EwBroadcast(BinaryOp op, const Tile& a, const Tile& vec,
                   bool row_vector, bool swapped, Tile* out) {
  return EwBroadcastWithMode(KernelMode::kAuto, op, a, vec, row_vector,
                             swapped, out);
}

Status EwBroadcastWithMode(KernelMode mode, BinaryOp op, const Tile& a,
                           const Tile& vec, bool row_vector, bool swapped,
                           Tile* out) {
  if (a.rows() != out->rows() || a.cols() != out->cols()) {
    return Status::InvalidArgument("broadcast output shape mismatch");
  }
  if (row_vector) {
    if (vec.rows() != 1 || vec.cols() != a.cols()) {
      return Status::InvalidArgument("row-vector broadcast shape mismatch");
    }
  } else {
    if (vec.cols() != 1 || vec.rows() != a.rows()) {
      return Status::InvalidArgument("col-vector broadcast shape mismatch");
    }
  }
  if (UseSimd(mode)) {
    // Row case: each output row is `a_row op vec` (or swapped) — the plain
    // vector-vector kernel per row. Column case: vec(r) is a loop-invariant
    // scalar per row — the vector-scalar kernel. Both bit-identical.
    const double* ad = a.data();
    const double* vd = vec.data();
    double* od = out->mutable_data();
    const int64_t rows = a.rows(), cols = a.cols();
    for (int64_t r = 0; r < rows; ++r) {
      const double* arow = ad + r * cols;
      double* orow = od + r * cols;
      if (row_vector) {
        if (swapped) {
          kernel_internal::EwBinaryAvx2(op, vd, arow, orow, cols);
        } else {
          kernel_internal::EwBinaryAvx2(op, arow, vd, orow, cols);
        }
      } else {
        kernel_internal::EwScalarAvx2(op, arow, vd[r], swapped, orow, cols);
      }
    }
    return Status::OK();
  }
  // Orientation and operand order are loop invariants; pick one of the four
  // tight loops up front instead of re-deciding per element, and let the
  // functor inline into each (the per-element ApplyBinary switch disappears).
  auto broadcast = [&](auto fn) {
    const double* ad = a.data();
    const double* vd = vec.data();
    double* od = out->mutable_data();
    const int64_t rows = a.rows(), cols = a.cols();
    if (row_vector) {
      if (swapped) {
        for (int64_t r = 0; r < rows; ++r) {
          const double* arow = ad + r * cols;
          double* orow = od + r * cols;
          for (int64_t c = 0; c < cols; ++c) orow[c] = fn(vd[c], arow[c]);
        }
      } else {
        for (int64_t r = 0; r < rows; ++r) {
          const double* arow = ad + r * cols;
          double* orow = od + r * cols;
          for (int64_t c = 0; c < cols; ++c) orow[c] = fn(arow[c], vd[c]);
        }
      }
    } else if (swapped) {
      for (int64_t r = 0; r < rows; ++r) {
        const double v = vd[r];
        const double* arow = ad + r * cols;
        double* orow = od + r * cols;
        for (int64_t c = 0; c < cols; ++c) orow[c] = fn(v, arow[c]);
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        const double v = vd[r];
        const double* arow = ad + r * cols;
        double* orow = od + r * cols;
        for (int64_t c = 0; c < cols; ++c) orow[c] = fn(arow[c], v);
      }
    }
  };
  switch (op) {
    case BinaryOp::kAdd:
      broadcast([](double x, double y) { return x + y; });
      break;
    case BinaryOp::kSub:
      broadcast([](double x, double y) { return x - y; });
      break;
    case BinaryOp::kMul:
      broadcast([](double x, double y) { return x * y; });
      break;
    case BinaryOp::kDiv:
      broadcast([](double x, double y) { return x / y; });
      break;
    case BinaryOp::kMax:
      broadcast([](double x, double y) { return std::max(x, y); });
      break;
    case BinaryOp::kMin:
      broadcast([](double x, double y) { return std::min(x, y); });
      break;
  }
  return Status::OK();
}

Status EwUnary(UnaryOp op, const Tile& a, double scalar, Tile* out) {
  return EwUnaryWithMode(KernelMode::kAuto, op, a, scalar, out);
}

Status EwUnaryWithMode(KernelMode mode, UnaryOp op, const Tile& a,
                       double scalar, Tile* out) {
  if (a.rows() != out->rows() || a.cols() != out->cols()) {
    return Status::InvalidArgument("element-wise shape mismatch");
  }
  const double* ad = a.data();
  double* od = out->mutable_data();
  const int64_t n = a.size();
  // kScale/kAddScalar dominate real workloads: vectorize them (x*s and x+s
  // are single IEEE ops — bit-identical); the transcendental ops route
  // through ApplyUnary regardless of mode.
  if (UseSimd(mode) &&
      (op == UnaryOp::kScale || op == UnaryOp::kAddScalar)) {
    kernel_internal::EwScalarAvx2(
        op == UnaryOp::kScale ? BinaryOp::kMul : BinaryOp::kAdd, ad, scalar,
        /*swapped=*/false, od, n);
    return Status::OK();
  }
  switch (op) {
    case UnaryOp::kScale:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] * scalar;
      break;
    case UnaryOp::kAddScalar:
      for (int64_t i = 0; i < n; ++i) od[i] = ad[i] + scalar;
      break;
    default:
      for (int64_t i = 0; i < n; ++i) od[i] = ApplyUnary(op, ad[i], scalar);
      break;
  }
  return Status::OK();
}

Status TransposeTile(const Tile& a, Tile* out) {
  if (a.rows() != out->cols() || a.cols() != out->rows()) {
    return Status::InvalidArgument("transpose shape mismatch");
  }
  const int64_t m = a.rows(), n = a.cols();
  const double* ad = a.data();
  double* od = out->mutable_data();
  // Blocked to keep both access patterns cache-friendly.
  const int64_t kBlock = GetKernelConfig().cache_block;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
      const int64_t j1 = std::min(j0 + kBlock, n);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          od[j * m + i] = ad[i * n + j];
        }
      }
    }
  }
  return Status::OK();
}

Status AccumulateInto(const Tile& x, Tile* acc) {
  return AccumulateIntoWithMode(KernelMode::kAuto, x, acc);
}

Status AccumulateIntoWithMode(KernelMode mode, const Tile& x, Tile* acc) {
  if (x.rows() != acc->rows() || x.cols() != acc->cols()) {
    return Status::InvalidArgument("accumulate shape mismatch");
  }
  const double* xd = x.data();
  double* ad = acc->mutable_data();
  const int64_t n = x.size();
  if (UseSimd(mode)) {
    kernel_internal::AccumulateAvx2(xd, ad, n);
    return Status::OK();
  }
  for (int64_t i = 0; i < n; ++i) ad[i] += xd[i];
  return Status::OK();
}

Status RowSumsInto(const Tile& t, Tile* acc) {
  return RowSumsIntoWithMode(ReduceMode::kAuto, t, acc);
}

Status RowSumsIntoWithMode(ReduceMode mode, const Tile& t, Tile* acc) {
  if (acc->rows() != t.rows() || acc->cols() != 1) {
    return Status::InvalidArgument("RowSumsInto needs a rows x 1 accumulator");
  }
  const double* d = t.data();
  double* a = acc->mutable_data();
  const bool fast = UseFastReduce(mode);
  for (int64_t r = 0; r < t.rows(); ++r) {
    const double* row = d + r * t.cols();
    if (fast) {
      a[r] += SumFast(row, t.cols());
      continue;
    }
    double s = 0.0;
    for (int64_t c = 0; c < t.cols(); ++c) s += row[c];
    a[r] += s;
  }
  return Status::OK();
}

Status RowSumsPartialInto(const Tile& t, Tile* partial) {
  return RowSumsInto(t, partial);
}

Status CombineAggPartial(const Tile& partial, Tile* acc) {
  return CombineAggPartialWithMode(KernelMode::kAuto, partial, acc);
}

Status CombineAggPartialWithMode(KernelMode mode, const Tile& partial,
                                 Tile* acc) {
  // Element-wise accumulate is already one ordered IEEE add per element on
  // both kernel paths, which is exactly the combine contract.
  return AccumulateIntoWithMode(mode, partial, acc);
}

Status ColSumsInto(const Tile& t, Tile* acc) {
  return ColSumsIntoWithMode(KernelMode::kAuto, t, acc);
}

Status ColSumsIntoWithMode(KernelMode mode, const Tile& t, Tile* acc) {
  if (acc->rows() != 1 || acc->cols() != t.cols()) {
    return Status::InvalidArgument("ColSumsInto needs a 1 x cols accumulator");
  }
  const double* d = t.data();
  double* a = acc->mutable_data();
  if (UseSimd(mode)) {
    kernel_internal::ColSumsAvx2(d, t.rows(), t.cols(), a);
    return Status::OK();
  }
  for (int64_t r = 0; r < t.rows(); ++r) {
    const double* row = d + r * t.cols();
    for (int64_t c = 0; c < t.cols(); ++c) a[c] += row[c];
  }
  return Status::OK();
}

double TileSum(const Tile& t) {
  return TileSumWithMode(ReduceMode::kAuto, t);
}

double TileSumWithMode(ReduceMode mode, const Tile& t) {
  const double* d = t.data();
  if (UseFastReduce(mode)) return SumFast(d, t.size());
  double s = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) s += d[i];
  return s;
}

double FrobeniusNorm(const Tile& t) {
  return FrobeniusNormWithMode(ReduceMode::kAuto, t);
}

double FrobeniusNormWithMode(ReduceMode mode, const Tile& t) {
  const double* d = t.data();
  if (UseFastReduce(mode)) return std::sqrt(SumSquaresFast(d, t.size()));
  double s = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) s += d[i] * d[i];
  return std::sqrt(s);
}

Result<double> MaxAbsDiff(const Tile& a, const Tile& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("MaxAbsDiff shape mismatch");
  }
  double m = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(ad[i] - bd[i]));
  }
  return m;
}

void FillTile(Tile* t, double value) {
  double* d = t->mutable_data();
  for (int64_t i = 0; i < t->size(); ++i) d[i] = value;
}

void FillGaussian(Tile* t, Rng* rng) {
  double* d = t->mutable_data();
  for (int64_t i = 0; i < t->size(); ++i) d[i] = rng->NextGaussian();
}

void FillUniform(Tile* t, Rng* rng, double lo, double hi) {
  double* d = t->mutable_data();
  for (int64_t i = 0; i < t->size(); ++i) d[i] = rng->NextDouble(lo, hi);
}

}  // namespace cumulon
