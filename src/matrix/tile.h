#ifndef CUMULON_MATRIX_TILE_H_
#define CUMULON_MATRIX_TILE_H_

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/logging.h"

namespace cumulon {

/// A dense row-major sub-matrix of doubles. Tiles are the physical unit of
/// storage and computation in Cumulon: matrices are carved into a grid of
/// tiles, tiles are the values read from and written to the DFS, and all
/// physical operators are expressed as per-tile kernels (see tile_ops.h).
///
/// The payload lives in cache-line-aligned memory (common/aligned_buffer.h)
/// so SIMD kernels can assume `data()` is 64-byte aligned; MemoryBytes() is
/// the allocator's padded footprint, SizeBytes() the serialized DFS size.
class Tile {
 public:
  /// Creates a zero-filled rows x cols tile.
  Tile(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    CUMULON_CHECK_GT(rows, 0);
    CUMULON_CHECK_GT(cols, 0);
  }

  Tile(const Tile&) = default;
  Tile& operator=(const Tile&) = default;
  Tile(Tile&&) = default;
  Tile& operator=(Tile&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  /// Serialized footprint in the DFS: header + payload.
  int64_t SizeBytes() const {
    return static_cast<int64_t>(sizeof(int64_t)) * 2 + size() * 8;
  }

  /// Resident heap footprint of the payload (aligned-allocator padding
  /// included). This is what the tile cache and prefetch window budget
  /// against; DFS transfer accounting uses SizeBytes().
  int64_t MemoryBytes() const { return AlignedFootprintBytes(size() * 8); }

  double At(int64_t r, int64_t c) const {
    CUMULON_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[r * cols_ + c];
  }
  void Set(int64_t r, int64_t c, double v) {
    CUMULON_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[r * cols_ + c] = v;
  }

  const double* data() const { return data_.data(); }
  double* mutable_data() { return data_.data(); }

 private:
  int64_t rows_;
  int64_t cols_;
  AlignedVector<double> data_;
};

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILE_H_
