#include "matrix/layout.h"

#include <algorithm>

#include "common/strings.h"

namespace cumulon {

std::string TileLayout::ToString() const {
  return StrCat(rows_, "x", cols_, " in ", tile_rows_, "x", tile_cols_,
                " tiles (grid ", grid_rows(), "x", grid_cols(), ")");
}

bool RowPartitionsEqual(const TileLayout& a, const TileLayout& b) {
  if (a.rows() != b.rows() || a.grid_rows() != b.grid_rows()) return false;
  for (int64_t r = 0; r < a.grid_rows(); ++r) {
    if (a.TileRowsAt(r) != b.TileRowsAt(r)) return false;
  }
  return true;
}

bool ColPartitionsEqual(const TileLayout& a, const TileLayout& b) {
  if (a.cols() != b.cols() || a.grid_cols() != b.grid_cols()) return false;
  for (int64_t c = 0; c < a.grid_cols(); ++c) {
    if (a.TileColsAt(c) != b.TileColsAt(c)) return false;
  }
  return true;
}

bool GridsAlign(const TileLayout& a, const TileLayout& b) {
  return RowPartitionsEqual(a, b) && ColPartitionsEqual(a, b);
}

bool InnerAligned(const TileLayout& a, const TileLayout& b) {
  if (a.cols() != b.rows() || a.grid_cols() != b.grid_rows()) return false;
  for (int64_t k = 0; k < a.grid_cols(); ++k) {
    if (a.TileColsAt(k) != b.TileRowsAt(k)) return false;
  }
  return true;
}

}  // namespace cumulon
