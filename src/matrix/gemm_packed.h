#ifndef CUMULON_MATRIX_GEMM_PACKED_H_
#define CUMULON_MATRIX_GEMM_PACKED_H_

#include <cstdint>

#include "common/status.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"

/// Internal: the AVX2+FMA vector kernels behind tile_ops.cc's dispatch.
/// Callers must check SimdKernelAvailable() (kernel_config.h) first — these
/// execute AVX2/FMA instructions unconditionally. Exposed in a header so
/// kernel_test.cc can pin them against the scalar oracle directly and the
/// benches can time each path; production code goes through the dispatching
/// entry points in tile_ops.h.

namespace cumulon {
namespace kernel_internal {

/// True when this binary contains the vector kernels at all (x86-64 GCC or
/// Clang build). When false, SimdKernelAvailable() is also false and the
/// functions below abort if called.
bool PackedKernelCompiled();

/// C = alpha*A*B + beta*C via BLIS-style packing: B panels repacked into
/// 8-wide column strips (L1-resident), A blocks into 6-wide row strips
/// (L2-resident, alpha folded in at pack time), 6x8 FMA register-tiled
/// inner kernel, scalar tails for edge rows/cols. Reorder-safe: each C
/// element accumulates its k terms in ascending order starting from the
/// beta-scaled value, exactly like the scalar oracle — only FMA's fused
/// rounding differs.
Status GemmPackedAvx2(const Tile& a, const Tile& b, double alpha, double beta,
                      Tile* c);

/// o[i] = op(a[i], b[i]). Bit-identical to the scalar loop: one IEEE op per
/// element, no FMA; max/min are compare+blend replicating std::max/min
/// (including NaN behavior).
void EwBinaryAvx2(BinaryOp op, const double* a, const double* b, double* o,
                  int64_t n);

/// o[i] = op(a[i], s) — or op(s, a[i]) when swapped. Bit-identical.
void EwScalarAvx2(BinaryOp op, const double* a, double s, bool swapped,
                  double* o, int64_t n);

/// acc[i] += x[i]. Bit-identical.
void AccumulateAvx2(const double* x, double* acc, int64_t n);

/// acc[c] += t(r, c) for every row r; rows are folded in ascending order so
/// each acc element sees the same addition sequence as the scalar loop.
void ColSumsAvx2(const double* t, int64_t rows, int64_t cols, double* acc);

}  // namespace kernel_internal
}  // namespace cumulon

#endif  // CUMULON_MATRIX_GEMM_PACKED_H_
