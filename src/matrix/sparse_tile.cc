#include "matrix/sparse_tile.h"

#include <cmath>

#include "common/strings.h"

namespace cumulon {

SparseTile::SparseTile(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  CUMULON_CHECK_GT(rows, 0);
  CUMULON_CHECK_GT(cols, 0);
}

SparseTile SparseTile::FromDense(const Tile& dense, double zero_tolerance) {
  SparseTile out(dense.rows(), dense.cols());
  const double* d = dense.data();
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      const double v = d[r * dense.cols() + c];
      if (std::abs(v) > zero_tolerance) {
        out.col_idx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = static_cast<int64_t>(out.values_.size());
  }
  return out;
}

SparseTile SparseTile::Random(int64_t rows, int64_t cols, double density,
                              Rng* rng) {
  SparseTile out(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->NextDouble() < density) {
        out.col_idx_.push_back(c);
        out.values_.push_back(rng->NextGaussian());
      }
    }
    out.row_ptr_[r + 1] = static_cast<int64_t>(out.values_.size());
  }
  return out;
}

Tile SparseTile::ToDense() const {
  Tile out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out.Set(r, col_idx_[i], values_[i]);
    }
  }
  return out;
}

Status SparseTile::SpMM(const SparseTile& s, const Tile& d, double alpha,
                        double beta, Tile* c) {
  if (s.cols() != d.rows() || s.rows() != c->rows() ||
      d.cols() != c->cols()) {
    return Status::InvalidArgument(
        StrCat("spmm shape mismatch: S ", s.rows(), "x", s.cols(), ", D ",
               d.rows(), "x", d.cols(), ", C ", c->rows(), "x", c->cols()));
  }
  const int64_t n = d.cols();
  double* cd = c->mutable_data();
  if (beta != 1.0) {
    for (int64_t i = 0; i < c->size(); ++i) cd[i] *= beta;
  }
  const double* dd = d.data();
  for (int64_t r = 0; r < s.rows_; ++r) {
    double* crow = cd + r * n;
    for (int64_t i = s.row_ptr_[r]; i < s.row_ptr_[r + 1]; ++i) {
      const double av = alpha * s.values_[i];
      const double* drow = dd + s.col_idx_[i] * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * drow[j];
      }
    }
  }
  return Status::OK();
}

Status SparseTile::RowSumsInto(Tile* acc) const {
  if (acc->rows() != rows_ || acc->cols() != 1) {
    return Status::InvalidArgument("RowSumsInto needs a rows x 1 accumulator");
  }
  double* a = acc->mutable_data();
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sum += values_[i];
    }
    a[r] += sum;
  }
  return Status::OK();
}

}  // namespace cumulon
