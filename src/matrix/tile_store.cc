#include "matrix/tile_store.h"

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/task_io_stats.h"

namespace cumulon {

void TileFetchState::Resolve(FetchResult result) {
  {
    MutexLock lock(&mu_);
    if (resolved_) return;  // first resolution wins
    result_ = std::move(result);
    resolved_ = true;
  }
  cv_.NotifyAll();
}

bool TileFetchState::resolved() const {
  MutexLock lock(&mu_);
  return resolved_;
}

bool TileFetchState::abandoned() const {
  return cancels_.load(std::memory_order_relaxed) >=
         waiters_.load(std::memory_order_relaxed);
}

TileFetchState::FetchResult TileFetchState::Await() {
  MutexLock lock(&mu_);
  if (resolved_) return *result_;  // no stall: the prefetch fully hid the IO
  Stopwatch blocked;
  while (!resolved_) cv_.Wait(&mu_);
  const double stall = blocked.ElapsedSeconds();
  TaskIoStats* io = TaskIoStats::Current();
  io->stall_seconds += stall;
  ++io->async_awaits;
  if (stall_callback) stall_callback(stall);
  return *result_;
}

TileFuture TileFuture::Ready(TileFetchState::FetchResult result) {
  TileFuture future;
  future.state_ = std::make_shared<TileFetchState>();
  future.state_->Resolve(std::move(result));
  return future;
}

TileFuture TileFuture::FromState(std::shared_ptr<TileFetchState> state) {
  TileFuture future;
  future.state_ = std::move(state);
  return future;
}

TileFetchState::FetchResult TileFuture::Await() {
  if (state_ == nullptr) {
    return Status::Internal("Await on an invalid TileFuture");
  }
  return state_->Await();
}

void TileFuture::Cancel() {
  if (state_ != nullptr) state_->Cancel();
}

Status InMemoryTileStore::Put(const std::string& matrix, TileId id,
                              std::shared_ptr<const Tile> tile,
                              int /*writer_node*/) {
  MutexLock lock(&mu_);
  tiles_[{matrix, id}] = std::move(tile);
  return Status::OK();
}

Result<std::shared_ptr<const Tile>> InMemoryTileStore::Get(
    const std::string& matrix, TileId id, int /*reader_node*/) {
  MutexLock lock(&mu_);
  auto it = tiles_.find({matrix, id});
  if (it == tiles_.end()) {
    return Status::NotFound(
        StrCat("tile ", id, " of matrix '", matrix, "' not found"));
  }
  return it->second;
}

Status InMemoryTileStore::DeleteMatrix(const std::string& matrix) {
  MutexLock lock(&mu_);
  auto it = tiles_.lower_bound({matrix, TileId{0, 0}});
  while (it != tiles_.end() && it->first.first == matrix) {
    it = tiles_.erase(it);
  }
  return Status::OK();
}

int64_t InMemoryTileStore::NumTiles() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(tiles_.size());
}

}  // namespace cumulon
