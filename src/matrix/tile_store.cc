#include "matrix/tile_store.h"

#include "common/strings.h"

namespace cumulon {

Status InMemoryTileStore::Put(const std::string& matrix, TileId id,
                              std::shared_ptr<const Tile> tile,
                              int /*writer_node*/) {
  std::lock_guard<std::mutex> lock(mu_);
  tiles_[{matrix, id}] = std::move(tile);
  return Status::OK();
}

Result<std::shared_ptr<const Tile>> InMemoryTileStore::Get(
    const std::string& matrix, TileId id, int /*reader_node*/) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tiles_.find({matrix, id});
  if (it == tiles_.end()) {
    return Status::NotFound(
        StrCat("tile ", id, " of matrix '", matrix, "' not found"));
  }
  return it->second;
}

Status InMemoryTileStore::DeleteMatrix(const std::string& matrix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tiles_.lower_bound({matrix, TileId{0, 0}});
  while (it != tiles_.end() && it->first.first == matrix) {
    it = tiles_.erase(it);
  }
  return Status::OK();
}

int64_t InMemoryTileStore::NumTiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tiles_.size());
}

}  // namespace cumulon
