#ifndef CUMULON_MATRIX_TILE_OPS_H_
#define CUMULON_MATRIX_TILE_OPS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "matrix/kernel_config.h"
#include "matrix/tile.h"

namespace cumulon {

/// Element-wise binary operators supported by the engine. Kept as an enum
/// (rather than arbitrary std::function) so plans are serializable, costable
/// and the kernels stay branch-free inner loops.
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMax, kMin };

/// Element-wise unary operators. kScale/kAddScalar/kPow take a scalar
/// parameter; the rest ignore it.
enum class UnaryOp {
  kScale,      // x * s
  kAddScalar,  // x + s
  kPow,        // x ^ s
  kExp,
  kLog,
  kAbs,
  kSqrt,
  kSigmoid,    // 1 / (1 + e^-x)
  kRecip,      // 1 / x
};

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

/// Applies one scalar binary op. Exposed for the reference implementation.
double ApplyBinary(BinaryOp op, double a, double b);
double ApplyUnary(UnaryOp op, double x, double scalar);

/// C = alpha * A * B + beta * C (dense GEMM).
/// Shape requirements: A is m x k, B is k x n, C is m x n.
/// Dispatches at runtime (KernelMode::kAuto): the packed AVX2+FMA kernel
/// when the CPU supports it, the scalar oracle otherwise. Both accumulate
/// each C element's k terms in ascending order; the SIMD path differs only
/// by FMA's fused rounding.
Status Gemm(const Tile& a, const Tile& b, double alpha, double beta, Tile* c);

/// Gemm through an explicit kernel mode (executor plumbing / tests /
/// benches). kSimd falls back to scalar when the CPU lacks AVX2+FMA.
Status GemmWithMode(KernelMode mode, const Tile& a, const Tile& b,
                    double alpha, double beta, Tile* c);

/// The register-blocked scalar kernel — the bit-exactness oracle the SIMD
/// path is tested against. Never vectorized, never FMA-contracted.
Status GemmScalar(const Tile& a, const Tile& b, double alpha, double beta,
                  Tile* c);

/// out[i] = ApplyBinary(op, a[i], b[i]). Shapes must match.
/// Auto-dispatches to the AVX2 path when available; the vector EW kernels
/// use one IEEE op per element (no FMA) and are bit-identical to scalar.
Status EwBinary(BinaryOp op, const Tile& a, const Tile& b, Tile* out);
Status EwBinaryWithMode(KernelMode mode, BinaryOp op, const Tile& a,
                        const Tile& b, Tile* out);

/// Broadcast variant: `vec` is a 1 x cols row vector (row_vector = true,
/// applied to every row of `a`) or a rows x 1 column vector (applied to
/// every column). out(r,c) = op(a(r,c), vec(...)); `swapped` flips the
/// operand order. Used for centering/normalizing against aggregates.
Status EwBroadcast(BinaryOp op, const Tile& a, const Tile& vec,
                   bool row_vector, bool swapped, Tile* out);
Status EwBroadcastWithMode(KernelMode mode, BinaryOp op, const Tile& a,
                           const Tile& vec, bool row_vector, bool swapped,
                           Tile* out);

/// out[i] = ApplyUnary(op, a[i], scalar).
Status EwUnary(UnaryOp op, const Tile& a, double scalar, Tile* out);
Status EwUnaryWithMode(KernelMode mode, UnaryOp op, const Tile& a,
                       double scalar, Tile* out);

/// out = a^T.
Status TransposeTile(const Tile& a, Tile* out);

/// acc += x (element-wise). Shapes must match. Used to merge split-k
/// partial products.
Status AccumulateInto(const Tile& x, Tile* acc);
Status AccumulateIntoWithMode(KernelMode mode, const Tile& x, Tile* acc);

/// Sum of all elements. The plain entry points below resolve
/// ReduceMode::kAuto (kernel_config.h): the strictly ordered fold unless
/// CUMULON_REDUCE=fast opts the process into the reorder-tolerant
/// multi-accumulator path.
double TileSum(const Tile& t);
double TileSumWithMode(ReduceMode mode, const Tile& t);

/// acc[r] += sum_c t(r, c): folds a tile into a rows x 1 accumulator.
Status RowSumsInto(const Tile& t, Tile* acc);
Status RowSumsIntoWithMode(ReduceMode mode, const Tile& t, Tile* acc);

/// acc[c] += sum_r t(r, c): folds a tile into a 1 x cols accumulator.
/// Vectorized over columns when AVX2 is available — each accumulator
/// element still receives rows in ascending order, so bit-identical.
/// (RowSumsInto / TileSum / FrobeniusNorm reduce *within* a row, so
/// speeding them up necessarily reorders additions — that lives behind
/// the opt-in ReduceMode::kFast / CUMULON_REDUCE=fast path above.)
Status ColSumsInto(const Tile& t, Tile* acc);
Status ColSumsIntoWithMode(KernelMode mode, const Tile& t, Tile* acc);

/// Frobenius norm.
double FrobeniusNorm(const Tile& t);
double FrobeniusNormWithMode(ReduceMode mode, const Tile& t);

// --- Chunk-level partial aggregates (out-of-core streaming) ---------------
//
// The streaming aggregate path reduces its input stripe in fixed-size
// panels: each panel folds into a zero-initialized partial, and finished
// partials are combined left-to-right into the stripe accumulator. Panel
// width is the constant below — never derived from the memory budget — so
// a resident run and a streamed run at any budget perform the identical
// sequence of floating-point additions and produce bit-identical results.

/// Input tiles one aggregate panel spans before its partial is folded into
/// the stripe accumulator.
inline constexpr int64_t kAggPanelTiles = 8;

/// partial[r] += sum_c t(r, c): the per-panel building block — the same
/// ascending fold as RowSumsInto, named for the call sites that build
/// panel partials rather than whole-stripe accumulators.
Status RowSumsPartialInto(const Tile& t, Tile* partial);

/// acc += partial element-wise, one IEEE add per element, no FMA — so the
/// left-to-right combine order fully determines the result bits.
Status CombineAggPartial(const Tile& partial, Tile* acc);
Status CombineAggPartialWithMode(KernelMode mode, const Tile& partial,
                                 Tile* acc);

/// max_i |a[i] - b[i]|; returns an error if shapes differ.
Result<double> MaxAbsDiff(const Tile& a, const Tile& b);

/// Fills with a constant.
void FillTile(Tile* t, double value);

/// Fills with iid N(0,1) / U(0,1) draws from `rng`.
void FillGaussian(Tile* t, Rng* rng);
void FillUniform(Tile* t, Rng* rng, double lo = 0.0, double hi = 1.0);

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILE_OPS_H_
