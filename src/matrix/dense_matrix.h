#ifndef CUMULON_MATRIX_DENSE_MATRIX_H_
#define CUMULON_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "matrix/tile_ops.h"

namespace cumulon {

/// Single-node reference matrix, used by tests and examples to verify the
/// distributed engine's numerics against straightforward implementations.
/// Not a performance-critical type.
class DenseMatrix {
 public:
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    CUMULON_CHECK_GT(rows, 0);
    CUMULON_CHECK_GT(cols, 0);
  }

  static DenseMatrix Gaussian(int64_t rows, int64_t cols, Rng* rng);
  static DenseMatrix Uniform(int64_t rows, int64_t cols, Rng* rng,
                             double lo = 0.0, double hi = 1.0);
  static DenseMatrix Constant(int64_t rows, int64_t cols, double value);
  static DenseMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  void Set(int64_t r, int64_t c, double v) { data_[r * cols_ + c] = v; }

  Result<DenseMatrix> Multiply(const DenseMatrix& other) const;
  Result<DenseMatrix> Binary(BinaryOp op, const DenseMatrix& other) const;
  DenseMatrix Unary(UnaryOp op, double scalar = 0.0) const;
  DenseMatrix Transpose() const;

  /// rows x 1 vector of row sums / 1 x cols vector of column sums.
  DenseMatrix RowSums() const;
  DenseMatrix ColSums() const;

  /// Broadcast binary: `vec` is 1 x cols (row_vector) or rows x 1;
  /// out(r,c) = op(this(r,c), vec(...)).
  Result<DenseMatrix> Broadcast(BinaryOp op, const DenseMatrix& vec,
                                bool row_vector) const;

  /// Sum of all entries.
  double Total() const;

  double FrobeniusNorm() const;

  /// max |this - other| element-wise; error on shape mismatch.
  Result<double> MaxAbsDiff(const DenseMatrix& other) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace cumulon

#endif  // CUMULON_MATRIX_DENSE_MATRIX_H_
