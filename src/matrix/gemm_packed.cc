#include "matrix/gemm_packed.h"

#include <algorithm>

#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/strings.h"
#include "matrix/kernel_config.h"

/// The build has no global -mavx2/-mfma (the binary must run on any x86-64
/// machine), so every function that emits vector instructions carries
/// __attribute__((target("avx2,fma"))) and is only reached after
/// SimdKernelAvailable() said the CPU has AVX2+FMA. The packing loops and
/// the orchestrator compile as plain C++ — which also keeps the scalar tail
/// paths free of compiler FMA contraction, so tail elements round exactly
/// like the scalar oracle.

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define CUMULON_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define CUMULON_HAVE_AVX2_KERNELS 0
#endif

namespace cumulon {
namespace kernel_internal {

bool PackedKernelCompiled() { return CUMULON_HAVE_AVX2_KERNELS != 0; }

#if CUMULON_HAVE_AVX2_KERNELS

#define CUMULON_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

/// One IEEE op on 4 lanes. kMax/kMin are compare+blend spelling out
/// (x < y) ? y : x and (y < x) ? y : x — exactly std::max/std::min,
/// including which operand survives a NaN — so results stay bit-identical
/// to the scalar loops.
CUMULON_TARGET_AVX2 inline __m256d VecApply(BinaryOp op, __m256d x,
                                            __m256d y) {
  switch (op) {
    case BinaryOp::kAdd:
      return _mm256_add_pd(x, y);
    case BinaryOp::kSub:
      return _mm256_sub_pd(x, y);
    case BinaryOp::kMul:
      return _mm256_mul_pd(x, y);
    case BinaryOp::kDiv:
      return _mm256_div_pd(x, y);
    case BinaryOp::kMax:
      return _mm256_blendv_pd(x, y, _mm256_cmp_pd(x, y, _CMP_LT_OQ));
    case BinaryOp::kMin:
      return _mm256_blendv_pd(x, y, _mm256_cmp_pd(y, x, _CMP_LT_OQ));
  }
  return x;
}

/// 6x8 register-tiled FMA inner kernel over packed panels: 12 YMM
/// accumulators (initialized from C, so accumulation per element starts
/// from the beta-scaled value and proceeds in ascending k — reorder-safe),
/// 2 B vectors, 1 A broadcast. B panel loads are 32-byte aligned by
/// construction: the packing buffer is cache-line aligned and full panels
/// have a stride of kc * 8 doubles.
CUMULON_TARGET_AVX2 void MicroKernel6x8(int64_t kc,
                                        const double* __restrict ap,
                                        const double* __restrict bp,
                                        double* __restrict c, int64_t ldc) {
  __m256d c00 = _mm256_loadu_pd(c);
  __m256d c01 = _mm256_loadu_pd(c + 4);
  __m256d c10 = _mm256_loadu_pd(c + ldc);
  __m256d c11 = _mm256_loadu_pd(c + ldc + 4);
  __m256d c20 = _mm256_loadu_pd(c + 2 * ldc);
  __m256d c21 = _mm256_loadu_pd(c + 2 * ldc + 4);
  __m256d c30 = _mm256_loadu_pd(c + 3 * ldc);
  __m256d c31 = _mm256_loadu_pd(c + 3 * ldc + 4);
  __m256d c40 = _mm256_loadu_pd(c + 4 * ldc);
  __m256d c41 = _mm256_loadu_pd(c + 4 * ldc + 4);
  __m256d c50 = _mm256_loadu_pd(c + 5 * ldc);
  __m256d c51 = _mm256_loadu_pd(c + 5 * ldc + 4);
  for (int64_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_load_pd(bp + 8 * p);
    const __m256d b1 = _mm256_load_pd(bp + 8 * p + 4);
    __m256d av = _mm256_broadcast_sd(ap + 6 * p);
    c00 = _mm256_fmadd_pd(av, b0, c00);
    c01 = _mm256_fmadd_pd(av, b1, c01);
    av = _mm256_broadcast_sd(ap + 6 * p + 1);
    c10 = _mm256_fmadd_pd(av, b0, c10);
    c11 = _mm256_fmadd_pd(av, b1, c11);
    av = _mm256_broadcast_sd(ap + 6 * p + 2);
    c20 = _mm256_fmadd_pd(av, b0, c20);
    c21 = _mm256_fmadd_pd(av, b1, c21);
    av = _mm256_broadcast_sd(ap + 6 * p + 3);
    c30 = _mm256_fmadd_pd(av, b0, c30);
    c31 = _mm256_fmadd_pd(av, b1, c31);
    av = _mm256_broadcast_sd(ap + 6 * p + 4);
    c40 = _mm256_fmadd_pd(av, b0, c40);
    c41 = _mm256_fmadd_pd(av, b1, c41);
    av = _mm256_broadcast_sd(ap + 6 * p + 5);
    c50 = _mm256_fmadd_pd(av, b0, c50);
    c51 = _mm256_fmadd_pd(av, b1, c51);
  }
  _mm256_storeu_pd(c, c00);
  _mm256_storeu_pd(c + 4, c01);
  _mm256_storeu_pd(c + ldc, c10);
  _mm256_storeu_pd(c + ldc + 4, c11);
  _mm256_storeu_pd(c + 2 * ldc, c20);
  _mm256_storeu_pd(c + 2 * ldc + 4, c21);
  _mm256_storeu_pd(c + 3 * ldc, c30);
  _mm256_storeu_pd(c + 3 * ldc + 4, c31);
  _mm256_storeu_pd(c + 4 * ldc, c40);
  _mm256_storeu_pd(c + 4 * ldc + 4, c41);
  _mm256_storeu_pd(c + 5 * ldc, c50);
  _mm256_storeu_pd(c + 5 * ldc + 4, c51);
}

/// Packs A[ic : ic+mc_eff, pc : pc+kc_eff] into tight kPackMr-row panels:
/// panel (ir / kPackMr) holds ap[p * mr_eff + ii] = alpha * A(ic+ir+ii,
/// pc+p). Folding alpha here mirrors the scalar kernel's `av = alpha *
/// a[kk]` so per-element rounding of the alpha product matches the oracle.
void PackA(const double* a, int64_t lda, int64_t ic, int64_t mc_eff,
           int64_t pc, int64_t kc_eff, double alpha, double* ap) {
  double* dst = ap;
  for (int64_t ir = 0; ir < mc_eff; ir += kPackMr) {
    const int64_t mr_eff = std::min<int64_t>(kPackMr, mc_eff - ir);
    const double* src = a + (ic + ir) * lda + pc;
    for (int64_t p = 0; p < kc_eff; ++p) {
      for (int64_t ii = 0; ii < mr_eff; ++ii) {
        dst[p * mr_eff + ii] = alpha * src[ii * lda + p];
      }
    }
    dst += kc_eff * mr_eff;
  }
}

/// Packs B[pc : pc+kc_eff, jc : jc+nc_eff] into tight kPackNr-column
/// panels: bp[p * nr_eff + jj] = B(pc+p, jc+jr+jj).
void PackB(const double* b, int64_t ldb, int64_t pc, int64_t kc_eff,
           int64_t jc, int64_t nc_eff, double* bp) {
  double* dst = bp;
  for (int64_t jr = 0; jr < nc_eff; jr += kPackNr) {
    const int64_t nr_eff = std::min<int64_t>(kPackNr, nc_eff - jr);
    const double* src = b + pc * ldb + jc + jr;
    for (int64_t p = 0; p < kc_eff; ++p) {
      for (int64_t jj = 0; jj < nr_eff; ++jj) {
        dst[p * nr_eff + jj] = src[p * ldb + jj];
      }
    }
    dst += kc_eff * nr_eff;
  }
}

/// Scalar edge kernel over packed panels (mr_eff x nr_eff smaller than the
/// register tile). Compiled without FMA contraction, so edge elements
/// round exactly like the oracle.
void TailBlock(const double* ap, int64_t mr_eff, const double* bp,
               int64_t nr_eff, int64_t kc_eff, double* c, int64_t ldc) {
  for (int64_t ii = 0; ii < mr_eff; ++ii) {
    for (int64_t jj = 0; jj < nr_eff; ++jj) {
      double s = c[ii * ldc + jj];
      for (int64_t p = 0; p < kc_eff; ++p) {
        s += ap[p * mr_eff + ii] * bp[p * nr_eff + jj];
      }
      c[ii * ldc + jj] = s;
    }
  }
}

/// Per-thread packing buffers: reused across Gemm calls (task bodies call
/// Gemm once per k-tile), cache-line aligned for the aligned B-panel loads.
AlignedVector<double>& PackBufferA() {
  static thread_local AlignedVector<double> buf;
  return buf;
}
AlignedVector<double>& PackBufferB() {
  static thread_local AlignedVector<double> buf;
  return buf;
}

}  // namespace

Status GemmPackedAvx2(const Tile& a, const Tile& b, double alpha, double beta,
                      Tile* c) {
  if (a.cols() != b.rows() || a.rows() != c->rows() ||
      b.cols() != c->cols()) {
    return Status::InvalidArgument(
        StrCat("gemm shape mismatch: A ", a.rows(), "x", a.cols(), ", B ",
               b.rows(), "x", b.cols(), ", C ", c->rows(), "x", c->cols()));
  }
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  double* cd = c->mutable_data();
  if (beta == 0.0) {
    std::fill(cd, cd + m * n, 0.0);
  } else if (beta != 1.0) {
    for (int64_t i = 0; i < m * n; ++i) cd[i] *= beta;
  }

  // Blocking clamped to the problem: buffers never exceed what this call
  // can use. mc/nc round up to whole register-tile multiples (kPackMr/Nr
  // are not powers of two, so no AlignUp here).
  auto round_up = [](int64_t v, int64_t mult) {
    return ((v + mult - 1) / mult) * mult;
  };
  const KernelConfig& cfg = GetKernelConfig();
  const int64_t kc = std::clamp<int64_t>(cfg.pack_kc, 1, k);
  const int64_t mc = round_up(
      std::max<int64_t>(std::min<int64_t>(cfg.pack_mc, m), 1), kPackMr);
  const int64_t nc = round_up(
      std::max<int64_t>(std::min<int64_t>(cfg.pack_nc, n), 1), kPackNr);

  AlignedVector<double>& ap_buf = PackBufferA();
  AlignedVector<double>& bp_buf = PackBufferB();
  ap_buf.resize(static_cast<size_t>(mc * kc));
  bp_buf.resize(static_cast<size_t>(kc * nc));
  double* ap = ap_buf.data();
  double* bp = bp_buf.data();

  const double* ad = a.data();
  const double* bd = b.data();
  for (int64_t jc = 0; jc < n; jc += nc) {
    const int64_t nc_eff = std::min(nc, n - jc);
    const int64_t n_full = (nc_eff / kPackNr) * kPackNr;
    for (int64_t pc = 0; pc < k; pc += kc) {
      const int64_t kc_eff = std::min(kc, k - pc);
      PackB(bd, n, pc, kc_eff, jc, nc_eff, bp);
      for (int64_t ic = 0; ic < m; ic += mc) {
        const int64_t mc_eff = std::min(mc, m - ic);
        const int64_t m_full = (mc_eff / kPackMr) * kPackMr;
        PackA(ad, k, ic, mc_eff, pc, kc_eff, alpha, ap);
        for (int64_t jr = 0; jr < n_full; jr += kPackNr) {
          const double* bpanel = bp + (jr / kPackNr) * kc_eff * kPackNr;
          for (int64_t ir = 0; ir < m_full; ir += kPackMr) {
            MicroKernel6x8(kc_eff, ap + (ir / kPackMr) * kc_eff * kPackMr,
                           bpanel, cd + (ic + ir) * n + jc + jr, n);
          }
          if (m_full < mc_eff) {
            TailBlock(ap + (m_full / kPackMr) * kc_eff * kPackMr,
                      mc_eff - m_full, bpanel, kPackNr, kc_eff,
                      cd + (ic + m_full) * n + jc + jr, n);
          }
        }
        if (n_full < nc_eff) {
          const double* bpanel = bp + (n_full / kPackNr) * kc_eff * kPackNr;
          const int64_t nr_eff = nc_eff - n_full;
          for (int64_t ir = 0; ir < mc_eff; ir += kPackMr) {
            const int64_t mr_eff = std::min<int64_t>(kPackMr, mc_eff - ir);
            TailBlock(ap + (ir / kPackMr) * kc_eff * kPackMr, mr_eff, bpanel,
                      nr_eff, kc_eff, cd + (ic + ir) * n + jc + n_full, n);
          }
        }
      }
    }
  }
  return Status::OK();
}

CUMULON_TARGET_AVX2 void EwBinaryAvx2(BinaryOp op, const double* a,
                                      const double* b, double* o, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        o + i, VecApply(op, _mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) o[i] = ApplyBinary(op, a[i], b[i]);
}

CUMULON_TARGET_AVX2 void EwScalarAvx2(BinaryOp op, const double* a, double s,
                                      bool swapped, double* o, int64_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  int64_t i = 0;
  if (swapped) {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(o + i, VecApply(op, sv, _mm256_loadu_pd(a + i)));
    }
    for (; i < n; ++i) o[i] = ApplyBinary(op, s, a[i]);
  } else {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(o + i, VecApply(op, _mm256_loadu_pd(a + i), sv));
    }
    for (; i < n; ++i) o[i] = ApplyBinary(op, a[i], s);
  }
}

CUMULON_TARGET_AVX2 void AccumulateAvx2(const double* x, double* acc,
                                        int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i,
        _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

CUMULON_TARGET_AVX2 void ColSumsAvx2(const double* t, int64_t rows,
                                     int64_t cols, double* acc) {
  for (int64_t r = 0; r < rows; ++r) {
    const double* row = t + r * cols;
    int64_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(
          acc + c,
          _mm256_add_pd(_mm256_loadu_pd(acc + c), _mm256_loadu_pd(row + c)));
    }
    for (; c < cols; ++c) acc[c] += row[c];
  }
}

#else  // !CUMULON_HAVE_AVX2_KERNELS

// Non-x86 (or non-GCC/Clang) build: SimdKernelAvailable() is false, so the
// dispatcher never routes here; aborting keeps a miswired caller loud.

Status GemmPackedAvx2(const Tile& a, const Tile& b, double alpha, double beta,
                      Tile* c) {
  (void)a, (void)b, (void)alpha, (void)beta, (void)c;
  CUMULON_CHECK(false) << "packed AVX2 kernel not compiled into this binary";
  return Status::Internal("packed AVX2 kernel unavailable");
}

void EwBinaryAvx2(BinaryOp op, const double* a, const double* b, double* o,
                  int64_t n) {
  (void)op, (void)a, (void)b, (void)o, (void)n;
  CUMULON_CHECK(false) << "AVX2 EW kernel not compiled into this binary";
}

void EwScalarAvx2(BinaryOp op, const double* a, double s, bool swapped,
                  double* o, int64_t n) {
  (void)op, (void)a, (void)s, (void)swapped, (void)o, (void)n;
  CUMULON_CHECK(false) << "AVX2 EW kernel not compiled into this binary";
}

void AccumulateAvx2(const double* x, double* acc, int64_t n) {
  (void)x, (void)acc, (void)n;
  CUMULON_CHECK(false) << "AVX2 EW kernel not compiled into this binary";
}

void ColSumsAvx2(const double* t, int64_t rows, int64_t cols, double* acc) {
  (void)t, (void)rows, (void)cols, (void)acc;
  CUMULON_CHECK(false) << "AVX2 EW kernel not compiled into this binary";
}

#endif  // CUMULON_HAVE_AVX2_KERNELS

}  // namespace kernel_internal
}  // namespace cumulon
