#ifndef CUMULON_MATRIX_SPARSE_TILE_H_
#define CUMULON_MATRIX_SPARSE_TILE_H_

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/result.h"
#include "common/rng.h"
#include "matrix/tile.h"

namespace cumulon {

/// A CSR (compressed sparse row) tile. Statistical workloads frequently
/// have sparse inputs (document-term matrices for NMF, one-hot features
/// for regression); storing and multiplying them densely wastes space and
/// flops roughly in proportion to 1/density. This is the kernel-level
/// counterpart of the dense Tile; plan-level integration (sparse-aware
/// operators and cost models in the optimizer) is listed as future work
/// in DESIGN.md, matching the paper's dense-first focus.
class SparseTile {
 public:
  /// Empty rows x cols tile (no nonzeros).
  SparseTile(int64_t rows, int64_t cols);

  /// Compresses a dense tile; entries with |v| <= zero_tolerance drop.
  static SparseTile FromDense(const Tile& dense, double zero_tolerance = 0.0);

  /// Random tile with approximately `density` fraction of N(0,1) nonzeros.
  static SparseTile Random(int64_t rows, int64_t cols, double density,
                           Rng* rng);

  Tile ToDense() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  double density() const {
    return static_cast<double>(nnz()) / (rows_ * cols_);
  }

  /// Serialized CSR footprint: header + row offsets + (col, value) pairs.
  int64_t SizeBytes() const {
    return 24 + (rows_ + 1) * 8 + nnz() * 16;
  }

  /// Resident heap footprint: the three aligned CSR arrays, allocator
  /// padding included (see Tile::MemoryBytes).
  int64_t MemoryBytes() const {
    return AlignedFootprintBytes((rows_ + 1) * 8) +
           AlignedFootprintBytes(nnz() * 8) + AlignedFootprintBytes(nnz() * 8);
  }

  const AlignedVector<int64_t>& row_ptr() const { return row_ptr_; }
  const AlignedVector<int64_t>& col_idx() const { return col_idx_; }
  const AlignedVector<double>& values() const { return values_; }

  /// C = alpha * S * D + beta * C (sparse-dense matrix multiply).
  /// S is rows x k (this), D is k x n, C is rows x n.
  static Status SpMM(const SparseTile& s, const Tile& d, double alpha,
                     double beta, Tile* c);

  /// acc[r] += sum of row r's nonzeros.
  Status RowSumsInto(Tile* acc) const;

  /// 2 * nnz * n: the flops SpMM against an n-column dense tile executes
  /// (vs 2 * rows * cols * n for the dense kernel).
  double SpmmFlops(int64_t n_cols) const { return 2.0 * nnz() * n_cols; }

 private:
  int64_t rows_;
  int64_t cols_;
  AlignedVector<int64_t> row_ptr_;  // size rows_ + 1
  AlignedVector<int64_t> col_idx_;  // size nnz
  AlignedVector<double> values_;    // size nnz
};

}  // namespace cumulon

#endif  // CUMULON_MATRIX_SPARSE_TILE_H_
