#ifndef CUMULON_MATRIX_TILED_MATRIX_H_
#define CUMULON_MATRIX_TILED_MATRIX_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "matrix/dense_matrix.h"
#include "matrix/layout.h"
#include "matrix/tile_store.h"

namespace cumulon {

/// A handle to a tiled matrix: its name (the key under which its tiles live
/// in a TileStore) plus its layout. The handle carries no data.
struct TiledMatrix {
  std::string name;
  TileLayout layout;
};

/// Writes `dense` into `store` as a tiled matrix with the given layout.
Status StoreDense(const DenseMatrix& dense, const TiledMatrix& target,
                  TileStore* store);

/// Reads all tiles of `m` from `store` and assembles the full matrix.
/// Intended for verification on small matrices.
Result<DenseMatrix> LoadDense(const TiledMatrix& m, TileStore* store);

/// Generates a tiled matrix tile-by-tile (memory footprint = one tile),
/// filling each tile with iid N(0,1) (kGaussian), U(0,1) (kUniform) or a
/// constant.
enum class FillKind { kGaussian, kUniform, kConstant };
Status GenerateMatrix(const TiledMatrix& m, FillKind kind, double constant,
                      Rng* rng, TileStore* store);

/// max_ij |A - B| between two tiled matrices of identical layout.
Result<double> TiledMaxAbsDiff(const TiledMatrix& a, const TiledMatrix& b,
                               TileStore* store);

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILED_MATRIX_H_
