#ifndef CUMULON_MATRIX_TILE_IO_H_
#define CUMULON_MATRIX_TILE_IO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/tile.h"

namespace cumulon {

/// On-the-wire tile format, matching Tile::SizeBytes() plus an integrity
/// footer:
///   int64 rows | int64 cols | rows*cols little-endian doubles | u64 fnv1a
/// The checksum lets the storage layer detect corrupted blocks (a real
/// concern for a DFS; HDFS checksums blocks the same way).
std::vector<uint8_t> SerializeTile(const Tile& tile);

/// Parses a serialized tile, validating the header, length, and checksum.
Result<Tile> DeserializeTile(const std::vector<uint8_t>& bytes);

/// FNV-1a over a byte range; exposed for tests.
uint64_t Fnv1a(const uint8_t* data, size_t size);

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILE_IO_H_
