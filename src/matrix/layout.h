#ifndef CUMULON_MATRIX_LAYOUT_H_
#define CUMULON_MATRIX_LAYOUT_H_

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace cumulon {

/// Position of a tile within a matrix's tile grid.
struct TileId {
  int64_t row = 0;  // grid row index
  int64_t col = 0;  // grid column index

  bool operator==(const TileId& o) const {
    return row == o.row && col == o.col;
  }
  bool operator<(const TileId& o) const {
    return row != o.row ? row < o.row : col < o.col;
  }
};

inline std::ostream& operator<<(std::ostream& os, const TileId& t) {
  return os << "(" << t.row << "," << t.col << ")";
}

/// Maps a logical rows x cols matrix onto a grid of tiles of (at most)
/// tile_rows x tile_cols each. Edge tiles may be smaller.
class TileLayout {
 public:
  TileLayout(int64_t rows, int64_t cols, int64_t tile_rows, int64_t tile_cols)
      : rows_(rows), cols_(cols), tile_rows_(tile_rows),
        tile_cols_(tile_cols) {
    CUMULON_CHECK_GT(rows, 0);
    CUMULON_CHECK_GT(cols, 0);
    CUMULON_CHECK_GT(tile_rows, 0);
    CUMULON_CHECK_GT(tile_cols, 0);
  }

  /// Square tiles of dimension `tile_dim`.
  static TileLayout Square(int64_t rows, int64_t cols, int64_t tile_dim) {
    return TileLayout(rows, cols, tile_dim, tile_dim);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t tile_rows() const { return tile_rows_; }
  int64_t tile_cols() const { return tile_cols_; }

  int64_t grid_rows() const { return (rows_ + tile_rows_ - 1) / tile_rows_; }
  int64_t grid_cols() const { return (cols_ + tile_cols_ - 1) / tile_cols_; }
  int64_t num_tiles() const { return grid_rows() * grid_cols(); }

  /// Number of element rows in grid row `gr` (edge tiles may be short).
  int64_t TileRowsAt(int64_t gr) const {
    CUMULON_DCHECK(gr >= 0 && gr < grid_rows());
    return std::min(tile_rows_, rows_ - gr * tile_rows_);
  }
  int64_t TileColsAt(int64_t gc) const {
    CUMULON_DCHECK(gc >= 0 && gc < grid_cols());
    return std::min(tile_cols_, cols_ - gc * tile_cols_);
  }

  /// Total logical elements and serialized bytes of the whole matrix.
  int64_t num_elements() const { return rows_ * cols_; }
  int64_t TotalBytes() const { return 16 * num_tiles() + num_elements() * 8; }

  /// The layout of this matrix transposed (tile grid transposes too).
  TileLayout Transposed() const {
    return TileLayout(cols_, rows_, tile_cols_, tile_rows_);
  }

  bool operator==(const TileLayout& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ &&
           tile_rows_ == o.tile_rows_ && tile_cols_ == o.tile_cols_;
  }

  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  int64_t tile_rows_;
  int64_t tile_cols_;
};

/// True if the two layouts split the same number of rows into identical
/// row partitions (same grid rows, same per-cell heights). Nominal
/// tile_rows may differ when edge clipping makes them equivalent (e.g. a
/// 1 x n matrix with tile_rows 8 vs 1).
bool RowPartitionsEqual(const TileLayout& a, const TileLayout& b);
bool ColPartitionsEqual(const TileLayout& a, const TileLayout& b);

/// True if the layouts partition identical dimensions into identical
/// grids: every tile has the same shape. This — not nominal tile-size
/// equality — is what the engine's per-tile operators require.
bool GridsAlign(const TileLayout& a, const TileLayout& b);

/// Multiply inner alignment: a's column partition equals b's row
/// partition, so tile (i,k) of A multiplies tile (k,j) of B.
bool InnerAligned(const TileLayout& a, const TileLayout& b);

}  // namespace cumulon

#endif  // CUMULON_MATRIX_LAYOUT_H_
