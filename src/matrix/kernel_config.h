#ifndef CUMULON_MATRIX_KERNEL_CONFIG_H_
#define CUMULON_MATRIX_KERNEL_CONFIG_H_

#include <cstdint>
#include <string>

/// Runtime kernel selection and blocking parameters for the tile kernels
/// (tile_ops.cc / gemm_packed.cc).
///
/// Two independent knobs:
///  - KernelMode picks the code path (bit-exact scalar oracle vs the packed
///    AVX2+FMA kernel), resolved at runtime from CPUID plus the
///    CUMULON_KERNEL environment override (`scalar` | `simd` | `auto`).
///  - KernelConfig holds the blocking parameters, derived once at startup
///    from the detected cache sizes (sysconf) with conservative fallbacks.

namespace cumulon {

/// Which kernel implementation to run.
///  - kAuto:   packed SIMD when the CPU supports AVX2+FMA, scalar otherwise.
///  - kScalar: the register-blocked scalar kernel — the bit-exactness
///             oracle (plain i-k-j accumulation order, mul+add rounding).
///  - kSimd:   the packed AVX2+FMA kernel; falls back to scalar when the
///             CPU lacks AVX2/FMA. Reorder-safe: each C element still
///             receives its k terms in ascending order, but FMA fuses the
///             multiply-add rounding, so results are tolerance-equal (not
///             bit-equal) to the oracle. Element-wise / column-aggregate
///             SIMD paths use no FMA and are bit-identical.
enum class KernelMode { kAuto, kScalar, kSimd };

/// How the within-row reductions (TileSum, RowSumsInto, FrobeniusNorm) fold
/// their terms.
///  - kAuto:    ordered unless the CUMULON_REDUCE environment override says
///              `fast` — reorder tolerance is opt-in, never inferred.
///  - kOrdered: strictly ascending-index folds — the bit-exactness oracle
///              every other path is tested against. Always honored.
///  - kFast:    multi-accumulator unrolled folds (portable, no intrinsics):
///              the dependency chain splits across four lanes, which
///              reassociates the additions, so results are tolerance-equal
///              (not bit-equal) to the oracle. CUMULON_REDUCE=ordered
///              forces it back to kOrdered process-wide.
/// Column sums are unaffected: they reduce across rows with one
/// accumulator per column, so their SIMD path never reorders.
enum class ReduceMode { kAuto, kOrdered, kFast };

const char* KernelModeName(KernelMode mode);
const char* ReduceModeName(ReduceMode mode);

/// Parses "auto" / "scalar" / "simd" (case-sensitive). Returns false (and
/// leaves *out alone) on anything else.
bool ParseKernelMode(const std::string& name, KernelMode* out);

/// True when this CPU can run the packed AVX2+FMA kernel AND the
/// CUMULON_KERNEL override does not force `scalar`. Setting
/// CUMULON_KERNEL=scalar therefore emulates a no-AVX2 machine for the
/// whole process (the scalar-dispatch CI lane).
bool SimdKernelAvailable();

/// Resolves a requested mode to the path that will actually run:
/// kAuto -> kSimd when available else kScalar; kSimd falls back to kScalar
/// when unavailable; kScalar is always honored.
KernelMode ResolveKernelMode(KernelMode requested);

/// Pure resolution logic, exposed for tests: `env` is the CUMULON_KERNEL
/// value (nullptr/empty = unset), `cpu_simd` whether CPUID reports
/// AVX2+FMA.
KernelMode ResolveKernelModeWith(KernelMode requested, bool cpu_simd,
                                 const char* env);

/// Parses "auto" / "ordered" / "fast" (case-sensitive). Returns false (and
/// leaves *out alone) on anything else.
bool ParseReduceMode(const std::string& name, ReduceMode* out);

/// Resolves a requested reduce mode against the CUMULON_REDUCE override:
/// kAuto -> kFast only when the override opts in, else kOrdered; kFast is
/// demoted to kOrdered when the override forces `ordered`; kOrdered is
/// always honored.
ReduceMode ResolveReduceMode(ReduceMode requested);

/// Pure resolution logic, exposed for tests: `env` is the CUMULON_REDUCE
/// value (nullptr/empty = unset).
ReduceMode ResolveReduceModeWith(ReduceMode requested, const char* env);

/// Micro-kernel register tile, baked into the compiled AVX2 kernel: 6 rows
/// x 8 columns (12 YMM accumulators + 2 B vectors + 1 A broadcast = 15 of
/// 16 registers). The packing panel strides below are multiples of these.
inline constexpr int kPackMr = 6;
inline constexpr int kPackNr = 8;

/// Cache-blocking parameters for the tile kernels. Defaults are derived
/// from the machine's cache sizes at startup (FromCacheSizes); all buffers
/// they size come from the cache-line-aligned allocator.
struct KernelConfig {
  /// Block edge for the scalar blocked kernels (Gemm oracle, transpose).
  /// Replaces the old file-scope `kBlock = 64` in tile_ops.cc.
  int64_t cache_block = 64;

  /// Packed-kernel panel sizes (BLIS-style): a kc x nc panel of B is packed
  /// into 8-wide column panels sized to stay L1-resident, an mc x kc block
  /// of A into 6-wide row panels sized for L2.
  int64_t pack_mc = 252;   // multiple of kPackMr
  int64_t pack_kc = 256;
  int64_t pack_nc = 4096;  // multiple of kPackNr

  /// Derives blocking from cache sizes (bytes; <=0 picks the fallback of
  /// 32 KiB L1d / 1 MiB L2).
  static KernelConfig FromCacheSizes(int64_t l1d_bytes, int64_t l2_bytes);

  /// FromCacheSizes over the sizes sysconf reports for this machine.
  static KernelConfig Detect();
};

/// Process-wide config, detected on first use.
const KernelConfig& GetKernelConfig();

/// Replaces the process-wide config (tests/benches). Not synchronized
/// against concurrently running kernels — call before spawning workers.
void SetKernelConfig(const KernelConfig& config);

}  // namespace cumulon

#endif  // CUMULON_MATRIX_KERNEL_CONFIG_H_
