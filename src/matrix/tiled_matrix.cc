#include "matrix/tiled_matrix.h"

#include <memory>

#include "common/strings.h"

namespace cumulon {

Status StoreDense(const DenseMatrix& dense, const TiledMatrix& target,
                  TileStore* store) {
  const TileLayout& L = target.layout;
  if (dense.rows() != L.rows() || dense.cols() != L.cols()) {
    return Status::InvalidArgument(
        StrCat("StoreDense: dense is ", dense.rows(), "x", dense.cols(),
               " but layout is ", L.ToString()));
  }
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      auto tile = std::make_shared<Tile>(L.TileRowsAt(gr), L.TileColsAt(gc));
      const int64_t r0 = gr * L.tile_rows();
      const int64_t c0 = gc * L.tile_cols();
      for (int64_t r = 0; r < tile->rows(); ++r) {
        for (int64_t c = 0; c < tile->cols(); ++c) {
          tile->Set(r, c, dense.At(r0 + r, c0 + c));
        }
      }
      CUMULON_RETURN_IF_ERROR(
          store->Put(target.name, TileId{gr, gc}, std::move(tile), -1));
    }
  }
  return Status::OK();
}

Result<DenseMatrix> LoadDense(const TiledMatrix& m, TileStore* store) {
  const TileLayout& L = m.layout;
  DenseMatrix out(L.rows(), L.cols());
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> tile,
                               store->Get(m.name, TileId{gr, gc}, -1));
      const int64_t r0 = gr * L.tile_rows();
      const int64_t c0 = gc * L.tile_cols();
      for (int64_t r = 0; r < tile->rows(); ++r) {
        for (int64_t c = 0; c < tile->cols(); ++c) {
          out.Set(r0 + r, c0 + c, tile->At(r, c));
        }
      }
    }
  }
  return out;
}

Status GenerateMatrix(const TiledMatrix& m, FillKind kind, double constant,
                      Rng* rng, TileStore* store) {
  const TileLayout& L = m.layout;
  if (kind != FillKind::kConstant && rng == nullptr) {
    return Status::InvalidArgument("GenerateMatrix: random fill needs an Rng");
  }
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      auto tile = std::make_shared<Tile>(L.TileRowsAt(gr), L.TileColsAt(gc));
      switch (kind) {
        case FillKind::kGaussian:
          FillGaussian(tile.get(), rng);
          break;
        case FillKind::kUniform:
          FillUniform(tile.get(), rng);
          break;
        case FillKind::kConstant:
          FillTile(tile.get(), constant);
          break;
      }
      CUMULON_RETURN_IF_ERROR(
          store->Put(m.name, TileId{gr, gc}, std::move(tile), -1));
    }
  }
  return Status::OK();
}

Result<double> TiledMaxAbsDiff(const TiledMatrix& a, const TiledMatrix& b,
                               TileStore* store) {
  if (!(a.layout == b.layout)) {
    return Status::InvalidArgument("TiledMaxAbsDiff: layout mismatch");
  }
  double worst = 0.0;
  const TileLayout& L = a.layout;
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> ta,
                               store->Get(a.name, TileId{gr, gc}, -1));
      CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> tb,
                               store->Get(b.name, TileId{gr, gc}, -1));
      CUMULON_ASSIGN_OR_RETURN(double d, MaxAbsDiff(*ta, *tb));
      worst = std::max(worst, d);
    }
  }
  return worst;
}

}  // namespace cumulon
