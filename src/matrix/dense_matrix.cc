#include "matrix/dense_matrix.h"

#include <cmath>

#include "common/strings.h"

namespace cumulon {

DenseMatrix DenseMatrix::Gaussian(int64_t rows, int64_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextGaussian();
  return m;
}

DenseMatrix DenseMatrix::Uniform(int64_t rows, int64_t cols, Rng* rng,
                                 double lo, double hi) {
  DenseMatrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextDouble(lo, hi);
  return m;
}

DenseMatrix DenseMatrix::Constant(int64_t rows, int64_t cols, double value) {
  DenseMatrix m(rows, cols);
  for (auto& v : m.data_) v = value;
  return m;
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.Set(i, i, 1.0);
  return m;
}

Result<DenseMatrix> DenseMatrix::Multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        StrCat("multiply shape mismatch: ", rows_, "x", cols_, " * ",
               other.rows_, "x", other.cols_));
  }
  DenseMatrix out(rows_, other.cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (int64_t j = 0; j < other.cols_; ++j) {
        out.data_[i * out.cols_ + j] += a * other.At(k, j);
      }
    }
  }
  return out;
}

Result<DenseMatrix> DenseMatrix::Binary(BinaryOp op,
                                        const DenseMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("binary shape mismatch");
  }
  DenseMatrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_ * cols_; ++i) {
    out.data_[i] = ApplyBinary(op, data_[i], other.data_[i]);
  }
  return out;
}

DenseMatrix DenseMatrix::Unary(UnaryOp op, double scalar) const {
  DenseMatrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_ * cols_; ++i) {
    out.data_[i] = ApplyUnary(op, data_[i], scalar);
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      out.Set(j, i, At(i, j));
    }
  }
  return out;
}

DenseMatrix DenseMatrix::RowSums() const {
  DenseMatrix out(rows_, 1);
  for (int64_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < cols_; ++c) s += At(r, c);
    out.Set(r, 0, s);
  }
  return out;
}

DenseMatrix DenseMatrix::ColSums() const {
  DenseMatrix out(1, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      out.Set(0, c, out.At(0, c) + At(r, c));
    }
  }
  return out;
}

Result<DenseMatrix> DenseMatrix::Broadcast(BinaryOp op,
                                           const DenseMatrix& vec,
                                           bool row_vector) const {
  if (row_vector ? (vec.rows() != 1 || vec.cols() != cols_)
                 : (vec.cols() != 1 || vec.rows() != rows_)) {
    return Status::InvalidArgument("broadcast vector shape mismatch");
  }
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      const double v = row_vector ? vec.At(0, c) : vec.At(r, 0);
      out.Set(r, c, ApplyBinary(op, At(r, c), v));
    }
  }
  return out;
}

double DenseMatrix::Total() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Result<double> DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("MaxAbsDiff shape mismatch");
  }
  double m = 0.0;
  for (int64_t i = 0; i < rows_ * cols_; ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace cumulon
