#ifndef CUMULON_MATRIX_TILE_STORE_H_
#define CUMULON_MATRIX_TILE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "matrix/layout.h"
#include "matrix/tile.h"

namespace cumulon {

/// Shared state of one asynchronous tile fetch. A store creates one state
/// per in-flight fetch, hands out TileFutures over it (several callers may
/// coalesce onto one state), and calls Resolve exactly once when the fetch
/// completes. Thread-safe.
class TileFetchState {
 public:
  using FetchResult = Result<std::shared_ptr<const Tile>>;

  /// Publishes the fetch outcome and wakes every Await. Call once.
  void Resolve(FetchResult result);

  bool resolved() const;

  /// True when every future issued over this state cancelled before
  /// resolution — the fetch worker may skip the actual read.
  bool abandoned() const;

  /// Blocks until Resolve, charging the wait to the calling thread's
  /// TaskIoStats and to `stall_callback` (if set).
  FetchResult Await();

  /// One more future now shares this state (coalesced request).
  void AddWaiter() { waiters_.fetch_add(1, std::memory_order_relaxed); }

  /// A future declared it will never Await.
  void Cancel() { cancels_.fetch_add(1, std::memory_order_relaxed); }

  /// Invoked from Await with the measured blocked seconds (may be called
  /// concurrently from several waiters). Set before sharing the state;
  /// stores use it to export stall metrics without this header depending
  /// on the metrics library.
  std::function<void(double seconds)> stall_callback;

 private:
  mutable Mutex mu_{"TileFetchState::mu_"};
  CondVar cv_;
  bool resolved_ CUMULON_GUARDED_BY(mu_) = false;
  std::optional<FetchResult> result_ CUMULON_GUARDED_BY(mu_);
  std::atomic<int> waiters_{1};
  std::atomic<int> cancels_{0};
};

/// Handle to an asynchronous tile fetch. Cheap to copy (shared state);
/// default-constructed futures are invalid. Await may be called by any
/// number of holders; Cancel only withdraws this holder's interest — the
/// fetch is skipped only when every holder cancels before it starts.
class TileFuture {
 public:
  TileFuture() = default;

  /// An already-resolved future (the synchronous fallback path).
  static TileFuture Ready(TileFetchState::FetchResult result);

  /// Wraps a store-managed fetch state. Does not AddWaiter — the store
  /// accounts for the first waiter at state creation and calls AddWaiter
  /// itself when coalescing.
  static TileFuture FromState(std::shared_ptr<TileFetchState> state);

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ != nullptr && state_->resolved(); }

  /// Blocks until the fetch resolves and returns its result.
  TileFetchState::FetchResult Await();

  /// Declares this future will never be awaited (pipeline teardown).
  void Cancel();

 private:
  std::shared_ptr<TileFetchState> state_;
};

/// Storage abstraction the execution engine reads/writes tiles through.
/// Production deployments back this with the (simulated) DFS
/// (dfs::DfsTileStore); tests may use the in-memory implementation below.
///
/// Implementations must be thread-safe: tasks on the real engine call
/// Get/Put concurrently.
class TileStore {
 public:
  virtual ~TileStore() = default;

  /// Stores tile `id` of matrix `matrix`. Overwrites any existing tile.
  /// `writer_node` identifies which cluster node produced the tile (used by
  /// DFS-backed stores for replica placement / locality accounting);
  /// -1 means "client" / unknown.
  virtual Status Put(const std::string& matrix, TileId id,
                     std::shared_ptr<const Tile> tile, int writer_node) = 0;

  /// Fetches tile `id` of matrix `matrix`. `reader_node` is the node doing
  /// the read, for locality accounting.
  virtual Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                                  TileId id,
                                                  int reader_node) = 0;

  /// Asynchronous Get: returns a future that resolves to the tile. The
  /// default implementation fetches synchronously and returns a ready
  /// future, so callers can be written against the async API regardless of
  /// the backing store; DfsTileStore overrides this with a real prefetch
  /// pool (concurrent requests for one tile coalesce onto one fetch).
  virtual TileFuture GetAsync(const std::string& matrix, TileId id,
                              int reader_node) {
    return TileFuture::Ready(Get(matrix, id, reader_node));
  }

  /// Hint that `id` will be read soon by `reader_node`. Purely advisory —
  /// the default is a no-op; prefetch-capable stores start a background
  /// fetch that lands in the node's tile cache.
  virtual void Prefetch(const std::string& matrix, TileId id,
                        int reader_node) {
    (void)matrix;
    (void)id;
    (void)reader_node;
  }

  /// Drops all tiles of `matrix` (used to free intermediates).
  virtual Status DeleteMatrix(const std::string& matrix) = 0;

  /// Cluster nodes that host a replica of the tile, for locality-aware task
  /// placement. Default: no preference (non-DFS stores).
  virtual std::vector<int> PreferredNodes(const std::string& matrix,
                                          TileId id) {
    (void)matrix;
    (void)id;
    return {};
  }

  /// Records that tile `id` of `matrix` exists with the given serialized
  /// size, without providing data. Simulation-mode runs use this so
  /// downstream jobs still see correct placement/locality. Default: no-op.
  virtual Status PutMeta(const std::string& matrix, TileId id, int64_t bytes,
                         int writer_node) {
    (void)matrix;
    (void)id;
    (void)bytes;
    (void)writer_node;
    return Status::OK();
  }
};

/// Simple thread-safe map-backed store with no locality modeling.
class InMemoryTileStore : public TileStore {
 public:
  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const Tile> tile, int writer_node) override;
  Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                          TileId id, int reader_node) override;
  Status DeleteMatrix(const std::string& matrix) override;

  /// Number of tiles currently stored (across all matrices).
  int64_t NumTiles() const;

 private:
  mutable Mutex mu_{"InMemoryTileStore::mu_"};
  std::map<std::pair<std::string, TileId>, std::shared_ptr<const Tile>> tiles_
      CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILE_STORE_H_
