#ifndef CUMULON_MATRIX_TILE_STORE_H_
#define CUMULON_MATRIX_TILE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "matrix/layout.h"
#include "matrix/tile.h"

namespace cumulon {

/// Storage abstraction the execution engine reads/writes tiles through.
/// Production deployments back this with the (simulated) DFS
/// (dfs::DfsTileStore); tests may use the in-memory implementation below.
///
/// Implementations must be thread-safe: tasks on the real engine call
/// Get/Put concurrently.
class TileStore {
 public:
  virtual ~TileStore() = default;

  /// Stores tile `id` of matrix `matrix`. Overwrites any existing tile.
  /// `writer_node` identifies which cluster node produced the tile (used by
  /// DFS-backed stores for replica placement / locality accounting);
  /// -1 means "client" / unknown.
  virtual Status Put(const std::string& matrix, TileId id,
                     std::shared_ptr<const Tile> tile, int writer_node) = 0;

  /// Fetches tile `id` of matrix `matrix`. `reader_node` is the node doing
  /// the read, for locality accounting.
  virtual Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                                  TileId id,
                                                  int reader_node) = 0;

  /// Drops all tiles of `matrix` (used to free intermediates).
  virtual Status DeleteMatrix(const std::string& matrix) = 0;

  /// Cluster nodes that host a replica of the tile, for locality-aware task
  /// placement. Default: no preference (non-DFS stores).
  virtual std::vector<int> PreferredNodes(const std::string& matrix,
                                          TileId id) {
    (void)matrix;
    (void)id;
    return {};
  }

  /// Records that tile `id` of `matrix` exists with the given serialized
  /// size, without providing data. Simulation-mode runs use this so
  /// downstream jobs still see correct placement/locality. Default: no-op.
  virtual Status PutMeta(const std::string& matrix, TileId id, int64_t bytes,
                         int writer_node) {
    (void)matrix;
    (void)id;
    (void)bytes;
    (void)writer_node;
    return Status::OK();
  }
};

/// Simple thread-safe map-backed store with no locality modeling.
class InMemoryTileStore : public TileStore {
 public:
  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const Tile> tile, int writer_node) override;
  Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                          TileId id, int reader_node) override;
  Status DeleteMatrix(const std::string& matrix) override;

  /// Number of tiles currently stored (across all matrices).
  int64_t NumTiles() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, TileId>, std::shared_ptr<const Tile>> tiles_;
};

}  // namespace cumulon

#endif  // CUMULON_MATRIX_TILE_STORE_H_
