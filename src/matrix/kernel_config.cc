#include "matrix/kernel_config.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cumulon {

namespace {

constexpr int64_t kFallbackL1d = 32 * 1024;
constexpr int64_t kFallbackL2 = 1024 * 1024;

/// Whether this build + CPU can execute the AVX2+FMA kernel at all.
bool CpuSupportsAvx2Fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* KernelEnvOverride() {
  static const char* env = [] {
    const char* v = std::getenv("CUMULON_KERNEL");
    return (v != nullptr && v[0] != '\0') ? v : nullptr;
  }();
  return env;
}

const char* ReduceEnvOverride() {
  static const char* env = [] {
    const char* v = std::getenv("CUMULON_REDUCE");
    return (v != nullptr && v[0] != '\0') ? v : nullptr;
  }();
  return env;
}

int64_t RoundDownToMultiple(int64_t n, int64_t m) { return (n / m) * m; }

}  // namespace

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSimd:
      return "simd";
  }
  return "unknown";
}

bool ParseKernelMode(const std::string& name, KernelMode* out) {
  if (name == "auto") {
    *out = KernelMode::kAuto;
  } else if (name == "scalar") {
    *out = KernelMode::kScalar;
  } else if (name == "simd") {
    *out = KernelMode::kSimd;
  } else {
    return false;
  }
  return true;
}

KernelMode ResolveKernelModeWith(KernelMode requested, bool cpu_simd,
                                 const char* env) {
  // CUMULON_KERNEL=scalar emulates a machine without AVX2: the SIMD path
  // is unavailable no matter what callers request.
  bool simd_available = cpu_simd;
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    simd_available = false;
  }
  if (requested == KernelMode::kScalar) return KernelMode::kScalar;
  return simd_available ? KernelMode::kSimd : KernelMode::kScalar;
}

bool SimdKernelAvailable() {
  static const bool available =
      ResolveKernelModeWith(KernelMode::kAuto, CpuSupportsAvx2Fma(),
                            KernelEnvOverride()) == KernelMode::kSimd;
  return available;
}

KernelMode ResolveKernelMode(KernelMode requested) {
  if (requested == KernelMode::kScalar) return KernelMode::kScalar;
  return SimdKernelAvailable() ? KernelMode::kSimd : KernelMode::kScalar;
}

const char* ReduceModeName(ReduceMode mode) {
  switch (mode) {
    case ReduceMode::kAuto:
      return "auto";
    case ReduceMode::kOrdered:
      return "ordered";
    case ReduceMode::kFast:
      return "fast";
  }
  return "unknown";
}

bool ParseReduceMode(const std::string& name, ReduceMode* out) {
  if (name == "auto") {
    *out = ReduceMode::kAuto;
  } else if (name == "ordered") {
    *out = ReduceMode::kOrdered;
  } else if (name == "fast") {
    *out = ReduceMode::kFast;
  } else {
    return false;
  }
  return true;
}

ReduceMode ResolveReduceModeWith(ReduceMode requested, const char* env) {
  if (requested == ReduceMode::kOrdered) return ReduceMode::kOrdered;
  // CUMULON_REDUCE=ordered pins the whole process to the oracle fold (the
  // strict CI lane); reorder tolerance is never inferred, so kAuto only
  // picks the fast path when the override explicitly opts in.
  if (env != nullptr && std::strcmp(env, "ordered") == 0) {
    return ReduceMode::kOrdered;
  }
  if (requested == ReduceMode::kFast) return ReduceMode::kFast;
  return (env != nullptr && std::strcmp(env, "fast") == 0)
             ? ReduceMode::kFast
             : ReduceMode::kOrdered;
}

ReduceMode ResolveReduceMode(ReduceMode requested) {
  return ResolveReduceModeWith(requested, ReduceEnvOverride());
}

KernelConfig KernelConfig::FromCacheSizes(int64_t l1d_bytes,
                                          int64_t l2_bytes) {
  if (l1d_bytes <= 0) l1d_bytes = kFallbackL1d;
  if (l2_bytes <= 0) l2_bytes = kFallbackL2;

  KernelConfig cfg;

  // Scalar blocked kernels: three cache_block^2 operand blocks should
  // occupy at most a quarter of L2. Largest power of two in [16, 256].
  int64_t block = 16;
  while (block < 256 && 3 * (2 * block) * (2 * block) * 8 <= l2_bytes / 4) {
    block *= 2;
  }
  cfg.cache_block = block;

  // Packed kernel: a kc x kPackNr B panel (plus the streaming A panel)
  // should stay within half of L1d...
  cfg.pack_kc = std::clamp<int64_t>(l1d_bytes / (2 * kPackNr * 8), 64, 512);
  // ...and the packed mc x kc A block within half of L2.
  cfg.pack_mc = RoundDownToMultiple(
      std::clamp<int64_t>(l2_bytes / (2 * cfg.pack_kc * 8), 4 * kPackMr, 1020),
      kPackMr);
  // B panel width: generous, capped so Bp stays a few MB at most.
  cfg.pack_nc = 4096;
  return cfg;
}

KernelConfig KernelConfig::Detect() {
  int64_t l1d = 0;
  int64_t l2 = 0;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  l1d = static_cast<int64_t>(sysconf(_SC_LEVEL1_DCACHE_SIZE));
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = static_cast<int64_t>(sysconf(_SC_LEVEL2_CACHE_SIZE));
#endif
  return FromCacheSizes(l1d, l2);
}

namespace {
KernelConfig& MutableKernelConfig() {
  static KernelConfig config = KernelConfig::Detect();
  return config;
}
}  // namespace

const KernelConfig& GetKernelConfig() { return MutableKernelConfig(); }

void SetKernelConfig(const KernelConfig& config) {
  MutableKernelConfig() = config;
}

}  // namespace cumulon
