#include "matrix/tile_io.h"

#include <cstring>

#include "common/strings.h"

namespace cumulon {

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

void AppendRaw(const void* src, size_t size, std::vector<uint8_t>* out) {
  const size_t offset = out->size();
  out->resize(offset + size);
  std::memcpy(out->data() + offset, src, size);
}

}  // namespace

std::vector<uint8_t> SerializeTile(const Tile& tile) {
  std::vector<uint8_t> out;
  out.reserve(tile.SizeBytes() + sizeof(uint64_t));
  const int64_t rows = tile.rows();
  const int64_t cols = tile.cols();
  AppendRaw(&rows, sizeof(rows), &out);
  AppendRaw(&cols, sizeof(cols), &out);
  AppendRaw(tile.data(), tile.size() * sizeof(double), &out);
  const uint64_t checksum = Fnv1a(out.data(), out.size());
  AppendRaw(&checksum, sizeof(checksum), &out);
  return out;
}

Result<Tile> DeserializeTile(const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeader = 2 * sizeof(int64_t);
  constexpr size_t kFooter = sizeof(uint64_t);
  if (bytes.size() < kHeader + kFooter) {
    return Status::InvalidArgument("serialized tile too short");
  }
  uint64_t expected_checksum = 0;
  std::memcpy(&expected_checksum, bytes.data() + bytes.size() - kFooter,
              kFooter);
  const uint64_t actual_checksum =
      Fnv1a(bytes.data(), bytes.size() - kFooter);
  if (actual_checksum != expected_checksum) {
    return Status::Internal("tile checksum mismatch (corrupted block)");
  }
  int64_t rows = 0, cols = 0;
  std::memcpy(&rows, bytes.data(), sizeof(rows));
  std::memcpy(&cols, bytes.data() + sizeof(rows), sizeof(cols));
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument(
        StrCat("invalid tile dimensions ", rows, "x", cols));
  }
  const size_t payload = static_cast<size_t>(rows) * cols * sizeof(double);
  if (bytes.size() != kHeader + payload + kFooter) {
    return Status::InvalidArgument("serialized tile length mismatch");
  }
  Tile tile(rows, cols);
  std::memcpy(tile.mutable_data(), bytes.data() + kHeader, payload);
  return tile;
}

}  // namespace cumulon
