#include "cloud/revocation.h"

#include <algorithm>
#include <cmath>

namespace cumulon {

namespace {

void SortAndDedup(std::vector<RevocationEvent>* events) {
  // Earliest event per machine wins; order by (time, machine) so iteration
  // is deterministic.
  std::sort(events->begin(), events->end(),
            [](const RevocationEvent& a, const RevocationEvent& b) {
              if (a.time_seconds != b.time_seconds) {
                return a.time_seconds < b.time_seconds;
              }
              return a.machine < b.machine;
            });
  std::vector<RevocationEvent> kept;
  kept.reserve(events->size());
  for (const RevocationEvent& e : *events) {
    if (e.machine < 0) continue;
    const bool seen =
        std::any_of(kept.begin(), kept.end(), [&](const RevocationEvent& k) {
          return k.machine == e.machine;
        });
    if (!seen) kept.push_back(e);
  }
  *events = std::move(kept);
}

}  // namespace

RevocationSchedule RevocationSchedule::Scripted(
    std::vector<RevocationEvent> events) {
  RevocationSchedule schedule;
  schedule.events_ = std::move(events);
  SortAndDedup(&schedule.events_);
  return schedule;
}

RevocationSchedule RevocationSchedule::Sample(uint64_t seed, int num_machines,
                                              double hazard_per_hour,
                                              double horizon_seconds,
                                              int first_transient_machine) {
  RevocationSchedule schedule;
  if (hazard_per_hour <= 0.0 || horizon_seconds <= 0.0) return schedule;
  Rng rng(seed);
  const double lambda_per_sec = hazard_per_hour / 3600.0;
  for (int m = std::max(first_transient_machine, 0); m < num_machines; ++m) {
    // Exponential inter-arrival: t = -ln(1 - u) / lambda. One draw per
    // machine keeps the schedule's RNG consumption independent of the
    // horizon, so replays stay aligned across hazard settings.
    const double u = rng.NextDouble();
    const double t = -std::log1p(-u) / lambda_per_sec;
    if (t < horizon_seconds) {
      schedule.events_.push_back(RevocationEvent{m, t});
    }
  }
  SortAndDedup(&schedule.events_);
  return schedule;
}

double RevocationSchedule::RevokedAtSeconds(int machine) const {
  for (const RevocationEvent& e : events_) {
    if (e.machine == machine) return e.time_seconds;
  }
  return kNever;
}

RevocationController::RevocationController(RevocationSchedule schedule)
    : schedule_(std::move(schedule)) {
  MutexLock lock(&mu_);
  fired_.assign(schedule_.events().size(), false);
}

double RevocationController::origin_seconds() const {
  MutexLock lock(&mu_);
  return origin_seconds_;
}

void RevocationController::AdvanceOrigin(double seconds) {
  MutexLock lock(&mu_);
  origin_seconds_ += seconds;
}

double RevocationController::WallNowSeconds() {
  MutexLock lock(&mu_);
  if (!wall_armed_) {
    wall_armed_ = true;
    wall_clock_.Restart();
    return 0.0;
  }
  return wall_clock_.ElapsedSeconds();
}

bool RevocationController::ClaimFired(int machine) {
  const std::vector<RevocationEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].machine != machine) continue;
    MutexLock lock(&mu_);
    if (fired_[i]) return false;
    fired_[i] = true;
    return true;
  }
  return false;  // schedule never revokes this machine
}

int RevocationController::fired_count() const {
  MutexLock lock(&mu_);
  return static_cast<int>(std::count(fired_.begin(), fired_.end(), true));
}

int RevocationController::FallbackMachine(int from, int num_machines,
                                          double abs_seconds) const {
  for (int step = 1; step <= num_machines; ++step) {
    const int candidate = (from + step) % num_machines;
    if (!IsRevokedAt(candidate, abs_seconds)) return candidate;
  }
  return -1;
}

}  // namespace cumulon
