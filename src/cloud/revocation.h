#ifndef CUMULON_CLOUD_REVOCATION_H_
#define CUMULON_CLOUD_REVOCATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace cumulon {

/// One transient-machine loss: the provider reclaims `machine` at
/// `time_seconds` on the schedule's clock (cumulative engine time for the
/// sim engine, wall time since arming for the real engine).
struct RevocationEvent {
  int machine = -1;
  double time_seconds = 0.0;
};

/// A deterministic set of revocation events — the seeded fault-injection
/// plan that both engines replay. Each machine is revoked at most once
/// (spot capacity is not re-acquired mid-schedule; the elastic provisioner
/// models replacement by re-planning the fleet between jobs).
class RevocationSchedule {
 public:
  RevocationSchedule() = default;

  /// A hand-written schedule (tests, golden traces). Events for the same
  /// machine keep only the earliest; negative machines are dropped.
  static RevocationSchedule Scripted(std::vector<RevocationEvent> events);

  /// Samples each transient machine's revocation instant from the
  /// exponential arrival law implied by `hazard_per_hour`, keeping only
  /// instants inside `horizon_seconds`. Machines below
  /// `first_transient_machine` are on-demand and never revoked.
  /// Deterministic in `seed`: same seed, same instants.
  static RevocationSchedule Sample(uint64_t seed, int num_machines,
                                   double hazard_per_hour,
                                   double horizon_seconds,
                                   int first_transient_machine = 0);

  const std::vector<RevocationEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// When `machine` is revoked, or +inf if it survives the schedule.
  double RevokedAtSeconds(int machine) const;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  std::vector<RevocationEvent> events_;  // sorted by time, one per machine
};

/// Injects one RevocationSchedule into an engine. The controller owns the
/// schedule's clock mapping and the fired-once bookkeeping, so the exact
/// same schedule drives simulated runs (virtual clock) and real runs (wall
/// clock), and a machine's loss is observed — cache invalidated, counters
/// bumped, "revoke" span emitted — exactly once even when several jobs run
/// after the instant.
///
/// Clock domains:
///  - Sim engines run every job on a virtual clock restarting at 0. The
///    controller keeps a cumulative origin: a job sees machine m dead at
///    job-relative time RevokedAtSeconds(m) - origin_seconds(), and the
///    engine advances the origin by each job's makespan when it finishes.
///    Schedule time is therefore cumulative engine-busy time; executor
///    job-startup gaps do not consume it.
///  - Real engines call WallNowSeconds(), which arms a stopwatch on first
///    use; schedule time is wall seconds since arming.
///
/// Thread-safe; shared by the engine's driver and pool workers.
class RevocationController {
 public:
  explicit RevocationController(RevocationSchedule schedule);

  const RevocationSchedule& schedule() const { return schedule_; }

  /// Absolute (schedule-clock) revocation instant of `machine`; +inf when
  /// the schedule never revokes it.
  double RevokedAtSeconds(int machine) const {
    return schedule_.RevokedAtSeconds(machine);
  }

  bool IsRevokedAt(int machine, double abs_seconds) const {
    return abs_seconds >= RevokedAtSeconds(machine);
  }

  // --- virtual-clock domain (sim engine) --------------------------------
  double origin_seconds() const;
  void AdvanceOrigin(double seconds);

  // --- wall-clock domain (real engine) ----------------------------------
  /// Seconds since the first call (which arms the clock).
  double WallNowSeconds();

  /// Marks machine `machine`'s revocation as observed; true exactly once
  /// per machine across the controller's lifetime. Engines gate the
  /// one-shot consequences of a loss (tile-cache invalidation, the
  /// cluster.revoked.machines counter, the "revoke" trace span) on this.
  bool ClaimFired(int machine);

  /// How many machines have been claimed so far (fired revocations).
  int fired_count() const;

  /// Smallest-index machine in [0, num_machines) still alive at
  /// `abs_seconds`, starting the scan after `from` so relocations spread
  /// instead of piling onto machine 0. Returns -1 when the whole fleet is
  /// revoked.
  int FallbackMachine(int from, int num_machines, double abs_seconds) const;

 private:
  const RevocationSchedule schedule_;

  mutable Mutex mu_{"RevocationController::mu_"};
  double origin_seconds_ CUMULON_GUARDED_BY(mu_) = 0.0;
  bool wall_armed_ CUMULON_GUARDED_BY(mu_) = false;
  Stopwatch wall_clock_ CUMULON_GUARDED_BY(mu_);
  std::vector<bool> fired_ CUMULON_GUARDED_BY(mu_);  // by event index
};

}  // namespace cumulon

#endif  // CUMULON_CLOUD_REVOCATION_H_
