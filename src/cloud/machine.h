#ifndef CUMULON_CLOUD_MACHINE_H_
#define CUMULON_CLOUD_MACHINE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace cumulon {

/// Performance and price profile of one cloud machine type. The catalog
/// below is shaped like the 2013-era Amazon EC2 instance menu the paper
/// provisions from (m1.small .. c1.xlarge); only the *relative* speeds and
/// prices matter for the optimizer's choices, so the absolute numbers are
/// synthetic but keep EC2's ordering and rough ratios.
struct MachineProfile {
  std::string name;
  int cores = 1;              // hardware threads usable by task slots
  double cpu_gflops = 1.0;    // per-core dense-FP throughput
  double disk_mbps = 100.0;   // sequential disk bandwidth, whole machine
  double net_mbps = 120.0;    // network bandwidth, whole machine
  double price_per_hour = 0.1;  // $/hour while provisioned
  double memory_mb = 4096.0;    // RAM shared by the machine's task slots

  double memory_bytes() const { return memory_mb * 1e6; }

  double disk_bytes_per_sec() const { return disk_mbps * 1e6; }
  double net_bytes_per_sec() const { return net_mbps * 1e6; }
};

/// All machine types available for provisioning.
const std::vector<MachineProfile>& MachineCatalog();

/// Looks a profile up by name ("c1.medium", ...).
Result<MachineProfile> FindMachine(const std::string& name);

/// How provisioned time is rounded for billing. The 2013 EC2 default was a
/// one-hour quantum; per-second billing is the modern comparison point
/// (experiment E12).
struct BillingPolicy {
  double quantum_seconds = 3600.0;  // round usage up to a multiple of this
  double minimum_seconds = 0.0;     // charge at least this much
};

/// Dollar cost of running `num_machines` machines of type `machine` for
/// `seconds` under `billing`.
double ClusterDollarCost(const MachineProfile& machine, int num_machines,
                         double seconds, const BillingPolicy& billing);

}  // namespace cumulon

#endif  // CUMULON_CLOUD_MACHINE_H_
