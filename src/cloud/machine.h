#ifndef CUMULON_CLOUD_MACHINE_H_
#define CUMULON_CLOUD_MACHINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace cumulon {

/// Performance and price profile of one cloud machine type. The catalog
/// below is shaped like the 2013-era Amazon EC2 instance menu the paper
/// provisions from (m1.small .. c1.xlarge); only the *relative* speeds and
/// prices matter for the optimizer's choices, so the absolute numbers are
/// synthetic but keep EC2's ordering and rough ratios.
struct MachineProfile {
  std::string name;
  int cores = 1;              // hardware threads usable by task slots
  double cpu_gflops = 1.0;    // per-core dense-FP throughput
  double disk_mbps = 100.0;   // sequential disk bandwidth, whole machine
  double net_mbps = 120.0;    // network bandwidth, whole machine
  double price_per_hour = 0.1;  // $/hour while provisioned
  double memory_mb = 4096.0;    // RAM shared by the machine's task slots

  /// Transient (spot) capacity: discounted price, but the provider may
  /// revoke the machine mid-job. Revocations arrive as a per-machine
  /// Poisson process with `revocation_hazard_per_hour` events/hour while
  /// provisioned (a machine is lost at most once; see cloud/revocation.h).
  bool transient = false;
  double revocation_hazard_per_hour = 0.0;

  double memory_bytes() const { return memory_mb * 1e6; }

  double disk_bytes_per_sec() const { return disk_mbps * 1e6; }
  double net_bytes_per_sec() const { return net_mbps * 1e6; }
};

/// All machine types available for provisioning.
const std::vector<MachineProfile>& MachineCatalog();

/// Default spot-market terms: the discount off the on-demand price and the
/// revocation hazard that FindMachine assumes for "<type>:spot" names.
/// Shaped like 2013-era EC2 spot: ~65% cheaper, interrupted a few times a
/// week per machine under calm market conditions.
inline constexpr double kDefaultSpotDiscount = 0.65;
inline constexpr double kDefaultSpotHazardPerHour = 0.05;

/// The transient (spot) variant of an on-demand profile: same hardware,
/// price scaled by (1 - discount), named "<name>:spot", and carrying the
/// given revocation hazard.
MachineProfile SpotVariant(const MachineProfile& on_demand,
                           double discount = kDefaultSpotDiscount,
                           double hazard_per_hour = kDefaultSpotHazardPerHour);

/// Looks a profile up by name ("c1.medium", ...). A ":spot" suffix
/// ("m1.large:spot") resolves to SpotVariant of the base type under the
/// default spot terms, so every optimizer search-space that enumerates
/// machine type names can also enumerate transient capacity.
Result<MachineProfile> FindMachine(const std::string& name);

/// How provisioned time is rounded for billing. The 2013 EC2 default was a
/// one-hour quantum; per-second billing is the modern comparison point
/// (experiment E12).
struct BillingPolicy {
  double quantum_seconds = 3600.0;  // round usage up to a multiple of this
  double minimum_seconds = 0.0;     // charge at least this much
};

/// Usage seconds after billing rounding: at least `minimum_seconds`,
/// rounded up to a whole number of quanta.
double BilledSeconds(double seconds, const BillingPolicy& billing);

/// Dollar cost of running `num_machines` machines of type `machine` for
/// `seconds` under `billing`.
double ClusterDollarCost(const MachineProfile& machine, int num_machines,
                         double seconds, const BillingPolicy& billing);

/// Dollar cost of ONE machine provisioned for `seconds` when the provider
/// revoked it at `revoked_at_seconds` into the lease. A revoked machine is
/// never billed past its revocation instant: the provider-side interruption
/// forgives the partial quantum's round-up (2013 EC2 terms — the customer
/// pays nothing for an hour the provider cut short), so the charge is
/// min(BilledSeconds(min(seconds, revoked_at)), revoked_at) at the
/// machine's hourly price. Pass +inf (or anything past the rounded-up
/// lease) for a machine that survived: normal quantum rounding applies.
double MachineDollarCostWithRevocation(const MachineProfile& machine,
                                       double seconds,
                                       double revoked_at_seconds,
                                       const BillingPolicy& billing);

/// Seeded spot-market price process: a mean-reverting multiplicative
/// random walk in log space (AR(1)), sampled once per provisioning epoch.
/// NextMultiplier() returns the factor to apply to the profile's listed
/// spot price for the coming epoch — mean 1 over long runs, clamped to
/// [0.25, 4.0] so a pathological draw cannot zero out or explode a bill.
/// Deterministic in the seed, like every other RNG in the system.
class SpotPriceProcess {
 public:
  explicit SpotPriceProcess(uint64_t seed, double volatility = 0.15,
                            double reversion = 0.3);

  /// Advances the walk one epoch and returns the new multiplier.
  double NextMultiplier();

  /// The multiplier of the current epoch (1.0 before the first Next).
  double multiplier() const { return multiplier_; }

 private:
  Rng rng_;
  double volatility_;
  double reversion_;
  double log_level_ = 0.0;
  double multiplier_ = 1.0;
};

}  // namespace cumulon

#endif  // CUMULON_CLOUD_MACHINE_H_
