#include "cloud/machine.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace cumulon {

const std::vector<MachineProfile>& MachineCatalog() {
  // Shaped after the 2013 EC2 menu: the m1 family scales cores & price
  // linearly; the c1 ("high-CPU") family gives more compute per dollar but
  // the same disk, so IO-bound jobs favor m1 and CPU-bound jobs favor c1 —
  // exactly the trade-off the paper's provisioning optimizer explores.
  static const std::vector<MachineProfile>* catalog =
      new std::vector<MachineProfile>{
          // Network is roughly half of disk bandwidth, as in 2013-era
          // shared-Gbit clusters: remote reads visibly cost more than
          // local ones, which is what makes locality-aware scheduling and
          // replication worth modeling (experiments E11/A2).
          {"m1.small", 1, 1.0, 80.0, 40.0, 0.06, 1700.0},
          {"m1.medium", 1, 2.0, 100.0, 50.0, 0.12, 3750.0},
          {"m1.large", 2, 2.0, 120.0, 60.0, 0.24, 7500.0},
          {"m1.xlarge", 4, 2.0, 160.0, 80.0, 0.48, 15000.0},
          {"c1.medium", 2, 2.5, 100.0, 50.0, 0.145, 1700.0},
          {"c1.xlarge", 8, 2.5, 160.0, 80.0, 0.58, 7000.0},
      };
  return *catalog;
}

MachineProfile SpotVariant(const MachineProfile& on_demand, double discount,
                           double hazard_per_hour) {
  MachineProfile spot = on_demand;
  spot.name = StrCat(on_demand.name, ":spot");
  spot.price_per_hour = on_demand.price_per_hour * (1.0 - discount);
  spot.transient = true;
  spot.revocation_hazard_per_hour = hazard_per_hour;
  return spot;
}

Result<MachineProfile> FindMachine(const std::string& name) {
  constexpr const char kSpotSuffix[] = ":spot";
  const size_t suffix_len = sizeof(kSpotSuffix) - 1;
  if (name.size() > suffix_len &&
      name.compare(name.size() - suffix_len, suffix_len, kSpotSuffix) == 0) {
    const std::string base = name.substr(0, name.size() - suffix_len);
    for (const MachineProfile& m : MachineCatalog()) {
      if (m.name == base) return SpotVariant(m);
    }
    return Status::NotFound(StrCat("unknown machine type: ", name));
  }
  for (const MachineProfile& m : MachineCatalog()) {
    if (m.name == name) return m;
  }
  return Status::NotFound(StrCat("unknown machine type: ", name));
}

double BilledSeconds(double seconds, const BillingPolicy& billing) {
  double billed = std::max(seconds, billing.minimum_seconds);
  if (billing.quantum_seconds > 0.0) {
    billed = std::ceil(billed / billing.quantum_seconds) *
             billing.quantum_seconds;
  }
  return billed;
}

double ClusterDollarCost(const MachineProfile& machine, int num_machines,
                         double seconds, const BillingPolicy& billing) {
  return BilledSeconds(seconds, billing) / 3600.0 * machine.price_per_hour *
         num_machines;
}

double MachineDollarCostWithRevocation(const MachineProfile& machine,
                                       double seconds,
                                       double revoked_at_seconds,
                                       const BillingPolicy& billing) {
  const double revoked_at = std::max(revoked_at_seconds, 0.0);
  const double usage = std::min(seconds, revoked_at);
  // Normal rounding on the actual usage, then clamped at the revocation
  // instant: the lease never bills past the moment the provider killed it.
  const double billed = std::min(BilledSeconds(usage, billing), revoked_at);
  return billed / 3600.0 * machine.price_per_hour;
}

SpotPriceProcess::SpotPriceProcess(uint64_t seed, double volatility,
                                   double reversion)
    : rng_(seed), volatility_(volatility), reversion_(reversion) {}

double SpotPriceProcess::NextMultiplier() {
  log_level_ = (1.0 - reversion_) * log_level_ +
               volatility_ * rng_.NextGaussian();
  multiplier_ = std::clamp(std::exp(log_level_), 0.25, 4.0);
  return multiplier_;
}

}  // namespace cumulon
