#include "svc/message.h"

#include "common/strings.h"

namespace cumulon {

Status TypedError(StatusCode code, const std::string& reason,
                  const std::string& message) {
  return Status(code, StrCat("[", reason, "] ", message));
}

std::string ErrorReason(const Status& status) {
  const std::string& msg = status.message();
  if (!msg.empty() && msg[0] == '[') {
    const size_t close = msg.find(']');
    if (close != std::string::npos && close > 1) {
      return msg.substr(1, close - 1);
    }
  }
  return "internal";
}

std::string ErrorText(const Status& status) {
  const std::string& msg = status.message();
  if (!msg.empty() && msg[0] == '[') {
    const size_t close = msg.find(']');
    if (close != std::string::npos) {
      size_t start = close + 1;
      while (start < msg.size() && msg[start] == ' ') ++start;
      return msg.substr(start);
    }
  }
  return msg;
}

JsonValue EncodeError(const Status& status, int64_t plan_id) {
  JsonValue frame = JsonValue::Object();
  frame.Set("type", "ERROR")
      .Set("code", StatusCodeToString(status.code()))
      .Set("reason", ErrorReason(status))
      .Set("message", ErrorText(status));
  if (plan_id > 0) frame.Set("plan", plan_id);
  return frame;
}

namespace {

StatusCode ParseStatusCode(const std::string& name) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kCancelled}) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

Status DecodeError(const JsonValue& frame) {
  const StatusCode code = ParseStatusCode(frame.StringOr("code", "Internal"));
  const std::string reason = frame.StringOr("reason", "internal");
  const std::string message = frame.StringOr("message", "");
  return TypedError(code, reason, message);
}

JsonValue SubmitRequest::ToJson() const {
  JsonValue value = JsonValue::Object();
  value.Set("tenant", tenant)
      .Set("name", name)
      .Set("workload", workload)
      .Set("deadline_seconds", deadline_seconds)
      .Set("budget_dollars", budget_dollars);
  return value;
}

Result<SubmitRequest> SubmitRequest::FromJson(const JsonValue& value) {
  SubmitRequest request;
  request.tenant = value.StringOr("tenant", "");
  request.name = value.StringOr("name", "");
  request.workload = value.StringOr("workload", "");
  request.deadline_seconds = value.NumberOr("deadline_seconds", 0.0);
  request.budget_dollars = value.NumberOr("budget_dollars", 0.0);
  if (request.workload.empty()) {
    return TypedError(StatusCode::kInvalidArgument, "proto.malformed",
                      "submit record is missing 'workload'");
  }
  return request;
}

std::string EncodeQueuedPlans(const std::vector<SubmitRequest>& plans) {
  JsonValue doc = JsonValue::Object();
  doc.Set("v", kProtocolVersion);
  JsonValue array = JsonValue::Array();
  for (const SubmitRequest& plan : plans) array.Append(plan.ToJson());
  doc.Set("plans", std::move(array));
  return doc.ToString();
}

Result<std::vector<SubmitRequest>> DecodeQueuedPlans(
    const std::string& text) {
  auto doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  if (doc->IntOr("v", 0) != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("drain file carries version ", doc->IntOr("v", 0),
               ", this daemon speaks ", kProtocolVersion));
  }
  const JsonValue* plans = doc->Find("plans");
  if (plans == nullptr || !plans->is_array()) {
    return Status::InvalidArgument("drain file has no 'plans' array");
  }
  std::vector<SubmitRequest> requests;
  requests.reserve(plans->items().size());
  for (const JsonValue& item : plans->items()) {
    auto request = SubmitRequest::FromJson(item);
    if (!request.ok()) return request.status();
    requests.push_back(std::move(*request));
  }
  return requests;
}

}  // namespace cumulon
