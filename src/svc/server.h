#ifndef CUMULON_SVC_SERVER_H_
#define CUMULON_SVC_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "svc/service.h"

namespace cumulon {

/// Socket front end of a CumulonService: accepts connections on one
/// unix:/tcp: address and runs the frame loop (ReadFrame -> ParseJson ->
/// Dispatch -> WriteFrame) on one thread per connection. A malformed frame
/// earns an ERROR response and closes the connection; a completed DRAIN
/// stops the listener and unblocks every connection, so WaitUntilStopped
/// doubles as the daemon's run-to-drain loop.
class ServiceServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit ServiceServer(CumulonService* service);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds `address` ("unix:/path" or "tcp:HOST:PORT") and starts the
  /// accept loop.
  Status Start(const std::string& address);

  /// Blocks until the server has stopped (drain or explicit Stop) and all
  /// connection threads have been joined.
  void WaitUntilStopped();

  /// Shuts the listener and every open connection down. Idempotent;
  /// callable from a connection handler thread.
  void Stop();

  int active_connections() const;

 private:
  void AcceptLoop();
  void HandleConnection(int64_t conn_id, int fd);
  void StopLocked() CUMULON_REQUIRES(mu_);

  CumulonService* service_;
  int listen_fd_ = -1;
  std::thread acceptor_;

  mutable Mutex mu_{"ServiceServer::mu_"};
  CondVar stopped_cv_;
  bool stopping_ CUMULON_GUARDED_BY(mu_) = false;
  // true while no accept loop is running (flipped by Start).
  bool accept_done_ CUMULON_GUARDED_BY(mu_) = true;
  int64_t next_conn_id_ CUMULON_GUARDED_BY(mu_) = 1;
  std::map<int64_t, int> conn_fds_ CUMULON_GUARDED_BY(mu_);
  // Threads of finished connections, joined on Wait/Stop/destruction.
  std::vector<std::thread> done_threads_ CUMULON_GUARDED_BY(mu_);
  std::map<int64_t, std::thread> conn_threads_ CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_SVC_SERVER_H_
