#ifndef CUMULON_SVC_SERVICE_H_
#define CUMULON_SVC_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/sim_engine.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/predictor.h"
#include "sched/elastic.h"
#include "sched/workload_manager.h"
#include "svc/json.h"
#include "svc/message.h"
#include "svc/session.h"

namespace cumulon {

/// Tenant-visible plan lifecycle. REJECTED plans (quota or admission) get
/// a plan id and a terminal record too, so a tenant can poll the verdict
/// it was refused with.
enum class SvcPlanState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kRejected,
};

const char* SvcPlanStateName(SvcPlanState state);

struct ServiceOptions {
  /// Directory for the drain file (queued_plans.json). "" = drain
  /// persistence off; restore is attempted from here at construction.
  std::string state_dir;

  /// Machine type of the simulated fleet.
  MachineProfile machine;

  /// Elastic fleet bounds; the engine is provisioned for max_machines and
  /// the SlotPool starts at initial_machines, so scale-out never needs a
  /// new engine.
  ElasticPolicy elastic;
  int slots_per_machine = 2;
  int initial_machines = 0;  // 0 = elastic.min_machines
  bool enable_elastic = true;
  double elastic_interval_seconds = 0.25;

  /// Reaper cadence: how often plan records absorb terminal outcomes.
  double reaper_interval_seconds = 0.02;

  SchedPolicy policy = SchedPolicy::kFairShare;
  int max_concurrent_plans = 4;

  /// Hold admitted plans in the queue until manager()->Start() — lets
  /// tests pin plans in the queued state (e.g. to drain deterministically
  /// with a known set of unstarted plans). The daemon runs with false.
  bool defer_start = false;

  /// Scale passed to the lang catalog workloads (mm-* ignores it).
  double scale = 1.0;
  int64_t tile_dim = 2048;

  /// Tenant auth and quotas. Its metrics/tracer fields are overwritten
  /// with the service's own.
  SessionOptions session;

  /// Cost model, lowering and sim knobs for estimates and execution
  /// (lowering.tile_dim is overwritten with `tile_dim`).
  PredictorOptions predictor;

  /// Destination of the svc.*/sched.*/exec.* metrics. Borrowed; the
  /// service owns a private registry when null.
  MetricsRegistry* metrics = nullptr;

  /// Records wall-clock "session" and "rpc" spans (one lane per session).
  /// The manager's virtual-clock plan spans stay off — the two clock
  /// domains do not share a timeline. Borrowed; may be null.
  Tracer* tracer = nullptr;

  /// Test-only: mutates every freshly lowered plan before the SUBMIT-time
  /// verifier sees it. SUBMIT carries catalog workload names (never raw
  /// plans), so this is the hook tests use to corrupt a valid plan and
  /// assert the typed verify.* rejection reaches the wire.
  std::function<void(PhysicalPlan*)> plan_mutator_for_test;
};

/// The daemon behind `cumulon serve`: one shared simulated cluster, a
/// WorkloadManager front door, tenant sessions with quotas, pollable plan
/// records, elastic fleet control against the live backlog, and graceful
/// drain with queued-plan persistence. Transport-free — Dispatch consumes
/// one decoded request frame and produces one response frame, so the same
/// object serves socket handlers (svc/server.h), in-process transports
/// (svc/client.h) and unit tests.
///
/// Thread-safe: Dispatch may be called from any number of connection
/// threads concurrently.
class CumulonService {
 public:
  explicit CumulonService(const ServiceOptions& options);
  ~CumulonService();

  CumulonService(const CumulonService&) = delete;
  CumulonService& operator=(const CumulonService&) = delete;

  /// Handles one protocol request; always returns a response frame (an
  /// ERROR frame on any failure — this never throws away a request).
  JsonValue Dispatch(const JsonValue& request);

  /// Connection teardown: closes the session (its plans keep running).
  void CloseSession(int64_t session_id);

  /// True once a DRAIN request has begun/completed; the server stops
  /// accepting connections when draining starts.
  bool draining() const;
  bool drained() const;

  /// Queued-but-unstarted plans restored from the drain file at startup.
  int restored_plans() const;

  MetricsRegistry* metrics() { return metrics_; }
  WorkloadManager* manager() { return &manager_; }
  SessionManager* sessions() { return &sessions_; }
  ElasticFleetController* elastic() { return controller_.get(); }

 private:
  struct PlanRecord {
    int64_t id = 0;
    std::string tenant;
    SubmitRequest request;
    SvcPlanState state = SvcPlanState::kQueued;
    int64_t cursor = 1;  // bumped on every state change
    bool terminal = false;
    AdmissionEstimate estimate;
    int64_t mgr_id = 0;  // 0 for rejected plans
    double submit_wall_seconds = 0.0;
    double finish_wall_seconds = 0.0;
    Status reject_status;  // kRejected only
    PlanOutcome outcome;   // valid once terminal via the manager
  };

  JsonValue HandleHello(const JsonValue& request);
  JsonValue HandleSubmit(const JsonValue& request);
  JsonValue HandlePoll(const JsonValue& request);
  JsonValue HandleResult(const JsonValue& request);
  JsonValue HandleCancel(const JsonValue& request);
  JsonValue HandleStats(const JsonValue& request);
  JsonValue HandleDrain(const JsonValue& request);

  /// The shared SUBMIT path: quota gate, estimate, lowering, manager
  /// admission. `restored` marks drain-file replays (svc.restore.*
  /// counters; no draining gate).
  JsonValue SubmitInternal(const SubmitRequest& request, bool restored);

  /// Per-class admission estimate, computed once and cached. Unknown
  /// workloads yield the typed workload.unknown error.
  Result<AdmissionEstimate> EstimateFor(const std::string& workload);

  /// Looks up `plan` for `tenant` (typed plan.unknown / plan.foreign) and
  /// copies the record out.
  Result<PlanRecord> FindPlan(int64_t plan_id, const std::string& tenant) const;

  /// Session resolution for one request frame.
  Result<std::string> TenantForRequest(const JsonValue& request) const;

  /// Absorbs manager-side state changes into the plan records: queued ->
  /// running transitions and terminal outcomes (releasing quota slots and
  /// recording completion latency).
  void PollOutcomes();

  void ReaperLoop();
  void StopReaper();

  int InflightLocked() const CUMULON_REQUIRES(mu_);
  std::string DrainFilePath() const;
  void RestoreFromDisk();

  ServiceOptions options_;
  MetricsRegistry* metrics_;  // options_.metrics or &owned_metrics_
  MetricsRegistry owned_metrics_;
  Stopwatch wall_clock_;

  SimDfs dfs_;
  DfsTileStore store_;
  SimEngine engine_;
  TileOpCostModel cost_;
  WorkloadManager manager_;
  SessionManager sessions_;
  std::unique_ptr<ElasticFleetController> controller_;

  mutable Mutex mu_{"CumulonService::mu_"};
  int64_t next_plan_id_ CUMULON_GUARDED_BY(mu_) = 1;
  std::map<int64_t, PlanRecord> records_ CUMULON_GUARDED_BY(mu_);
  std::map<int64_t, int64_t> mgr_to_svc_ CUMULON_GUARDED_BY(mu_);
  std::map<std::string, AdmissionEstimate> estimates_ CUMULON_GUARDED_BY(mu_);
  bool draining_ CUMULON_GUARDED_BY(mu_) = false;
  bool drained_ CUMULON_GUARDED_BY(mu_) = false;
  int64_t persisted_plans_ CUMULON_GUARDED_BY(mu_) = 0;
  int restored_plans_ = 0;  // written before the reaper starts

  Mutex reaper_mu_{"CumulonService::reaper_mu_"};
  CondVar reaper_cv_;
  bool stop_reaper_ CUMULON_GUARDED_BY(reaper_mu_) = false;
  std::thread reaper_;
};

}  // namespace cumulon

#endif  // CUMULON_SVC_SERVICE_H_
