#ifndef CUMULON_SVC_WIRE_H_
#define CUMULON_SVC_WIRE_H_

#include <string>

#include "common/result.h"

namespace cumulon {

/// Transport framing of the service protocol: every message is one frame,
///
///   +----------------------+---------------------+
///   | length (4B big-endian)| payload (UTF-8 JSON)|
///   +----------------------+---------------------+
///
/// over a stream socket. Frames are independent — no pipelining state —
/// so a reader resynchronizes at every frame boundary. Payloads above
/// kMaxFramePayload are rejected on both sides (a hostile peer cannot make
/// the daemon buffer an unbounded message).
inline constexpr size_t kMaxFramePayload = 4u << 20;

/// Writes one frame, retrying short writes. Internal on socket errors.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame. Cancelled with message "connection closed" on a clean
/// EOF at a frame boundary; Internal on mid-frame EOF or socket errors;
/// InvalidArgument on an oversized length prefix.
Result<std::string> ReadFrame(int fd);

/// Binds and listens on `address`:
///   "unix:/path/to.sock"  — Unix domain socket (any stale file replaced)
///   "tcp:HOST:PORT"       — local TCP (HOST is an IPv4 literal)
/// Returns the listening fd.
Result<int> ListenOn(const std::string& address);

/// Connects to an address in the same syntax. Returns the connected fd.
Result<int> ConnectTo(const std::string& address);

/// Accepts one connection; Cancelled once the listening fd is shut down.
Result<int> AcceptConnection(int listen_fd);

/// Half-closes both directions so a thread blocked in ReadFrame/accept on
/// this fd wakes with an error; CloseFd then releases the descriptor.
void ShutdownFd(int fd);
void CloseFd(int fd);

}  // namespace cumulon

#endif  // CUMULON_SVC_WIRE_H_
