#include "svc/session.h"

#include "common/strings.h"
#include "svc/message.h"

namespace cumulon {

SessionManager::SessionManager(const SessionOptions& options)
    : options_(options) {}

Result<int64_t> SessionManager::Open(int protocol_version,
                                     const std::string& token) {
  if (protocol_version != kProtocolVersion) {
    return TypedError(
        StatusCode::kFailedPrecondition, "proto.version",
        StrCat("client speaks protocol v", protocol_version,
               ", this daemon speaks v", kProtocolVersion));
  }
  std::string tenant;
  auto it = options_.tokens.find(token);
  if (it != options_.tokens.end()) {
    tenant = it->second;
  } else if (options_.open_auth && !token.empty()) {
    tenant = token;
  } else {
    return TypedError(StatusCode::kNotFound, "auth.unknown_token",
                      "token not accepted by this daemon");
  }

  int64_t id = 0;
  int open = 0;
  {
    MutexLock lock(&mu_);
    id = next_session_id_++;
    sessions_[id] = SessionState{tenant, clock_.ElapsedSeconds()};
    open = static_cast<int>(sessions_.size());
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.sessions.opened")->Increment();
    options_.metrics->gauge("svc.sessions.active")->Set(open);
  }
  return id;
}

Result<std::string> SessionManager::TenantOf(int64_t session_id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return TypedError(StatusCode::kNotFound, "auth.unknown_session",
                      StrCat("no open session ", session_id,
                             " (send HELLO first)"));
  }
  return it->second.tenant;
}

Status SessionManager::AdmitCheck(const std::string& tenant,
                                  double estimate_dollars) const {
  const TenantQuota quota = QuotaFor(tenant);
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  const int inflight = it == tenants_.end() ? 0 : it->second.inflight;
  const double spent = it == tenants_.end() ? 0.0 : it->second.spent_dollars;
  if (inflight >= quota.max_inflight_plans) {
    return TypedError(
        StatusCode::kResourceExhausted, "quota.inflight",
        StrCat("tenant '", tenant, "' already has ", inflight,
               " plans in flight (quota ", quota.max_inflight_plans, ")"));
  }
  if (quota.aggregate_budget_dollars > 0.0 &&
      spent + estimate_dollars > quota.aggregate_budget_dollars) {
    return TypedError(
        StatusCode::kResourceExhausted, "quota.budget",
        StrCat("tenant '", tenant, "' spent ", FormatMoney(spent),
               " of its ", FormatMoney(quota.aggregate_budget_dollars),
               " budget; this plan's estimate ",
               FormatMoney(estimate_dollars), " does not fit"));
  }
  return Status::OK();
}

void SessionManager::OnAdmitted(const std::string& tenant,
                                double estimate_dollars) {
  MutexLock lock(&mu_);
  TenantState& state = tenants_[tenant];
  ++state.inflight;
  state.spent_dollars += estimate_dollars;
}

void SessionManager::OnFinished(const std::string& tenant) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
}

void SessionManager::CloseLocked(int64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (options_.tracer != nullptr) {
    TraceSpan span;
    span.name = StrCat("session:", it->second.tenant);
    span.category = "session";
    span.parent_id = -1;  // top level: sessions outlive any one plan span
    span.machine = -1;
    span.slot = static_cast<int>(session_id);
    span.start_seconds = it->second.opened_seconds;
    span.duration_seconds =
        clock_.ElapsedSeconds() - it->second.opened_seconds;
    options_.tracer->AddSpan(std::move(span));
  }
  sessions_.erase(it);
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("svc.sessions.active")
        ->Set(static_cast<int64_t>(sessions_.size()));
  }
}

void SessionManager::Close(int64_t session_id) {
  MutexLock lock(&mu_);
  CloseLocked(session_id);
}

void SessionManager::CloseAll() {
  MutexLock lock(&mu_);
  while (!sessions_.empty()) CloseLocked(sessions_.begin()->first);
}

int SessionManager::open_sessions() const {
  MutexLock lock(&mu_);
  return static_cast<int>(sessions_.size());
}

TenantQuota SessionManager::QuotaFor(const std::string& tenant) const {
  auto it = options_.tenant_quotas.find(tenant);
  return it == options_.tenant_quotas.end() ? options_.default_quota
                                            : it->second;
}

}  // namespace cumulon
