#ifndef CUMULON_SVC_MESSAGE_H_
#define CUMULON_SVC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "svc/json.h"

namespace cumulon {

/// Version of the frame schema. A HELLO carrying a different version is
/// rejected with reason "proto.version"; bump this when a message changes
/// incompatibly.
inline constexpr int kProtocolVersion = 1;

/// Message types (the "type" field of every frame). Requests:
///   HELLO   {v, token}
///   SUBMIT  {session, workload, name?, deadline_seconds?, budget_dollars?}
///   POLL    {session, plan, cursor?}
///   RESULT  {session, plan}
///   CANCEL  {session, plan}
///   STATS   {session}
///   DRAIN   {session}
/// Responses mirror the request type with an _OK suffix, or are one ERROR
/// frame {type:"ERROR", code, reason, message, plan?}. docs/service.md is
/// the field-level contract.
///
/// Typed errors: machine-readable `reason` slugs riding on Status. The
/// reason travels inside the Status message as a "[reason] " prefix so it
/// survives every Status-returning layer between the service and the wire.
///   auth.unknown_token     HELLO token not accepted
///   auth.unknown_session   request names a session that was never opened
///   proto.version          HELLO protocol version mismatch
///   proto.malformed        frame is not valid JSON / missing fields
///   quota.inflight         tenant at max in-flight plans
///   quota.budget           tenant's aggregate dollar budget exhausted
///   admission.deadline     WorkloadManager: deadline infeasible
///   admission.budget       WorkloadManager: estimated cost over budget
///   draining               daemon is draining; no new SUBMITs
///   workload.unknown       SUBMIT names no catalog workload
///   plan.unknown           plan id never assigned
///   plan.foreign           plan belongs to another tenant
///   plan.terminal          CANCEL on an already-finished plan
///   plan.not_terminal      RESULT on a still-queued/running plan
///   verify.*               SUBMIT's plan failed static verification
///                          (src/verify; slug table in
///                          docs/observability.md "Verifier error
///                          reasons")
Status TypedError(StatusCode code, const std::string& reason,
                  const std::string& message);

/// The "[reason]" slug of a typed error, or "internal" for a plain Status.
std::string ErrorReason(const Status& status);

/// The human text of a typed error (the message minus the reason tag).
std::string ErrorText(const Status& status);

/// {"type":"ERROR","code":...,"reason":...,"message":...[,"plan":id]}.
JsonValue EncodeError(const Status& status, int64_t plan_id = 0);

/// Reconstructs the typed Status carried by an ERROR frame (client side).
Status DecodeError(const JsonValue& frame);

/// One tenant submission, as carried by a SUBMIT frame and as persisted by
/// a graceful drain. `tenant` comes from the session on the wire but is
/// explicit in the persisted form.
struct SubmitRequest {
  std::string tenant;
  std::string name;      // empty = service assigns "<workload>-<plan id>"
  std::string workload;  // catalog class (svc/catalog.h)
  double deadline_seconds = 0.0;
  double budget_dollars = 0.0;

  JsonValue ToJson() const;
  static Result<SubmitRequest> FromJson(const JsonValue& value);
};

/// Serialization of the drain file: {"v":1,"plans":[SubmitRequest...]}.
std::string EncodeQueuedPlans(const std::vector<SubmitRequest>& plans);
Result<std::vector<SubmitRequest>> DecodeQueuedPlans(const std::string& text);

}  // namespace cumulon

#endif  // CUMULON_SVC_MESSAGE_H_
