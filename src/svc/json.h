#ifndef CUMULON_SVC_JSON_H_
#define CUMULON_SVC_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace cumulon {

/// Minimal JSON document model for the service wire protocol: null, bool,
/// double, string, array, object. Objects preserve insertion order (frames
/// stay diffable in logs and tests). Self-contained — the repo takes no
/// external JSON dependency for a protocol this small.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  // Scalar access (defaults for mismatched kinds; protocol handlers use
  // the keyed *Or getters below instead of branching on kind).
  bool boolean() const { return kind_ == Kind::kBool && bool_; }
  double number() const { return kind_ == Kind::kNumber ? num_ : 0.0; }
  const std::string& str() const { return str_; }

  // --- object ---
  /// Adds or replaces `key`; returns *this so frames build as chains.
  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Set(const std::string& key, const std::string& value);
  JsonValue& Set(const std::string& key, const char* value);
  JsonValue& Set(const std::string& key, double value);
  JsonValue& Set(const std::string& key, int64_t value);
  JsonValue& Set(const std::string& key, int value);
  JsonValue& Set(const std::string& key, bool value);

  /// Member lookup; null when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  double NumberOr(const std::string& key, double fallback) const;
  int64_t IntOr(const std::string& key, int64_t fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // --- array ---
  JsonValue& Append(JsonValue value);
  const std::vector<JsonValue>& items() const { return items_; }

  /// Compact serialization (no whitespace), RFC 8259 string escaping.
  std::string ToString() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). InvalidArgument on malformed input; nesting depth capped
/// so a hostile frame cannot blow the stack.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace cumulon

#endif  // CUMULON_SVC_JSON_H_
