#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "svc/catalog.h"
#include "verify/verify.h"

namespace cumulon {

const char* SvcPlanStateName(SvcPlanState state) {
  switch (state) {
    case SvcPlanState::kQueued: return "QUEUED";
    case SvcPlanState::kRunning: return "RUNNING";
    case SvcPlanState::kDone: return "DONE";
    case SvcPlanState::kFailed: return "FAILED";
    case SvcPlanState::kCancelled: return "CANCELLED";
    case SvcPlanState::kRejected: return "REJECTED";
  }
  return "UNKNOWN";
}

namespace {

DfsOptions MakeDfsOptions(const ServiceOptions& options) {
  DfsOptions dfs;
  dfs.num_nodes = options.elastic.max_machines;
  dfs.replication = options.predictor.dfs_replication;
  dfs.seed = options.predictor.seed;
  return dfs;
}

ClusterConfig MakeEngineCluster(const ServiceOptions& options) {
  // The engine is provisioned for the elastic maximum; the SlotPool is the
  // live fleet size, so scale-out is a pool resize, never an engine swap.
  return ClusterConfig{options.machine, options.elastic.max_machines,
                       options.slots_per_machine};
}

SimEngineOptions MakeSimOptions(const ServiceOptions& options) {
  SimEngineOptions sim = options.predictor.sim;
  sim.replication = options.predictor.dfs_replication;
  sim.noise_sigma = 0.0;
  return sim;
}

WorkloadManagerOptions MakeManagerOptions(const ServiceOptions& options,
                                          int initial_machines,
                                          MetricsRegistry* metrics) {
  WorkloadManagerOptions manager;
  manager.policy = options.policy;
  manager.max_concurrent_plans = options.max_concurrent_plans;
  manager.admission_control = true;
  // A live daemon runs on the wall clock: tenants measure admission and
  // completion latency against real time, and the executors' simulated
  // durations stay inside the estimates.
  manager.virtual_time = false;
  manager.defer_start = options.defer_start;
  manager.initial_slots = initial_machines * options.slots_per_machine;
  manager.executor.real_mode = false;
  manager.executor.job_startup_seconds =
      options.predictor.job_startup_seconds;
  manager.metrics = metrics;
  return manager;
}

}  // namespace

CumulonService::CumulonService(const ServiceOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &owned_metrics_),
      dfs_(MakeDfsOptions(options_)),
      store_(&dfs_),
      engine_(MakeEngineCluster(options_), MakeSimOptions(options_)),
      cost_(options_.predictor.cost),
      manager_(&store_, &engine_, &cost_,
               MakeManagerOptions(options_,
                                  options_.initial_machines > 0
                                      ? options_.initial_machines
                                      : options_.elastic.min_machines,
                                  metrics_)),
      sessions_([&] {
        SessionOptions session = options_.session;
        session.metrics = metrics_;
        session.tracer = options_.tracer;
        return session;
      }()) {
  options_.predictor.lowering.tile_dim = options_.tile_dim;
  const int initial = options_.initial_machines > 0
                          ? options_.initial_machines
                          : options_.elastic.min_machines;
  ElasticControllerOptions controller;
  controller.policy = options_.elastic;
  controller.slots_per_machine = options_.slots_per_machine;
  controller.metrics = metrics_;
  controller_ = std::make_unique<ElasticFleetController>(
      FleetState{initial, 0}, controller);
  metrics_->gauge("svc.fleet.slots")
      ->Set(initial * options_.slots_per_machine);

  RestoreFromDisk();
  reaper_ = std::thread([this] { ReaperLoop(); });
}

CumulonService::~CumulonService() { StopReaper(); }

bool CumulonService::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

bool CumulonService::drained() const {
  MutexLock lock(&mu_);
  return drained_;
}

int CumulonService::restored_plans() const { return restored_plans_; }

void CumulonService::CloseSession(int64_t session_id) {
  sessions_.Close(session_id);
}

JsonValue CumulonService::Dispatch(const JsonValue& request) {
  Stopwatch sw;
  const double start_wall = wall_clock_.ElapsedSeconds();
  metrics_->counter("svc.rpc.requests")->Increment();
  const std::string type = request.StringOr("type", "");
  JsonValue reply;
  if (type == "HELLO") {
    reply = HandleHello(request);
  } else if (type == "SUBMIT") {
    reply = HandleSubmit(request);
  } else if (type == "POLL") {
    reply = HandlePoll(request);
  } else if (type == "RESULT") {
    reply = HandleResult(request);
  } else if (type == "CANCEL") {
    reply = HandleCancel(request);
  } else if (type == "STATS") {
    reply = HandleStats(request);
  } else if (type == "DRAIN") {
    reply = HandleDrain(request);
  } else {
    reply = EncodeError(TypedError(
        StatusCode::kInvalidArgument, "proto.malformed",
        StrCat("unknown message type '", type, "'")));
  }
  if (reply.StringOr("type", "") == "ERROR") {
    metrics_->counter("svc.rpc.errors")->Increment();
  }
  metrics_->histogram("svc.rpc.seconds")->Observe(sw.ElapsedSeconds());
  if (options_.tracer != nullptr) {
    TraceSpan span;
    span.name = StrCat("rpc:", type);
    span.category = "rpc";
    span.parent_id = -1;
    span.machine = -1;
    span.slot = static_cast<int>(request.IntOr("session", 0));
    span.start_seconds = start_wall;
    span.duration_seconds = sw.ElapsedSeconds();
    options_.tracer->AddSpan(std::move(span));
  }
  return reply;
}

Result<std::string> CumulonService::TenantForRequest(
    const JsonValue& request) const {
  const int64_t session = request.IntOr("session", 0);
  if (session <= 0) {
    return TypedError(StatusCode::kInvalidArgument, "proto.malformed",
                      "request is missing 'session' (send HELLO first)");
  }
  return sessions_.TenantOf(session);
}

JsonValue CumulonService::HandleHello(const JsonValue& request) {
  const int version = static_cast<int>(request.IntOr("v", 0));
  const std::string token = request.StringOr("token", "");
  auto session = sessions_.Open(version, token);
  if (!session.ok()) return EncodeError(session.status());
  auto tenant = sessions_.TenantOf(*session);
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "HELLO_OK")
      .Set("session", *session)
      .Set("tenant", tenant.ok() ? *tenant : std::string())
      .Set("v", kProtocolVersion)
      .Set("server", "cumulon-svc");
  return reply;
}

JsonValue CumulonService::HandleSubmit(const JsonValue& request) {
  // The draining gate comes before session resolution: drain closes every
  // session, and a late submitter should hear "draining", not that its
  // session evaporated.
  {
    MutexLock lock(&mu_);
    if (draining_) {
      metrics_->counter("svc.submit.rejected.draining")->Increment();
      return EncodeError(TypedError(
          StatusCode::kFailedPrecondition, "draining",
          "daemon is draining; submissions are closed"));
    }
  }
  auto tenant = TenantForRequest(request);
  if (!tenant.ok()) return EncodeError(tenant.status());
  SubmitRequest submit;
  submit.tenant = *tenant;
  submit.name = request.StringOr("name", "");
  submit.workload = request.StringOr("workload", "");
  submit.deadline_seconds = request.NumberOr("deadline_seconds", 0.0);
  submit.budget_dollars = request.NumberOr("budget_dollars", 0.0);
  if (submit.workload.empty()) {
    return EncodeError(TypedError(StatusCode::kInvalidArgument,
                                  "proto.malformed",
                                  "SUBMIT is missing 'workload'"));
  }
  return SubmitInternal(submit, /*restored=*/false);
}

Result<AdmissionEstimate> CumulonService::EstimateFor(
    const std::string& workload) {
  {
    MutexLock lock(&mu_);
    auto it = estimates_.find(workload);
    if (it != estimates_.end()) return it->second;
  }
  auto spec = MakeCatalogWorkload(workload, options_.scale, options_.tile_dim);
  if (!spec.ok()) {
    return TypedError(StatusCode::kNotFound, "workload.unknown",
                      spec.status().message());
  }
  // Computed outside mu_ (a full predictor simulation); concurrent first
  // requests of one class may duplicate the work but agree on the result —
  // the predictor is deterministic.
  auto estimate =
      EstimateForAdmission(*spec, engine_.config(), options_.predictor);
  if (!estimate.ok()) return estimate.status();
  MutexLock lock(&mu_);
  estimates_[workload] = *estimate;
  return *estimate;
}

JsonValue CumulonService::SubmitInternal(const SubmitRequest& request,
                                         bool restored) {
  Stopwatch admission_sw;
  auto estimate = EstimateFor(request.workload);
  if (!estimate.ok()) return EncodeError(estimate.status());

  const Status quota = sessions_.AdmitCheck(request.tenant,
                                            estimate->dollars);
  if (!quota.ok()) {
    MutexLock lock(&mu_);
    const int64_t id = next_plan_id_++;
    PlanRecord& rec = records_[id];
    rec.id = id;
    rec.tenant = request.tenant;
    rec.request = request;
    rec.estimate = *estimate;
    rec.state = SvcPlanState::kRejected;
    rec.terminal = true;
    rec.reject_status = quota;
    rec.submit_wall_seconds = wall_clock_.ElapsedSeconds();
    rec.finish_wall_seconds = rec.submit_wall_seconds;
    metrics_->counter(restored ? "svc.restore.rejected"
                               : "svc.submit.rejected.quota")
        ->Increment();
    return EncodeError(quota, id);
  }

  auto spec = MakeCatalogWorkload(request.workload, options_.scale,
                                  options_.tile_dim);
  if (!spec.ok()) return EncodeError(spec.status());

  int64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_plan_id_++;
  }
  Submission submission;
  submission.name = request.name.empty()
                        ? StrCat(request.workload, "-", id)
                        : request.name;
  submission.tenant = request.tenant;
  submission.deadline_seconds = request.deadline_seconds;
  submission.budget_dollars = request.budget_dollars;
  submission.estimate = *estimate;
  // Namespace this plan's temporaries so thousands of concurrent plans
  // sharing one store never collide on intermediate names.
  LoweringOptions lowering = options_.predictor.lowering;
  lowering.temp_prefix = StrCat("svc", id, "_tmp");
  auto lowered = PrepareProgram(*spec, &store_, lowering);
  if (!lowered.ok()) return EncodeError(lowered.status(), id);
  if (options_.plan_mutator_for_test) {
    options_.plan_mutator_for_test(&lowered->plan);
  }

  // SUBMIT-time static verification, ahead of admission: the lowered plan
  // must pass the full verifier suite — dependency order against the
  // catalog inputs as the resident set, exactly-once tile coverage, split
  // arithmetic, and the lowering-stamped determinism contract. A broken
  // plan is rejected here with its typed verify.* reason on the wire
  // (docs/service.md), never discovered mid-execution on the fleet.
  {
    PlanVerifyOptions verify_options;
    verify_options.cost = &options_.predictor.cost;
    verify_options.check_external = true;
    for (const TiledMatrix& input : spec->inputs) {
      verify_options.external_matrices.insert(input.name);
    }
    verify_options.require_determinism = true;
    const Status verified =
        VerifyPlanStatus(lowered->plan, verify_options, metrics_,
                         options_.tracer);
    if (!verified.ok()) {
      MutexLock lock(&mu_);
      PlanRecord& rec = records_[id];
      rec.id = id;
      rec.tenant = request.tenant;
      rec.request = request;
      rec.estimate = *estimate;
      rec.state = SvcPlanState::kRejected;
      rec.terminal = true;
      rec.reject_status = verified;
      rec.submit_wall_seconds = wall_clock_.ElapsedSeconds();
      rec.finish_wall_seconds = rec.submit_wall_seconds;
      metrics_->counter(restored ? "svc.restore.rejected"
                                 : "svc.submit.rejected.verify")
          ->Increment();
      return EncodeError(verified, id);
    }
  }
  submission.plan = std::move(lowered->plan);

  auto mgr_id = manager_.Submit(std::move(submission));
  metrics_->histogram("svc.submit.admission_seconds")
      ->Observe(admission_sw.ElapsedSeconds());

  MutexLock lock(&mu_);
  PlanRecord& rec = records_[id];
  rec.id = id;
  rec.tenant = request.tenant;
  rec.request = request;
  rec.estimate = *estimate;
  rec.submit_wall_seconds = wall_clock_.ElapsedSeconds();
  if (!mgr_id.ok()) {
    // The manager's admission verdicts, surfaced as typed reasons. A
    // verify.* rejection already carries its typed "[reason] " prefix —
    // pass it through untouched (its message may mention "budget").
    const bool is_verify =
        mgr_id.status().message().rfind("[verify.", 0) == 0;
    const bool budget =
        mgr_id.status().message().find("budget") != std::string::npos;
    const Status typed =
        is_verify
            ? mgr_id.status()
            : TypedError(mgr_id.status().code(),
                         budget ? "admission.budget" : "admission.deadline",
                         mgr_id.status().message());
    rec.state = SvcPlanState::kRejected;
    rec.terminal = true;
    rec.reject_status = typed;
    rec.finish_wall_seconds = rec.submit_wall_seconds;
    metrics_->counter(restored ? "svc.restore.rejected"
                               : "svc.submit.rejected.admission")
        ->Increment();
    return EncodeError(typed, id);
  }
  rec.state = SvcPlanState::kQueued;
  rec.mgr_id = *mgr_id;
  mgr_to_svc_[*mgr_id] = id;
  sessions_.OnAdmitted(request.tenant, estimate->dollars);
  metrics_->counter(restored ? "svc.restore.restored" : "svc.submit.accepted")
      ->Increment();
  metrics_->gauge("svc.plans.inflight")->Set(InflightLocked());

  JsonValue reply = JsonValue::Object();
  reply.Set("type", "SUBMIT_OK")
      .Set("plan", id)
      .Set("name", submission.name)
      .Set("estimate_seconds", estimate->seconds)
      .Set("estimate_dollars", estimate->dollars);
  return reply;
}

Result<CumulonService::PlanRecord> CumulonService::FindPlan(
    int64_t plan_id, const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = records_.find(plan_id);
  if (it == records_.end()) {
    return TypedError(StatusCode::kNotFound, "plan.unknown",
                      StrCat("no plan with id ", plan_id));
  }
  if (it->second.tenant != tenant) {
    return TypedError(StatusCode::kFailedPrecondition, "plan.foreign",
                      StrCat("plan ", plan_id, " belongs to another tenant"));
  }
  return it->second;
}

JsonValue CumulonService::HandlePoll(const JsonValue& request) {
  auto tenant = TenantForRequest(request);
  if (!tenant.ok()) return EncodeError(tenant.status());
  const int64_t plan = request.IntOr("plan", 0);
  const int64_t cursor = request.IntOr("cursor", 0);
  auto rec = FindPlan(plan, *tenant);
  if (!rec.ok()) return EncodeError(rec.status(), plan);
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "POLL_OK")
      .Set("plan", plan)
      .Set("state", SvcPlanStateName(rec->state))
      .Set("cursor", rec->cursor)
      .Set("changed", rec->cursor != cursor);
  if (rec->terminal) {
    reply.Set("seconds",
              rec->finish_wall_seconds - rec->submit_wall_seconds)
        .Set("estimate_seconds", rec->estimate.seconds)
        .Set("estimate_dollars", rec->estimate.dollars);
    if (rec->state == SvcPlanState::kRejected) {
      reply.Set("reason", ErrorReason(rec->reject_status))
          .Set("message", ErrorText(rec->reject_status));
    } else {
      reply.Set("queue_wait_seconds", rec->outcome.queue_wait_seconds())
          .Set("sim_seconds", rec->outcome.stats.total_seconds)
          .Set("deadline_met", rec->outcome.deadline_met);
      if (!rec->outcome.status.ok()) {
        reply.Set("message", rec->outcome.status.message());
      }
    }
  }
  return reply;
}

JsonValue CumulonService::HandleResult(const JsonValue& request) {
  auto tenant = TenantForRequest(request);
  if (!tenant.ok()) return EncodeError(tenant.status());
  const int64_t plan = request.IntOr("plan", 0);
  auto rec = FindPlan(plan, *tenant);
  if (!rec.ok()) return EncodeError(rec.status(), plan);
  if (!rec->terminal) {
    return EncodeError(
        TypedError(StatusCode::kFailedPrecondition, "plan.not_terminal",
                   StrCat("plan ", plan, " is still ",
                          SvcPlanStateName(rec->state))),
        plan);
  }
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "RESULT_OK")
      .Set("plan", plan)
      .Set("state", SvcPlanStateName(rec->state))
      .Set("name", rec->outcome.name.empty() ? rec->request.name
                                             : rec->outcome.name)
      .Set("seconds", rec->finish_wall_seconds - rec->submit_wall_seconds)
      .Set("estimate_seconds", rec->estimate.seconds)
      .Set("estimate_dollars", rec->estimate.dollars);
  if (rec->state == SvcPlanState::kRejected) {
    reply.Set("reason", ErrorReason(rec->reject_status))
        .Set("message", ErrorText(rec->reject_status));
  } else {
    reply.Set("queue_wait_seconds", rec->outcome.queue_wait_seconds())
        .Set("sim_seconds", rec->outcome.stats.total_seconds)
        .Set("deadline_met", rec->outcome.deadline_met)
        .Set("bytes_read", rec->outcome.stats.bytes_read)
        .Set("bytes_written", rec->outcome.stats.bytes_written)
        .Set("total_tasks", rec->outcome.stats.total_tasks);
    if (!rec->outcome.status.ok()) {
      reply.Set("message", rec->outcome.status.message());
    }
  }
  return reply;
}

JsonValue CumulonService::HandleCancel(const JsonValue& request) {
  auto tenant = TenantForRequest(request);
  if (!tenant.ok()) return EncodeError(tenant.status());
  const int64_t plan = request.IntOr("plan", 0);
  auto rec = FindPlan(plan, *tenant);
  if (!rec.ok()) return EncodeError(rec.status(), plan);
  if (rec->terminal) {
    return EncodeError(
        TypedError(StatusCode::kFailedPrecondition, "plan.terminal",
                   StrCat("plan ", plan, " already finished as ",
                          SvcPlanStateName(rec->state))),
        plan);
  }
  const Status st = manager_.Cancel(rec->mgr_id);
  if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
    return EncodeError(st, plan);
  }
  // FailedPrecondition = the plan finished between our lookup and the
  // cancel; the reaper is about to absorb the terminal outcome either way.
  metrics_->counter("svc.cancelled")->Increment();
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "CANCEL_OK").Set("plan", plan);
  return reply;
}

JsonValue CumulonService::HandleStats(const JsonValue&) {
  int queued = 0, running = 0, done = 0, failed = 0, cancelled = 0,
      rejected = 0;
  bool draining = false;
  int64_t persisted = 0;
  {
    MutexLock lock(&mu_);
    for (const auto& [id, rec] : records_) {
      switch (rec.state) {
        case SvcPlanState::kQueued: ++queued; break;
        case SvcPlanState::kRunning: ++running; break;
        case SvcPlanState::kDone: ++done; break;
        case SvcPlanState::kFailed: ++failed; break;
        case SvcPlanState::kCancelled: ++cancelled; break;
        case SvcPlanState::kRejected: ++rejected; break;
      }
    }
    draining = draining_;
    persisted = persisted_plans_;
  }
  const FleetState fleet = controller_->fleet();
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "STATS_OK")
      .Set("queued", queued)
      .Set("running", running)
      .Set("completed", done)
      .Set("failed", failed)
      .Set("cancelled", cancelled)
      .Set("rejected", rejected)
      .Set("inflight", queued + running)
      .Set("restored", restored_plans_)
      .Set("persisted", persisted)
      .Set("draining", draining)
      .Set("sessions", sessions_.open_sessions())
      .Set("fleet_machines", fleet.machines)
      .Set("fleet_spot", fleet.spot_machines)
      .Set("fleet_slots", manager_.slot_pool()->total_slots());
  return reply;
}

JsonValue CumulonService::HandleDrain(const JsonValue&) {
  {
    MutexLock lock(&mu_);
    if (drained_) {  // idempotent once complete
      JsonValue reply = JsonValue::Object();
      reply.Set("type", "DRAIN_OK").Set("persisted", persisted_plans_);
      return reply;
    }
    if (draining_) {
      return EncodeError(TypedError(StatusCode::kFailedPrecondition,
                                    "draining",
                                    "drain already in progress"));
    }
    draining_ = true;
  }

  // First half: pull back everything still queued and persist the specs.
  const std::vector<int64_t> cancelled = manager_.CancelAllQueued();
  std::vector<SubmitRequest> persisted;
  {
    MutexLock lock(&mu_);
    const double now = wall_clock_.ElapsedSeconds();
    for (const int64_t mgr_id : cancelled) {
      auto map_it = mgr_to_svc_.find(mgr_id);
      if (map_it == mgr_to_svc_.end()) continue;
      auto rec_it = records_.find(map_it->second);
      if (rec_it == records_.end() || rec_it->second.terminal) continue;
      PlanRecord& rec = rec_it->second;
      rec.state = SvcPlanState::kCancelled;
      rec.terminal = true;
      rec.finish_wall_seconds = now;
      ++rec.cursor;
      persisted.push_back(rec.request);
      sessions_.OnFinished(rec.tenant);
    }
    persisted_plans_ = static_cast<int64_t>(persisted.size());
    metrics_->gauge("svc.plans.inflight")->Set(InflightLocked());
  }

  Status persist_status;
  if (!persisted.empty() && !options_.state_dir.empty()) {
    const std::string path = DrainFilePath();
    std::ofstream out(path, std::ios::trunc);
    out << EncodeQueuedPlans(persisted);
    out.close();
    if (!out) {
      persist_status =
          Status::Internal(StrCat("writing drain file ", path, " failed"));
    }
  }
  metrics_->counter("svc.drain.persisted")
      ->Add(static_cast<int64_t>(persisted.size()));

  // Second half: wait for the in-flight plans, then shut the loops down.
  manager_.Drain();
  StopReaper();
  PollOutcomes();
  sessions_.CloseAll();
  {
    MutexLock lock(&mu_);
    drained_ = true;
  }
  if (!persist_status.ok()) return EncodeError(persist_status);
  JsonValue reply = JsonValue::Object();
  reply.Set("type", "DRAIN_OK")
      .Set("persisted", static_cast<int64_t>(persisted.size()));
  return reply;
}

void CumulonService::PollOutcomes() {
  std::vector<std::pair<int64_t, int64_t>> active;  // svc id, manager id
  {
    MutexLock lock(&mu_);
    for (const auto& [id, rec] : records_) {
      if (!rec.terminal && rec.mgr_id > 0) active.emplace_back(id, rec.mgr_id);
    }
  }
  for (const auto& [id, mgr_id] : active) {
    auto outcome = manager_.TryGetOutcome(mgr_id);
    if (outcome.ok()) {
      MutexLock lock(&mu_);
      auto it = records_.find(id);
      if (it == records_.end() || it->second.terminal) continue;
      PlanRecord& rec = it->second;
      rec.outcome = std::move(*outcome);
      rec.terminal = true;
      rec.finish_wall_seconds = wall_clock_.ElapsedSeconds();
      switch (rec.outcome.state) {
        case PlanState::kDone: rec.state = SvcPlanState::kDone; break;
        case PlanState::kCancelled:
          rec.state = SvcPlanState::kCancelled;
          break;
        default: rec.state = SvcPlanState::kFailed; break;
      }
      ++rec.cursor;
      sessions_.OnFinished(rec.tenant);
      metrics_->histogram("svc.plan.completion_seconds")
          ->Observe(rec.finish_wall_seconds - rec.submit_wall_seconds);
      metrics_->gauge("svc.plans.inflight")->Set(InflightLocked());
      continue;
    }
    auto state = manager_.QueryState(mgr_id);
    if (state.ok() && *state == PlanState::kRunning) {
      MutexLock lock(&mu_);
      auto it = records_.find(id);
      if (it != records_.end() &&
          it->second.state == SvcPlanState::kQueued) {
        it->second.state = SvcPlanState::kRunning;
        ++it->second.cursor;
      }
    }
  }
}

void CumulonService::ReaperLoop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(
          std::max(options_.reaper_interval_seconds, 1e-3)));
  double since_elastic = 0.0;
  while (true) {
    {
      MutexLock lock(&reaper_mu_);
      if (stop_reaper_) break;
      reaper_cv_.WaitFor(&reaper_mu_, interval);
      if (stop_reaper_) break;
    }
    PollOutcomes();
    since_elastic += options_.reaper_interval_seconds;
    if (options_.enable_elastic &&
        since_elastic + 1e-9 >= options_.elastic_interval_seconds) {
      since_elastic = 0.0;
      controller_->Tick(&manager_);
      metrics_->gauge("svc.fleet.slots")->Set(controller_->slots());
    }
  }
}

void CumulonService::StopReaper() {
  {
    MutexLock lock(&reaper_mu_);
    stop_reaper_ = true;
    reaper_cv_.NotifyAll();
  }
  if (reaper_.joinable()) reaper_.join();
}

int CumulonService::InflightLocked() const {
  int inflight = 0;
  for (const auto& [id, rec] : records_) {
    if (!rec.terminal) ++inflight;
  }
  return inflight;
}

std::string CumulonService::DrainFilePath() const {
  return StrCat(options_.state_dir, "/queued_plans.json");
}

void CumulonService::RestoreFromDisk() {
  if (options_.state_dir.empty()) return;
  const std::string path = DrainFilePath();
  std::ifstream in(path);
  if (!in) return;  // no drain file: fresh start
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  auto requests = DecodeQueuedPlans(text);
  if (!requests.ok()) {
    CUMULON_LOG(Warning) << "ignoring unreadable drain file " << path << ": "
                         << requests.status();
    return;
  }
  for (const SubmitRequest& request : *requests) {
    // The full admission path again: the restored daemon re-decides with
    // the same estimates, quotas and manager state it would apply to a
    // fresh SUBMIT — decisions are reproducible across the restart.
    const JsonValue reply = SubmitInternal(request, /*restored=*/true);
    if (reply.StringOr("type", "") == "SUBMIT_OK") ++restored_plans_;
  }
  std::remove(path.c_str());
}

}  // namespace cumulon
