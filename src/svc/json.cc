#include "svc/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace cumulon {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, const std::string& value) {
  return Set(key, Str(value));
}
JsonValue& JsonValue::Set(const std::string& key, const char* value) {
  return Set(key, Str(value));
}
JsonValue& JsonValue::Set(const std::string& key, double value) {
  return Set(key, Number(value));
}
JsonValue& JsonValue::Set(const std::string& key, int64_t value) {
  return Set(key, Number(static_cast<double>(value)));
}
JsonValue& JsonValue::Set(const std::string& key, int value) {
  return Set(key, Number(static_cast<double>(value)));
}
JsonValue& JsonValue::Set(const std::string& key, bool value) {
  return Set(key, Bool(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->str_ : fallback;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->num_ : fallback;
}

int64_t JsonValue::IntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? static_cast<int64_t>(v->num_)
                                        : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind_ == Kind::kBool ? v->bool_ : fallback;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {  // JSON has no Inf/NaN
    *out += "null";
    return;
  }
  // Integers (plan ids, counts, cursors) print without an exponent or a
  // trailing ".0" so the frames stay grep-able.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  *out += buf;
}

void AppendValue(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.boolean() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.number(), out);
      break;
    case JsonValue::Kind::kString:
      AppendEscaped(v.str(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        AppendValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        AppendValue(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over the input buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrCat("JSON parse error at offset ", pos_, ": ", what));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::Str(std::move(*s));
    }
    if (c == 't' || c == 'f') return ParseKeyword(c == 't');
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return Error("bad literal");
      pos_ += 4;
      return JsonValue::Null();
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseKeyword(bool value) {
    const char* word = value ? "true" : "false";
    const size_t len = value ? 4 : 5;
    if (text_.compare(pos_, len, word) != 0) return Error("bad literal");
    pos_ += len;
    return JsonValue::Bool(value);
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    const double value = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) return Error("malformed number");
    return JsonValue::Number(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Error("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs — absent
            // from this protocol's ASCII payloads — pass through as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      auto item = ParseValue(depth + 1);
      if (!item.ok()) return item.status();
      array.Append(std::move(*item));
      SkipSpace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.Set(*key, std::move(*value));
      SkipSpace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::ToString() const {
  std::string out;
  AppendValue(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace cumulon
