#include "svc/client.h"

#include <utility>

#include "common/strings.h"
#include "svc/wire.h"

namespace cumulon {

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& address) {
  auto fd = ConnectTo(address);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<SocketTransport>(new SocketTransport(*fd));
}

SocketTransport::~SocketTransport() {
  MutexLock lock(&mu_);
  CloseFd(fd_);
  fd_ = -1;
}

Result<JsonValue> SocketTransport::Call(const JsonValue& request) {
  MutexLock lock(&mu_);
  if (fd_ < 0) return Status::FailedPrecondition("transport closed");
  CUMULON_RETURN_IF_ERROR(WriteFrame(fd_, request.ToString()));
  auto payload = ReadFrame(fd_);
  if (!payload.ok()) return payload.status();
  return ParseJson(*payload);
}

Result<JsonValue> ServiceClient::Call(const JsonValue& request) {
  auto reply = transport_->Call(request);
  if (!reply.ok()) return reply.status();
  if (reply->StringOr("type", "") == "ERROR") return DecodeError(*reply);
  return reply;
}

Status ServiceClient::Hello(const std::string& token) {
  JsonValue request = JsonValue::Object();
  request.Set("type", "HELLO").Set("v", kProtocolVersion).Set("token", token);
  auto reply = Call(request);
  if (!reply.ok()) return reply.status();
  session_ = reply->IntOr("session", 0);
  tenant_ = reply->StringOr("tenant", "");
  return Status::OK();
}

Result<ServiceClient::SubmitReply> ServiceClient::Submit(
    const std::string& workload, const std::string& name,
    double deadline_seconds, double budget_dollars) {
  JsonValue request = JsonValue::Object();
  request.Set("type", "SUBMIT")
      .Set("session", session_)
      .Set("workload", workload);
  if (!name.empty()) request.Set("name", name);
  if (deadline_seconds > 0.0) {
    request.Set("deadline_seconds", deadline_seconds);
  }
  if (budget_dollars > 0.0) request.Set("budget_dollars", budget_dollars);
  auto reply = Call(request);
  if (!reply.ok()) return reply.status();
  SubmitReply submit;
  submit.plan = reply->IntOr("plan", 0);
  submit.name = reply->StringOr("name", "");
  submit.estimate_seconds = reply->NumberOr("estimate_seconds", 0.0);
  submit.estimate_dollars = reply->NumberOr("estimate_dollars", 0.0);
  return submit;
}

Result<ServiceClient::PollReply> ServiceClient::Poll(int64_t plan,
                                                     int64_t cursor) {
  JsonValue request = JsonValue::Object();
  request.Set("type", "POLL")
      .Set("session", session_)
      .Set("plan", plan)
      .Set("cursor", cursor);
  auto reply = Call(request);
  if (!reply.ok()) return reply.status();
  PollReply poll;
  poll.plan = reply->IntOr("plan", 0);
  poll.state = reply->StringOr("state", "");
  poll.cursor = reply->IntOr("cursor", 0);
  poll.changed = reply->BoolOr("changed", false);
  poll.terminal = poll.state == "DONE" || poll.state == "FAILED" ||
                  poll.state == "CANCELLED" || poll.state == "REJECTED";
  poll.seconds = reply->NumberOr("seconds", 0.0);
  poll.queue_wait_seconds = reply->NumberOr("queue_wait_seconds", 0.0);
  poll.deadline_met = reply->BoolOr("deadline_met", true);
  return poll;
}

Status ServiceClient::Cancel(int64_t plan) {
  JsonValue request = JsonValue::Object();
  request.Set("type", "CANCEL").Set("session", session_).Set("plan", plan);
  auto reply = Call(request);
  return reply.ok() ? Status::OK() : reply.status();
}

Result<JsonValue> ServiceClient::Stats() {
  JsonValue request = JsonValue::Object();
  request.Set("type", "STATS").Set("session", session_);
  return Call(request);
}

Result<int64_t> ServiceClient::Drain() {
  JsonValue request = JsonValue::Object();
  request.Set("type", "DRAIN").Set("session", session_);
  auto reply = Call(request);
  if (!reply.ok()) return reply.status();
  return reply->IntOr("persisted", 0);
}

}  // namespace cumulon
