#ifndef CUMULON_SVC_CATALOG_H_
#define CUMULON_SVC_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "opt/predictor.h"

namespace cumulon {

/// Named program classes a tenant may SUBMIT. The daemon's tenants pick
/// from a fixed catalog instead of shipping arbitrary shapes because every
/// class's inputs live once in the shared simulated DFS: two tenants
/// submitting "mm-m" share the same registered input layouts, so
/// concurrent plans can never register conflicting shapes under one name.
///
/// Classes:
///   mm-s / mm-m / mm-l / mm-xl   square matmul C = A * B at 1k/4k/8k/16k
///                                (the heavy-tailed size ladder the load
///                                generator samples from)
///   rsvd, gnmf, linreg, pagerank, logreg
///                                the paper-family programs of
///                                lang/programs.h at one service scale
///
/// `scale` stretches the lang workloads' leading dimension (the CLI's
/// --scale flag); the mm-* ladder ignores it so its shapes stay identical
/// across every submission.
Result<ProgramSpec> MakeCatalogWorkload(const std::string& name, double scale,
                                        int64_t tile_dim);

/// Every catalog class name, mm ladder first.
const std::vector<std::string>& CatalogWorkloads();

}  // namespace cumulon

#endif  // CUMULON_SVC_CATALOG_H_
