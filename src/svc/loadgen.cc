#include "svc/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "obs/quantile_sketch.h"
#include "svc/message.h"

namespace cumulon {
namespace {

// Interruptible sleep; a fresh mutex/condvar pair per call keeps the
// lock-order validator out of the picture.
void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  Mutex mu("loadgen sleep");
  CondVar cv;
  MutexLock lock(&mu);
  cv.WaitFor(&mu, std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(seconds)));
}

// Heavy-tailed default: mostly small plans, a thin stream of monsters.
std::vector<std::pair<std::string, double>> DefaultMix() {
  return {{"mm-s", 0.55},
          {"mm-m", 0.25},
          {"mm-l", 0.12},
          {"mm-xl", 0.04},
          {"linreg", 0.04}};
}

struct TenantPlan {
  int tenant = 0;
  std::string workload;
  double deadline_seconds = 0.0;
};

struct AcceptedPlan {
  int64_t plan = 0;
  int tenant = 0;
  // Against the worker-local stopwatch, taken just before SUBMIT went out.
  double submit_at_seconds = 0.0;
};

struct WorkerResult {
  LoadGenReport counts;  // latency fields unused; merged by the caller
  // Bounded-memory latency sketches (obs/quantile_sketch.h): each worker
  // owns its sketches single-threaded, the caller merges after join. A
  // firehose run no longer buffers one double per request.
  QuantileSketch admission_seconds;
  QuantileSketch completion_seconds;
  Status connect_status;  // non-OK when the worker never got a transport
};

class MixSampler {
 public:
  explicit MixSampler(std::vector<std::pair<std::string, double>> mix)
      : mix_(std::move(mix)) {
    for (const auto& [name, weight] : mix_) total_ += weight;
    CUMULON_CHECK_GT(total_, 0.0);
  }

  const std::string& Sample(Rng* rng) const {
    double roll = rng->NextDouble() * total_;
    for (const auto& [name, weight] : mix_) {
      roll -= weight;
      if (roll <= 0.0) return name;
    }
    return mix_.back().first;
  }

 private:
  std::vector<std::pair<std::string, double>> mix_;
  double total_ = 0.0;
};

void RunWorker(const TransportFactory& connect, const LoadGenOptions& options,
               const std::vector<TenantPlan>& schedule, uint64_t seed,
               WorkerResult* out) {
  auto transport = connect();
  if (!transport.ok()) {
    out->connect_status = transport.status();
    return;
  }
  Rng rng(seed);

  // One session per tenant this worker owns, opened lazily on first use and
  // shared across that tenant's submissions (tenants keep their session for
  // the whole run, like a real connected client).
  std::map<int, std::unique_ptr<ServiceClient>> clients;
  auto client_for = [&](int tenant) -> ServiceClient* {
    auto it = clients.find(tenant);
    if (it != clients.end()) return it->second.get();
    auto client = std::make_unique<ServiceClient>(transport->get());
    Status hello = client->Hello(StrCat("tenant-", tenant));
    if (!hello.ok()) {
      out->counts.transport_errors++;
      return nullptr;
    }
    return clients.emplace(tenant, std::move(client)).first->second.get();
  };

  Stopwatch clock;
  std::vector<AcceptedPlan> accepted;
  accepted.reserve(schedule.size());

  int since_burst = 0;
  for (const TenantPlan& item : schedule) {
    ServiceClient* client = client_for(item.tenant);
    out->counts.submitted++;
    if (client == nullptr) continue;

    const double submit_at = clock.ElapsedSeconds();
    Stopwatch rpc;
    auto reply = client->Submit(item.workload, /*name=*/"",
                                item.deadline_seconds);
    out->admission_seconds.Add(rpc.ElapsedSeconds());
    if (reply.ok()) {
      out->counts.accepted++;
      accepted.push_back({reply->plan, item.tenant, submit_at});
    } else {
      const std::string reason = ErrorReason(reply.status());
      if (reason == "quota.inflight" || reason == "quota.budget") {
        out->counts.rejected_quota++;
      } else if (reason == "admission.deadline" ||
                 reason == "admission.budget") {
        out->counts.rejected_admission++;
      } else if (reason == "draining") {
        out->counts.rejected_draining++;
      } else if (reason.empty()) {
        out->counts.transport_errors++;
      } else {
        out->counts.rejected_other++;
      }
    }

    // Think time: bursty tenants sleep once per burst (for burst_size times
    // as long); Poisson tenants sleep an exponential draw every submission.
    const bool bursty =
        (item.tenant % 997) <
        static_cast<int>(options.burst_tenant_fraction * 997.0);
    const int burst = std::max(1, options.burst_size);
    if (bursty) {
      if (++since_burst >= burst) {
        since_burst = 0;
        SleepSeconds(-std::log(1.0 - rng.NextDouble()) *
                     options.think_mean_seconds * burst);
      }
    } else {
      SleepSeconds(-std::log(1.0 - rng.NextDouble()) *
                   options.think_mean_seconds);
    }
  }

  if (!options.collect_completions) return;

  // Poll phase: sweep the open plans until each is terminal. The completion
  // latency is client-observed (submit to terminal-poll), so it includes
  // queueing, execution, and our own polling granularity — what a tenant
  // actually waits.
  std::deque<AcceptedPlan> open(accepted.begin(), accepted.end());
  while (!open.empty()) {
    const size_t sweep = open.size();
    for (size_t i = 0; i < sweep; ++i) {
      AcceptedPlan plan = open.front();
      open.pop_front();
      // Plans must be polled through the session of the tenant that
      // submitted them (anything else is a typed plan.foreign error).
      auto it = clients.find(plan.tenant);
      if (it == clients.end()) {
        out->counts.transport_errors++;
        continue;
      }
      auto poll = it->second->Poll(plan.plan);
      if (!poll.ok()) {
        out->counts.transport_errors++;
        continue;
      }
      if (poll->terminal) {
        out->completion_seconds.Add(clock.ElapsedSeconds() -
                                    plan.submit_at_seconds);
        if (poll->state == "DONE") {
          out->counts.completed++;
        } else if (poll->state == "FAILED") {
          out->counts.failed++;
        } else {
          out->counts.cancelled++;
        }
        continue;
      }
      if (clock.ElapsedSeconds() - plan.submit_at_seconds >
          options.poll_timeout_seconds) {
        out->counts.poll_timeouts++;
        continue;
      }
      open.push_back(plan);
    }
    if (!open.empty()) SleepSeconds(options.poll_interval_seconds);
  }
}

}  // namespace

double ExactPercentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) index--;  // ceil(q*n)-th smallest, 1-based -> 0-based
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

Result<LoadGenReport> RunLoadGen(const TransportFactory& connect,
                                 const LoadGenOptions& options) {
  if (options.tenants <= 0 || options.total_submissions <= 0 ||
      options.workers <= 0) {
    return Status::InvalidArgument(
        "loadgen needs positive tenants, submissions, and workers");
  }
  const MixSampler sampler(options.workload_mix.empty()
                               ? DefaultMix()
                               : options.workload_mix);

  // Build each worker's submission schedule up front (deterministic given
  // the seed): tenants are partitioned across workers, and each worker
  // interleaves its tenants' submissions round-robin so concurrent tenants
  // overlap in time.
  Rng plan_rng(options.seed);
  const int workers =
      std::min(options.workers, std::max(1, options.tenants));
  std::vector<std::vector<TenantPlan>> schedules(workers);
  for (int i = 0; i < options.total_submissions; ++i) {
    const int tenant = static_cast<int>(plan_rng.NextUint64(
        static_cast<uint64_t>(options.tenants)));
    TenantPlan item;
    item.tenant = tenant;
    item.workload = sampler.Sample(&plan_rng);
    if (options.deadline_fraction > 0.0 &&
        plan_rng.NextDouble() < options.deadline_fraction) {
      item.deadline_seconds = options.deadline_seconds;
    }
    schedules[tenant % workers].push_back(item);
  }

  std::vector<WorkerResult> results(workers);
  Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        RunWorker(connect, options, schedules[w],
                  options.seed + 0x9e3779b9u * (w + 1), &results[w]);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  LoadGenReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  QuantileSketch admission;
  QuantileSketch completion;
  int connected = 0;
  Status first_connect_error = Status::OK();
  for (const WorkerResult& r : results) {
    if (!r.connect_status.ok()) {
      if (first_connect_error.ok()) first_connect_error = r.connect_status;
      continue;
    }
    connected++;
    report.submitted += r.counts.submitted;
    report.accepted += r.counts.accepted;
    report.rejected_quota += r.counts.rejected_quota;
    report.rejected_admission += r.counts.rejected_admission;
    report.rejected_draining += r.counts.rejected_draining;
    report.rejected_other += r.counts.rejected_other;
    report.transport_errors += r.counts.transport_errors;
    report.completed += r.counts.completed;
    report.failed += r.counts.failed;
    report.cancelled += r.counts.cancelled;
    report.poll_timeouts += r.counts.poll_timeouts;
    admission.Merge(r.admission_seconds);
    completion.Merge(r.completion_seconds);
  }
  if (connected == 0) {
    return Status(first_connect_error.code(),
                  StrCat("no loadgen worker could connect: ",
                         first_connect_error.message()));
  }
  report.admission_p50_seconds = admission.Quantile(0.50);
  report.admission_p99_seconds = admission.Quantile(0.99);
  report.admission_max_seconds = admission.max();  // min/max stay exact
  report.completion_p50_seconds = completion.Quantile(0.50);
  report.completion_p99_seconds = completion.Quantile(0.99);
  report.completion_max_seconds = completion.max();
  report.latency_rank_error = std::max(admission.rank_error_bound(),
                                       completion.rank_error_bound());
  return report;
}

}  // namespace cumulon
