#ifndef CUMULON_SVC_LOADGEN_H_
#define CUMULON_SVC_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "svc/client.h"

namespace cumulon {

/// Closed-loop multi-tenant load for a service daemon: every simulated
/// tenant submits, thinks, and polls its own plans to completion, so the
/// offered load self-regulates the way real interactive tenants do (no
/// open-loop overrun). Arrivals mix Poisson tenants (exponential think
/// times) with bursty tenants (back-to-back bursts, then a long think);
/// plan sizes follow the heavy-tailed catalog mix.
struct LoadGenOptions {
  int tenants = 100;
  int total_submissions = 1000;

  /// Concurrent connections; tenants are partitioned across them.
  int workers = 8;

  /// Mean exponential think time between a Poisson tenant's submissions.
  double think_mean_seconds = 0.001;

  /// Fraction of tenants that are bursty: they fire `burst_size`
  /// submissions back-to-back, then think ~burst_size times longer.
  double burst_tenant_fraction = 0.25;
  int burst_size = 4;

  /// Fraction of submissions carrying this deadline (tight deadlines under
  /// backlog provoke typed admission rejections).
  double deadline_fraction = 0.0;
  double deadline_seconds = 300.0;

  /// Sweep cadence of the completion-polling phase.
  double poll_interval_seconds = 0.002;

  /// Give up polling a plan after this long (counted, not fatal).
  double poll_timeout_seconds = 120.0;

  /// Workload class -> sampling weight; empty = the default heavy-tailed
  /// mm ladder mix.
  std::vector<std::pair<std::string, double>> workload_mix;

  /// Poll accepted plans to terminal states (off = submit-only firehose).
  bool collect_completions = true;

  uint64_t seed = 17;
};

struct LoadGenReport {
  int submitted = 0;
  int accepted = 0;
  int rejected_quota = 0;
  int rejected_admission = 0;
  int rejected_draining = 0;
  int rejected_other = 0;
  int transport_errors = 0;

  int completed = 0;
  int failed = 0;
  int cancelled = 0;
  int poll_timeouts = 0;

  double wall_seconds = 0.0;

  /// Client-observed SUBMIT round-trip latency (the admission decision).
  /// Quantiles come from bounded-memory sketches (obs/quantile_sketch.h),
  /// accurate to within latency_rank_error of the exact sample rank; max
  /// is tracked exactly.
  double admission_p50_seconds = 0.0;
  double admission_p99_seconds = 0.0;
  double admission_max_seconds = 0.0;

  /// Client-observed submit -> terminal-poll latency of accepted plans.
  double completion_p50_seconds = 0.0;
  double completion_p99_seconds = 0.0;
  double completion_max_seconds = 0.0;

  /// Guaranteed rank-error ceiling of the quantiles above, as a fraction
  /// of the sample count (the worse of the two sketches). 0.0 when the
  /// sketches never collapsed, i.e. the quantiles are exact.
  double latency_rank_error = 0.0;
};

/// Opens one Transport per worker via `connect` and drives the load.
/// Fails only when no worker can connect or HELLO is refused; per-request
/// failures are counted in the report.
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>()>;

Result<LoadGenReport> RunLoadGen(const TransportFactory& connect,
                                 const LoadGenOptions& options);

/// Exact percentile over the sample set (not a histogram bound):
/// the ceil(q * n)-th smallest value. Exposed for tests and benches.
double ExactPercentile(std::vector<double> values, double q);

}  // namespace cumulon

#endif  // CUMULON_SVC_LOADGEN_H_
