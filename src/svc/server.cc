#include "svc/server.h"

#include <chrono>
#include <utility>

#include "svc/message.h"
#include "svc/wire.h"

namespace cumulon {

ServiceServer::ServiceServer(CumulonService* service) : service_(service) {}

ServiceServer::~ServiceServer() {
  Stop();
}

Status ServiceServer::Start(const std::string& address) {
  auto fd = ListenOn(address);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  {
    MutexLock lock(&mu_);
    accept_done_ = false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceServer::AcceptLoop() {
  while (true) {
    {
      MutexLock lock(&mu_);
      if (stopping_) break;
    }
    auto fd = AcceptConnection(listen_fd_);
    if (!fd.ok()) break;
    MutexLock lock(&mu_);
    if (stopping_) {
      CloseFd(*fd);
      break;
    }
    const int64_t id = next_conn_id_++;
    conn_fds_[id] = *fd;
    conn_threads_.emplace(
        id, std::thread([this, id, f = *fd] { HandleConnection(id, f); }));
  }
  MutexLock lock(&mu_);
  accept_done_ = true;
  stopped_cv_.NotifyAll();
}

void ServiceServer::HandleConnection(int64_t conn_id, int fd) {
  std::vector<int64_t> sessions;
  while (true) {
    auto payload = ReadFrame(fd);
    if (!payload.ok()) break;
    auto request = ParseJson(*payload);
    JsonValue reply;
    if (!request.ok()) {
      reply = EncodeError(TypedError(StatusCode::kInvalidArgument,
                                     "proto.malformed",
                                     request.status().message()));
    } else {
      reply = service_->Dispatch(*request);
      if (reply.StringOr("type", "") == "HELLO_OK") {
        sessions.push_back(reply.IntOr("session", 0));
      }
    }
    if (!WriteFrame(fd, reply.ToString()).ok()) break;
    // A frame that did not parse leaves the stream in an unknown state;
    // report the error, then drop the connection.
    if (!request.ok()) break;
    if (service_->drained()) {
      // The DRAIN we just answered completed: bring the whole front end
      // down (the response is already on the wire).
      MutexLock lock(&mu_);
      StopLocked();
      break;
    }
  }
  for (const int64_t session : sessions) service_->CloseSession(session);

  MutexLock lock(&mu_);
  auto fd_it = conn_fds_.find(conn_id);
  if (fd_it != conn_fds_.end()) {
    CloseFd(fd_it->second);
    conn_fds_.erase(fd_it);
  }
  auto thread_it = conn_threads_.find(conn_id);
  if (thread_it != conn_threads_.end()) {
    // A thread cannot join itself; park the handle for WaitUntilStopped.
    done_threads_.push_back(std::move(thread_it->second));
    conn_threads_.erase(thread_it);
  }
  stopped_cv_.NotifyAll();
}

void ServiceServer::StopLocked() {
  if (stopping_) return;
  stopping_ = true;
  // Wakes the blocked accept (EINVAL -> Cancelled) and every blocked
  // ReadFrame; the fds close once their threads retire.
  ShutdownFd(listen_fd_);
  for (const auto& [id, fd] : conn_fds_) ShutdownFd(fd);
  stopped_cv_.NotifyAll();
}

void ServiceServer::WaitUntilStopped() {
  {
    MutexLock lock(&mu_);
    while (!(stopping_ && accept_done_ && conn_threads_.empty())) {
      stopped_cv_.WaitFor(&mu_, std::chrono::milliseconds(50));
      // A drain that arrived through an in-process transport never passes
      // through a connection handler; notice it here.
      if (!stopping_ && service_->drained()) StopLocked();
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> done;
  {
    MutexLock lock(&mu_);
    done.swap(done_threads_);
  }
  for (std::thread& thread : done) thread.join();
}

void ServiceServer::Stop() {
  {
    MutexLock lock(&mu_);
    StopLocked();
  }
  WaitUntilStopped();
}

int ServiceServer::active_connections() const {
  MutexLock lock(&mu_);
  return static_cast<int>(conn_fds_.size());
}

}  // namespace cumulon
