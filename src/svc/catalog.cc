#include "svc/catalog.h"

#include "common/strings.h"
#include "lang/expr.h"
#include "lang/logical_optimizer.h"
#include "lang/programs.h"

namespace cumulon {

namespace {

/// One rung of the matmul size ladder: C = A * B with n x n inputs named
/// after the class so the rungs never collide in a shared store.
ProgramSpec MakeMatMulClass(const std::string& cls, int64_t n,
                            int64_t tile_dim) {
  // "mm-s" -> "mm_s_A": metric- and path-safe identifier.
  std::string prefix = cls;
  for (char& c : prefix) {
    if (c == '-') c = '_';
  }
  const std::string a = StrCat(prefix, "_A");
  const std::string b = StrCat(prefix, "_B");
  ProgramSpec spec;
  spec.program.Assign(StrCat(prefix, "_C"),
                      Expr::Input(a, n, n) * Expr::Input(b, n, n));
  spec.program = OptimizeProgram(spec.program);
  spec.inputs = {{a, TileLayout::Square(n, n, tile_dim)},
                 {b, TileLayout::Square(n, n, tile_dim)}};
  return spec;
}

}  // namespace

Result<ProgramSpec> MakeCatalogWorkload(const std::string& name, double scale,
                                        int64_t tile_dim) {
  const int64_t tile = tile_dim;
  ProgramSpec spec;
  if (name == "mm-s") return MakeMatMulClass(name, 1 << 10, tile);
  if (name == "mm-m") return MakeMatMulClass(name, 1 << 12, tile);
  if (name == "mm-l") return MakeMatMulClass(name, 1 << 13, tile);
  if (name == "mm-xl") return MakeMatMulClass(name, 1 << 14, tile);
  if (name == "rsvd") {
    RsvdSpec s;
    s.m = static_cast<int64_t>((1 << 17) * scale);
    s.n = 1 << 14;
    s.l = 64;
    spec.program = OptimizeProgram(BuildRsvd1(s));
    spec.inputs = {{"A", TileLayout::Square(s.m, s.n, tile)},
                   {"Omega", TileLayout::Square(s.n, s.l, tile)}};
  } else if (name == "gnmf") {
    GnmfSpec s;
    s.m = static_cast<int64_t>((1 << 16) * scale);
    s.n = 1 << 14;
    s.k = 128;
    spec.program = OptimizeProgram(BuildGnmfIteration(s));
    spec.inputs = {{"V", TileLayout::Square(s.m, s.n, tile)},
                   {"W", TileLayout::Square(s.m, s.k, tile)},
                   {"H", TileLayout::Square(s.k, s.n, tile)}};
  } else if (name == "linreg") {
    LinRegSpec s;
    s.samples = static_cast<int64_t>((1 << 17) * scale);
    s.features = 1 << 13;
    spec.program = OptimizeProgram(BuildLinRegStep(s));
    spec.inputs = {{"X", TileLayout::Square(s.samples, s.features, tile)},
                   {"w", TileLayout::Square(s.features, 1, tile)},
                   {"y", TileLayout::Square(s.samples, 1, tile)}};
  } else if (name == "pagerank") {
    PageRankSpec s;
    s.n = static_cast<int64_t>((1 << 15) * scale);
    spec.program = OptimizeProgram(BuildPageRankIteration(s));
    spec.inputs = {{"M", TileLayout::Square(s.n, s.n, tile)},
                   {"p", TileLayout::Square(s.n, 1, tile)}};
  } else if (name == "logreg") {
    LogRegSpec s;
    s.samples = static_cast<int64_t>((1 << 17) * scale);
    s.features = 1 << 13;
    spec.program = OptimizeProgram(BuildLogRegStep(s));
    spec.inputs = {{"X", TileLayout::Square(s.samples, s.features, tile)},
                   {"w", TileLayout::Square(s.features, 1, tile)},
                   {"y", TileLayout::Square(s.samples, 1, tile)}};
  } else {
    return Status::InvalidArgument(
        StrCat("unknown workload '", name,
               "' (expected mm-s|mm-m|mm-l|mm-xl|rsvd|gnmf|linreg|pagerank|"
               "logreg)"));
  }
  return spec;
}

const std::vector<std::string>& CatalogWorkloads() {
  static const std::vector<std::string> kClasses = {
      "mm-s",  "mm-m",   "mm-l",     "mm-xl",  "rsvd",
      "gnmf",  "linreg", "pagerank", "logreg"};
  return kClasses;
}

}  // namespace cumulon
