#ifndef CUMULON_SVC_CLIENT_H_
#define CUMULON_SVC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "svc/json.h"
#include "svc/message.h"
#include "svc/service.h"

namespace cumulon {

/// One request/response channel to a CumulonService. Call() delivers one
/// request frame and returns the response frame (including ERROR frames —
/// a non-OK result means the transport itself failed).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<JsonValue> Call(const JsonValue& request) = 0;
};

/// Frames over a connected socket. Calls are serialized per transport (the
/// protocol is strict request/response); open one transport per concurrent
/// caller.
class SocketTransport : public Transport {
 public:
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& address);
  ~SocketTransport() override;

  Result<JsonValue> Call(const JsonValue& request) override;

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  Mutex mu_{"SocketTransport::mu_"};
  int fd_ CUMULON_GUARDED_BY(mu_);
};

/// Direct in-process dispatch — the same protocol without sockets, for
/// unit tests and the CLI's own administrative calls.
class LocalTransport : public Transport {
 public:
  /// `service` is borrowed and must outlive the transport.
  explicit LocalTransport(CumulonService* service) : service_(service) {}

  Result<JsonValue> Call(const JsonValue& request) override {
    return service_->Dispatch(request);
  }

 private:
  CumulonService* service_;
};

/// Typed request helpers over a Transport. ERROR frames come back as the
/// typed Status they encode (svc/message.h reasons), so callers branch on
/// ErrorReason() instead of string-matching frames. Not internally
/// synchronized — share nothing or lock externally.
class ServiceClient {
 public:
  /// `transport` is borrowed and must outlive the client.
  explicit ServiceClient(Transport* transport) : transport_(transport) {}

  struct SubmitReply {
    int64_t plan = 0;
    std::string name;
    double estimate_seconds = 0.0;
    double estimate_dollars = 0.0;
  };

  struct PollReply {
    int64_t plan = 0;
    std::string state;
    int64_t cursor = 0;
    bool changed = false;
    bool terminal = false;
    double seconds = 0.0;
    double queue_wait_seconds = 0.0;
    bool deadline_met = true;
  };

  /// HELLO; remembers the session id for the calls below.
  Status Hello(const std::string& token);

  Result<SubmitReply> Submit(const std::string& workload,
                             const std::string& name = "",
                             double deadline_seconds = 0.0,
                             double budget_dollars = 0.0);

  Result<PollReply> Poll(int64_t plan, int64_t cursor = 0);

  Status Cancel(int64_t plan);

  /// STATS_OK frame, verbatim.
  Result<JsonValue> Stats();

  /// DRAIN; returns the number of queued plans persisted.
  Result<int64_t> Drain();

  int64_t session() const { return session_; }
  const std::string& tenant() const { return tenant_; }

 private:
  /// Sends the frame and converts an ERROR response into its Status.
  Result<JsonValue> Call(const JsonValue& request);

  Transport* transport_;
  int64_t session_ = 0;
  std::string tenant_;
};

}  // namespace cumulon

#endif  // CUMULON_SVC_CLIENT_H_
