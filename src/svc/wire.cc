#include "svc/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace cumulon {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(StrCat(what, ": ", std::strerror(errno)));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: writing to a peer-closed socket must surface as EPIPE,
    // not a process-killing SIGPIPE. send() rejects non-socket fds
    // (ENOTSOCK) — the pipe-based tests and any future fd transports fall
    // back to write() below.
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + done, size - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    if (n == 0) return Status::Internal("write returned 0");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `at_boundary` distinguishes a clean EOF
/// (peer closed between frames) from a truncated frame.
Status ReadAll(int fd, char* data, size_t size, bool at_boundary) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (done == 0 && at_boundary) {
        return Status::Cancelled("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", payload.size(), " bytes exceeds the ",
               kMaxFramePayload, "-byte limit"));
  }
  const uint32_t len = htonl(static_cast<uint32_t>(payload.size()));
  char header[4];
  std::memcpy(header, &len, 4);
  // One header write + one payload write; TCP_NODELAY is irrelevant for
  // the local sockets this protocol targets.
  CUMULON_RETURN_IF_ERROR(WriteAll(fd, header, 4));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  CUMULON_RETURN_IF_ERROR(ReadAll(fd, header, 4, /*at_boundary=*/true));
  uint32_t len = 0;
  std::memcpy(&len, header, 4);
  len = ntohl(len);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrCat("frame length ", len, " exceeds the ", kMaxFramePayload,
               "-byte limit"));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    CUMULON_RETURN_IF_ERROR(
        ReadAll(fd, payload.data(), len, /*at_boundary=*/false));
  }
  return payload;
}

namespace {

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StrCat("unix socket path too long: ", path));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());  // replace a stale socket from a prior run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Errno(StrCat("bind ", path));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StrCat("unix socket path too long: ", path));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Errno(StrCat("connect ", path));
    ::close(fd);
    return st;
  }
  return fd;
}

Result<sockaddr_in> ParseTcp(const std::string& hostport) {
  const size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        StrCat("tcp address needs HOST:PORT, got '", hostport, "'"));
  }
  const std::string host = hostport.substr(0, colon);
  const int port = std::atoi(hostport.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(StrCat("bad tcp port in '", hostport, "'"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("bad IPv4 host '", host, "' (no resolver in this build)"));
  }
  return addr;
}

Result<int> ListenTcp(const std::string& hostport) {
  auto addr = ParseTcp(hostport);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) != 0) {
    const Status st = Errno(StrCat("bind ", hostport));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& hostport) {
  auto addr = ParseTcp(hostport);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) != 0) {
    const Status st = Errno(StrCat("connect ", hostport));
    ::close(fd);
    return st;
  }
  return fd;
}

}  // namespace

Result<int> ListenOn(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) return ListenUnix(address.substr(5));
  if (address.rfind("tcp:", 0) == 0) return ListenTcp(address.substr(4));
  return Status::InvalidArgument(
      StrCat("address must start with unix: or tcp:, got '", address, "'"));
}

Result<int> ConnectTo(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) return ConnectUnix(address.substr(5));
  if (address.rfind("tcp:", 0) == 0) return ConnectTcp(address.substr(4));
  return Status::InvalidArgument(
      StrCat("address must start with unix: or tcp:, got '", address, "'"));
}

Result<int> AcceptConnection(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF) {
      return Status::Cancelled("listener shut down");
    }
    return Errno("accept");
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace cumulon
