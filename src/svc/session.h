#ifndef CUMULON_SVC_SESSION_H_
#define CUMULON_SVC_SESSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cumulon {

/// Per-tenant admission limits, enforced by the daemon *before* the
/// WorkloadManager's deadline/budget feasibility check.
struct TenantQuota {
  /// Plans a tenant may have queued or running at once.
  int max_inflight_plans = 8;

  /// Aggregate predicted spend across all of the tenant's admitted plans
  /// over this daemon's lifetime; 0 = unlimited. Charged at admission with
  /// the predictor's estimate (the same number the manager's budget check
  /// uses), so an over-budget tenant is refused before touching the queue.
  double aggregate_budget_dollars = 0.0;
};

struct SessionOptions {
  /// true: any HELLO token opens a session for the tenant named by the
  /// token (the local-trust default — the socket is the auth boundary).
  /// false: only tokens present in `tokens` are accepted.
  bool open_auth = true;

  /// token -> tenant. Consulted first even under open_auth, so named
  /// credentials can map several tokens onto one tenant.
  std::map<std::string, std::string> tokens;

  TenantQuota default_quota;

  /// Per-tenant overrides of default_quota.
  std::map<std::string, TenantQuota> tenant_quotas;

  /// svc.sessions.* metrics. Borrowed; may be null.
  MetricsRegistry* metrics = nullptr;

  /// Records one wall-clock "session" span per session at close (lane =
  /// session id). Borrowed; may be null.
  Tracer* tracer = nullptr;
};

/// Tenant authentication and quota accounting for the service daemon.
/// Sessions are cheap handles (an id + a tenant); quota state is keyed by
/// tenant, so one tenant connecting twice shares one in-flight count and
/// one aggregate budget. Thread-safe.
class SessionManager {
 public:
  explicit SessionManager(const SessionOptions& options);

  /// HELLO: validates the protocol version and the token, opens a session.
  /// Typed errors: proto.version, auth.unknown_token.
  Result<int64_t> Open(int protocol_version, const std::string& token);

  /// The tenant a session was opened for. Typed error: auth.unknown_session.
  Result<std::string> TenantOf(int64_t session_id) const;

  /// Quota gate for one submission with predicted cost `estimate_dollars`.
  /// Typed errors: quota.inflight, quota.budget.
  Status AdmitCheck(const std::string& tenant, double estimate_dollars) const;

  /// Charges an admitted plan against the tenant (inflight +1, budget
  /// debit). Also usable for restored plans whose tenant has no session.
  void OnAdmitted(const std::string& tenant, double estimate_dollars);

  /// Releases the in-flight slot when a plan reaches a terminal state.
  /// Spent budget stays charged — the quota is an aggregate.
  void OnFinished(const std::string& tenant);

  /// Closes one session (connection teardown); emits its trace span.
  void Close(int64_t session_id);

  /// Drain: closes every open session.
  void CloseAll();

  int open_sessions() const;
  TenantQuota QuotaFor(const std::string& tenant) const;

 private:
  struct SessionState {
    std::string tenant;
    double opened_seconds = 0.0;  // wall seconds since manager start
  };
  struct TenantState {
    int inflight = 0;
    double spent_dollars = 0.0;
  };

  void CloseLocked(int64_t session_id) CUMULON_REQUIRES(mu_);

  SessionOptions options_;
  Stopwatch clock_;  // wall time base for session spans

  mutable Mutex mu_{"SessionManager::mu_"};
  int64_t next_session_id_ CUMULON_GUARDED_BY(mu_) = 1;
  std::map<int64_t, SessionState> sessions_ CUMULON_GUARDED_BY(mu_);
  std::map<std::string, TenantState> tenants_ CUMULON_GUARDED_BY(mu_);
};

}  // namespace cumulon

#endif  // CUMULON_SVC_SESSION_H_
