#include "opt/predictor.h"

#include <map>

#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "opt/job_tuner.h"

namespace cumulon {

Result<LoweredProgram> PrepareProgram(const ProgramSpec& spec,
                                      TileStore* store,
                                      const LoweringOptions& lowering) {
  std::map<std::string, TiledMatrix> bindings;
  for (const TiledMatrix& input : spec.inputs) {
    const TileLayout& layout = input.layout;
    for (int64_t gr = 0; gr < layout.grid_rows(); ++gr) {
      for (int64_t gc = 0; gc < layout.grid_cols(); ++gc) {
        const int64_t bytes =
            16 + layout.TileRowsAt(gr) * layout.TileColsAt(gc) * 8;
        CUMULON_RETURN_IF_ERROR(
            store->PutMeta(input.name, TileId{gr, gc}, bytes, /*writer=*/-1));
      }
    }
    bindings.insert_or_assign(input.name, input);
  }
  return Lower(spec.program, bindings, lowering);
}

Result<PredictionResult> PredictProgram(const ProgramSpec& spec,
                                        const ClusterConfig& cluster,
                                        const PredictorOptions& options) {
  // Fresh simulated DFS sized to the candidate cluster, with the inputs'
  // tiles spread across it the way a load step would have left them.
  DfsOptions dfs_options;
  dfs_options.num_nodes = cluster.num_machines;
  dfs_options.replication = options.dfs_replication;
  dfs_options.seed = options.seed;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  if (options.metrics != nullptr) store.AttachMetrics(options.metrics);

  // One overlap setting drives the prediction run AND the tuner probes, so
  // the splits the tuner picks are optimal for the regime being predicted.
  SimEngineOptions sim_base = options.sim;
  if (options.prefetch_overlap_fraction >= 0.0) {
    sim_base.io_overlap_fraction = options.prefetch_overlap_fraction;
  }

  LoweringOptions lowering = options.lowering;
  // The plan's determinism contract records the predictor's seed, so the
  // simulated schedule and any later replay derive from the same stream.
  lowering.seed = options.seed;
  if (options.tune_mm_per_job) {
    // Per-operator optimization: choose every multiply's splits for this
    // cluster. The callback only sees grid extents, so reconstruct
    // uniform layouts at the configured tile size (edge raggedness does
    // not move the optimum).
    const int64_t tile = lowering.tile_dim;
    const TileOpCostModel cost = options.cost;
    const SimEngineOptions sim = sim_base;
    const double job_startup = options.job_startup_seconds;
    lowering.mm_params = [cluster, cost, sim, job_startup, tile](
                             int64_t gi, int64_t gj, int64_t gk) {
      TuneOptions tune;
      tune.sim = sim;
      // Probe simulations are what-if runs, not the predicted schedule;
      // keep them out of the trace and the metrics — and away from the
      // revocation controller, whose virtual-clock origin and fired-once
      // state must only advance with the predicted schedule itself.
      tune.sim.tracer = nullptr;
      tune.sim.metrics = nullptr;
      tune.sim.revocation = nullptr;
      tune.job_startup_seconds = job_startup;
      const TileLayout a(gi * tile, gk * tile, tile, tile);
      const TileLayout b(gk * tile, gj * tile, tile, tile);
      auto tuned = TuneMatMulParams(a, b, cluster, cost, tune);
      if (!tuned.ok()) {
        CUMULON_LOG(Warning) << "multiply tuning failed ("
                             << tuned.status().ToString()
                             << "); falling back to unit splits";
        return MatMulParams{1, 1, 0};
      }
      return tuned->params;
    };
  }

  CUMULON_ASSIGN_OR_RETURN(LoweredProgram lowered,
                           PrepareProgram(spec, &store, lowering));

  SimEngineOptions sim = sim_base;
  sim.noise_sigma = 0.0;  // the predictor is the noise-free simulation
  sim.replication = options.dfs_replication;
  if (options.tracer != nullptr) sim.tracer = options.tracer;
  if (options.metrics != nullptr) sim.metrics = options.metrics;
  SimEngine engine(cluster, sim);

  ExecutorOptions exec_options;
  exec_options.real_mode = false;
  exec_options.job_startup_seconds = options.job_startup_seconds;
  exec_options.memory_budget_bytes = options.memory_budget_bytes;
  if (options.tracer != nullptr) exec_options.tracer = options.tracer;
  if (options.metrics != nullptr) exec_options.metrics = options.metrics;
  Executor executor(&store, &engine, &options.cost, exec_options);

  PredictionResult result;
  CUMULON_ASSIGN_OR_RETURN(result.stats, executor.Run(lowered.plan));
  result.seconds = result.stats.total_seconds;
  // A transient fleet loses expected capacity to revocations and reruns the
  // killed work; charge the analytic rework term unless a controller is
  // injected — then the simulation above already replayed the actual losses
  // and inflating again would double-count them.
  if (sim.revocation == nullptr && cluster.machine.transient &&
      cluster.machine.revocation_hazard_per_hour > 0.0) {
    result.seconds *= ExpectedRevocationSlowdown(
        cluster.num_machines, cluster.num_machines,
        cluster.machine.revocation_hazard_per_hour, result.seconds);
  }
  result.dollars = ClusterDollarCost(cluster.machine, cluster.num_machines,
                                     result.seconds, options.billing);
  return result;
}

Result<AdmissionEstimate> EstimateForAdmission(
    const ProgramSpec& spec, const ClusterConfig& cluster,
    const PredictorOptions& options) {
  PredictorOptions quick = options;
  quick.tune_mm_per_job = false;
  quick.tracer = nullptr;
  quick.metrics = nullptr;
  // Admission estimates are what-if runs: never advance the injected
  // revocation controller's clock or fired-once state.
  quick.sim.revocation = nullptr;
  CUMULON_ASSIGN_OR_RETURN(PredictionResult prediction,
                           PredictProgram(spec, cluster, quick));
  AdmissionEstimate estimate;
  estimate.seconds = prediction.seconds;
  estimate.dollars = prediction.dollars;
  estimate.valid = true;
  return estimate;
}

}  // namespace cumulon
