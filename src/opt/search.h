#ifndef CUMULON_OPT_SEARCH_H_
#define CUMULON_OPT_SEARCH_H_

#include <string>
#include <vector>

#include "opt/predictor.h"

namespace cumulon {

/// The deployment-plan space the optimizer searches: machine type x
/// cluster size x slots per machine x multiply split parameters. Empty
/// vectors select sensible defaults (the whole machine catalog, powers of
/// two up to 64 machines, slots around the core count, a small split
/// portfolio).
struct SearchSpace {
  std::vector<std::string> machine_types;
  std::vector<int> cluster_sizes;
  std::vector<int> slots_per_machine;  // empty: {cores, 2*cores} per type
  std::vector<MatMulParams> mm_candidates;

  /// Tune every multiply's splits per candidate cluster via the job tuner
  /// (opt/job_tuner.h) instead of trying each global mm_candidates entry —
  /// finer-grained plans and one prediction per cluster configuration.
  bool use_job_tuner = false;
};

/// One evaluated deployment plan.
struct PlanPoint {
  ClusterConfig cluster;
  MatMulParams mm;
  double seconds = 0.0;
  double dollars = 0.0;

  std::string ToString() const;
};

/// Evaluates the full search space, keeping for each cluster configuration
/// the best multiply parameters (by predicted time). Results are sorted by
/// predicted time.
Result<std::vector<PlanPoint>> EnumeratePlans(const ProgramSpec& spec,
                                              const SearchSpace& space,
                                              const PredictorOptions& options);

/// The time/cost-undominated subset, sorted by time ascending (so cost is
/// descending). This is the trade-off curve the paper shows users.
std::vector<PlanPoint> ParetoFrontier(const std::vector<PlanPoint>& points);

/// Cheapest plan finishing within `deadline_seconds`; NotFound if none.
Result<PlanPoint> MinCostUnderDeadline(const std::vector<PlanPoint>& points,
                                       double deadline_seconds);

/// Fastest plan costing at most `budget_dollars`; NotFound if none.
Result<PlanPoint> MinTimeUnderBudget(const std::vector<PlanPoint>& points,
                                     double budget_dollars);

}  // namespace cumulon

#endif  // CUMULON_OPT_SEARCH_H_
