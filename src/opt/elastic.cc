#include "opt/elastic.h"

#include <algorithm>
#include <map>
#include <utility>

#include "cloud/revocation.h"
#include "common/strings.h"

namespace cumulon {

namespace {

ClusterConfig FleetCluster(const SpotWorkloadOptions& options, int machines) {
  ClusterConfig cluster;
  cluster.machine = options.machine;
  cluster.num_machines = std::max(machines, 1);
  cluster.slots_per_machine = options.slots_per_machine;
  return cluster;
}

}  // namespace

Result<SpotWorkloadResult> RunSpotWorkload(
    const std::vector<SpotSubmission>& submissions,
    const SpotWorkloadOptions& options) {
  SpotWorkloadResult result;

  ElasticProvisioner provisioner(options.policy, options.spot_discount,
                                 options.spot_hazard_per_hour,
                                 options.predictor.metrics);
  SpotPriceProcess price_process(options.seed);
  const MachineProfile spot_profile = SpotVariant(
      options.machine, options.spot_discount, options.spot_hazard_per_hour);

  FleetState fleet;
  fleet.machines = std::clamp(options.policy.min_machines, 1,
                              std::max(options.policy.max_machines, 1));
  fleet.spot_machines = 0;

  // Admission estimates depend only on (program, fleet size); arrivals of
  // the same program re-use them instead of re-simulating.
  std::map<std::pair<std::string, int>, AdmissionEstimate> estimate_cache;
  auto estimate = [&](const SpotSubmission& s,
                      int machines) -> Result<AdmissionEstimate> {
    const auto key = std::make_pair(s.name, machines);
    auto it = estimate_cache.find(key);
    if (it != estimate_cache.end()) return it->second;
    CUMULON_ASSIGN_OR_RETURN(
        AdmissionEstimate est,
        EstimateForAdmission(s.spec, FleetCluster(options, machines),
                             options.predictor));
    estimate_cache.emplace(key, est);
    return est;
  };

  double now = 0.0;
  uint64_t epoch = 0;
  for (const SpotSubmission& s : submissions) {
    now = std::max(now, s.arrival_seconds);
    SpotRunOutcome outcome;
    outcome.name = s.name;
    outcome.start_seconds = now;

    CUMULON_ASSIGN_OR_RETURN(AdmissionEstimate est,
                             estimate(s, fleet.machines));

    // Budget admission on the on-demand estimate: spot mixes only get
    // cheaper, so a submission that cannot afford on-demand time at the
    // estimated duration is rejected outright.
    if (s.budget_dollars > 0.0 && est.dollars > s.budget_dollars) {
      outcome.rejection = StrCat("estimated cost $", est.dollars,
                                 " exceeds budget $", s.budget_dollars);
      ++result.rejected;
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    // Deadline admission: the work must fit before the deadline even with
    // the policy's slack, on the current fleet.
    double max_slowdown = 10.0;
    if (s.deadline_seconds > 0.0) {
      const double remaining = s.deadline_seconds - now;
      const double needed = est.seconds * options.policy.deadline_slack;
      if (needed > remaining) {
        outcome.rejection =
            StrCat("estimated ", est.seconds, " s cannot meet deadline at t=",
                   s.deadline_seconds, " (", remaining, " s remain)");
        ++result.rejected;
        result.outcomes.push_back(std::move(outcome));
        continue;
      }
      max_slowdown = std::max(remaining / needed, 1.0);
    }

    // Re-plan the fleet against the queued work. Backlog is machine-seconds
    // of demand: the estimate's wall seconds across the fleet that produced
    // it.
    const double backlog = est.seconds * fleet.machines;
    FleetDecision decision =
        provisioner.Replan(fleet, backlog, est.seconds, max_slowdown);
    if (!options.allow_spot) decision.fleet.spot_machines = 0;
    if (decision.scaled_out) ++result.scale_outs;
    if (decision.scaled_in) ++result.scale_ins;
    fleet = decision.fleet;

    // The epoch's fault plan: every transient machine (the high indices)
    // draws its revocation instant from the hazard, on the controller's
    // virtual clock. The horizon generously covers the run so a slowed-down
    // epoch still sees its late losses.
    ++epoch;
    const double horizon = est.seconds * 4.0 + 3600.0;
    RevocationSchedule schedule = RevocationSchedule::Sample(
        options.seed + epoch * 0x9e3779b97f4a7c15ull, fleet.machines,
        options.spot_hazard_per_hour, horizon, fleet.on_demand_machines());
    RevocationController controller(schedule);

    // Replay the program with the fault plan injected: the simulated
    // schedule pays for every killed attempt's rework, so no analytic
    // slowdown term is applied on top.
    PredictorOptions run_options = options.predictor;
    run_options.sim.revocation = &controller;
    CUMULON_ASSIGN_OR_RETURN(
        PredictionResult run,
        PredictProgram(s.spec, FleetCluster(options, fleet.machines),
                       run_options));

    // Billing: on-demand machines pay list price for the whole epoch; spot
    // machines pay the epoch's market price, clipped at their revocation
    // instant.
    outcome.spot_price_multiplier = price_process.NextMultiplier();
    MachineProfile epoch_spot = spot_profile;
    epoch_spot.price_per_hour *= outcome.spot_price_multiplier;
    double dollars =
        ClusterDollarCost(options.machine, fleet.on_demand_machines(),
                          run.seconds, options.billing);
    for (int m = fleet.on_demand_machines(); m < fleet.machines; ++m) {
      dollars += MachineDollarCostWithRevocation(
          epoch_spot, run.seconds, schedule.RevokedAtSeconds(m),
          options.billing);
    }

    outcome.admitted = true;
    outcome.fleet = fleet;
    outcome.seconds = run.seconds;
    outcome.dollars = dollars;
    outcome.revocations = controller.fired_count();
    outcome.finish_seconds = now + run.seconds;
    outcome.deadline_met =
        s.deadline_seconds <= 0.0 || outcome.finish_seconds <= s.deadline_seconds;

    now = outcome.finish_seconds;
    ++result.admitted;
    result.total_dollars += dollars;
    result.revocations += outcome.revocations;
    if (!outcome.deadline_met) ++result.deadline_misses;
    result.makespan_seconds = std::max(result.makespan_seconds, now);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace cumulon
