#ifndef CUMULON_OPT_JOB_TUNER_H_
#define CUMULON_OPT_JOB_TUNER_H_

#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/sim_engine.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "exec/physical_job.h"

namespace cumulon {

/// Per-operator optimization: given one multiply's input layouts and a
/// cluster, pick the split parameters with the best simulated job time.
/// This is Cumulon's "physical operators and their parameters" choice,
/// separated from the provisioning search so both can be tested and
/// ablated independently.
struct TuneOptions {
  /// Candidate splits; empty selects a built-in portfolio covering block
  /// sizes and split-k depths.
  std::vector<MatMulParams> candidates;

  SimEngineOptions sim;
  double job_startup_seconds = 3.0;

  /// A task may use at most this fraction of its slot's share of machine
  /// memory (the rest is framework overhead). Candidates whose working
  /// set exceeds it are infeasible.
  double memory_fraction = 0.8;
};

/// Result of tuning one multiply.
struct TunedMatMul {
  MatMulParams params;
  double predicted_seconds = 0.0;
  int feasible_candidates = 0;
  int rejected_by_memory = 0;
  /// Candidates screened out by the split-arithmetic verifier
  /// (verify.split in src/verify) before any probe simulation ran.
  int rejected_by_verify = 0;
};

/// Evaluates the candidate portfolio for out = A * B on `cluster` and
/// returns the fastest memory-feasible choice. Fails if no candidate fits
/// in memory (the caller should choose smaller tiles or bigger machines —
/// exactly the coupling between storage and provisioning the paper
/// optimizes across).
Result<TunedMatMul> TuneMatMulParams(const TileLayout& a, const TileLayout& b,
                                     const ClusterConfig& cluster,
                                     const TileOpCostModel& cost,
                                     const TuneOptions& options);

/// The built-in candidate portfolio.
std::vector<MatMulParams> DefaultMatMulCandidates();

/// Memory available to one task: machine memory / slots, scaled by the
/// usable fraction.
double SlotMemoryBytes(const ClusterConfig& cluster, double memory_fraction);

}  // namespace cumulon

#endif  // CUMULON_OPT_JOB_TUNER_H_
