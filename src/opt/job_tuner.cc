#include "opt/job_tuner.h"

#include "common/strings.h"
#include "exec/physical_plan.h"
#include "verify/verify.h"

namespace cumulon {

std::vector<MatMulParams> DefaultMatMulCandidates() {
  return {
      MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}, MatMulParams{4, 4, 0},
      MatMulParams{2, 1, 0}, MatMulParams{1, 2, 0}, MatMulParams{1, 1, 1},
      MatMulParams{1, 1, 2}, MatMulParams{1, 1, 4}, MatMulParams{1, 1, 8},
      MatMulParams{2, 2, 8},
  };
}

double SlotMemoryBytes(const ClusterConfig& cluster, double memory_fraction) {
  return cluster.machine.memory_bytes() / cluster.slots_per_machine *
         memory_fraction;
}

Result<TunedMatMul> TuneMatMulParams(const TileLayout& a, const TileLayout& b,
                                     const ClusterConfig& cluster,
                                     const TileOpCostModel& cost,
                                     const TuneOptions& options) {
  if (a.cols() != b.rows() || a.tile_cols() != b.tile_rows()) {
    return Status::InvalidArgument(
        StrCat("tuner: incompatible layouts ", a.ToString(), " * ",
               b.ToString()));
  }
  const std::vector<MatMulParams> candidates =
      options.candidates.empty() ? DefaultMatMulCandidates()
                                 : options.candidates;
  const double slot_memory = SlotMemoryBytes(cluster, options.memory_fraction);

  SimEngineOptions sim = options.sim;
  sim.noise_sigma = 0.0;
  SimEngine engine(cluster, sim);

  BuildContext ctx;
  ctx.store = nullptr;
  ctx.cost = &cost;
  ctx.attach_work = false;
  ctx.query_locality = false;
  if (TileCacheGroup* caches = engine.tile_caches()) {
    // Tune against the same cache the target engine will run with, so split
    // choice accounts for cache-served re-reads.
    ctx.node_cache_bytes = caches->bytes_per_node();
    ctx.cache_nodes = cluster.num_machines;
  }

  const TiledMatrix ma{"$tune_a", a};
  const TiledMatrix mb{"$tune_b", b};
  const TiledMatrix mc{"$tune_c", TileLayout(a.rows(), b.cols(),
                                             a.tile_rows(), b.tile_cols())};

  TunedMatMul best;
  bool have_best = false;
  for (const MatMulParams& params : candidates) {
    // Split-arithmetic screening (verify.split): the candidate's blocks
    // must tile this multiply's (gi, gj, gk) grid before it is worth a
    // probe simulation — and before Build's blocking loops could hang on
    // a degenerate extent.
    if (!VerifyMatMulSplit(params, a.grid_rows(), b.grid_cols(),
                           a.grid_cols())
             .ok()) {
      ++best.rejected_by_verify;
      continue;
    }
    if (MatMulJob::TaskMemoryBytes(a, b, params) > slot_memory) {
      ++best.rejected_by_memory;
      continue;
    }
    PhysicalPlan plan;
    CUMULON_RETURN_IF_ERROR(AddMatMul(ma, mb, mc, params, {}, &plan));
    double total = 0.0;
    for (const auto& job : plan.jobs) {
      CUMULON_ASSIGN_OR_RETURN(BuiltJob built, job->Build(ctx));
      CUMULON_ASSIGN_OR_RETURN(JobStats stats, engine.RunJob(built.spec));
      total += stats.duration_seconds + options.job_startup_seconds;
    }
    ++best.feasible_candidates;
    if (!have_best || total < best.predicted_seconds) {
      best.params = params;
      best.predicted_seconds = total;
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::ResourceExhausted(
        StrCat("no multiply split fits in ", FormatBytes(
                   static_cast<int64_t>(slot_memory)),
               " of slot memory; use smaller tiles or bigger machines"));
  }
  return best;
}

}  // namespace cumulon
