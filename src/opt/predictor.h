#ifndef CUMULON_OPT_PREDICTOR_H_
#define CUMULON_OPT_PREDICTOR_H_

#include <vector>

#include "cloud/machine.h"
#include "cluster/cluster_config.h"
#include "cluster/sim_engine.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/lowering.h"
#include "sched/workload_manager.h"

namespace cumulon {

/// A program plus the shapes of its input matrices — everything the
/// optimizer needs to cost it without touching data.
struct ProgramSpec {
  Program program;
  std::vector<TiledMatrix> inputs;
};

/// Predicted execution of a program on a candidate deployment.
struct PredictionResult {
  double seconds = 0.0;
  double dollars = 0.0;
  PlanStats stats;
};

/// Everything about *how* to run, minus the cluster itself.
struct PredictorOptions {
  TileOpCostModel cost;
  LoweringOptions lowering;
  SimEngineOptions sim;
  double job_startup_seconds = 3.0;
  BillingPolicy billing;
  int dfs_replication = 3;
  uint64_t seed = 11;

  /// Tune each multiply's split parameters for the candidate cluster (via
  /// opt/job_tuner.h) instead of using lowering.mm_params / the default.
  /// Overrides lowering.mm_params when set.
  bool tune_mm_per_job = false;

  /// Fraction of the overlappable I/O window the target deployment's
  /// prefetch pipeline hides (SimEngineOptions::io_overlap_fraction;
  /// overrides sim.io_overlap_fraction when >= 0). Applied to both the
  /// prediction run and the tuner's probe simulations, so split choices
  /// reflect the pipelined regime: with overlap, IO-heavier splits stop
  /// being penalized for read time that compute hides. < 0 = keep
  /// sim.io_overlap_fraction as given.
  double prefetch_overlap_fraction = -1.0;

  /// Per-node memory budget of the target deployment (bytes; <= 0 =
  /// unbudgeted). The prediction's declared task costs then include the
  /// out-of-core streaming term (cost/cost_model.h StreamingRefetchBytes):
  /// tasks whose working set exceeds their pin share of the budget are
  /// charged the panel re-reads a streamed run would do, so predicted
  /// times show the stream-vs-resident crossover as the budget shrinks.
  int64_t memory_budget_bytes = 0;

  /// Records the simulated schedule as per-job/per-task spans on the
  /// virtual clock (the trace's total span equals the predicted time).
  /// Wired into both the sim engine and the executor; the tuner's probe
  /// simulations never trace. Borrowed; off when null.
  Tracer* tracer = nullptr;

  /// Destination of the dfs.*/engine.*/exec.* metrics of the prediction
  /// run. Borrowed; off when null (the executor still keeps its private
  /// registry for PlanStats::metrics).
  MetricsRegistry* metrics = nullptr;
};

/// Predicts the wall time and dollar cost of running `spec` on `cluster`:
/// registers the inputs' tile placement in a fresh simulated DFS, lowers
/// the program, and simulates its jobs — the paper's
/// benchmark-model-simulate pipeline as one call. Deterministic for a
/// fixed seed.
Result<PredictionResult> PredictProgram(const ProgramSpec& spec,
                                        const ClusterConfig& cluster,
                                        const PredictorOptions& options);

/// Registers `spec.inputs`' tile metadata into `store` (the placement a
/// load step would have left behind) and lowers the program against those
/// bindings. This is PredictProgram's front half, exposed so callers can
/// obtain the executable plan itself — e.g. to Submit it to a
/// WorkloadManager running against a shared store.
Result<LoweredProgram> PrepareProgram(const ProgramSpec& spec,
                                      TileStore* store,
                                      const LoweringOptions& lowering);

/// The predictor repackaged for WorkloadManager admission control: one
/// PredictProgram run with per-job tuning, tracing, and metrics forced off,
/// so concurrent Submit calls stay cheap and side-effect free.
Result<AdmissionEstimate> EstimateForAdmission(const ProgramSpec& spec,
                                               const ClusterConfig& cluster,
                                               const PredictorOptions& options);

}  // namespace cumulon

#endif  // CUMULON_OPT_PREDICTOR_H_
