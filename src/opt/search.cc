#include "opt/search.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "verify/verify.h"

namespace cumulon {

std::string PlanPoint::ToString() const {
  return StrCat(cluster.ToString(), " mm{", mm.ToString(), "} -> ",
                FormatDuration(seconds), ", ", FormatMoney(dollars));
}

namespace {

std::vector<MachineProfile> ResolveMachines(const SearchSpace& space) {
  std::vector<MachineProfile> machines;
  if (space.machine_types.empty()) {
    machines = MachineCatalog();
  } else {
    for (const std::string& name : space.machine_types) {
      auto machine = FindMachine(name);
      if (machine.ok()) machines.push_back(std::move(machine).value());
    }
  }
  return machines;
}

std::vector<int> ResolveClusterSizes(const SearchSpace& space) {
  if (!space.cluster_sizes.empty()) return space.cluster_sizes;
  return {1, 2, 4, 8, 16, 32, 64};
}

std::vector<int> ResolveSlots(const SearchSpace& space,
                              const MachineProfile& machine) {
  if (!space.slots_per_machine.empty()) return space.slots_per_machine;
  std::set<int> slots = {machine.cores, 2 * machine.cores};
  return std::vector<int>(slots.begin(), slots.end());
}

std::vector<MatMulParams> ResolveMmCandidates(const SearchSpace& space) {
  if (!space.mm_candidates.empty()) return space.mm_candidates;
  return {
      MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}, MatMulParams{4, 4, 0},
      MatMulParams{1, 1, 1}, MatMulParams{1, 1, 4}, MatMulParams{2, 2, 8},
  };
}

}  // namespace

Result<std::vector<PlanPoint>> EnumeratePlans(const ProgramSpec& spec,
                                              const SearchSpace& space,
                                              const PredictorOptions& options) {
  std::vector<PlanPoint> points;
  // Screen the split candidates before any prediction run: a malformed
  // candidate (bi/bj < 1, negative bk) would hang or miscover the tile
  // grid deep inside lowering. Grid extents are unknown at this shape-
  // generic stage, so only the grid-independent arithmetic applies;
  // job-level grids are re-checked by the tuner and the plan verifier.
  std::vector<MatMulParams> mm_candidates;
  for (const MatMulParams& mm : ResolveMmCandidates(space)) {
    const VerifyReport screened = VerifyMatMulSplit(mm);
    if (!screened.ok()) {
      CUMULON_CHECK(!VerifyChecksAreFatal())
          << "invalid MatMul split candidate: " << screened.ToString();
      continue;
    }
    mm_candidates.push_back(mm);
  }
  for (const MachineProfile& machine : ResolveMachines(space)) {
    for (int n : ResolveClusterSizes(space)) {
      for (int slots : ResolveSlots(space, machine)) {
        ClusterConfig cluster{machine, n, slots};
        bool have_best = false;
        PlanPoint best;
        if (space.use_job_tuner) {
          PredictorOptions opts = options;
          opts.tune_mm_per_job = true;
          CUMULON_ASSIGN_OR_RETURN(PredictionResult prediction,
                                   PredictProgram(spec, cluster, opts));
          // The tuner chooses per-job splits; record the sentinel params.
          best = PlanPoint{cluster, MatMulParams{0, 0, 0},
                           prediction.seconds, prediction.dollars};
          have_best = true;
        } else {
          for (const MatMulParams& mm : mm_candidates) {
            PredictorOptions opts = options;
            opts.lowering.mm_params = [mm](int64_t, int64_t, int64_t) {
              return mm;
            };
            CUMULON_ASSIGN_OR_RETURN(PredictionResult prediction,
                                     PredictProgram(spec, cluster, opts));
            if (!have_best || prediction.seconds < best.seconds) {
              best = PlanPoint{cluster, mm, prediction.seconds,
                               prediction.dollars};
              have_best = true;
            }
          }
        }
        if (have_best) points.push_back(best);
      }
    }
  }
  std::sort(points.begin(), points.end(),
            [](const PlanPoint& a, const PlanPoint& b) {
              return a.seconds < b.seconds;
            });
  return points;
}

std::vector<PlanPoint> ParetoFrontier(const std::vector<PlanPoint>& points) {
  std::vector<PlanPoint> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const PlanPoint& a, const PlanPoint& b) {
              if (a.seconds != b.seconds) return a.seconds < b.seconds;
              return a.dollars < b.dollars;
            });
  std::vector<PlanPoint> frontier;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const PlanPoint& p : sorted) {
    if (p.dollars < best_cost) {
      frontier.push_back(p);
      best_cost = p.dollars;
    }
  }
  return frontier;
}

Result<PlanPoint> MinCostUnderDeadline(const std::vector<PlanPoint>& points,
                                       double deadline_seconds) {
  bool found = false;
  PlanPoint best;
  for (const PlanPoint& p : points) {
    if (p.seconds > deadline_seconds) continue;
    if (!found || p.dollars < best.dollars ||
        (p.dollars == best.dollars && p.seconds < best.seconds)) {
      best = p;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound(
        StrCat("no plan meets deadline ", FormatDuration(deadline_seconds)));
  }
  return best;
}

Result<PlanPoint> MinTimeUnderBudget(const std::vector<PlanPoint>& points,
                                     double budget_dollars) {
  bool found = false;
  PlanPoint best;
  for (const PlanPoint& p : points) {
    if (p.dollars > budget_dollars) continue;
    if (!found || p.seconds < best.seconds) {
      best = p;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound(
        StrCat("no plan fits budget ", FormatMoney(budget_dollars)));
  }
  return best;
}

}  // namespace cumulon
