#ifndef CUMULON_OPT_ELASTIC_H_
#define CUMULON_OPT_ELASTIC_H_

#include <string>
#include <vector>

#include "cloud/machine.h"
#include "common/result.h"
#include "opt/predictor.h"
#include "sched/elastic.h"

namespace cumulon {

/// One program arriving at a workload with its service-level terms.
/// deadline_seconds and budget_dollars are absolute (workload clock /
/// whole-run dollars); 0 disables the respective constraint.
struct SpotSubmission {
  std::string name;
  ProgramSpec spec;
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
  double budget_dollars = 0.0;
};

/// Configuration of the elastic spot-provisioning workload runner.
struct SpotWorkloadOptions {
  /// On-demand machine profile the fleet is built from; transient machines
  /// are its SpotVariant under the terms below.
  MachineProfile machine;
  int slots_per_machine = 2;

  double spot_discount = kDefaultSpotDiscount;
  double spot_hazard_per_hour = kDefaultSpotHazardPerHour;

  /// Master switch: false pins every decision to all-on-demand (the static
  /// baseline the paper compares against).
  bool allow_spot = true;

  ElasticPolicy policy;
  BillingPolicy billing;
  PredictorOptions predictor;

  /// Seeds the per-epoch revocation schedules and the spot price process.
  /// Same seed, same arrivals, same options => bit-identical result.
  uint64_t seed = 19;
};

/// What happened to one submission.
struct SpotRunOutcome {
  std::string name;
  bool admitted = false;
  std::string rejection;       // admission failure reason when !admitted
  FleetState fleet;            // the fleet the epoch ran on
  double start_seconds = 0.0;  // workload clock
  double finish_seconds = 0.0;
  double seconds = 0.0;        // predicted run time, revocations included
  double dollars = 0.0;        // on-demand + revocation-clipped spot charges
  double spot_price_multiplier = 1.0;
  int revocations = 0;  // machines lost during the epoch
  bool deadline_met = true;
};

/// Whole-workload totals.
struct SpotWorkloadResult {
  std::vector<SpotRunOutcome> outcomes;
  double total_dollars = 0.0;
  double makespan_seconds = 0.0;  // workload clock at the last finish
  int admitted = 0;
  int rejected = 0;
  int deadline_misses = 0;
  int revocations = 0;
  int scale_outs = 0;
  int scale_ins = 0;
};

/// The online re-planning loop over a FIFO arrival sequence, in virtual
/// time: for each submission the runner estimates the work ahead, re-plans
/// the fleet (scale out under backlog, scale in when idle, spot machines
/// admitted while their expected revocation rework keeps them profitable
/// and inside the deadline's slowdown budget), samples a seeded revocation
/// schedule for the epoch, and replays the program through the predictor
/// with that schedule injected — so the dollars it reports pay for the
/// rework the losses actually caused, and spot machines are billed at the
/// epoch's market price only up to their revocation instant.
/// Deterministic in (submissions, options); no wall clocks, no real
/// execution.
Result<SpotWorkloadResult> RunSpotWorkload(
    const std::vector<SpotSubmission>& submissions,
    const SpotWorkloadOptions& options);

}  // namespace cumulon

#endif  // CUMULON_OPT_ELASTIC_H_
