#include "lang/interpreter.h"

#include "common/strings.h"

namespace cumulon {

Result<DenseMatrix> EvalExpr(const ExprPtr& expr,
                             const std::map<std::string, DenseMatrix>& env) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  switch (expr->kind()) {
    case ExprKind::kInput: {
      auto it = env.find(expr->input_name());
      if (it == env.end()) {
        return Status::NotFound(
            StrCat("unbound matrix '", expr->input_name(), "'"));
      }
      if (it->second.rows() != expr->rows() ||
          it->second.cols() != expr->cols()) {
        return Status::InvalidArgument(
            StrCat("matrix '", expr->input_name(), "' bound as ",
                   it->second.rows(), "x", it->second.cols(),
                   " but referenced as ", expr->rows(), "x", expr->cols()));
      }
      return it->second;
    }
    case ExprKind::kMatMul: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix left, EvalExpr(expr->left(), env));
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix right,
                               EvalExpr(expr->right(), env));
      return left.Multiply(right);
    }
    case ExprKind::kEwBinary: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix left, EvalExpr(expr->left(), env));
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix right,
                               EvalExpr(expr->right(), env));
      if (left.rows() == right.rows() && left.cols() == right.cols()) {
        return left.Binary(expr->bop(), right);
      }
      // Broadcast: one side is a row/column vector.
      const bool right_is_vector = right.rows() == 1 || right.cols() == 1;
      const DenseMatrix& full = right_is_vector ? left : right;
      const DenseMatrix& vec = right_is_vector ? right : left;
      const bool row_vector = vec.rows() == 1;
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix value,
                               full.Broadcast(expr->bop(), vec, row_vector));
      if (right_is_vector) return value;
      // Vector was the left operand: recompute with swapped semantics.
      DenseMatrix swapped(value.rows(), value.cols());
      for (int64_t r = 0; r < value.rows(); ++r) {
        for (int64_t c = 0; c < value.cols(); ++c) {
          const double v = row_vector ? vec.At(0, c) : vec.At(r, 0);
          swapped.Set(r, c, ApplyBinary(expr->bop(), v, full.At(r, c)));
        }
      }
      return swapped;
    }
    case ExprKind::kEwUnary: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix value, EvalExpr(expr->left(), env));
      return value.Unary(expr->uop(), expr->scalar());
    }
    case ExprKind::kTranspose: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix value, EvalExpr(expr->left(), env));
      return value.Transpose();
    }
    case ExprKind::kRowSums: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix value, EvalExpr(expr->left(), env));
      return value.RowSums();
    }
    case ExprKind::kColSums: {
      CUMULON_ASSIGN_OR_RETURN(DenseMatrix value, EvalExpr(expr->left(), env));
      return value.ColSums();
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<std::map<std::string, DenseMatrix>> EvalProgram(
    const Program& program, std::map<std::string, DenseMatrix> env) {
  for (const Assignment& a : program.assignments) {
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix value, EvalExpr(a.expr, env));
    env.insert_or_assign(a.target, std::move(value));
  }
  return env;
}

}  // namespace cumulon
