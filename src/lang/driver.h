#ifndef CUMULON_LANG_DRIVER_H_
#define CUMULON_LANG_DRIVER_H_

#include <functional>
#include <map>
#include <string>

#include "exec/executor.h"
#include "lang/lowering.h"

namespace cumulon {

/// State handed to the convergence predicate after each iteration. The
/// predicate typically captures the TileStore and uses LoadDense on a
/// binding to compute a residual.
struct IterationState {
  int iteration = 0;  // 0-based, just finished
  const std::map<std::string, TiledMatrix>* bindings = nullptr;
  const PlanStats* stats = nullptr;
};

struct IterativeRunOptions {
  LoweringOptions lowering;
  int max_iterations = 100;

  /// Called after each iteration with the updated bindings; return true to
  /// stop. Null = run exactly max_iterations.
  std::function<Result<bool>(const IterationState&)> converged;
};

/// Outcome of an iterative run.
struct IterativeRunResult {
  int iterations = 0;
  bool converged = false;  // predicate fired (vs max_iterations exhausted)
  std::map<std::string, TiledMatrix> bindings;  // final matrix bindings
  double total_seconds = 0.0;
};

/// Runs `body` repeatedly — the dynamic counterpart of Repeat()'s static
/// unrolling, for algorithms whose iteration count depends on the data
/// (the usual shape of the paper's statistical workloads). After each
/// iteration the body's outputs are rebound for the next one, and the
/// convergence predicate may inspect them (e.g. compute a residual with
/// LoadDense) to stop early.
Result<IterativeRunResult> RunIterative(
    const Program& body, std::map<std::string, TiledMatrix> bindings,
    Executor* executor, const IterativeRunOptions& options);

}  // namespace cumulon

#endif  // CUMULON_LANG_DRIVER_H_
