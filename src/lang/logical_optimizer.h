#ifndef CUMULON_LANG_LOGICAL_OPTIMIZER_H_
#define CUMULON_LANG_LOGICAL_OPTIMIZER_H_

#include "lang/expr.h"

namespace cumulon {

/// Total multiply flops (2mnk per product) an expression tree will execute,
/// ignoring element-wise work. Drives the chain-reordering decision.
double MatMulFlops(const ExprPtr& expr);

/// Database-style logical rewrites:
///  - eliminates double transposes (X^T^T -> X),
///  - reassociates maximal matrix-product chains with the classic O(n^3)
///    dynamic program to minimize total flops (a huge win for the skinny
///    chains in RSVD-like workloads).
/// Returns a new tree; the input is not modified.
ExprPtr OptimizeExpr(const ExprPtr& expr);

/// Applies OptimizeExpr to every assignment of a program.
Program OptimizeProgram(const Program& program);

}  // namespace cumulon

#endif  // CUMULON_LANG_LOGICAL_OPTIMIZER_H_
