#include "lang/programs.h"

namespace cumulon {

Program BuildRsvd1(const RsvdSpec& spec) {
  auto a = Expr::Input("A", spec.m, spec.n);
  auto omega = Expr::Input("Omega", spec.n, spec.l);
  Program p;
  // Written naively as ((A * A^T) * A) * Omega: evaluated literally this
  // materializes an m x m matrix; the chain optimizer reassociates it to
  // A * (A^T * (A * Omega)) which never exceeds skinny intermediates.
  p.Assign("Y", a * T(a) * a * omega);
  return p;
}

Program BuildGnmfIteration(const GnmfSpec& spec) {
  auto v = Expr::Input("V", spec.m, spec.n);
  auto w = Expr::Input("W", spec.m, spec.k);
  auto h = Expr::Input("H", spec.k, spec.n);
  Program p;
  // H <- H .* (W^T V) ./ (W^T W H)
  p.Assign("H", EMul(h, EDiv(T(w) * v, T(w) * w * h)));
  // W <- W .* (V H^T) ./ (W H H^T); references the H updated above.
  auto h_new = Expr::Input("H", spec.k, spec.n);
  p.Assign("W", EMul(w, EDiv(v * T(h_new), w * h_new * T(h_new))));
  return p;
}

Program BuildLinRegStep(const LinRegSpec& spec) {
  auto x = Expr::Input("X", spec.samples, spec.features);
  auto w = Expr::Input("w", spec.features, 1);
  auto y = Expr::Input("y", spec.samples, 1);
  Program p;
  // w <- w - alpha * X^T (X w - y)
  p.Assign("w", w - Scale(T(x) * (x * w - y), spec.alpha));
  return p;
}

Program BuildPageRankIteration(const PageRankSpec& spec) {
  auto m = Expr::Input("M", spec.n, spec.n);
  auto rank = Expr::Input("p", spec.n, 1);
  Program p;
  // p <- damping * M p + (1 - damping)/n; the scale and teleport terms
  // fuse into the multiply as element-wise epilogue steps.
  p.Assign("p", Expr::EwUnary(UnaryOp::kAddScalar,
                              Scale(m * rank, spec.damping),
                              (1.0 - spec.damping) / spec.n));
  return p;
}

Program BuildLogRegStep(const LogRegSpec& spec) {
  auto x = Expr::Input("X", spec.samples, spec.features);
  auto w = Expr::Input("w", spec.features, 1);
  auto y = Expr::Input("y", spec.samples, 1);
  Program p;
  // w <- w + alpha * X^T (y - sigmoid(X w)); the sigmoid and the
  // subtraction both fuse into the X w multiply.
  auto residual = y - Expr::EwUnary(UnaryOp::kSigmoid, x * w);
  p.Assign("w", w + Scale(T(x) * residual, spec.alpha));
  return p;
}

}  // namespace cumulon
