#ifndef CUMULON_LANG_PROGRAMS_H_
#define CUMULON_LANG_PROGRAMS_H_

#include <cstdint>

#include "lang/expr.h"

namespace cumulon {

/// Canonical matrix-analytics workloads of the kind the paper's evaluation
/// uses: a randomized-SVD building block, Gaussian non-negative matrix
/// factorization, and linear-regression gradient descent. Each builder
/// returns a straight-line Program; the caller binds the named inputs.

/// RSVD-1 (the paper's running example): one step of the randomized-SVD
/// power iteration, Y = A * A^T * A * Omega, with A m x n and Omega a
/// skinny n x l Gaussian sketch. Inputs: "A", "Omega". Output: "Y" (m x l).
/// The multiply chain is deliberately written left-to-right so the logical
/// optimizer's chain reordering has something to win.
struct RsvdSpec {
  int64_t m = 1 << 14;
  int64_t n = 1 << 12;
  int64_t l = 32;
};
Program BuildRsvd1(const RsvdSpec& spec);

/// One GNMF multiplicative-update iteration (factorizing V ~ W * H):
///   H <- H .* (W^T V) ./ (W^T W H)
///   W <- W .* (V H^T) ./ (W H H^T)
/// Inputs: "V" (m x n), "W" (m x k), "H" (k x n). Outputs: updated "H", "W".
struct GnmfSpec {
  int64_t m = 1 << 13;
  int64_t n = 1 << 12;
  int64_t k = 64;
};
Program BuildGnmfIteration(const GnmfSpec& spec);

/// One batch-gradient-descent step of least-squares linear regression:
///   w <- w - alpha * X^T (X w - y)
/// Inputs: "X" (s x d), "w" (d x 1), "y" (s x 1). Output: updated "w".
struct LinRegSpec {
  int64_t samples = 1 << 14;
  int64_t features = 1 << 10;
  double alpha = 1e-4;
};
Program BuildLinRegStep(const LinRegSpec& spec);

/// One PageRank power iteration with damping:
///   p <- damping * M p + (1 - damping) / n
/// Inputs: "M" (n x n column-stochastic link matrix), "p" (n x 1).
/// Output: updated "p". The teleport term fuses into the multiply job as
/// an element-wise epilogue.
struct PageRankSpec {
  int64_t n = 1 << 14;
  double damping = 0.85;
};
Program BuildPageRankIteration(const PageRankSpec& spec);

/// One batch-gradient-ascent step of logistic regression:
///   w <- w + alpha * X^T (y - sigmoid(X w))
/// Inputs: "X" (s x d), "w" (d x 1), "y" (s x 1, in {0,1}). Output:
/// updated "w". The sigmoid fuses into the X w multiply.
struct LogRegSpec {
  int64_t samples = 1 << 14;
  int64_t features = 1 << 10;
  double alpha = 1e-3;
};
Program BuildLogRegStep(const LogRegSpec& spec);

}  // namespace cumulon

#endif  // CUMULON_LANG_PROGRAMS_H_
