#include "lang/expr.h"

#include "common/strings.h"

namespace cumulon {

namespace {
// Expr's constructor is private; this helper mints instances.
struct ExprBuilder : Expr {};
}  // namespace

ExprPtr Expr::Input(std::string name, int64_t rows, int64_t cols) {
  CUMULON_CHECK_GT(rows, 0);
  CUMULON_CHECK_GT(cols, 0);
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kInput, rows, cols));
  e->input_name_ = std::move(name);
  return e;
}

ExprPtr Expr::MakeUncheckedForTest(ExprKind kind, int64_t rows, int64_t cols,
                                   ExprPtr left, ExprPtr right,
                                   std::string input_name) {
  auto e = std::shared_ptr<Expr>(new Expr(kind, rows, cols));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  e->input_name_ = std::move(input_name);
  return e;
}

void Expr::MutateLeftForTest(const ExprPtr& node, ExprPtr new_left) {
  // Tying a cycle makes the shared_ptr graph leak; mutation tests accept
  // that for the handful of nodes involved.
  const_cast<Expr*>(node.get())->left_ = std::move(new_left);
}

void Expr::MutateRightForTest(const ExprPtr& node, ExprPtr new_right) {
  const_cast<Expr*>(node.get())->right_ = std::move(new_right);
}

Result<ExprPtr> Expr::MatMul(ExprPtr a, ExprPtr b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("MatMul: null operand");
  }
  if (a->cols() != b->rows()) {
    return Status::InvalidArgument(
        StrCat("MatMul shape mismatch: ", a->rows(), "x", a->cols(), " * ",
               b->rows(), "x", b->cols()));
  }
  auto e = std::shared_ptr<Expr>(
      new Expr(ExprKind::kMatMul, a->rows(), b->cols()));
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return ExprPtr(e);
}

Result<ExprPtr> Expr::EwBinary(BinaryOp op, ExprPtr a, ExprPtr b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("EwBinary: null operand");
  }
  // Same shape, or one side a broadcastable 1 x cols / rows x 1 vector.
  const bool same = a->rows() == b->rows() && a->cols() == b->cols();
  const bool b_row_vec = b->rows() == 1 && b->cols() == a->cols();
  const bool b_col_vec = b->cols() == 1 && b->rows() == a->rows();
  const bool a_row_vec = a->rows() == 1 && a->cols() == b->cols();
  const bool a_col_vec = a->cols() == 1 && a->rows() == b->rows();
  if (!same && !b_row_vec && !b_col_vec && !a_row_vec && !a_col_vec) {
    return Status::InvalidArgument(
        StrCat("EwBinary shape mismatch: ", a->rows(), "x", a->cols(), " vs ",
               b->rows(), "x", b->cols()));
  }
  const int64_t rows = same || b_row_vec || b_col_vec ? a->rows() : b->rows();
  const int64_t cols = same || b_row_vec || b_col_vec ? a->cols() : b->cols();
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kEwBinary, rows, cols));
  e->bop_ = op;
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return ExprPtr(e);
}

ExprPtr Expr::EwUnary(UnaryOp op, ExprPtr a, double scalar) {
  CUMULON_CHECK(a != nullptr);
  auto e = std::shared_ptr<Expr>(
      new Expr(ExprKind::kEwUnary, a->rows(), a->cols()));
  e->uop_ = op;
  e->scalar_ = scalar;
  e->left_ = std::move(a);
  return e;
}

ExprPtr Expr::Transpose(ExprPtr a) {
  CUMULON_CHECK(a != nullptr);
  auto e = std::shared_ptr<Expr>(
      new Expr(ExprKind::kTranspose, a->cols(), a->rows()));
  e->left_ = std::move(a);
  return e;
}

ExprPtr Expr::RowSums(ExprPtr a) {
  CUMULON_CHECK(a != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kRowSums, a->rows(), 1));
  e->left_ = std::move(a);
  return e;
}

ExprPtr Expr::ColSums(ExprPtr a) {
  CUMULON_CHECK(a != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColSums, 1, a->cols()));
  e->left_ = std::move(a);
  return e;
}

ExprPtr Expr::SumAll(ExprPtr a) { return ColSums(RowSums(std::move(a))); }

bool Expr::ContainsMatMul() const {
  if (kind_ == ExprKind::kMatMul) return true;
  if (left_ != nullptr && left_->ContainsMatMul()) return true;
  if (right_ != nullptr && right_->ContainsMatMul()) return true;
  return false;
}

std::string Expr::DebugString() const {
  switch (kind_) {
    case ExprKind::kInput:
      return input_name_;
    case ExprKind::kMatMul:
      return StrCat("(", left_->DebugString(), " * ", right_->DebugString(),
                    ")");
    case ExprKind::kEwBinary:
      return StrCat("(", left_->DebugString(), " .", BinaryOpName(bop_), " ",
                    right_->DebugString(), ")");
    case ExprKind::kEwUnary:
      return StrCat(UnaryOpName(uop_), "(", left_->DebugString(), ", ",
                    scalar_, ")");
    case ExprKind::kTranspose:
      return StrCat(left_->DebugString(), "^T");
    case ExprKind::kRowSums:
      return StrCat("row_sums(", left_->DebugString(), ")");
    case ExprKind::kColSums:
      return StrCat("col_sums(", left_->DebugString(), ")");
  }
  return "?";
}

namespace {
ExprPtr CheckedBinary(BinaryOp op, const ExprPtr& a, const ExprPtr& b) {
  auto r = Expr::EwBinary(op, a, b);
  CUMULON_CHECK(r.ok()) << r.status();
  return std::move(r).value();
}
}  // namespace

ExprPtr operator*(const ExprPtr& a, const ExprPtr& b) {
  auto r = Expr::MatMul(a, b);
  CUMULON_CHECK(r.ok()) << r.status();
  return std::move(r).value();
}

ExprPtr operator+(const ExprPtr& a, const ExprPtr& b) {
  return CheckedBinary(BinaryOp::kAdd, a, b);
}

ExprPtr operator-(const ExprPtr& a, const ExprPtr& b) {
  return CheckedBinary(BinaryOp::kSub, a, b);
}

ExprPtr EMul(const ExprPtr& a, const ExprPtr& b) {
  return CheckedBinary(BinaryOp::kMul, a, b);
}

ExprPtr EDiv(const ExprPtr& a, const ExprPtr& b) {
  return CheckedBinary(BinaryOp::kDiv, a, b);
}

ExprPtr Scale(const ExprPtr& a, double s) {
  return Expr::EwUnary(UnaryOp::kScale, a, s);
}

ExprPtr T(const ExprPtr& a) { return Expr::Transpose(a); }

Program Repeat(const Program& body, int times) {
  CUMULON_CHECK_GE(times, 0);
  Program out;
  for (int i = 0; i < times; ++i) {
    for (const Assignment& a : body.assignments) {
      out.Assign(a.target, a.expr);
    }
  }
  return out;
}

std::string Program::DebugString() const {
  std::string out;
  for (const Assignment& a : assignments) {
    out += a.target;
    out += " := ";
    out += a.expr->DebugString();
    out += "\n";
  }
  return out;
}

}  // namespace cumulon
