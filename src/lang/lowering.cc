#include "lang/lowering.h"

#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "matrix/kernel_config.h"
#include "verify/verify.h"

namespace cumulon {

namespace {

/// An element-wise step whose binary operand is still an expression; the
/// operand is lowered to a matrix before the step becomes an exec EwStep.
struct RawStep {
  EwStep step;          // other_matrix filled in later for binary steps
  ExprPtr other;        // binary operand expression (null for unary)
};

class Lowerer {
 public:
  Lowerer(const std::map<std::string, TiledMatrix>& inputs,
          const LoweringOptions& options)
      : env_(inputs), options_(options) {
    // Caller bindings may carry versioned names minted by a previous
    // Lower() call (e.g. "x@v1" rebound by an iterative driver). Those
    // names are taken: a fresh target version must never collide with
    // them, or the new job would silently overwrite its own input.
    for (const auto& [target, matrix] : env_) taken_names_.insert(matrix.name);
  }

  Status LowerProgram(const Program& program) {
    for (const Assignment& a : program.assignments) {
      CUMULON_RETURN_IF_ERROR(LowerAssignment(a));
    }
    return Status::OK();
  }

  LoweredProgram Take() {
    LoweredProgram out;
    out.plan = std::move(plan_);
    out.outputs = std::move(outputs_);
    return out;
  }

 private:
  MatMulParams ChooseMatMulParams(const TileLayout& a, const TileLayout& b) {
    if (options_.mm_params) {
      return options_.mm_params(a.grid_rows(), b.grid_cols(), a.grid_cols());
    }
    return MatMulParams{1, 1, 0};
  }

  std::string FreshTempName() {
    return StrCat(options_.temp_prefix, "_", temp_counter_++);
  }

  /// Name for an assignment target. Versioned whenever the bare name is
  /// already bound (as an input or an earlier assignment), so a matrix
  /// name always denotes exactly one immutable value — required both for
  /// CSE key stability and to avoid read/write races within a job.
  std::string TargetMatrixName(const std::string& target) {
    int version = ++target_versions_[target];
    if (version == 1 && env_.find(target) == env_.end() &&
        taken_names_.count(target) == 0) {
      taken_names_.insert(target);
      return target;
    }
    std::string name = StrCat(target, "@v", version);
    while (taken_names_.count(name) > 0) {
      version = ++target_versions_[target];
      name = StrCat(target, "@v", version);
    }
    taken_names_.insert(name);
    return name;
  }

  Status LowerAssignment(const Assignment& a) {
    const std::string out_name = TargetMatrixName(a.target);
    CUMULON_ASSIGN_OR_RETURN(TiledMatrix out,
                             LowerInto(a.expr, out_name));
    // A superseded version produced by this program (never a caller-owned
    // input) is garbage once the plan finishes.
    auto previous = env_.find(a.target);
    if (previous != env_.end() &&
        produced_.count(previous->second.name) > 0) {
      plan_.temporaries.push_back(previous->second.name);
    }
    produced_.insert(out.name);
    env_.insert_or_assign(a.target, out);
    outputs_.insert_or_assign(a.target, out);
    return Status::OK();
  }

  /// Materializes `expr` as a matrix named `out_name` (creating whatever
  /// jobs that requires).
  Result<TiledMatrix> LowerInto(const ExprPtr& expr,
                                const std::string& out_name) {
    switch (expr->kind()) {
      case ExprKind::kInput: {
        // Aliasing an existing matrix: copy via an empty ew chain so the
        // target name really exists in the store.
        CUMULON_ASSIGN_OR_RETURN(TiledMatrix in, ResolveInput(expr));
        TiledMatrix out{out_name, in.layout};
        CUMULON_RETURN_IF_ERROR(AddEwChain(in, out, {}, &plan_,
                                           options_.ew_tiles_per_task));
        return out;
      }
      case ExprKind::kTranspose: {
        CUMULON_ASSIGN_OR_RETURN(TiledMatrix in, LowerValue(expr->left()));
        TiledMatrix out{out_name, in.layout.Transposed()};
        CUMULON_RETURN_IF_ERROR(AddTranspose(in, out, &plan_,
                                             options_.ew_tiles_per_task));
        return out;
      }
      case ExprKind::kMatMul:
        return LowerMultiply(expr, {}, out_name);
      case ExprKind::kEwUnary:
      case ExprKind::kEwBinary:
        return LowerEwSpine(expr, out_name);
      case ExprKind::kRowSums:
      case ExprKind::kColSums: {
        const AggKind kind = expr->kind() == ExprKind::kRowSums
                                 ? AggKind::kRowSums
                                 : AggKind::kColSums;
        CUMULON_ASSIGN_OR_RETURN(TiledMatrix in, LowerValue(expr->left()));
        TiledMatrix out{out_name, AggOutputLayout(in.layout, kind)};
        CUMULON_RETURN_IF_ERROR(AddAggregate(in, out, kind, {}, &plan_));
        return out;
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  /// Materializes `expr` as some matrix (fresh temp name unless it is
  /// already materialized, i.e. an input/earlier target, or an identical
  /// subexpression was lowered before — CSE).
  Result<TiledMatrix> LowerValue(const ExprPtr& expr) {
    if (expr->kind() == ExprKind::kInput) return ResolveInput(expr);
    std::string key;
    if (options_.enable_cse) {
      CUMULON_ASSIGN_OR_RETURN(key, ExprKey(expr));
      auto hit = cse_.find(key);
      if (hit != cse_.end()) return hit->second;
    }
    CUMULON_ASSIGN_OR_RETURN(TiledMatrix out,
                             LowerInto(expr, FreshTempName()));
    plan_.temporaries.push_back(out.name);
    if (options_.enable_cse) cse_.insert_or_assign(key, out);
    return out;
  }

  /// A canonical string for an expression with its inputs resolved to
  /// concrete matrix names, so two structurally identical subexpressions
  /// over the same matrix *versions* share one key. Resolution makes keys
  /// stable across reassignments (an old key keeps naming the old
  /// version's matrix, which still exists).
  Result<std::string> ExprKey(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kInput: {
        CUMULON_ASSIGN_OR_RETURN(TiledMatrix m, ResolveInput(expr));
        return StrCat("@", m.name);
      }
      case ExprKind::kMatMul: {
        CUMULON_ASSIGN_OR_RETURN(std::string l, ExprKey(expr->left()));
        CUMULON_ASSIGN_OR_RETURN(std::string r, ExprKey(expr->right()));
        return StrCat("(", l, "*", r, ")");
      }
      case ExprKind::kEwBinary: {
        CUMULON_ASSIGN_OR_RETURN(std::string l, ExprKey(expr->left()));
        CUMULON_ASSIGN_OR_RETURN(std::string r, ExprKey(expr->right()));
        return StrCat("(", l, " ", BinaryOpName(expr->bop()), " ", r, ")");
      }
      case ExprKind::kEwUnary: {
        CUMULON_ASSIGN_OR_RETURN(std::string l, ExprKey(expr->left()));
        return StrCat(UnaryOpName(expr->uop()), "[", expr->scalar(), "](", l,
                      ")");
      }
      case ExprKind::kTranspose: {
        CUMULON_ASSIGN_OR_RETURN(std::string l, ExprKey(expr->left()));
        return StrCat("T(", l, ")");
      }
      case ExprKind::kRowSums:
      case ExprKind::kColSums: {
        CUMULON_ASSIGN_OR_RETURN(std::string l, ExprKey(expr->left()));
        return StrCat(expr->kind() == ExprKind::kRowSums ? "rsum(" : "csum(",
                      l, ")");
      }
    }
    return Status::Internal("unhandled expression kind in ExprKey");
  }

  Result<TiledMatrix> ResolveInput(const ExprPtr& expr) {
    auto it = env_.find(expr->input_name());
    if (it == env_.end()) {
      return Status::NotFound(
          StrCat("unbound matrix '", expr->input_name(), "'"));
    }
    const TiledMatrix& m = it->second;
    if (m.layout.rows() != expr->rows() || m.layout.cols() != expr->cols()) {
      return Status::InvalidArgument(
          StrCat("matrix '", expr->input_name(), "' bound as ",
                 m.layout.ToString(), " but referenced as ", expr->rows(),
                 "x", expr->cols()));
    }
    return m;
  }

  /// Lowers a multiply with an already-collected epilogue into `out_name`.
  Result<TiledMatrix> LowerMultiply(const ExprPtr& mm,
                                    std::vector<EwStep> epilogue,
                                    const std::string& out_name) {
    CUMULON_ASSIGN_OR_RETURN(TiledMatrix a, LowerValue(mm->left()));
    CUMULON_ASSIGN_OR_RETURN(TiledMatrix b, LowerValue(mm->right()));
    if (!InnerAligned(a.layout, b.layout)) {
      return Status::InvalidArgument(
          StrCat("tile grids misaligned for multiply: ", a.layout.ToString(),
                 " * ", b.layout.ToString()));
    }
    TiledMatrix out{out_name,
                    TileLayout(a.layout.rows(), b.layout.cols(),
                               a.layout.tile_rows(), b.layout.tile_cols())};
    const MatMulParams params = ChooseMatMulParams(a.layout, b.layout);
    CUMULON_RETURN_IF_ERROR(
        AddMatMul(a, b, out, params, std::move(epilogue), &plan_));
    return out;
  }

  /// Lowers an expression whose root is element-wise: peels the chain of
  /// ew ops along its spine, fuses it into the producing multiply when
  /// possible, otherwise emits an EwChainJob.
  Result<TiledMatrix> LowerEwSpine(const ExprPtr& root,
                                   const std::string& out_name) {
    // Peel from the root down: raw[0] is applied first (closest to base).
    std::vector<RawStep> raw;
    ExprPtr node = root;
    while (true) {
      if (node->kind() == ExprKind::kEwUnary) {
        RawStep rs;
        rs.step = EwStep::Unary(node->uop(), node->scalar());
        raw.insert(raw.begin(), rs);
        node = node->left();
      } else if (node->kind() == ExprKind::kEwBinary) {
        // The spine must be a full-shaped side; when both sides are full,
        // continue into the one holding a multiply (enables fusion).
        auto is_full = [&](const ExprPtr& e) {
          return e->rows() == node->rows() && e->cols() == node->cols();
        };
        const bool left_full = is_full(node->left());
        const bool right_full = is_full(node->right());
        const bool spine_left =
            left_full && right_full
                ? (node->left()->ContainsMatMul() ||
                   !node->right()->ContainsMatMul())
                : left_full;
        RawStep rs;
        rs.other = spine_left ? node->right() : node->left();
        EwStep::Operand operand = EwStep::Operand::kFull;
        if (!is_full(rs.other)) {
          operand = rs.other->rows() == 1 ? EwStep::Operand::kRowVector
                                          : EwStep::Operand::kColVector;
        }
        rs.step = EwStep::Binary(node->bop(), /*other=*/"",
                                 /*swapped=*/!spine_left, operand);
        raw.insert(raw.begin(), rs);
        node = spine_left ? node->left() : node->right();
      } else {
        break;
      }
    }

    // Lower the binary operands and finalize the steps.
    std::vector<EwStep> steps;
    steps.reserve(raw.size());
    // Operands paired with their broadcast kind, for layout checks below.
    std::vector<std::pair<TiledMatrix, EwStep::Operand>> operands;
    for (RawStep& rs : raw) {
      if (rs.other != nullptr) {
        CUMULON_ASSIGN_OR_RETURN(TiledMatrix other, LowerValue(rs.other));
        rs.step.other_matrix = other.name;
        operands.emplace_back(std::move(other), rs.step.operand);
      }
      steps.push_back(rs.step);
    }

    // Fusion: the spine base is a multiply -> epilogue of that job.
    if (options_.enable_fusion && node->kind() == ExprKind::kMatMul) {
      CUMULON_ASSIGN_OR_RETURN(
          TiledMatrix out, LowerMultiply(node, std::move(steps), out_name));
      CUMULON_RETURN_IF_ERROR(CheckOperandLayouts(operands, out.layout));
      return out;
    }

    // Unfused: materialize the base, then one element-wise pass.
    CUMULON_ASSIGN_OR_RETURN(TiledMatrix base, LowerValue(node));
    TiledMatrix out{out_name, base.layout};
    CUMULON_RETURN_IF_ERROR(CheckOperandLayouts(operands, out.layout));
    CUMULON_RETURN_IF_ERROR(AddEwChain(base, out, std::move(steps), &plan_,
                                       options_.ew_tiles_per_task));
    return out;
  }

  Status CheckOperandLayouts(
      const std::vector<std::pair<TiledMatrix, EwStep::Operand>>& operands,
      const TileLayout& out_layout) {
    for (const auto& [m, operand] : operands) {
      TileLayout expected = out_layout;
      switch (operand) {
        case EwStep::Operand::kFull:
          break;
        case EwStep::Operand::kRowVector:
          expected = TileLayout(1, out_layout.cols(), 1,
                                out_layout.tile_cols());
          break;
        case EwStep::Operand::kColVector:
          expected = TileLayout(out_layout.rows(), 1,
                                out_layout.tile_rows(), 1);
          break;
      }
      if (!GridsAlign(m.layout, expected)) {
        return Status::InvalidArgument(
            StrCat("element-wise operand '", m.name, "' has layout ",
                   m.layout.ToString(), " but the step expects ",
                   expected.ToString(),
                   " (store inputs with a matching tile size)"));
      }
    }
    return Status::OK();
  }

  std::map<std::string, TiledMatrix> env_;
  const LoweringOptions& options_;
  PhysicalPlan plan_;
  std::map<std::string, TiledMatrix> outputs_;
  std::map<std::string, int> target_versions_;
  std::map<std::string, TiledMatrix> cse_;
  std::set<std::string> produced_;  // matrices created by this program
  /// Every matrix name this plan may not mint again: caller bindings
  /// (including versioned names from earlier Lower calls) plus names
  /// already assigned by TargetMatrixName.
  std::set<std::string> taken_names_;
  int temp_counter_ = 0;
};

}  // namespace

Result<LoweredProgram> Lower(const Program& program,
                             const std::map<std::string, TiledMatrix>& inputs,
                             const LoweringOptions& options) {
  Lowerer lowerer(inputs, options);
  CUMULON_RETURN_IF_ERROR(lowerer.LowerProgram(program));
  LoweredProgram lowered = lowerer.Take();

  // Stamp the determinism contract: the plan records the concrete reduce
  // mode (resolved against CUMULON_REDUCE now, at plan-build time), so a
  // replay under a different environment still folds identically.
  lowered.plan.determinism.recorded = true;
  lowered.plan.determinism.seed = options.seed;
  lowered.plan.determinism.reduce_mode =
      ResolveReduceMode(options.reduce_mode);

  // Post-lowering verification: lowering knows the exact resident set (the
  // caller's bindings), so this is the one edge where the dependency pass
  // can prove every consumed matrix exists. A failure here is a lowering
  // bug — fatal in debug builds, a typed verify.* error in release.
  PlanVerifyOptions verify_options;
  verify_options.check_external = true;
  for (const auto& [name, matrix] : inputs) {
    verify_options.external_matrices.insert(matrix.name);
  }
  verify_options.require_determinism = true;
  const Status verified = VerifyPlanStatus(lowered.plan, verify_options);
  if (!verified.ok()) {
    CUMULON_CHECK(!VerifyChecksAreFatal())
        << "lowering produced an invalid plan:\n"
        << verified.ToString() << "\n"
        << lowered.plan.DebugString();
    return verified;
  }
  return lowered;
}

}  // namespace cumulon
