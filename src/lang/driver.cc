#include "lang/driver.h"

#include "common/strings.h"
#include "lang/logical_optimizer.h"

namespace cumulon {

Result<IterativeRunResult> RunIterative(
    const Program& body, std::map<std::string, TiledMatrix> bindings,
    Executor* executor, const IterativeRunOptions& options) {
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }
  IterativeRunResult result;
  result.bindings = std::move(bindings);

  const Program optimized = OptimizeProgram(body);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    LoweringOptions lowering = options.lowering;
    // Distinct temp names per iteration: outputs of iteration i must not
    // collide with iteration i+1's temporaries before they are rebound.
    lowering.temp_prefix = StrCat(options.lowering.temp_prefix, "_it", iter);
    CUMULON_ASSIGN_OR_RETURN(LoweredProgram lowered,
                             Lower(optimized, result.bindings, lowering));
    CUMULON_ASSIGN_OR_RETURN(PlanStats stats, executor->Run(lowered.plan));
    result.total_seconds += stats.total_seconds;
    for (const auto& [target, matrix] : lowered.outputs) {
      result.bindings.insert_or_assign(target, matrix);
    }
    result.iterations = iter + 1;

    if (options.converged) {
      IterationState state;
      state.iteration = iter;
      state.bindings = &result.bindings;
      state.stats = &stats;
      CUMULON_ASSIGN_OR_RETURN(bool done, options.converged(state));
      if (done) {
        result.converged = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace cumulon
