#ifndef CUMULON_LANG_LOWERING_H_
#define CUMULON_LANG_LOWERING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "exec/physical_plan.h"
#include "lang/expr.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {

/// Knobs of logical-to-physical lowering. The multiply split parameters
/// are per-job physical knobs the deployment optimizer tunes; `mm_params`
/// lets it inject its choice per multiply shape.
struct LoweringOptions {
  /// Tile dimension for intermediate/output matrices. Program inputs carry
  /// their own layouts, which must be tile-compatible with this.
  int64_t tile_dim = 512;

  /// Fuse trailing element-wise operations into the multiply that feeds
  /// them (Cumulon's fused-operator optimization; ablation A1 turns this
  /// off to mimic one-job-per-op systems).
  bool enable_fusion = true;

  /// Tiles per task for element-wise / transpose / sum jobs.
  int64_t ew_tiles_per_task = 8;

  /// Reuse already-materialized subexpressions (e.g. the W^T shared by
  /// GNMF's numerator and denominator) instead of recomputing them.
  bool enable_cse = true;

  /// Chooses MatMul split parameters given the job's tile-grid extents
  /// (gi, gj, gk). Null = MatMulParams{1, 1, 0}.
  std::function<MatMulParams(int64_t, int64_t, int64_t)> mm_params;

  /// Prefix for generated intermediate matrix names.
  std::string temp_prefix = "tmp";

  /// Determinism contract stamped into the plan (PhysicalPlan::determinism)
  /// and enforced at admission by the verifier: the seed every randomized
  /// choice derives from, and the reduction order — resolved through
  /// ResolveReduceMode at lowering time so the plan records the concrete
  /// (ordered/fast) mode a replay must use, never kAuto.
  uint64_t seed = 11;
  ReduceMode reduce_mode = ReduceMode::kAuto;
};

/// Result of lowering: the executable plan plus, for every assignment
/// target, the tiled matrix it will be materialized as.
struct LoweredProgram {
  PhysicalPlan plan;
  std::map<std::string, TiledMatrix> outputs;
};

/// Lowers `program` to a physical plan. `inputs` binds every Expr::Input
/// name that is not produced by an earlier assignment to an existing tiled
/// matrix. Later assignments may reference earlier targets by name;
/// reassigning a name creates a new versioned matrix (iterative programs).
Result<LoweredProgram> Lower(const Program& program,
                             const std::map<std::string, TiledMatrix>& inputs,
                             const LoweringOptions& options);

}  // namespace cumulon

#endif  // CUMULON_LANG_LOWERING_H_
