#include "lang/logical_optimizer.h"

#include <functional>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "verify/verify.h"

namespace cumulon {

double MatMulFlops(const ExprPtr& expr) {
  if (expr == nullptr) return 0.0;
  double flops = 0.0;
  if (expr->kind() == ExprKind::kMatMul) {
    flops += 2.0 * static_cast<double>(expr->left()->rows()) *
             static_cast<double>(expr->left()->cols()) *
             static_cast<double>(expr->right()->cols());
  }
  flops += MatMulFlops(expr->left());
  flops += MatMulFlops(expr->right());
  return flops;
}

namespace {

/// Collects the maximal multiply chain rooted at `expr` into `factors`
/// (left to right). Non-multiply nodes are chain factors.
void FlattenChain(const ExprPtr& expr, std::vector<ExprPtr>* factors) {
  if (expr->kind() == ExprKind::kMatMul) {
    FlattenChain(expr->left(), factors);
    FlattenChain(expr->right(), factors);
  } else {
    factors->push_back(expr);
  }
}

/// Classic matrix-chain-order DP; returns the optimal product tree over
/// `factors` (each already optimized recursively).
ExprPtr RebuildChain(const std::vector<ExprPtr>& factors) {
  const int n = static_cast<int>(factors.size());
  CUMULON_CHECK_GE(n, 1);
  if (n == 1) return factors[0];

  // dims[i] = rows of factor i; dims[n] = cols of last factor.
  std::vector<double> dims(n + 1);
  for (int i = 0; i < n; ++i) dims[i] = static_cast<double>(factors[i]->rows());
  dims[n] = static_cast<double>(factors[n - 1]->cols());

  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<int>> split(n, std::vector<int>(n, 0));
  for (int len = 2; len <= n; ++len) {
    for (int i = 0; i + len - 1 < n; ++i) {
      const int j = i + len - 1;
      cost[i][j] = std::numeric_limits<double>::infinity();
      for (int k = i; k < j; ++k) {
        const double c =
            cost[i][k] + cost[k + 1][j] + dims[i] * dims[k + 1] * dims[j + 1];
        if (c < cost[i][j]) {
          cost[i][j] = c;
          split[i][j] = k;
        }
      }
    }
  }

  // Rebuild the tree following the split table.
  std::function<ExprPtr(int, int)> build = [&](int i, int j) -> ExprPtr {
    if (i == j) return factors[i];
    const int k = split[i][j];
    auto product = Expr::MatMul(build(i, k), build(k + 1, j));
    CUMULON_CHECK(product.ok()) << product.status();
    return std::move(product).value();
  };
  return build(0, n - 1);
}

}  // namespace

ExprPtr OptimizeExpr(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kInput:
      return expr;
    case ExprKind::kTranspose: {
      // X^T^T -> X (optimize below the double transpose).
      if (expr->left()->kind() == ExprKind::kTranspose) {
        return OptimizeExpr(expr->left()->left());
      }
      return Expr::Transpose(OptimizeExpr(expr->left()));
    }
    case ExprKind::kEwUnary:
      return Expr::EwUnary(expr->uop(), OptimizeExpr(expr->left()),
                           expr->scalar());
    case ExprKind::kRowSums:
      return Expr::RowSums(OptimizeExpr(expr->left()));
    case ExprKind::kColSums:
      return Expr::ColSums(OptimizeExpr(expr->left()));
    case ExprKind::kEwBinary: {
      auto rewritten = Expr::EwBinary(expr->bop(), OptimizeExpr(expr->left()),
                                      OptimizeExpr(expr->right()));
      CUMULON_CHECK(rewritten.ok()) << rewritten.status();
      return std::move(rewritten).value();
    }
    case ExprKind::kMatMul: {
      std::vector<ExprPtr> factors;
      FlattenChain(expr, &factors);
      for (auto& f : factors) f = OptimizeExpr(f);
      return RebuildChain(factors);
    }
  }
  return expr;
}

Program OptimizeProgram(const Program& program) {
  Program out;
  for (const Assignment& a : program.assignments) {
    out.Assign(a.target, OptimizeExpr(a.expr));
  }
  // Rewrite verification: the optimizer must preserve the logical IR's
  // invariants (shapes, acyclicity, CSE soundness). A violation is an
  // optimizer bug — fatal in debug builds; in release the sound fallback
  // is the unoptimized program (slower, never wrong).
  const Status verified = VerifyProgramStatus(out);
  if (!verified.ok()) {
    CUMULON_CHECK(!VerifyChecksAreFatal())
        << "logical optimizer produced invalid IR:\n"
        << verified.ToString();
    return program;
  }
  return out;
}

}  // namespace cumulon
