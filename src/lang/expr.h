#ifndef CUMULON_LANG_EXPR_H_
#define CUMULON_LANG_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "matrix/tile_ops.h"

namespace cumulon {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node kinds of the logical matrix algebra.
enum class ExprKind {
  kInput,
  kMatMul,
  kEwBinary,
  kEwUnary,
  kTranspose,
  kRowSums,  // rows x 1 fold
  kColSums,  // 1 x cols fold
};

/// An immutable logical expression over matrices. Users build programs from
/// these (directly or via the operator overloads below); the logical
/// optimizer rewrites them; Lower() turns them into physical job plans.
class Expr {
 public:
  /// A named matrix whose tiles already exist (a program input or the
  /// result of an earlier assignment).
  static ExprPtr Input(std::string name, int64_t rows, int64_t cols);

  /// Matrix product; inner dimensions must agree.
  static Result<ExprPtr> MatMul(ExprPtr a, ExprPtr b);

  /// Element-wise binary op; shapes must match.
  static Result<ExprPtr> EwBinary(BinaryOp op, ExprPtr a, ExprPtr b);

  /// Element-wise unary op with optional scalar parameter.
  static ExprPtr EwUnary(UnaryOp op, ExprPtr a, double scalar = 0.0);

  static ExprPtr Transpose(ExprPtr a);

  /// Row sums (rows x 1) / column sums (1 x cols) of a matrix.
  static ExprPtr RowSums(ExprPtr a);
  static ExprPtr ColSums(ExprPtr a);

  /// Sum of all entries, as a 1 x 1 matrix (column sums of the row sums).
  static ExprPtr SumAll(ExprPtr a);

  ExprKind kind() const { return kind_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  const std::string& input_name() const { return input_name_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  BinaryOp bop() const { return bop_; }
  UnaryOp uop() const { return uop_; }
  double scalar() const { return scalar_; }

  /// True if a kMatMul node appears anywhere below (or at) this node.
  bool ContainsMatMul() const;

  std::string DebugString() const;

  /// Test-only backdoor: mints a node with NO factory validation, so the
  /// verifier's mutation tests (tests/verify_test.cc) can build malformed
  /// IR — wrong shapes, missing operands — that the public factories
  /// refuse to construct. Never call outside tests.
  static ExprPtr MakeUncheckedForTest(ExprKind kind, int64_t rows,
                                      int64_t cols, ExprPtr left,
                                      ExprPtr right,
                                      std::string input_name = "");

  /// Test-only backdoor: rewrites a child edge of an existing node in
  /// place (the IR is otherwise immutable), letting mutation tests tie a
  /// cycle into the DAG. Never call outside tests.
  static void MutateLeftForTest(const ExprPtr& node, ExprPtr new_left);
  static void MutateRightForTest(const ExprPtr& node, ExprPtr new_right);

 private:
  Expr(ExprKind kind, int64_t rows, int64_t cols)
      : kind_(kind), rows_(rows), cols_(cols) {}

  ExprKind kind_;
  int64_t rows_;
  int64_t cols_;
  std::string input_name_;
  ExprPtr left_;
  ExprPtr right_;
  BinaryOp bop_ = BinaryOp::kAdd;
  UnaryOp uop_ = UnaryOp::kScale;
  double scalar_ = 0.0;
};

/// Ergonomic operators for building programs; these CHECK shape validity
/// (shape errors in a hand-written program are programmer errors).
ExprPtr operator*(const ExprPtr& a, const ExprPtr& b);   // matrix product
ExprPtr operator+(const ExprPtr& a, const ExprPtr& b);   // element-wise
ExprPtr operator-(const ExprPtr& a, const ExprPtr& b);   // element-wise
ExprPtr EMul(const ExprPtr& a, const ExprPtr& b);        // Hadamard
ExprPtr EDiv(const ExprPtr& a, const ExprPtr& b);        // element-wise /
ExprPtr Scale(const ExprPtr& a, double s);
ExprPtr T(const ExprPtr& a);                             // transpose

/// One statement of a program: target := expr. Targets become named
/// matrices and may be referenced by later assignments via Expr::Input.
struct Assignment {
  std::string target;
  ExprPtr expr;
};

/// A straight-line matrix program (iterative algorithms unroll their loop
/// bodies into repeated assignments, as the paper's workloads do).
struct Program {
  std::vector<Assignment> assignments;

  void Assign(std::string target, ExprPtr expr) {
    assignments.push_back({std::move(target), std::move(expr)});
  }

  std::string DebugString() const;
};

/// Unrolls an iterative algorithm: the body's assignments repeated `times`
/// times. Reassigned targets are versioned by lowering, so each iteration
/// reads the previous iteration's outputs (as the paper's iterative
/// workloads do).
Program Repeat(const Program& body, int times);

}  // namespace cumulon

#endif  // CUMULON_LANG_EXPR_H_
