#ifndef CUMULON_LANG_INTERPRETER_H_
#define CUMULON_LANG_INTERPRETER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "lang/expr.h"
#include "matrix/dense_matrix.h"

namespace cumulon {

/// Single-node reference semantics for the expression language: evaluates
/// an expression (or whole program) over dense matrices. This is the
/// ground truth the distributed engine is tested against — including the
/// randomized lowering fuzz — and a convenient way for users to sanity-
/// check a program on a small sample before deploying it.
Result<DenseMatrix> EvalExpr(const ExprPtr& expr,
                             const std::map<std::string, DenseMatrix>& env);

/// Runs every assignment in order; assignments update the environment (so
/// iterative programs chain) and the final bindings are returned.
Result<std::map<std::string, DenseMatrix>> EvalProgram(
    const Program& program, std::map<std::string, DenseMatrix> env);

}  // namespace cumulon

#endif  // CUMULON_LANG_INTERPRETER_H_
