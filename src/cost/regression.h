#ifndef CUMULON_COST_REGRESSION_H_
#define CUMULON_COST_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"

namespace cumulon {

/// An ordinary-least-squares fit y ~ b0 + b1*x1 + ... + bk*xk.
struct LinearFit {
  std::vector<double> coefficients;  // [intercept, b1, ..., bk]
  double r_squared = 0.0;

  double Predict(const std::vector<double>& features) const;
};

/// Fits by normal equations (the feature matrices here are tiny). Each row
/// of `features` is one observation (without the constant term, which is
/// added internally). Fails on mismatched sizes, too few observations, or
/// a singular system (collinear features).
Result<LinearFit> FitLeastSquares(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets);

/// The paper's benchmarking+modeling step in full: run the tile kernels
/// over a sweep of sizes and fit linear time models
///     t_gemm ~ b0 + b1 * flops
///     t_ew   ~ b0 + b1 * elements
///     t_tr   ~ b0 + b1 * elements
/// The intercepts capture per-invocation overhead; the slopes capture
/// throughput. Unlike the single-point Calibrate() probe, this exposes
/// model quality (R^2) and a principled per-tile overhead estimate.
struct RegressionCalibrationOptions {
  std::vector<int64_t> gemm_dims = {48, 64, 96, 128, 160};
  std::vector<int64_t> ew_dims = {64, 128, 256, 384, 512};
  int repetitions = 3;  // best-of-n per point
};

struct RegressionCalibration {
  LinearFit gemm;         // host seconds ~ flops
  LinearFit elementwise;  // host seconds ~ elements
  LinearFit transpose;    // host seconds ~ elements

  /// Host throughputs implied by the slopes.
  double gemm_gflops() const;
  double ew_gelems() const;
  double transpose_gelems() const;

  /// Reference-normalized cost model (see TileOpCostModel): ratios from
  /// the slopes, per-tile overhead from the intercepts.
  TileOpCostModel ToCostModel() const;
};

Result<RegressionCalibration> CalibrateByRegression(
    const RegressionCalibrationOptions& options);

}  // namespace cumulon

#endif  // CUMULON_COST_REGRESSION_H_
