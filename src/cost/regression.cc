#include "cost/regression.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"

namespace cumulon {

double LinearFit::Predict(const std::vector<double>& features) const {
  CUMULON_CHECK_EQ(features.size() + 1, coefficients.size());
  double y = coefficients[0];
  for (size_t i = 0; i < features.size(); ++i) {
    y += coefficients[i + 1] * features[i];
  }
  return y;
}

namespace {

/// Solves the square system a * x = b in place by Gaussian elimination
/// with partial pivoting. Returns false if (numerically) singular.
bool SolveInPlace(std::vector<std::vector<double>>* a,
                  std::vector<double>* b) {
  const int n = static_cast<int>(b->size());
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int row = col + 1; row < n; ++row) {
      if (std::abs((*a)[row][col]) > std::abs((*a)[pivot][col])) pivot = row;
    }
    if (std::abs((*a)[pivot][col]) < 1e-12) return false;
    std::swap((*a)[col], (*a)[pivot]);
    std::swap((*b)[col], (*b)[pivot]);
    for (int row = col + 1; row < n; ++row) {
      const double factor = (*a)[row][col] / (*a)[col][col];
      for (int k = col; k < n; ++k) (*a)[row][k] -= factor * (*a)[col][k];
      (*b)[row] -= factor * (*b)[col];
    }
  }
  for (int col = n - 1; col >= 0; --col) {
    for (int row = 0; row < col; ++row) {
      (*b)[row] -= (*a)[row][col] / (*a)[col][col] * (*b)[col];
      (*a)[row][col] = 0.0;
    }
    (*b)[col] /= (*a)[col][col];
  }
  return true;
}

}  // namespace

Result<LinearFit> FitLeastSquares(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets) {
  if (features.size() != targets.size()) {
    return Status::InvalidArgument("features/targets size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("no observations");
  }
  const size_t k = features[0].size() + 1;  // + intercept
  if (features.size() < k) {
    return Status::InvalidArgument(
        StrCat("need at least ", k, " observations for ", k, " parameters"));
  }
  for (const auto& row : features) {
    if (row.size() + 1 != k) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }

  // Normal equations: (X^T X) beta = X^T y with X = [1 | features].
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (size_t obs = 0; obs < features.size(); ++obs) {
    std::vector<double> x(k);
    x[0] = 1.0;
    for (size_t i = 1; i < k; ++i) x[i] = features[obs][i - 1];
    for (size_t i = 0; i < k; ++i) {
      xty[i] += x[i] * targets[obs];
      for (size_t j = 0; j < k; ++j) xtx[i][j] += x[i] * x[j];
    }
  }
  if (!SolveInPlace(&xtx, &xty)) {
    return Status::FailedPrecondition(
        "singular normal equations (collinear features)");
  }

  LinearFit fit;
  fit.coefficients = std::move(xty);

  // R^2 against the mean model.
  double mean = 0.0;
  for (double y : targets) mean += y;
  mean /= targets.size();
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t obs = 0; obs < features.size(); ++obs) {
    const double predicted = fit.Predict(features[obs]);
    ss_res += (targets[obs] - predicted) * (targets[obs] - predicted);
    ss_tot += (targets[obs] - mean) * (targets[obs] - mean);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

namespace {

double BestOfN(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    body();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

}  // namespace

double RegressionCalibration::gemm_gflops() const {
  return 1.0 / (gemm.coefficients[1] * 1e9);
}
double RegressionCalibration::ew_gelems() const {
  return 1.0 / (elementwise.coefficients[1] * 1e9);
}
double RegressionCalibration::transpose_gelems() const {
  return 1.0 / (transpose.coefficients[1] * 1e9);
}

TileOpCostModel RegressionCalibration::ToCostModel() const {
  TileOpCostModel model;
  const double host_gflops = gemm_gflops();
  model.ew_gelems_per_sec = ew_gelems() / host_gflops;
  model.transpose_gelems_per_sec = transpose_gelems() / host_gflops;
  // Host-seconds intercepts scale to reference seconds by the host speed.
  const double overhead_host =
      std::max({gemm.coefficients[0], elementwise.coefficients[0], 0.0});
  model.per_tile_overhead_seconds = overhead_host * host_gflops;
  return model;
}

Result<RegressionCalibration> CalibrateByRegression(
    const RegressionCalibrationOptions& options) {
  if (options.gemm_dims.size() < 2 || options.ew_dims.size() < 2 ||
      options.repetitions < 1) {
    return Status::InvalidArgument(
        "regression calibration needs >=2 sizes per kernel and reps>=1");
  }
  Rng rng(77);
  RegressionCalibration result;

  {
    std::vector<std::vector<double>> features;
    std::vector<double> targets;
    for (int64_t d : options.gemm_dims) {
      Tile a(d, d), b(d, d), c(d, d);
      FillGaussian(&a, &rng);
      FillGaussian(&b, &rng);
      // Repeat the kernel enough to rise above timer noise at small d.
      const int inner = static_cast<int>(std::max<int64_t>(
          1, (options.gemm_dims.back() * options.gemm_dims.back() *
              options.gemm_dims.back()) /
                 (d * d * d)));
      const double t = BestOfN(options.repetitions, [&] {
        for (int i = 0; i < inner; ++i) {
          Status st = Gemm(a, b, 1.0, 0.0, &c);
          CUMULON_CHECK(st.ok()) << st;
        }
      });
      features.push_back({2.0 * d * d * d});
      targets.push_back(t / inner);
    }
    CUMULON_ASSIGN_OR_RETURN(result.gemm,
                             FitLeastSquares(features, targets));
  }

  auto fit_elementwise = [&](bool transpose_kernel) -> Result<LinearFit> {
    std::vector<std::vector<double>> features;
    std::vector<double> targets;
    for (int64_t d : options.ew_dims) {
      Tile a(d, d), c(d, d);
      FillGaussian(&a, &rng);
      const int64_t max_d = options.ew_dims.back();
      const int inner = static_cast<int>(
          std::max<int64_t>(4, (max_d * max_d) / (d * d) * 4));
      const double t = BestOfN(options.repetitions, [&] {
        for (int i = 0; i < inner; ++i) {
          Status st = transpose_kernel
                          ? TransposeTile(a, &c)
                          : EwUnary(UnaryOp::kScale, a, 1.5, &c);
          CUMULON_CHECK(st.ok()) << st;
        }
      });
      features.push_back({static_cast<double>(d) * d});
      targets.push_back(t / inner);
    }
    return FitLeastSquares(features, targets);
  };
  CUMULON_ASSIGN_OR_RETURN(result.elementwise, fit_elementwise(false));
  CUMULON_ASSIGN_OR_RETURN(result.transpose, fit_elementwise(true));

  if (result.gemm.coefficients[1] <= 0.0 ||
      result.elementwise.coefficients[1] <= 0.0 ||
      result.transpose.coefficients[1] <= 0.0) {
    return Status::Internal("regression produced a non-positive slope");
  }
  return result;
}

}  // namespace cumulon
