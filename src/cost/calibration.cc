#include "cost/calibration.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"

namespace cumulon {

TileOpCostModel CalibrationResult::ToCostModel() const {
  TileOpCostModel model;
  if (gemm_gflops > 0.0) {
    // The reference machine does 1 GFLOP/s of GEMM; scale the measured
    // element-wise/transpose rates by the same factor so their *ratios* to
    // GEMM match this host.
    model.ew_gelems_per_sec = ew_gelems / gemm_gflops;
    model.transpose_gelems_per_sec = transpose_gelems / gemm_gflops;
  }
  return model;
}

MachineProfile CalibrationResult::ToHostProfile(int cores) const {
  MachineProfile profile;
  profile.name = "host";
  profile.cores = std::max(cores, 1);
  profile.cpu_gflops = gemm_gflops;
  // The in-memory store used during real execution has no IO cost; make
  // the modeled IO terms negligible rather than zero to avoid div-by-zero.
  profile.disk_mbps = 1e9;
  profile.net_mbps = 1e9;
  profile.price_per_hour = 0.0;
  return profile;
}

Result<CalibrationResult> Calibrate(const CalibrationOptions& options) {
  if (options.tile_dim < 16 || options.repetitions < 1) {
    return Status::InvalidArgument("calibration needs tile_dim>=16, reps>=1");
  }
  const int64_t d = options.tile_dim;
  Rng rng(123);
  Tile a(d, d), b(d, d), c(d, d);
  FillGaussian(&a, &rng);
  FillGaussian(&b, &rng);

  CalibrationResult result;
  // Record what actually runs after dispatch, so callers persisting the
  // result can tell a SIMD calibration from a scalar one.
  const KernelMode mode = options.kernel_mode;
  result.kernel =
      ResolveKernelMode(mode) == KernelMode::kSimd ? "simd" : "scalar";

  // GEMM probe: best-of-n 2d^3-flop multiplies.
  double best = 1e30;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    Stopwatch sw;
    CUMULON_RETURN_IF_ERROR(GemmWithMode(mode, a, b, 1.0, 0.0, &c));
    best = std::min(best, sw.ElapsedSeconds());
  }
  result.gemm_gflops = 2.0 * d * d * d / best / 1e9;

  // Element-wise probe: repeat to get above timer resolution.
  const int ew_iters = 32;
  best = 1e30;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    Stopwatch sw;
    for (int i = 0; i < ew_iters; ++i) {
      CUMULON_RETURN_IF_ERROR(
          EwBinaryWithMode(mode, BinaryOp::kAdd, a, b, &c));
    }
    best = std::min(best, sw.ElapsedSeconds());
  }
  result.ew_gelems = static_cast<double>(d) * d * ew_iters / best / 1e9;

  // Transpose probe.
  best = 1e30;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    Stopwatch sw;
    for (int i = 0; i < ew_iters; ++i) {
      CUMULON_RETURN_IF_ERROR(TransposeTile(a, &c));
    }
    best = std::min(best, sw.ElapsedSeconds());
  }
  result.transpose_gelems =
      static_cast<double>(d) * d * ew_iters / best / 1e9;

  return result;
}

}  // namespace cumulon
