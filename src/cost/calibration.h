#ifndef CUMULON_COST_CALIBRATION_H_
#define CUMULON_COST_CALIBRATION_H_

#include <string>

#include "cloud/machine.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "matrix/kernel_config.h"

namespace cumulon {

/// Measured kernel throughputs of the host this process runs on.
struct CalibrationResult {
  double gemm_gflops = 0.0;       // achieved dense-GEMM GFLOP/s
  double ew_gelems = 0.0;         // element-wise Gelem/s
  double transpose_gelems = 0.0;  // transpose Gelem/s

  /// Kernel implementation the probes actually ran ("scalar" or "simd",
  /// after dispatch resolution), so a stored calibration is only reused
  /// for executions running the same kernel: the packed SIMD GEMM is
  /// several times faster than the oracle, and a flops term calibrated on
  /// one badly mispredicts the other.
  std::string kernel = "scalar";

  /// Cost model with ratios normalized to the reference machine.
  TileOpCostModel ToCostModel() const;

  /// A MachineProfile describing this host (one core per worker thread,
  /// cpu_gflops = measured), so SimEngine predictions can be compared
  /// against RealEngine wall clock (experiment E4). Disk/net bandwidths are
  /// set very high: the real engine's in-memory tile store has no IO cost.
  MachineProfile ToHostProfile(int cores) const;
};

struct CalibrationOptions {
  int64_t tile_dim = 256;  // tile size used by the probes
  int repetitions = 3;     // best-of-n to reduce scheduling noise

  /// Kernel implementation to probe. Calibrate with the same mode the
  /// executor will run (ExecutorOptions::kernel_mode) so the cost model's
  /// flops term reflects the dispatched kernel, not the oracle.
  KernelMode kernel_mode = KernelMode::kAuto;
};

/// Runs the paper's "benchmarking" step: times the tile kernels on this
/// host and returns their achieved throughputs.
Result<CalibrationResult> Calibrate(const CalibrationOptions& options);

}  // namespace cumulon

#endif  // CUMULON_COST_CALIBRATION_H_
