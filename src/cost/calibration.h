#ifndef CUMULON_COST_CALIBRATION_H_
#define CUMULON_COST_CALIBRATION_H_

#include "cloud/machine.h"
#include "common/result.h"
#include "cost/cost_model.h"

namespace cumulon {

/// Measured kernel throughputs of the host this process runs on.
struct CalibrationResult {
  double gemm_gflops = 0.0;       // achieved dense-GEMM GFLOP/s
  double ew_gelems = 0.0;         // element-wise Gelem/s
  double transpose_gelems = 0.0;  // transpose Gelem/s

  /// Cost model with ratios normalized to the reference machine.
  TileOpCostModel ToCostModel() const;

  /// A MachineProfile describing this host (one core per worker thread,
  /// cpu_gflops = measured), so SimEngine predictions can be compared
  /// against RealEngine wall clock (experiment E4). Disk/net bandwidths are
  /// set very high: the real engine's in-memory tile store has no IO cost.
  MachineProfile ToHostProfile(int cores) const;
};

struct CalibrationOptions {
  int64_t tile_dim = 256;  // tile size used by the probes
  int repetitions = 3;     // best-of-n to reduce scheduling noise
};

/// Runs the paper's "benchmarking" step: times the tile kernels on this
/// host and returns their achieved throughputs.
Result<CalibrationResult> Calibrate(const CalibrationOptions& options);

}  // namespace cumulon

#endif  // CUMULON_COST_CALIBRATION_H_
