#ifndef CUMULON_COST_COST_MODEL_H_
#define CUMULON_COST_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace cumulon {

/// Combined time of a task's compute and DFS-read phases when an
/// asynchronous prefetcher overlaps them. `overlap_fraction` in [0, 1] is
/// the fraction of the overlappable window the pipeline actually hides:
/// 0 models fully serial execution (cpu + read, the pre-prefetch engines),
/// 1 a perfect double-buffered pipeline (max(cpu, read)). Startup and
/// write-back are not overlappable and stay outside this term.
inline double PipelinedPhaseSeconds(double cpu_seconds, double read_seconds,
                                    double overlap_fraction) {
  const double f = std::clamp(overlap_fraction, 0.0, 1.0);
  return cpu_seconds + read_seconds -
         f * std::min(cpu_seconds, read_seconds);
}

/// Of `read_seconds`, the part that still blocks the task's compute under
/// the same overlap model — the task's modeled IO stall.
inline double ResidualStallSeconds(double cpu_seconds, double read_seconds,
                                   double overlap_fraction) {
  const double f = std::clamp(overlap_fraction, 0.0, 1.0);
  return read_seconds - f * std::min(cpu_seconds, read_seconds);
}

/// Expected number of transient machines (out of `transient_machines`, each
/// carrying `hazard_per_hour` exponential revocation risk) lost within a
/// `seconds`-long window: n * (1 - exp(-lambda * T)). Each machine is
/// revoked at most once, hence the survival form rather than n*lambda*T.
inline double ExpectedRevocations(int transient_machines,
                                  double hazard_per_hour, double seconds) {
  if (transient_machines <= 0 || hazard_per_hour <= 0.0 || seconds <= 0.0) {
    return 0.0;
  }
  const double lambda_t = hazard_per_hour / 3600.0 * seconds;
  return transient_machines * (1.0 - std::exp(-lambda_t));
}

/// Multiplicative slowdown the optimizer charges a plan for running on a
/// fleet where `transient_machines` of `total_machines` may be revoked:
/// each expected loss removes a machine's share of the fleet's capacity
/// for (on average) the remaining half of the window, plus the rework of
/// the in-flight tasks the loss killed — folded together as a lost-capacity
/// fraction E[losses] * 0.5 / total. The estimate is deliberately coarse
/// (the re-planning loop replays the actual seeded schedule for precise
/// numbers); clamps keep it finite when the fleet is mostly transient and
/// the hazard extreme.
inline double ExpectedRevocationSlowdown(int total_machines,
                                         int transient_machines,
                                         double hazard_per_hour,
                                         double seconds) {
  if (total_machines <= 0) return 1.0;
  const double expected =
      ExpectedRevocations(transient_machines, hazard_per_hour, seconds);
  if (expected <= 0.0) return 1.0;
  const double lost_fraction =
      std::min(expected * 0.5 / total_machines, 0.9);
  return std::min(1.0 / (1.0 - lost_fraction), 10.0);
}

/// Declared extra DFS reads of a task streaming its working set through a
/// per-task pin budget (out-of-core execution, exec/memory_budget.h): when
/// `working_set_bytes` exceeds `pin_budget_bytes`, the LRU panel window
/// keeps only the budgeted fraction resident, so the spilled fraction of
/// each reused operand is re-fetched on every reuse after the first.
/// `reused_bytes` is the operand's one-fetch footprint and `reuse_count`
/// how many times the task's compute order touches it. Zero when the
/// working set fits — the stream-vs-resident crossover is exactly
/// working_set_bytes == pin_budget_bytes, below which the optimizer should
/// prefer plans with smaller task working sets over paying refetch reads.
inline double StreamingRefetchBytes(int64_t reused_bytes, double reuse_count,
                                    int64_t working_set_bytes,
                                    int64_t pin_budget_bytes) {
  if (pin_budget_bytes <= 0 || working_set_bytes <= pin_budget_bytes) {
    return 0.0;
  }
  const double spilled_fraction =
      1.0 - static_cast<double>(pin_budget_bytes) / working_set_bytes;
  return static_cast<double>(reused_bytes) *
         std::max(0.0, reuse_count - 1.0) * spilled_fraction;
}

/// Per-tile-operation time models, expressed in seconds on the *reference
/// machine*, which by definition sustains 1.0 effective GFLOP/s of dense
/// GEMM per core. Element-wise and transpose throughputs are ratios
/// relative to that, because those ratios are hardware properties the
/// paper's benchmarking step measures; Calibrate() (calibration.h) fits
/// them on the host.
///
/// MachineProfile::cpu_gflops then scales reference seconds to any machine
/// type: seconds_on_m = seconds_ref / m.cpu_gflops.
struct TileOpCostModel {
  /// Effective element-wise throughput of the reference machine, in
  /// billions of elements/second (one read+op+write stream).
  double ew_gelems_per_sec = 0.25;

  /// Effective transpose throughput (strided access is slower than
  /// streaming), billions of elements/second.
  double transpose_gelems_per_sec = 0.15;

  /// Fixed CPU cost per tile-level kernel invocation (dispatch, pointer
  /// setup). Dominates only for very small tiles.
  double per_tile_overhead_seconds = 2e-5;

  /// C(m,n) += A(m,k) * B(k,n): 2mnk flops at 1 GFLOP/s.
  double GemmSeconds(int64_t m, int64_t n, int64_t k) const {
    return per_tile_overhead_seconds + 2.0 * m * n * k / 1e9;
  }

  /// One element-wise pass over n elements.
  double EwSeconds(int64_t n) const {
    return per_tile_overhead_seconds + n / (ew_gelems_per_sec * 1e9);
  }

  /// Transposing an n-element tile.
  double TransposeSeconds(int64_t n) const {
    return per_tile_overhead_seconds + n / (transpose_gelems_per_sec * 1e9);
  }

  /// Accumulating (acc += x) over n elements; same cost family as
  /// element-wise.
  double AccumulateSeconds(int64_t n) const { return EwSeconds(n); }

  /// Fraction of dense-GEMM flop throughput the CSR SpMM kernel sustains
  /// (irregular access costs it roughly half on typical hardware).
  double spmm_efficiency = 0.5;

  /// C += S * D with S sparse (nnz nonzeros) and D dense with n columns:
  /// 2 * nnz * n flops at reduced efficiency.
  double SpmmSeconds(int64_t nnz, int64_t n) const {
    return per_tile_overhead_seconds +
           2.0 * nnz * n / (spmm_efficiency * 1e9);
  }
};

}  // namespace cumulon

#endif  // CUMULON_COST_COST_MODEL_H_
