#ifndef CUMULON_BASELINE_MR_MATMUL_H_
#define CUMULON_BASELINE_MR_MATMUL_H_

#include <string>

#include "cluster/engine.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "matrix/tile_store.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {

/// The two classical MapReduce matrix-multiply strategies that
/// SystemML-style Hadoop systems choose between. They are the paper's
/// "existing Hadoop-based systems" comparison point (experiment E1):
///
///  - RMM (replication-based): one MR job. Mappers replicate every A tile
///    to all GJ result columns and every B tile to all GI result rows;
///    reducer (i,j) folds the k dimension. Shuffle = |A|*GJ + |B|*GI.
///  - CPMM (cross-product): two MR jobs. Job 1 groups A's k-th column
///    block with B's k-th row block at reducer k, which emits a *full*
///    partial product C^(k); job 2 sums the GK partials. Shuffle is small
///    but the intermediate traffic is GK * |C|.
///
/// Cumulon's map-only multiply reads tiles straight from the DFS with
/// locality, so it pays neither of these data-movement penalties.
enum class MrStrategy { kRmm, kCpmm };

const char* MrStrategyName(MrStrategy s);

struct MrOptions {
  int64_t tiles_per_map_task = 8;
  int64_t c_tiles_per_reduce_task = 1;  // RMM reducer granularity
  int64_t k_per_reduce_task = 1;        // CPMM job-1 reducer granularity

  /// Sort/merge CPU on the reference machine per shuffled byte (both map
  /// and reduce side of a Hadoop shuffle sort).
  double sort_cpu_seconds_per_mb = 0.02;

  /// Per-MR-job submission overhead (Hadoop job startup).
  double job_startup_seconds = 3.0;

  /// Attach real work closures (reducers actually compute the product).
  bool real_mode = true;
};

/// Outcome of one baseline multiply.
struct MrRunStats {
  double total_seconds = 0.0;
  int num_jobs = 0;
  int num_tasks = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t shuffle_bytes = 0;
};

/// Runs out = a * b with the given MR strategy on `engine`. In real mode
/// the result tiles are actually computed and written to `store`
/// (numerically identical to Cumulon's multiply); in sim mode only costs
/// flow. CPMM writes its partial products under "<out>#cpmm_<k>" and
/// deletes them afterwards.
Result<MrRunStats> RunMrMultiply(MrStrategy strategy, const TiledMatrix& a,
                                 const TiledMatrix& b, const TiledMatrix& out,
                                 TileStore* store, Engine* engine,
                                 const TileOpCostModel& cost,
                                 const MrOptions& options);

}  // namespace cumulon

#endif  // CUMULON_BASELINE_MR_MATMUL_H_
