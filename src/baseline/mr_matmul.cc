#include "baseline/mr_matmul.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "exec/physical_job.h"

namespace cumulon {

namespace {

int64_t TileBytes(const TileLayout& layout, int64_t gr, int64_t gc) {
  return 16 + layout.TileRowsAt(gr) * layout.TileColsAt(gc) * 8;
}

double SortCpu(const MrOptions& options, int64_t bytes) {
  return options.sort_cpu_seconds_per_mb * bytes / 1e6;
}

Status ValidateShapes(const TiledMatrix& a, const TiledMatrix& b,
                      const TiledMatrix& out) {
  if (a.layout.cols() != b.layout.rows() ||
      a.layout.tile_cols() != b.layout.tile_rows()) {
    return Status::InvalidArgument(
        StrCat("MR multiply shape/tiling mismatch: ", a.layout.ToString(),
               " * ", b.layout.ToString()));
  }
  if (out.layout.rows() != a.layout.rows() ||
      out.layout.cols() != b.layout.cols() ||
      out.layout.tile_rows() != a.layout.tile_rows() ||
      out.layout.tile_cols() != b.layout.tile_cols()) {
    return Status::InvalidArgument(
        StrCat("MR multiply output layout mismatch: ", out.layout.ToString()));
  }
  return Status::OK();
}

/// Registers output tile placement after a simulated job so later phases
/// see correct locality.
Status RegisterOutputs(TileStore* store,
                       const std::vector<std::vector<TileOutput>>& outputs,
                       const JobStats& stats) {
  CUMULON_CHECK_EQ(outputs.size(), stats.task_runs.size());
  for (size_t t = 0; t < outputs.size(); ++t) {
    for (const TileOutput& out : outputs[t]) {
      CUMULON_RETURN_IF_ERROR(store->PutMeta(out.matrix, out.id, out.bytes,
                                             stats.task_runs[t].machine));
    }
  }
  return Status::OK();
}

void Accumulate(const JobStats& stats, MrRunStats* totals) {
  totals->total_seconds += stats.duration_seconds;
  totals->num_tasks += stats.num_tasks;
  totals->bytes_read += stats.bytes_read;
  totals->bytes_written += stats.bytes_written;
  totals->shuffle_bytes += stats.shuffle_bytes;
}

/// Map phase over the tiles of one or two matrices: reads each tile from
/// the DFS and spills `replication_factor` copies of it as map output.
/// Pure cost: mappers do no real computation (reducers read the store
/// directly in real mode).
JobSpec BuildMapPhase(const std::string& job_name, const TiledMatrix& m1,
                      int64_t replication1, const TiledMatrix* m2,
                      int64_t replication2, TileStore* store,
                      const MrOptions& options) {
  JobSpec job;
  job.name = job_name;
  struct Item {
    const TiledMatrix* m;
    TileId id;
    int64_t repl;
  };
  std::vector<Item> items;
  for (int64_t r = 0; r < m1.layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < m1.layout.grid_cols(); ++c) {
      items.push_back({&m1, TileId{r, c}, replication1});
    }
  }
  if (m2 != nullptr) {
    for (int64_t r = 0; r < m2->layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < m2->layout.grid_cols(); ++c) {
        items.push_back({m2, TileId{r, c}, replication2});
      }
    }
  }
  const int64_t per_task = std::max<int64_t>(options.tiles_per_map_task, 1);
  for (size_t base = 0; base < items.size();
       base += static_cast<size_t>(per_task)) {
    Task task;
    task.name = StrCat(job_name, "/map", base / per_task);
    const size_t end = std::min(items.size(), base + per_task);
    for (size_t i = base; i < end; ++i) {
      const Item& item = items[i];
      const int64_t bytes =
          TileBytes(item.m->layout, item.id.row, item.id.col);
      task.cost.bytes_read += bytes;
      task.cost.local_spill_bytes += bytes * item.repl;
      task.cost.cpu_seconds_ref += SortCpu(options, bytes * item.repl);
    }
    task.preferred_machines =
        store->PreferredNodes(items[base].m->name, items[base].id);
    job.tasks.push_back(std::move(task));
  }
  return job;
}

}  // namespace

const char* MrStrategyName(MrStrategy s) {
  switch (s) {
    case MrStrategy::kRmm:
      return "RMM";
    case MrStrategy::kCpmm:
      return "CPMM";
  }
  return "?";
}

namespace {

Result<MrRunStats> RunRmm(const TiledMatrix& a, const TiledMatrix& b,
                          const TiledMatrix& out, TileStore* store,
                          Engine* engine, const TileOpCostModel& cost,
                          const MrOptions& options) {
  const int64_t gi = a.layout.grid_rows();
  const int64_t gj = b.layout.grid_cols();
  const int64_t gk = a.layout.grid_cols();
  MrRunStats totals;

  // Map phase: A tiles fan out to all gj reducer columns, B tiles to all
  // gi reducer rows.
  JobSpec map_job =
      BuildMapPhase(StrCat("rmm_map_", out.name), a, gj, &b, gi, store,
                    options);
  CUMULON_ASSIGN_OR_RETURN(JobStats map_stats, engine->RunJob(map_job));
  Accumulate(map_stats, &totals);
  totals.num_jobs = 1;

  // Reduce phase: reducer for C(i,j) pulls A(i,*) and B(*,j) over the
  // shuffle and folds k.
  JobSpec reduce_job;
  reduce_job.name = StrCat("rmm_reduce_", out.name);
  std::vector<std::vector<TileOutput>> outputs;
  const int64_t per_task =
      std::max<int64_t>(options.c_tiles_per_reduce_task, 1);
  std::vector<TileId> c_tiles;
  for (int64_t i = 0; i < gi; ++i) {
    for (int64_t j = 0; j < gj; ++j) c_tiles.push_back(TileId{i, j});
  }
  for (size_t base = 0; base < c_tiles.size();
       base += static_cast<size_t>(per_task)) {
    Task task;
    task.name = StrCat(reduce_job.name, "/r", base / per_task);
    std::vector<TileOutput> task_outs;
    const size_t end = std::min(c_tiles.size(), base + per_task);
    std::vector<TileId> group(c_tiles.begin() + base, c_tiles.begin() + end);
    for (const TileId& id : group) {
      int64_t in_bytes = 0;
      for (int64_t k = 0; k < gk; ++k) {
        in_bytes += TileBytes(a.layout, id.row, k);
        in_bytes += TileBytes(b.layout, k, id.col);
        task.cost.cpu_seconds_ref += cost.GemmSeconds(
            out.layout.TileRowsAt(id.row), out.layout.TileColsAt(id.col),
            a.layout.TileColsAt(k));
      }
      task.cost.shuffle_bytes += in_bytes;
      task.cost.cpu_seconds_ref += SortCpu(options, in_bytes);
      const int64_t out_bytes = TileBytes(out.layout, id.row, id.col);
      task.cost.bytes_written += out_bytes;
      task_outs.push_back(TileOutput{out.name, id, out_bytes});
    }
    if (options.real_mode) {
      const TiledMatrix av = a, bv = b, outv = out;
      task.work = [store, av, bv, outv, group, gk](int machine) -> Status {
        for (const TileId& id : group) {
          Tile acc(outv.layout.TileRowsAt(id.row),
                   outv.layout.TileColsAt(id.col));
          for (int64_t k = 0; k < gk; ++k) {
            CUMULON_ASSIGN_OR_RETURN(
                std::shared_ptr<const Tile> ta,
                store->Get(av.name, TileId{id.row, k}, machine));
            CUMULON_ASSIGN_OR_RETURN(
                std::shared_ptr<const Tile> tb,
                store->Get(bv.name, TileId{k, id.col}, machine));
            CUMULON_RETURN_IF_ERROR(Gemm(*ta, *tb, 1.0, 1.0, &acc));
          }
          CUMULON_RETURN_IF_ERROR(
              store->Put(outv.name, id, std::make_shared<Tile>(std::move(acc)),
                         machine));
        }
        return Status::OK();
      };
    }
    reduce_job.tasks.push_back(std::move(task));
    outputs.push_back(std::move(task_outs));
  }
  CUMULON_ASSIGN_OR_RETURN(JobStats reduce_stats, engine->RunJob(reduce_job));
  Accumulate(reduce_stats, &totals);
  if (!options.real_mode) {
    CUMULON_RETURN_IF_ERROR(RegisterOutputs(store, outputs, reduce_stats));
  }
  totals.total_seconds += options.job_startup_seconds;  // one MR job
  return totals;
}

Result<MrRunStats> RunCpmm(const TiledMatrix& a, const TiledMatrix& b,
                           const TiledMatrix& out, TileStore* store,
                           Engine* engine, const TileOpCostModel& cost,
                           const MrOptions& options) {
  const int64_t gi = a.layout.grid_rows();
  const int64_t gj = b.layout.grid_cols();
  const int64_t gk = a.layout.grid_cols();
  MrRunStats totals;
  totals.num_jobs = 2;

  auto partial_name = [&](int64_t k) {
    return StrCat(out.name, "#cpmm_", k);
  };

  // ---- MR job 1: group by k, emit full partial products C^(k). ----
  JobSpec map1 = BuildMapPhase(StrCat("cpmm_map1_", out.name), a, 1, &b, 1,
                               store, options);
  CUMULON_ASSIGN_OR_RETURN(JobStats map1_stats, engine->RunJob(map1));
  Accumulate(map1_stats, &totals);

  JobSpec reduce1;
  reduce1.name = StrCat("cpmm_reduce1_", out.name);
  std::vector<std::vector<TileOutput>> outputs1;
  const int64_t k_per_task = std::max<int64_t>(options.k_per_reduce_task, 1);
  for (int64_t k0 = 0; k0 < gk; k0 += k_per_task) {
    const int64_t k1 = std::min(k0 + k_per_task, gk);
    Task task;
    task.name = StrCat(reduce1.name, "/r", k0);
    std::vector<TileOutput> task_outs;
    for (int64_t k = k0; k < k1; ++k) {
      int64_t in_bytes = 0;
      for (int64_t i = 0; i < gi; ++i) in_bytes += TileBytes(a.layout, i, k);
      for (int64_t j = 0; j < gj; ++j) in_bytes += TileBytes(b.layout, k, j);
      task.cost.shuffle_bytes += in_bytes;
      task.cost.cpu_seconds_ref += SortCpu(options, in_bytes);
      for (int64_t i = 0; i < gi; ++i) {
        for (int64_t j = 0; j < gj; ++j) {
          task.cost.cpu_seconds_ref += cost.GemmSeconds(
              out.layout.TileRowsAt(i), out.layout.TileColsAt(j),
              a.layout.TileColsAt(k));
          const int64_t out_bytes = TileBytes(out.layout, i, j);
          task.cost.bytes_written += out_bytes;
          task_outs.push_back(
              TileOutput{partial_name(k), TileId{i, j}, out_bytes});
        }
      }
    }
    if (options.real_mode) {
      const TiledMatrix av = a, bv = b, outv = out;
      const std::string out_name = out.name;
      task.work = [store, av, bv, outv, out_name, k0, k1, gi,
                   gj](int machine) -> Status {
        for (int64_t k = k0; k < k1; ++k) {
          for (int64_t i = 0; i < gi; ++i) {
            CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> ta,
                                     store->Get(av.name, TileId{i, k},
                                                machine));
            for (int64_t j = 0; j < gj; ++j) {
              CUMULON_ASSIGN_OR_RETURN(std::shared_ptr<const Tile> tb,
                                       store->Get(bv.name, TileId{k, j},
                                                  machine));
              Tile part(outv.layout.TileRowsAt(i), outv.layout.TileColsAt(j));
              CUMULON_RETURN_IF_ERROR(Gemm(*ta, *tb, 1.0, 0.0, &part));
              CUMULON_RETURN_IF_ERROR(store->Put(
                  StrCat(out_name, "#cpmm_", k), TileId{i, j},
                  std::make_shared<Tile>(std::move(part)), machine));
            }
          }
        }
        return Status::OK();
      };
    }
    reduce1.tasks.push_back(std::move(task));
    outputs1.push_back(std::move(task_outs));
  }
  CUMULON_ASSIGN_OR_RETURN(JobStats reduce1_stats, engine->RunJob(reduce1));
  Accumulate(reduce1_stats, &totals);
  if (!options.real_mode) {
    CUMULON_RETURN_IF_ERROR(RegisterOutputs(store, outputs1, reduce1_stats));
  }

  // ---- MR job 2: sum the partials per C tile. ----
  // Map side reads each partial tile (with locality) and spills it once.
  JobSpec map2;
  map2.name = StrCat("cpmm_map2_", out.name);
  {
    std::vector<TileId> tiles;
    for (int64_t i = 0; i < gi; ++i) {
      for (int64_t j = 0; j < gj; ++j) tiles.push_back(TileId{i, j});
    }
    // One map task per partial-k over a stripe of tiles.
    const int64_t per_task = std::max<int64_t>(options.tiles_per_map_task, 1);
    for (int64_t k = 0; k < gk; ++k) {
      for (size_t base = 0; base < tiles.size();
           base += static_cast<size_t>(per_task)) {
        Task task;
        task.name = StrCat(map2.name, "/m", k, "_", base);
        const size_t end = std::min(tiles.size(), base + per_task);
        for (size_t t = base; t < end; ++t) {
          const int64_t bytes =
              TileBytes(out.layout, tiles[t].row, tiles[t].col);
          task.cost.bytes_read += bytes;
          task.cost.local_spill_bytes += bytes;
          task.cost.cpu_seconds_ref += SortCpu(options, bytes);
        }
        task.preferred_machines =
            store->PreferredNodes(partial_name(k), tiles[base]);
        map2.tasks.push_back(std::move(task));
      }
    }
  }
  CUMULON_ASSIGN_OR_RETURN(JobStats map2_stats, engine->RunJob(map2));
  Accumulate(map2_stats, &totals);

  JobSpec reduce2;
  reduce2.name = StrCat("cpmm_reduce2_", out.name);
  std::vector<std::vector<TileOutput>> outputs2;
  {
    const int64_t per_task =
        std::max<int64_t>(options.c_tiles_per_reduce_task, 1);
    std::vector<TileId> tiles;
    for (int64_t i = 0; i < gi; ++i) {
      for (int64_t j = 0; j < gj; ++j) tiles.push_back(TileId{i, j});
    }
    for (size_t base = 0; base < tiles.size();
         base += static_cast<size_t>(per_task)) {
      Task task;
      task.name = StrCat(reduce2.name, "/r", base / per_task);
      std::vector<TileOutput> task_outs;
      const size_t end = std::min(tiles.size(), base + per_task);
      std::vector<TileId> group(tiles.begin() + base, tiles.begin() + end);
      for (const TileId& id : group) {
        const int64_t bytes = TileBytes(out.layout, id.row, id.col);
        task.cost.shuffle_bytes += bytes * gk;
        task.cost.cpu_seconds_ref +=
            SortCpu(options, bytes * gk) +
            gk * cost.AccumulateSeconds(out.layout.TileRowsAt(id.row) *
                                        out.layout.TileColsAt(id.col));
        task.cost.bytes_written += bytes;
        task_outs.push_back(TileOutput{out.name, id, bytes});
      }
      if (options.real_mode) {
        const TiledMatrix outv = out;
        const std::string out_name = out.name;
        task.work = [store, outv, out_name, group, gk](int machine) -> Status {
          for (const TileId& id : group) {
            Tile acc(outv.layout.TileRowsAt(id.row),
                     outv.layout.TileColsAt(id.col));
            for (int64_t k = 0; k < gk; ++k) {
              CUMULON_ASSIGN_OR_RETURN(
                  std::shared_ptr<const Tile> part,
                  store->Get(StrCat(out_name, "#cpmm_", k), id, machine));
              CUMULON_RETURN_IF_ERROR(AccumulateInto(*part, &acc));
            }
            CUMULON_RETURN_IF_ERROR(store->Put(
                out_name, id, std::make_shared<Tile>(std::move(acc)),
                machine));
          }
          return Status::OK();
        };
      }
      reduce2.tasks.push_back(std::move(task));
      outputs2.push_back(std::move(task_outs));
    }
  }
  CUMULON_ASSIGN_OR_RETURN(JobStats reduce2_stats, engine->RunJob(reduce2));
  Accumulate(reduce2_stats, &totals);
  if (!options.real_mode) {
    CUMULON_RETURN_IF_ERROR(RegisterOutputs(store, outputs2, reduce2_stats));
  }

  // Drop the partial products.
  for (int64_t k = 0; k < gk; ++k) {
    CUMULON_RETURN_IF_ERROR(store->DeleteMatrix(partial_name(k)));
  }

  totals.total_seconds += 2 * options.job_startup_seconds;
  return totals;
}

}  // namespace

Result<MrRunStats> RunMrMultiply(MrStrategy strategy, const TiledMatrix& a,
                                 const TiledMatrix& b, const TiledMatrix& out,
                                 TileStore* store, Engine* engine,
                                 const TileOpCostModel& cost,
                                 const MrOptions& options) {
  CUMULON_RETURN_IF_ERROR(ValidateShapes(a, b, out));
  switch (strategy) {
    case MrStrategy::kRmm:
      return RunRmm(a, b, out, store, engine, cost, options);
    case MrStrategy::kCpmm:
      return RunCpmm(a, b, out, store, engine, cost, options);
  }
  return Status::InvalidArgument("unknown MR strategy");
}

}  // namespace cumulon
