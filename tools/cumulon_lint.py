#!/usr/bin/env python3
"""Repo-specific contract linter for cumulon-cpp.

Checks (all run by default; exit code 0 = clean):

1. Metric-name contract (docs/observability.md <-> src/): every counter /
   gauge / histogram name used in src/ must have a row in the doc's contract
   tables, and every doc row must correspond to a name still used in src/.
   Dynamic names built with StrCat (e.g. "sched.tenant." + tenant +
   ".submitted") are checked at prefix level against the doc's <wildcard>
   rows.

2. Trace-category contract: every TraceSpan category assigned in src/ must
   appear in the doc's trace-category table, and vice versa.

3. Banned APIs:
   - raw std::mutex / std::condition_variable / std::lock_guard /
     std::unique_lock / std::scoped_lock outside common/thread_annotations.h
     and common/mutex.{h,cc} (all locking goes through cumulon::Mutex so the
     Clang thread-safety lane and the lock-order validator see it),
   - std::this_thread::sleep_for in src/ outside dfs/sim_dfs.cc (the
     simulated-IO service clock is the only component allowed to sleep),
   - raw buffer allocation (`new double[...]`, malloc/calloc/realloc/
     aligned_alloc/posix_memalign) outside common/aligned_buffer.{h,cc}:
     tile payloads must come from the cache-line-aligned allocator so
     SIMD kernels can assume 64-byte alignment and the cache's
     MemoryBytes accounting stays truthful,
   - `(void)` casts of call expressions (`(void)DoThing();`): Status and
     Result are [[nodiscard]] and the sanctioned way to drop one is
     `.IgnoreError()`, which is greppable and states intent. Unused-
     parameter silencers (`(void)name;`) stay legal.

4. Verifier-edge contract: every guarded pipeline edge must actually call
   its Verify* entry point (src/verify). The table below names the edge ->
   entry-point pairs; losing one silently un-guards that edge, so the
   linter greps for the call.

Usage:
  tools/cumulon_lint.py [--root REPO_ROOT]
  tools/cumulon_lint.py --self-test
"""

import argparse
import os
import re
import sys
import tempfile

METRIC_NAME_RE = re.compile(
    r'^(exec|engine|dfs|cache|prefetch|sched|plan|cluster|svc|mem|obs|verify)'
    r'\.[a-z0-9_.]+$')
METRIC_PREFIX_RE = re.compile(
    r'^(exec|engine|dfs|cache|prefetch|sched|plan|cluster|svc|mem|obs|verify)'
    r'\.([a-z0-9_.]+\.)?$')
STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')

# Wire-protocol error reasons (svc/message.h) that happen to look like
# metric names under the prefix heuristic. They are part of the protocol
# contract documented in docs/service.md, not metrics.
NON_METRIC_LITERALS = {
    'plan.unknown',
    'plan.foreign',
    'plan.terminal',
    'plan.not_terminal',
}
KIND_CALL_RE = re.compile(r'\b(counter|gauge|histogram)\(\s*"([^"]+)"')
CATEGORY_RE = re.compile(r'\.category\s*=\s*"([^"]+)"')

# `(void)` cast applied to a call expression. The char class after the
# cast must reach a `(` for the line to count — a bare `(void)name;`
# parameter silencer never does.
VOID_DISCARD_RE = re.compile(r'\(void\)\s*[\w:.>\-\[\]]+\s*\(')

# Guarded pipeline edges: (file under src/, Verify* entry point that must
# be called there). Dropping a call silently un-guards the edge, so the
# linter greps for it. Keep in sync with DESIGN.md "Plan verification".
VERIFY_EDGE_CONTRACT = (
    ('lang/logical_optimizer.cc', 'VerifyProgramStatus'),
    ('lang/lowering.cc', 'VerifyPlanStatus'),
    ('sched/workload_manager.cc', 'VerifyPlanStatus'),
    ('svc/service.cc', 'VerifyPlanStatus'),
    ('opt/search.cc', 'VerifyMatMulSplit'),
    ('opt/job_tuner.cc', 'VerifyMatMulSplit'),
)

BANNED_SYNC_RE = re.compile(
    r'std::(mutex|condition_variable|condition_variable_any|lock_guard|'
    r'unique_lock|scoped_lock|shared_mutex|recursive_mutex)\b')
SLEEP_RE = re.compile(r'std::this_thread::sleep_for')
RAW_ALLOC_RE = re.compile(
    r'(new\s+double\s*\[|\b(?:std::)?'
    r'(malloc|calloc|realloc|aligned_alloc|posix_memalign)\s*\()')

SYNC_ALLOWLIST = {
    'common/thread_annotations.h',
    'common/mutex.h',
    'common/mutex.cc',  # the lock-order validator's own graph lock
}
SLEEP_ALLOWLIST = {
    'dfs/sim_dfs.cc',  # injected read service time (the sim clock)
}
ALLOC_ALLOWLIST = {
    'common/aligned_buffer.h',  # the aligned allocator itself
    'common/aligned_buffer.cc',
}


def strip_comments(text):
    """Removes // and /* */ comments (string-literal aware enough for this
    codebase: no metric name or banned API ever sits behind a quoted //)."""
    text = re.sub(r'/\*.*?\*/', ' ', text, flags=re.S)
    out = []
    for line in text.splitlines():
        # Cut at the first // that is not inside a string literal.
        in_str = False
        i = 0
        while i < len(line):
            c = line[i]
            if c == '\\' and in_str:
                i += 2
                continue
            if c == '"':
                in_str = not in_str
            elif not in_str and c == '/' and line[i:i + 2] == '//':
                line = line[:i]
                break
            i += 1
        out.append(line)
    return '\n'.join(out)


def iter_source_files(src_root):
    for dirpath, _, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(('.h', '.cc')):
                yield os.path.join(dirpath, name)


def collect_code_usage(src_root):
    """Returns (names, prefixes, kinds, categories, violations).

    names: dict metric-name -> first "file:line" using it.
    prefixes: dict dynamic-name prefix (trailing '.') -> first "file:line"
      (from StrCat'd names such as "sched.tenant.").
    kinds: dict metric-name -> set of kinds seen at call sites where the
      kind is syntactically evident (counter("x")).
    categories: dict span category -> first "file:line".
    violations: list of banned-API messages.
    """
    names, prefixes, kinds, categories = {}, {}, {}, {}
    violations = []
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root).replace(os.sep, '/')
        with open(path, encoding='utf-8') as f:
            raw = f.read()
        text = strip_comments(raw)
        for lineno, line in enumerate(text.splitlines(), start=1):
            where = f'{rel}:{lineno}'
            if rel not in SYNC_ALLOWLIST:
                m = BANNED_SYNC_RE.search(line)
                if m:
                    violations.append(
                        f'{where}: banned raw std::{m.group(1)} (use '
                        f'cumulon::Mutex/MutexLock/CondVar from '
                        f'common/mutex.h)')
            if rel not in SLEEP_ALLOWLIST and SLEEP_RE.search(line):
                violations.append(
                    f'{where}: banned std::this_thread::sleep_for outside '
                    f'the sim clock (dfs/sim_dfs.cc)')
            if rel not in ALLOC_ALLOWLIST and RAW_ALLOC_RE.search(line):
                violations.append(
                    f'{where}: banned raw buffer allocation (use '
                    f'AlignedVector/AlignedAllocator from '
                    f'common/aligned_buffer.h so tile payloads stay '
                    f'64-byte aligned)')
            if VOID_DISCARD_RE.search(line):
                violations.append(
                    f'{where}: banned (void) cast of a call result (drop a '
                    f'Status/Result with .IgnoreError() so the discard is '
                    f'greppable and intentional)')
            for lit in STRING_LITERAL_RE.findall(line):
                if lit in NON_METRIC_LITERALS:
                    continue
                if lit.endswith('.'):
                    if METRIC_PREFIX_RE.match(lit):
                        prefixes.setdefault(lit, where)
                elif METRIC_NAME_RE.match(lit):
                    names.setdefault(lit, where)
            for kind, name in KIND_CALL_RE.findall(line):
                kinds.setdefault(name, set()).add(kind)
            for cat in CATEGORY_RE.findall(line):
                categories.setdefault(cat, where)
    return names, prefixes, kinds, categories, violations


DOC_NAME_CELL_RE = re.compile(r'`([^`]+)`')


def parse_doc_contract(doc_path):
    """Parses docs/observability.md's contract tables.

    Returns (doc_names, doc_rows, categories):
      doc_names: dict full metric name -> kind ('counter'|'gauge'|'histogram')
        for concrete rows; wildcard rows keep their <...>/* markers.
      doc_rows: list of (name, kind, lineno) for the dead-row check.
      categories: dict trace category -> lineno.
    """
    doc_names, doc_rows, categories = {}, [], {}
    section = None
    in_category_table = False
    with open(doc_path, encoding='utf-8') as f:
        for lineno, line in enumerate(f, start=1):
            stripped = line.strip()
            if stripped.startswith('#'):
                head = stripped.lstrip('#').strip().lower()
                if 'counter' in head:
                    section = 'counter'
                elif 'gauge' in head:
                    section = 'gauge'
                elif 'histogram' in head:
                    section = 'histogram'
                elif 'reason' in head:
                    # Typed error-reason slugs (verify.*) — documented in
                    # the same dotted namespace but never metric calls.
                    section = 'reason'
                else:
                    section = None
                in_category_table = 'trace categories' in head
                continue
            if not stripped.startswith('|'):
                continue
            cells = [c.strip() for c in stripped.strip('|').split('|')]
            if not cells or set(cells[0]) <= {'-', ' ', ':'}:
                continue
            if in_category_table:
                for name in DOC_NAME_CELL_RE.findall(cells[0]):
                    if name.lower() not in ('name', 'category'):
                        categories[name] = lineno
                continue
            if section is None:
                continue
            # A name cell may hold several names: "`a` / `b`" and leading-dot
            # continuations ("`sched.tenant.<t>.submitted` / `.finished`").
            last_full = None
            for name in DOC_NAME_CELL_RE.findall(cells[0]):
                if name in ('Name',):
                    continue
                if name.startswith('.') and last_full is not None:
                    name = last_full.rsplit('.', 1)[0] + name if (
                        '.' in last_full) else last_full + name
                    # Continuation replaces the last segment of the
                    # previous name: sched.tenant.<t>.submitted + .finished
                    # -> sched.tenant.<t>.finished.
                else:
                    last_full = name
                doc_names[name] = section
                doc_rows.append((name, section, lineno))
    return doc_names, doc_rows, categories


def doc_pattern_to_regex(name):
    """Doc-row name -> regex. `<...>` and `*` are one-or-more wildcards."""
    out = []
    for part in re.split(r'(<[^>]*>|\*)', name):
        if not part:
            continue
        if part == '*' or part.startswith('<'):
            out.append('.+')
        else:
            out.append(re.escape(part))
    return re.compile('^' + ''.join(out) + '$')


def lint(root, edge_contract=VERIFY_EDGE_CONTRACT):
    src_root = os.path.join(root, 'src')
    doc_path = os.path.join(root, 'docs', 'observability.md')
    errors = []

    names, prefixes, kinds, categories, violations = (
        collect_code_usage(src_root))
    errors.extend(violations)

    # Verifier-edge contract: each guarded edge must call its entry point.
    for rel, symbol in edge_contract:
        edge_path = os.path.join(src_root, rel)
        if not os.path.exists(edge_path):
            errors.append(
                f'src/{rel}: file missing but the verifier-edge contract '
                f'requires it to call {symbol}()')
            continue
        with open(edge_path, encoding='utf-8') as f:
            edge_text = strip_comments(f.read())
        if not re.search(r'\b' + re.escape(symbol) + r'\s*\(', edge_text):
            errors.append(
                f'src/{rel}: guarded pipeline edge no longer calls '
                f'{symbol}() (verifier-edge contract; see DESIGN.md '
                f'"Plan verification")')

    if not os.path.exists(doc_path):
        errors.append(f'{doc_path}: missing metric contract doc')
        report(errors)
        return 1

    doc_names, doc_rows, doc_categories = parse_doc_contract(doc_path)
    doc_regexes = [(n, k, doc_pattern_to_regex(n)) for n, k in
                   doc_names.items()]

    # Direction 1: every code name/prefix must be documented.
    for name, where in sorted(names.items()):
        hits = [(n, k) for n, k, rx in doc_regexes if rx.match(name)]
        if not hits:
            errors.append(
                f'{where}: metric "{name}" has no row in '
                f'docs/observability.md')
            continue
        used_kinds = kinds.get(name, set())
        if used_kinds and not used_kinds & {k for _, k in hits}:
            errors.append(
                f'{where}: metric "{name}" used as '
                f'{"/".join(sorted(used_kinds))} but documented as '
                f'{"/".join(sorted(k for _, k in hits))}')
    for prefix, where in sorted(prefixes.items()):
        if not any(n.startswith(prefix) or rx.match(prefix + 'x')
                   for n, _, rx in doc_regexes):
            errors.append(
                f'{where}: dynamic metric prefix "{prefix}*" has no '
                f'matching row in docs/observability.md')

    # Direction 2: every doc row must still be exercised by src/.
    for name, kind, lineno in doc_rows:
        rx = doc_pattern_to_regex(name)
        concrete = any(rx.match(code_name) for code_name in names)
        dynamic = any(name.startswith(p) or rx.match(p + 'x')
                      for p in prefixes)
        if not concrete and not dynamic:
            errors.append(
                f'docs/observability.md:{lineno}: dead contract row '
                f'`{name}` ({kind}): no src/ code emits it')

    # Trace categories, both directions.
    for cat, where in sorted(categories.items()):
        if cat not in doc_categories:
            errors.append(
                f'{where}: trace category "{cat}" has no row in the '
                f'docs/observability.md trace-category table')
    for cat, lineno in sorted(doc_categories.items()):
        if cat not in categories:
            errors.append(
                f'docs/observability.md:{lineno}: dead trace-category row '
                f'`{cat}`: no src/ code emits it')

    report(errors)
    return 1 if errors else 0


def report(errors):
    for e in errors:
        print(f'cumulon_lint: {e}')
    if errors:
        print(f'cumulon_lint: {len(errors)} problem(s)')
    else:
        print('cumulon_lint: clean')


# ---------------------------------------------------------------------------
# Self-test: build throwaway repo trees and assert the linter's verdicts.

SELF_TEST_DOC = """# obs
### Counters
| Name | Meaning |
|---|---|
| `engine.jobs` | jobs |
| `sched.tenant.<tenant>.submitted` | per tenant |
### Gauges
| Name | Meaning |
|---|---|
| `sched.queued` | depth |
### Histograms
| Name | Meaning |
|---|---|
| `engine.task.seconds` | per task |
### Trace categories
| Name | Meaning |
|---|---|
| `task` | one span per task |
"""

SELF_TEST_SRC = """#include "common/mutex.h"
void F(MetricsRegistry* m, Tracer* t) {
  m->counter("engine.jobs")->Increment();
  m->counter(StrCat("sched.tenant.", who, ".submitted"))->Increment();
  m->gauge("sched.queued")->Set(1);
  m->histogram("engine.task.seconds")->Observe(0.5);
  TraceSpan s;
  s.category = "task";
}
"""


def write_tree(tmp, doc, src):
    os.makedirs(os.path.join(tmp, 'src', 'x'))
    os.makedirs(os.path.join(tmp, 'docs'))
    with open(os.path.join(tmp, 'docs', 'observability.md'), 'w') as f:
        f.write(doc)
    with open(os.path.join(tmp, 'src', 'x', 'x.cc'), 'w') as f:
        f.write(src)


def self_test():
    failures = []

    def expect(label, doc, src, want_clean, want_substring=None,
               edge_contract=()):
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, doc, src)
            import io
            import contextlib
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = lint(tmp, edge_contract=edge_contract)
            out = buf.getvalue()
            if want_clean and rc != 0:
                failures.append(f'{label}: expected clean, got:\n{out}')
            if not want_clean and rc == 0:
                failures.append(f'{label}: expected failure, got clean')
            if want_substring and want_substring not in out:
                failures.append(
                    f'{label}: expected "{want_substring}" in:\n{out}')

    expect('clean tree', SELF_TEST_DOC, SELF_TEST_SRC, want_clean=True)
    expect('undocumented metric', SELF_TEST_DOC,
           SELF_TEST_SRC.replace(
               '"engine.jobs"', '"engine.jobs"); '
               'm->counter("engine.retries"', 1),
           want_clean=False, want_substring='engine.retries')
    expect('dead doc row',
           SELF_TEST_DOC.replace(
               '| `engine.jobs` | jobs |',
               '| `engine.jobs` | jobs |\n| `engine.ghost` | gone |'),
           SELF_TEST_SRC, want_clean=False, want_substring='engine.ghost')
    expect('undocumented trace category', SELF_TEST_DOC,
           SELF_TEST_SRC.replace('s.category = "task"',
                                 's.category = "mystery"'),
           want_clean=False, want_substring='mystery')
    expect('dead trace-category row', SELF_TEST_DOC,
           SELF_TEST_SRC.replace('s.category = "task";', ''),
           want_clean=False, want_substring='dead trace-category row')
    expect('raw std::mutex', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nstd::mutex bad_mu;\n',
           want_clean=False, want_substring='banned raw std::mutex')
    expect('sleep_for outside sim clock', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid Z() { std::this_thread::sleep_for(d); }\n',
           want_clean=False, want_substring='sleep_for')
    expect('raw new double[] buffer', SELF_TEST_DOC,
           SELF_TEST_SRC + '\ndouble* Buf(int n) { return new double[n]; }\n',
           want_clean=False, want_substring='banned raw buffer allocation')
    expect('raw malloc buffer', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid* Buf2(int n) { return malloc(n); }\n',
           want_clean=False, want_substring='banned raw buffer allocation')
    expect('kind mismatch', SELF_TEST_DOC,
           SELF_TEST_SRC.replace('m->gauge("sched.queued")',
                                 'm->counter("sched.queued")'),
           want_clean=False, want_substring='documented as')
    expect('undocumented dynamic prefix', SELF_TEST_DOC,
           SELF_TEST_SRC.replace('"sched.tenant."', '"sched.mystery."'),
           want_clean=False, want_substring='sched.mystery.')

    # --- (void)-discard ban -------------------------------------------------
    expect('(void) discard of a call', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid V() { (void)DoThing(); }\n',
           want_clean=False, want_substring='banned (void) cast')
    expect('(void) discard of a member call', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid V2(Store* s) { (void)s->Delete("x"); }\n',
           want_clean=False, want_substring='banned (void) cast')
    expect('(void) parameter silencer stays legal', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid P(int unused) { (void)unused; }\n',
           want_clean=True)

    # --- verify.* metric namespace ------------------------------------------
    expect('undocumented verify metric', SELF_TEST_DOC,
           SELF_TEST_SRC.replace(
               '"engine.jobs"',
               '"engine.jobs"); m->counter("verify.runs"', 1),
           want_clean=False, want_substring='verify.runs')
    expect('documented verify metric', SELF_TEST_DOC.replace(
               '| `engine.jobs` | jobs |',
               '| `engine.jobs` | jobs |\n| `verify.runs` | runs |'),
           SELF_TEST_SRC.replace(
               '"engine.jobs"',
               '"engine.jobs"); m->counter("verify.runs"', 1),
           want_clean=True)

    # --- typed error-reason rows --------------------------------------------
    reason_doc = SELF_TEST_DOC + (
        '### Verifier error reasons\n'
        '| Name | Meaning |\n|---|---|\n'
        '| `verify.plan.dependency` | cycle |\n')
    reason_src = SELF_TEST_SRC.replace(
        's.category = "task";',
        's.category = "task";\n  const char* r = "verify.plan.dependency";')
    expect('documented reason slug', reason_doc, reason_src, want_clean=True)
    expect('undocumented reason slug', SELF_TEST_DOC, reason_src,
           want_clean=False, want_substring='verify.plan.dependency')
    expect('dead reason row', reason_doc, SELF_TEST_SRC,
           want_clean=False, want_substring='verify.plan.dependency')
    expect('reason slug used as a counter', reason_doc,
           reason_src.replace('m->counter("engine.jobs")',
                              'm->counter("verify.plan.dependency"); '
                              'm->counter("engine.jobs")'),
           want_clean=False, want_substring='documented as')

    # --- verifier-edge contract ---------------------------------------------
    edge = (('x/x.cc', 'VerifyPlanStatus'),)
    expect('verifier edge calls its entry point', SELF_TEST_DOC,
           SELF_TEST_SRC + '\nvoid E() { s = VerifyPlanStatus(p, o); }\n',
           want_clean=True, edge_contract=edge)
    expect('verifier edge dropped its call', SELF_TEST_DOC, SELF_TEST_SRC,
           want_clean=False, want_substring='VerifyPlanStatus',
           edge_contract=edge)
    expect('verifier edge call inside a comment does not count',
           SELF_TEST_DOC,
           SELF_TEST_SRC + '\n// VerifyPlanStatus(p, o) happens elsewhere\n',
           want_clean=False, want_substring='VerifyPlanStatus',
           edge_contract=edge)
    expect('verifier edge file missing', SELF_TEST_DOC, SELF_TEST_SRC,
           want_clean=False, want_substring='file missing',
           edge_contract=(('gone/gone.cc', 'VerifyPlanStatus'),))

    if failures:
        for f in failures:
            print(f'cumulon_lint self-test FAIL: {f}')
        return 1
    print('cumulon_lint self-test: all cases pass')
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument('--root', default=None,
                    help='repo root (default: parent of this script)')
    ap.add_argument('--self-test', action='store_true',
                    help='run the linter against synthetic fixture trees')
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return lint(root)


if __name__ == '__main__':
    sys.exit(main())
