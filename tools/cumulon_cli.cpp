// cumulon — command-line front end for the deployment optimizer.
//
//   cumulon calibrate
//       Benchmark this host's kernels and print the fitted cost models.
//   cumulon predict --workload rsvd --type m1.large --machines 8 [--slots 2]
//       Predict time and dollar cost of one workload on one cluster.
//       --trace out.json writes the simulated schedule as a Chrome
//       trace_event file; --metrics 1 prints the run's counters.
//       --memory-budget-mb M charges tasks the out-of-core streaming
//       refetch term against an M MB per-node memory budget.
//   cumulon plan --workload gnmf [--deadline MIN] [--budget DOLLARS]
//       Search the deployment space; print the Pareto frontier and the
//       constrained optimum.
//   cumulon submit --workloads rsvd,gnmf,linreg [--deadline-seconds S]
//                  [--budget-dollars D] [--policy fifo|fair|edf] [--json 1]
//       Submit several workloads to the multi-tenant workload manager on
//       one simulated cluster: each is admission-checked against its
//       deadline/budget using the predictor's estimate, then scheduled by
//       the chosen policy. --deadline-seconds/--budget-dollars accept one
//       value for all submissions or a comma list matched by position
//       (0 = unconstrained). --json 1 prints one machine-readable report
//       instead of the human schedule. Exits 1 when any submission is
//       rejected.
//   cumulon serve --listen unix:/tmp/cumulon.sock [--state-dir DIR]
//                 [--min-machines N] [--max-machines N] [--machines N]
//                 [--slots S] [--concurrent N] [--policy fifo|fair|edf]
//       Run the long-lived service daemon (src/svc): tenant sessions over
//       a framed JSON protocol, per-tenant quotas, elastic fleet control
//       against the live backlog, graceful drain with queued-plan
//       persistence into --state-dir. Blocks until a client sends DRAIN.
//
// Workloads: the svc catalog (src/svc/catalog.h) — the mm-s/m/l/xl matmul
// ladder plus rsvd, gnmf, linreg, pagerank, logreg at cloud scale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: binary entry point

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& name, int fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      return Status::InvalidArgument(StrCat("unexpected argument: ", arg));
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StrCat("flag ", arg, " needs a value"));
    }
    args.flags[arg + 2] = argv[++i];
  }
  return args;
}

Result<ProgramSpec> MakeWorkload(const std::string& name, double scale) {
  // One catalog for the CLI and the service daemon: same names, same
  // shapes (so a `predict` estimate matches what `serve` admits).
  return MakeCatalogWorkload(name, scale, /*tile_dim=*/2048);
}

int RunCalibrate() {
  CalibrationOptions probe;
  auto quick = Calibrate(probe);
  if (!quick.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 quick.status().ToString().c_str());
    return 1;
  }
  std::printf("single-point probe:\n");
  std::printf("  gemm       %8.2f GFLOP/s\n", quick->gemm_gflops);
  std::printf("  elementwise%8.2f Gelem/s\n", quick->ew_gelems);
  std::printf("  transpose  %8.2f Gelem/s\n", quick->transpose_gelems);

  auto fitted = CalibrateByRegression(RegressionCalibrationOptions{});
  if (!fitted.ok()) {
    std::fprintf(stderr, "regression calibration failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  std::printf("regression fit (time ~ intercept + slope * work):\n");
  std::printf("  gemm       %8.2f GFLOP/s  (R^2 %.4f)\n",
              fitted->gemm_gflops(), fitted->gemm.r_squared);
  std::printf("  elementwise%8.2f Gelem/s  (R^2 %.4f)\n",
              fitted->ew_gelems(), fitted->elementwise.r_squared);
  std::printf("  transpose  %8.2f Gelem/s  (R^2 %.4f)\n",
              fitted->transpose_gelems(), fitted->transpose.r_squared);
  const TileOpCostModel model = fitted->ToCostModel();
  std::printf("reference-normalized cost model: ew %.3f, transpose %.3f, "
              "per-tile overhead %.2e s\n",
              model.ew_gelems_per_sec, model.transpose_gelems_per_sec,
              model.per_tile_overhead_seconds);
  return 0;
}

int RunPredict(const Args& args) {
  auto spec = MakeWorkload(args.Get("workload", "rsvd"),
                           args.GetDouble("scale", 1.0));
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto machine = FindMachine(args.Get("type", "m1.large"));
  if (!machine.ok()) {
    std::fprintf(stderr, "%s\n", machine.status().ToString().c_str());
    return 1;
  }
  ClusterConfig cluster{machine.value(), args.GetInt("machines", 8),
                        args.GetInt("slots", 2 * machine->cores)};
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  options.tune_mm_per_job = !args.Has("no-tuner");
  // --memory-budget-mb charges tasks the out-of-core streaming refetch
  // term, so predictions show the stream-vs-resident crossover.
  options.memory_budget_bytes = static_cast<int64_t>(
      args.GetDouble("memory-budget-mb", 0.0) * 1024.0 * 1024.0);
  // --trace records the simulated schedule on the virtual clock;
  // --metrics prints the run's counters. Either one turns the shared
  // registry on so dfs.* traffic is attributed too.
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  MetricsRegistry metrics;
  const std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) options.tracer = &tracer;
  if (!trace_path.empty() || args.Has("metrics")) options.metrics = &metrics;
  auto prediction = PredictProgram(*spec, cluster, options);
  if (!prediction.ok()) {
    std::fprintf(stderr, "%s\n", prediction.status().ToString().c_str());
    return 1;
  }
  std::printf("%s on %s:\n", args.Get("workload", "rsvd").c_str(),
              cluster.ToString().c_str());
  std::printf("  predicted time: %s\n",
              FormatDuration(prediction->seconds).c_str());
  std::printf("  predicted cost: %s (hourly billing)\n",
              FormatMoney(prediction->dollars).c_str());
  std::printf("%s", FormatPlanStats(prediction->stats).c_str());
  if (!trace_path.empty()) {
    Status st = tracer.WriteChromeJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s (chrome://tracing)\n",
                tracer.span_count(), trace_path.c_str());
  }
  if (args.Has("metrics")) {
    std::printf("metrics:\n%s", FormatMetrics(metrics.Snapshot()).c_str());
  }
  return 0;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      if (start < list.size()) parts.push_back(list.substr(start));
      break;
    }
    if (comma > start) parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// i-th value of a broadcastable comma list: one entry applies to every
/// submission, otherwise entries match submissions by position.
double ListValue(const std::vector<std::string>& values, size_t i,
                 double fallback) {
  if (values.empty()) return fallback;
  const size_t index = values.size() == 1 ? 0 : i;
  if (index >= values.size()) return fallback;
  return std::atof(values[index].c_str());
}

int RunSubmit(const Args& args) {
  const std::vector<std::string> workloads =
      SplitCommas(args.Get("workloads", args.Get("workload", "rsvd,gnmf")));
  if (workloads.empty()) {
    std::fprintf(stderr, "no workloads given\n");
    return 1;
  }
  auto machine = FindMachine(args.Get("type", "m1.large"));
  if (!machine.ok()) {
    std::fprintf(stderr, "%s\n", machine.status().ToString().c_str());
    return 1;
  }
  ClusterConfig cluster{machine.value(), args.GetInt("machines", 8),
                        args.GetInt("slots", 2 * machine->cores)};
  auto policy = ParseSchedPolicy(args.Get("policy", "edf"));
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> deadlines =
      SplitCommas(args.Get("deadline-seconds", ""));
  const std::vector<std::string> budgets =
      SplitCommas(args.Get("budget-dollars", ""));

  // One shared simulated cluster for every admitted plan.
  PredictorOptions predictor;
  predictor.lowering.tile_dim = 2048;
  DfsOptions dfs_options;
  dfs_options.num_nodes = cluster.num_machines;
  dfs_options.replication = predictor.dfs_replication;
  dfs_options.seed = predictor.seed;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  SimEngineOptions sim;
  sim.replication = predictor.dfs_replication;
  sim.noise_sigma = 0.0;
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  MetricsRegistry metrics;
  const std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) sim.tracer = &tracer;
  SimEngine engine(cluster, sim);
  TileOpCostModel cost = predictor.cost;

  WorkloadManagerOptions manager_options;
  manager_options.policy = *policy;
  manager_options.max_concurrent_plans = args.GetInt("concurrent", 2);
  manager_options.virtual_time = true;  // sim engine = virtual clock
  manager_options.defer_start = true;   // queue everything, then schedule
  manager_options.executor.real_mode = false;
  manager_options.executor.job_startup_seconds =
      predictor.job_startup_seconds;
  manager_options.metrics = &metrics;
  if (!trace_path.empty()) manager_options.tracer = &tracer;
  WorkloadManager manager(&store, &engine, &cost, manager_options);

  // --json 1: one machine-readable report on stdout instead of the human
  // schedule (stderr still carries hard errors).
  const bool json = args.Has("json");
  JsonValue report = JsonValue::Object();
  report.Set("cluster", cluster.ToString())
      .Set("policy", SchedPolicyName(*policy));
  JsonValue submissions = JsonValue::Array();

  if (!json) {
    std::printf("cluster %s, policy %s:\n", cluster.ToString().c_str(),
                SchedPolicyName(*policy));
  }
  std::vector<int64_t> admitted;
  int rejected = 0;
  for (size_t i = 0; i < workloads.size(); ++i) {
    auto spec = MakeWorkload(workloads[i], args.GetDouble("scale", 1.0));
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    Submission submission;
    submission.name = StrCat(workloads[i], "-", i + 1);
    submission.tenant = workloads[i];
    submission.deadline_seconds = ListValue(deadlines, i, 0.0);
    submission.budget_dollars = ListValue(budgets, i, 0.0);
    auto estimate = EstimateForAdmission(*spec, cluster, predictor);
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
      return 1;
    }
    submission.estimate = *estimate;
    // Namespace this plan's temporaries so concurrent plans sharing the
    // store never collide (or drop each other's intermediates).
    LoweringOptions lowering = predictor.lowering;
    lowering.temp_prefix = StrCat(submission.name, "_tmp");
    auto lowered = PrepareProgram(*spec, &store, lowering);
    if (!lowered.ok()) {
      std::fprintf(stderr, "%s\n", lowered.status().ToString().c_str());
      return 1;
    }
    const std::string name = submission.name;
    submission.plan = std::move(lowered->plan);
    auto id = manager.Submit(std::move(submission));
    JsonValue entry = JsonValue::Object();
    entry.Set("workload", workloads[i])
        .Set("name", name)
        .Set("admitted", id.ok())
        .Set("estimate_seconds", estimate->seconds)
        .Set("estimate_dollars", estimate->dollars);
    if (id.ok()) {
      entry.Set("plan", *id);
      if (!json) {
        std::printf("  ADMIT  %s as plan %lld (est %s, %s)\n", name.c_str(),
                    static_cast<long long>(*id),
                    FormatDuration(estimate->seconds).c_str(),
                    FormatMoney(estimate->dollars).c_str());
      }
      admitted.push_back(*id);
    } else {
      entry.Set("reason", std::string(id.status().message()));
      if (!json) {
        std::printf("  REJECT %s: %s\n", name.c_str(),
                    id.status().message().c_str());
      }
      rejected++;
    }
    submissions.Append(std::move(entry));
  }

  manager.Start();
  const std::vector<PlanOutcome> outcomes = manager.Drain();
  if (!json) {
    std::printf("schedule (%s clock):\n",
                manager_options.virtual_time ? "virtual" : "wall");
  }
  JsonValue schedule = JsonValue::Array();
  for (const PlanOutcome& outcome : outcomes) {
    if (json) {
      JsonValue entry = JsonValue::Object();
      entry.Set("plan", outcome.plan_id)
          .Set("name", outcome.name)
          .Set("state", PlanStateName(outcome.state))
          .Set("start_seconds", outcome.start_seconds)
          .Set("finish_seconds", outcome.finish_seconds)
          .Set("queue_wait_seconds", outcome.queue_wait_seconds());
      if (outcome.deadline_abs_seconds > 0.0) {
        entry.Set("deadline_met", outcome.deadline_met);
      }
      schedule.Append(std::move(entry));
      continue;
    }
    std::printf("  plan %lld %-12s %-9s start %8.1fs finish %8.1fs"
                " wait %6.1fs%s\n",
                static_cast<long long>(outcome.plan_id),
                outcome.name.c_str(), PlanStateName(outcome.state),
                outcome.start_seconds, outcome.finish_seconds,
                outcome.queue_wait_seconds(),
                outcome.deadline_abs_seconds > 0.0
                    ? (outcome.deadline_met ? "  deadline met"
                                            : "  DEADLINE MISSED")
                    : "");
  }
  const MetricsSnapshot snapshot = metrics.Snapshot();
  if (json) {
    report.Set("submissions", std::move(submissions))
        .Set("schedule", std::move(schedule))
        .Set("admitted", snapshot.CounterOr("sched.admitted", 0))
        .Set("rejected", snapshot.CounterOr("sched.rejected", 0))
        .Set("completed", snapshot.CounterOr("sched.completed", 0))
        .Set("deadline_missed", snapshot.CounterOr("sched.deadline.missed", 0));
    std::printf("%s\n", report.ToString().c_str());
  } else {
    std::printf("admitted %lld, rejected %lld, completed %lld, "
                "deadline misses %lld\n",
                static_cast<long long>(snapshot.CounterOr("sched.admitted", 0)),
                static_cast<long long>(snapshot.CounterOr("sched.rejected", 0)),
                static_cast<long long>(
                    snapshot.CounterOr("sched.completed", 0)),
                static_cast<long long>(
                    snapshot.CounterOr("sched.deadline.missed", 0)));
  }
  if (!trace_path.empty()) {
    Status st = tracer.WriteChromeJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (!json) {
      std::printf("trace: %lld spans -> %s (chrome://tracing)\n",
                  static_cast<long long>(tracer.span_count()),
                  trace_path.c_str());
    }
  }
  // A rejected submission is a failed request: scripts keying off the exit
  // code see it without parsing the report.
  return rejected > 0 ? 1 : 0;
}

int RunPlan(const Args& args) {
  auto spec = MakeWorkload(args.Get("workload", "rsvd"),
                           args.GetDouble("scale", 1.0));
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  SearchSpace space;
  space.cluster_sizes = {1, 2, 4, 8, 16, 32};
  auto points = EnumeratePlans(*spec, space, options);
  if (!points.ok()) {
    std::fprintf(stderr, "%s\n", points.status().ToString().c_str());
    return 1;
  }
  std::printf("evaluated %zu plans; Pareto frontier:\n", points->size());
  for (const PlanPoint& p : ParetoFrontier(*points)) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  if (args.Has("deadline")) {
    const double minutes = args.GetDouble("deadline", 60.0);
    auto best = MinCostUnderDeadline(*points, minutes * 60.0);
    std::printf("cheapest within %.0f min: %s\n", minutes,
                best.ok() ? best->ToString().c_str()
                          : best.status().ToString().c_str());
  }
  if (args.Has("budget")) {
    const double dollars = args.GetDouble("budget", 1.0);
    auto best = MinTimeUnderBudget(*points, dollars);
    std::printf("fastest within %s: %s\n", FormatMoney(dollars).c_str(),
                best.ok() ? best->ToString().c_str()
                          : best.status().ToString().c_str());
  }
  return 0;
}

int RunServe(const Args& args) {
  auto machine = FindMachine(args.Get("type", "m1.large"));
  if (!machine.ok()) {
    std::fprintf(stderr, "%s\n", machine.status().ToString().c_str());
    return 1;
  }
  auto policy = ParseSchedPolicy(args.Get("policy", "fair"));
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  ServiceOptions options;
  options.machine = *machine;
  options.state_dir = args.Get("state-dir", "");
  options.elastic.min_machines = args.GetInt("min-machines", 2);
  options.elastic.max_machines = args.GetInt("max-machines", 16);
  options.initial_machines = args.GetInt("machines", 0);
  options.slots_per_machine = args.GetInt("slots", 2);
  options.enable_elastic = args.GetInt("elastic", 1) != 0;
  options.policy = *policy;
  options.max_concurrent_plans = args.GetInt("concurrent", 4);
  options.scale = args.GetDouble("scale", 1.0);
  options.session.default_quota.max_inflight_plans =
      args.GetInt("quota-inflight", 8);
  options.session.default_quota.aggregate_budget_dollars =
      args.GetDouble("quota-budget", 0.0);
  MetricsRegistry metrics;
  options.metrics = &metrics;
  Tracer tracer(Tracer::ClockDomain::kWall);
  const std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) options.tracer = &tracer;

  CumulonService service(options);
  ServiceServer server(&service);
  const std::string address = args.Get("listen", "unix:/tmp/cumulon.sock");
  Status started = server.Start(address);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("cumulon serve: listening on %s (fleet %d..%d x %s, "
              "policy %s)\n",
              address.c_str(), options.elastic.min_machines,
              options.elastic.max_machines, machine->name.c_str(),
              SchedPolicyName(*policy));
  if (service.restored_plans() > 0) {
    std::printf("restored %d queued plan(s) from %s\n",
                service.restored_plans(), options.state_dir.c_str());
  }
  std::fflush(stdout);

  // Runs until a tenant (or an operator via `DRAIN`) drains the daemon.
  server.WaitUntilStopped();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  std::printf("drained: accepted %lld, rejected %lld (quota %lld, "
              "admission %lld), completed %lld, persisted %lld\n",
              static_cast<long long>(
                  snapshot.CounterOr("svc.submit.accepted", 0)),
              static_cast<long long>(
                  snapshot.CounterOr("svc.submit.rejected.quota", 0) +
                  snapshot.CounterOr("svc.submit.rejected.admission", 0) +
                  snapshot.CounterOr("svc.submit.rejected.draining", 0)),
              static_cast<long long>(
                  snapshot.CounterOr("svc.submit.rejected.quota", 0)),
              static_cast<long long>(
                  snapshot.CounterOr("svc.submit.rejected.admission", 0)),
              static_cast<long long>(snapshot.CounterOr("sched.completed", 0)),
              static_cast<long long>(
                  snapshot.CounterOr("svc.drain.persisted", 0)));
  if (!trace_path.empty()) {
    Status st = tracer.WriteChromeJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s (chrome://tracing)\n",
                tracer.span_count(), trace_path.c_str());
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: cumulon <command> [flags]\n"
               "  calibrate\n"
               "  predict --workload W [--type T] [--machines N] [--slots S]"
               " [--scale F] [--no-tuner 1] [--memory-budget-mb MB]"
               " [--trace FILE] [--metrics 1]\n"
               "  plan    --workload W [--deadline MIN] [--budget DOLLARS]"
               " [--scale F]\n"
               "  submit  --workloads W1,W2,... [--deadline-seconds S[,S2..]]"
               " [--budget-dollars D[,D2..]] [--policy fifo|fair|edf]"
               " [--concurrent N] [--type T] [--machines N] [--slots S]"
               " [--scale F] [--trace FILE] [--json 1]\n"
               "  serve   --listen unix:PATH|tcp:HOST:PORT [--state-dir DIR]"
               " [--min-machines N] [--max-machines N] [--machines N]"
               " [--slots S] [--concurrent N] [--policy fifo|fair|edf]"
               " [--quota-inflight N] [--quota-budget D] [--elastic 0|1]"
               " [--type T] [--scale F] [--trace FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->command == "calibrate") return RunCalibrate();
  if (args->command == "predict") return RunPredict(*args);
  if (args->command == "plan") return RunPlan(*args);
  if (args->command == "submit") return RunSubmit(*args);
  if (args->command == "serve") return RunServe(*args);
  std::fprintf(stderr, "unknown command '%s'\n", args->command.c_str());
  PrintUsage();
  return 2;
}
