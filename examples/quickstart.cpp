// Quickstart: define a small matrix program, run it for real on a simulated
// cluster + DFS, and verify the result against a single-node reference.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <map>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: example code

int RunQuickstart() {
  // 1. A 3-node "cluster" with an HDFS-like DFS (2-way replication).
  DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs_options.replication = 2;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);

  // 2. Generate inputs as tiled matrices in the DFS.
  const int64_t n = 256, tile = 64;
  Rng rng(42);
  TiledMatrix a{"A", TileLayout::Square(n, n, tile)};
  TiledMatrix b{"B", TileLayout::Square(n, n, tile)};
  TiledMatrix d{"D", TileLayout::Square(n, n, tile)};
  for (const TiledMatrix& m : {a, b, d}) {
    Status st = GenerateMatrix(m, FillKind::kGaussian, 0.0, &rng, &store);
    CUMULON_CHECK(st.ok()) << st;
  }

  // 3. Write the program with the expression API. The element-wise epilogue
  //    (+D, then *0.5) is fused into the multiply job automatically.
  Program program;
  auto ea = Expr::Input("A", n, n);
  auto eb = Expr::Input("B", n, n);
  auto ed = Expr::Input("D", n, n);
  program.Assign("C", Scale(ea * eb + ed, 0.5));

  std::map<std::string, TiledMatrix> bindings = {
      {"A", a}, {"B", b}, {"D", d}};
  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(OptimizeProgram(program), bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();
  std::printf("Physical plan:\n%s\n", lowered->plan.DebugString().c_str());

  // 4. Execute for real on a thread-pool engine.
  ClusterConfig cluster{MachineProfile{}, 3, 2};
  RealEngine engine(cluster, RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  auto stats = executor.Run(lowered->plan);
  CUMULON_CHECK(stats.ok()) << stats.status();
  std::printf("Ran %d tasks in %zu job(s); DFS moved %s (%.0f%% local)\n",
              stats->total_tasks, stats->jobs.size(),
              FormatBytes(dfs.TotalStats().bytes_read()).c_str(),
              100.0 * dfs.TotalStats().locality_fraction());

  // 5. Verify against the single-node reference implementation.
  auto loaded = LoadDense(lowered->outputs.at("C"), &store);
  CUMULON_CHECK(loaded.ok()) << loaded.status();
  Rng ref_rng(42);
  auto da = LoadDense(a, &store);
  auto db = LoadDense(b, &store);
  auto dd = LoadDense(d, &store);
  CUMULON_CHECK(da.ok() && db.ok() && dd.ok());
  auto expected = da->Multiply(*db)->Binary(BinaryOp::kAdd, *dd);
  CUMULON_CHECK(expected.ok());
  auto diff = loaded->MaxAbsDiff(expected->Unary(UnaryOp::kScale, 0.5));
  CUMULON_CHECK(diff.ok());
  std::printf("max |distributed - reference| = %.2e\n", diff.value());
  return diff.value() < 1e-9 ? 0 : 1;
}

}  // namespace

int main() { return RunQuickstart(); }
