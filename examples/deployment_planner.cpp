// Deployment planner: the user-facing workflow of the paper's optimizer.
// Given a program and a time OR money constraint, search the space of
// {machine type x cluster size x slots x multiply splits} and report the
// Pareto trade-off curve plus the constrained optimum.
//
// Usage:
//   deployment_planner [deadline_minutes] [budget_dollars]
// Defaults: 60 minutes, $2.

#include <cstdio>
#include <cstdlib>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: example code

int RunPlanner(double deadline_minutes, double budget_dollars) {
  RsvdSpec spec;
  spec.m = 1 << 16;
  spec.n = 1 << 13;
  spec.l = 64;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildRsvd1(spec));
  program_spec.inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };
  std::printf("Program:\n%s",
              program_spec.program.DebugString().c_str());
  std::printf("A is %lld x %lld (%s)\n\n", static_cast<long long>(spec.m),
              static_cast<long long>(spec.n),
              FormatBytes(program_spec.inputs[0].layout.TotalBytes()).c_str());

  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  SearchSpace space;
  space.cluster_sizes = {1, 2, 4, 8, 16, 32};

  auto points = EnumeratePlans(program_spec, space, options);
  CUMULON_CHECK(points.ok()) << points.status();
  std::printf("Evaluated %zu deployment plans.\n\n", points->size());

  std::printf("Time/cost Pareto frontier:\n");
  for (const PlanPoint& p : ParetoFrontier(*points)) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  std::printf("\nCheapest plan finishing within %.0f minutes:\n",
              deadline_minutes);
  auto by_deadline = MinCostUnderDeadline(*points, deadline_minutes * 60.0);
  if (by_deadline.ok()) {
    std::printf("  %s\n", by_deadline->ToString().c_str());
  } else {
    std::printf("  none: %s\n", by_deadline.status().ToString().c_str());
  }

  std::printf("\nFastest plan costing at most %s:\n",
              FormatMoney(budget_dollars).c_str());
  auto by_budget = MinTimeUnderBudget(*points, budget_dollars);
  if (by_budget.ok()) {
    std::printf("  %s\n", by_budget->ToString().c_str());
  } else {
    std::printf("  none: %s\n", by_budget.status().ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const double deadline = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double budget = argc > 2 ? std::atof(argv[2]) : 2.0;
  return RunPlanner(deadline, budget);
}
