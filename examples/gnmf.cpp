// GNMF: Gaussian non-negative matrix factorization via multiplicative
// updates, the iterative statistical workload family the paper targets.
// Runs several iterations for real on the simulated cluster and shows the
// reconstruction error decreasing monotonically.

#include <cstdio>
#include <map>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: example code

double ReconstructionError(const DenseMatrix& v, const DenseMatrix& w,
                           const DenseMatrix& h) {
  auto wh = w.Multiply(h);
  CUMULON_CHECK(wh.ok());
  auto diff = v.Binary(BinaryOp::kSub, *wh);
  CUMULON_CHECK(diff.ok());
  return diff->FrobeniusNorm();
}

int RunGnmf() {
  GnmfSpec spec;
  spec.m = 96;
  spec.n = 64;
  spec.k = 8;
  const int64_t tile = 32;
  const int iterations = 5;

  SimDfs dfs(DfsOptions{});
  DfsTileStore store(&dfs);
  Rng rng(3);

  // Positive data: V ~ U(0,1), factors start at U(0.1, 1).
  std::map<std::string, TiledMatrix> bindings = {
      {"V", {"V", TileLayout::Square(spec.m, spec.n, tile)}},
      {"W", {"W", TileLayout::Square(spec.m, spec.k, tile)}},
      {"H", {"H", TileLayout::Square(spec.k, spec.n, tile)}},
  };
  CUMULON_CHECK(GenerateMatrix(bindings.at("V"), FillKind::kUniform, 0.0,
                               &rng, &store).ok());
  CUMULON_CHECK(GenerateMatrix(bindings.at("W"), FillKind::kUniform, 0.0,
                               &rng, &store).ok());
  CUMULON_CHECK(GenerateMatrix(bindings.at("H"), FillKind::kUniform, 0.0,
                               &rng, &store).ok());

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});

  auto dv = LoadDense(bindings.at("V"), &store);
  CUMULON_CHECK(dv.ok());

  double previous_error = 1e300;
  for (int iter = 0; iter < iterations; ++iter) {
    Program program = OptimizeProgram(BuildGnmfIteration(spec));
    LoweringOptions lowering;
    lowering.tile_dim = tile;
    lowering.temp_prefix = StrCat("tmp_it", iter);
    auto lowered = Lower(program, bindings, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    auto stats = executor.Run(lowered->plan);
    CUMULON_CHECK(stats.ok()) << stats.status();

    // Rebind the updated factors for the next iteration.
    bindings.insert_or_assign("H", lowered->outputs.at("H"));
    bindings.insert_or_assign("W", lowered->outputs.at("W"));

    auto dw = LoadDense(bindings.at("W"), &store);
    auto dh = LoadDense(bindings.at("H"), &store);
    CUMULON_CHECK(dw.ok() && dh.ok());
    const double error = ReconstructionError(*dv, *dw, *dh);
    std::printf("iter %d: ||V - W H||_F = %.6f\n", iter + 1, error);
    CUMULON_CHECK(error <= previous_error + 1e-9)
        << "multiplicative updates must not increase the objective";
    previous_error = error;
  }
  std::printf("GNMF converged monotonically over %d iterations.\n",
              iterations);
  return 0;
}

}  // namespace

int main() { return RunGnmf(); }
