// PCA via power iteration: the statistics-pipeline example that exercises
// Cumulon's aggregation and broadcast operators together with multiplies.
//
//   1. mu  = col_sums(X) / n          (AggregateJob)
//   2. Xc  = X - mu                   (broadcast EwChainJob)
//   3. for k iterations: v = normalize(Xc^T (Xc v))   (fused multiplies)
//
// The dominant eigenvector estimate converges; we report the Rayleigh
// quotient per iteration and verify the result against a single-node
// reference.

#include <cmath>
#include <cstdio>
#include <map>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: example code

double RayleighQuotient(const DenseMatrix& xc, const DenseMatrix& v) {
  auto xv = xc.Multiply(v);
  CUMULON_CHECK(xv.ok());
  double numerator = 0.0;
  for (int64_t r = 0; r < xv->rows(); ++r) {
    numerator += xv->At(r, 0) * xv->At(r, 0);
  }
  double denominator = 0.0;
  for (int64_t r = 0; r < v.rows(); ++r) denominator += v.At(r, 0) * v.At(r, 0);
  return numerator / denominator;
}

int Run() {
  const int64_t n = 192, d = 96, tile = 32;
  const int iterations = 6;

  SimDfs dfs(DfsOptions{});
  DfsTileStore store(&dfs);
  Rng rng(9);

  // Data with a planted dominant direction.
  DenseMatrix x(n, d);
  for (int64_t r = 0; r < n; ++r) {
    const double factor = rng.NextGaussian() * 3.0;
    for (int64_t c = 0; c < d; ++c) {
      const double planted = factor * std::sin(0.1 * c);
      x.Set(r, c, planted + rng.NextGaussian() * 0.5 + 2.0);
    }
  }
  std::map<std::string, TiledMatrix> bindings = {
      {"X", {"X", TileLayout::Square(n, d, tile)}},
      {"v", {"v", TileLayout::Square(d, 1, tile)}},
  };
  CUMULON_CHECK(StoreDense(x, bindings.at("X"), &store).ok());
  DenseMatrix v0 = DenseMatrix::Gaussian(d, 1, &rng);
  CUMULON_CHECK(StoreDense(v0, bindings.at("v"), &store).ok());

  // Step 1+2: standardize.
  Program prep;
  auto ex = Expr::Input("X", n, d);
  prep.Assign("mu", Scale(Expr::ColSums(ex), 1.0 / n));
  prep.Assign("Xc", ex - Expr::Input("mu", 1, d));
  // Step 3: unrolled power iterations on the covariance (implicitly
  // Xc^T Xc v, chain-ordered so no d x d matrix is ever materialized).
  Program body;
  auto exc = Expr::Input("Xc", n, d);
  auto ev = Expr::Input("v", d, 1);
  body.Assign("v", Scale(T(exc) * (exc * ev), 1.0 / n));
  Program program = prep;
  for (const Assignment& a : Repeat(body, iterations).assignments) {
    program.assignments.push_back(a);
  }

  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(OptimizeProgram(program), bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();
  std::printf("plan has %zu jobs for %d power iterations\n",
              lowered->plan.jobs.size(), iterations);

  RealEngine engine(ClusterConfig{MachineProfile{}, 3, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  auto stats = executor.Run(lowered->plan);
  CUMULON_CHECK(stats.ok()) << stats.status();

  // Verify against the single-node reference.
  DenseMatrix mu = x.ColSums().Unary(UnaryOp::kScale, 1.0 / n);
  auto xc = x.Broadcast(BinaryOp::kSub, mu, true);
  CUMULON_CHECK(xc.ok());
  DenseMatrix v_ref = v0;
  for (int i = 0; i < iterations; ++i) {
    auto xv = xc->Multiply(v_ref);
    auto next = xc->Transpose().Multiply(*xv);
    CUMULON_CHECK(next.ok());
    v_ref = next->Unary(UnaryOp::kScale, 1.0 / n);
    std::printf("iter %d: Rayleigh quotient %.4f\n", i + 1,
                RayleighQuotient(*xc, v_ref));
  }

  auto v_out = LoadDense(lowered->outputs.at("v"), &store);
  CUMULON_CHECK(v_out.ok());
  auto diff = v_ref.MaxAbsDiff(*v_out);
  CUMULON_CHECK(diff.ok());
  std::printf("max |distributed - reference| = %.2e\n", diff.value());
  std::printf("DFS moved %s across %d tasks\n",
              FormatBytes(dfs.TotalStats().bytes_read()).c_str(),
              stats->total_tasks);
  return diff.value() < 1e-6 ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
