// RSVD-1 (the paper's running example): one randomized-SVD power-iteration
// step, Y = A A^T A Omega.
//
// Part 1 runs a small instance for real and verifies it. Part 2 shows the
// logical optimizer's multiply-chain reordering, then asks the deployment
// optimizer to predict time/cost of a cloud-scale instance on several
// clusters — the workflow a Cumulon user follows before renting machines.

#include <cstdio>
#include <map>

#include "cumulon/cumulon.h"

namespace {

using namespace cumulon;  // NOLINT: example code

void RunSmallForReal() {
  std::printf("== Part 1: real execution of a small RSVD-1 ==\n");
  RsvdSpec spec;
  spec.m = 128;
  spec.n = 96;
  spec.l = 8;

  SimDfs dfs(DfsOptions{});
  DfsTileStore store(&dfs);
  Rng rng(1);
  std::map<std::string, TiledMatrix> bindings = {
      {"A", {"A", TileLayout::Square(spec.m, spec.n, 32)}},
      {"Omega", {"Omega", TileLayout::Square(spec.n, spec.l, 32)}},
  };
  for (const auto& [name, matrix] : bindings) {
    Status st = GenerateMatrix(matrix, FillKind::kGaussian, 0.0, &rng, &store);
    CUMULON_CHECK(st.ok()) << st;
  }

  Program naive = BuildRsvd1(spec);
  Program optimized = OptimizeProgram(naive);
  std::printf("naive chain flops:     %.3g\n",
              MatMulFlops(naive.assignments[0].expr));
  std::printf("optimized chain flops: %.3g\n",
              MatMulFlops(optimized.assignments[0].expr));

  LoweringOptions lowering;
  lowering.tile_dim = 32;
  auto lowered = Lower(optimized, bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  auto stats = executor.Run(lowered->plan);
  CUMULON_CHECK(stats.ok()) << stats.status();

  auto y = LoadDense(lowered->outputs.at("Y"), &store);
  CUMULON_CHECK(y.ok());
  std::printf("Y is %lld x %lld, ||Y||_F = %.4g (%d tasks, %zu jobs)\n\n",
              static_cast<long long>(y->rows()),
              static_cast<long long>(y->cols()), y->FrobeniusNorm(),
              stats->total_tasks, stats->jobs.size());
}

void PlanCloudScale() {
  std::printf("== Part 2: deployment planning for a cloud-scale RSVD-1 ==\n");
  RsvdSpec spec;
  spec.m = 1 << 17;  // 131072 x 16384 A: ~17 GB
  spec.n = 1 << 14;
  spec.l = 64;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildRsvd1(spec));
  program_spec.inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };

  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  for (const char* machine_name : {"m1.small", "m1.xlarge", "c1.xlarge"}) {
    auto machine = FindMachine(machine_name);
    CUMULON_CHECK(machine.ok());
    for (int n : {4, 16, 64}) {
      ClusterConfig cluster{machine.value(), n, 2 * machine->cores};
      auto prediction = PredictProgram(program_spec, cluster, options);
      CUMULON_CHECK(prediction.ok()) << prediction.status();
      std::printf("  %-32s -> %10s  %s\n", cluster.ToString().c_str(),
                  FormatDuration(prediction->seconds).c_str(),
                  FormatMoney(prediction->dollars).c_str());
    }
  }
}

}  // namespace

int main() {
  RunSmallForReal();
  PlanCloudScale();
  return 0;
}
