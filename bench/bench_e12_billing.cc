// E12 — the billing quantum's effect on plan choice: with hourly billing
// (the 2013 EC2 model) the cheapest plan snaps to configurations that fill
// whole hours; per-second billing frees the optimizer to scale out.
//
// Paper expectation (pricing discussion): the optimal cluster size under a
// deadline depends on the billing granularity, not just raw speed.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void Run() {
  RsvdSpec spec;
  spec.m = 1 << 17;
  spec.n = 1 << 14;
  spec.l = 64;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildRsvd1(spec));
  program_spec.inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };
  SearchSpace space;
  space.machine_types = {"m1.large", "c1.xlarge"};
  space.cluster_sizes = {1, 2, 4, 8, 16, 32};
  space.mm_candidates = {MatMulParams{1, 1, 0}};

  PrintHeader("E12: cheapest plan per deadline, hourly vs per-second billing");
  std::printf("%-12s | %-34s | %-34s\n", "deadline", "hourly quantum",
              "per-second quantum");
  PrintRule();
  std::vector<PlanPoint> hourly_points, per_second_points;
  {
    PredictorOptions options;
    options.lowering.tile_dim = 2048;
    options.billing.quantum_seconds = 3600.0;
    auto points = EnumeratePlans(program_spec, space, options);
    CUMULON_CHECK(points.ok()) << points.status();
    hourly_points = std::move(points).value();
    options.billing.quantum_seconds = 1.0;
    points = EnumeratePlans(program_spec, space, options);
    CUMULON_CHECK(points.ok()) << points.status();
    per_second_points = std::move(points).value();
  }

  auto describe = [](const Result<PlanPoint>& best) {
    return best.ok() ? StrCat(best->cluster.num_machines, "x",
                              best->cluster.machine.name, " @ ",
                              FormatMoney(best->dollars), " (",
                              FormatDuration(best->seconds), ")")
                     : std::string("infeasible");
  };

  for (double minutes : {15.0, 30.0, 60.0, 180.0}) {
    std::printf("%9.0f min | %-34s | %-34s\n", minutes,
                describe(MinCostUnderDeadline(hourly_points,
                                              minutes * 60.0)).c_str(),
                describe(MinCostUnderDeadline(per_second_points,
                                              minutes * 60.0)).c_str());
  }

  std::printf("\nfastest plan per budget, hourly vs per-second billing:\n");
  PrintRule();
  for (double dollars : {0.1, 0.25, 0.5, 1.0}) {
    std::printf("%10s    | %-34s | %-34s\n", FormatMoney(dollars).c_str(),
                describe(MinTimeUnderBudget(hourly_points, dollars)).c_str(),
                describe(MinTimeUnderBudget(per_second_points,
                                            dollars)).c_str());
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
