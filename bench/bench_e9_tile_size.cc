// E9 — tile (storage block) size: the physical-design parameter of
// Cumulon's matrix store. Small tiles bloat per-tile overhead and task
// counts; huge tiles hurt parallelism and memory footprint.
//
// Paper expectation: a broad optimum at mid-size tiles; kernel throughput
// (measured for real below) also peaks once a tile no longer fits cache.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void SimulatedJobSweep() {
  PrintHeader("E9a: simulated multiply time vs tile size (16 x m1.large)");
  std::printf("%-12s %8s %10s %12s\n", "tile", "tasks", "job time",
              "bytes read");
  PrintRule();
  const int64_t dim = 32768;
  for (int64_t tile : {512, 1024, 2048, 4096, 8192}) {
    SimWorld world(DefaultCluster(16));
    TiledMatrix a = Square("A", dim, tile);
    TiledMatrix b = Square("B", dim, tile);
    world.LoadInput(a);
    world.LoadInput(b);
    TiledMatrix c = Square("C", dim, tile);
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
    PlanStats stats = world.Run(plan);
    std::printf("%-12lld %8d %10s %12s\n", static_cast<long long>(tile),
                stats.total_tasks, FormatDuration(stats.total_seconds).c_str(),
                FormatBytes(stats.bytes_read).c_str());
  }
}

void RealKernelSweep() {
  PrintHeader("E9b: real per-tile GEMM throughput vs tile size (this host)");
  std::printf("%-12s %14s\n", "tile", "GFLOP/s");
  PrintRule();
  for (int64_t tile : {32, 64, 128, 256, 384}) {
    CalibrationOptions options;
    options.tile_dim = tile;
    options.repetitions = 3;
    auto result = Calibrate(options);
    CUMULON_CHECK(result.ok()) << result.status();
    std::printf("%-12lld %14.2f\n", static_cast<long long>(tile),
                result->gemm_gflops);
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::SimulatedJobSweep();
  cumulon::bench::RealKernelSweep();
  return 0;
}
