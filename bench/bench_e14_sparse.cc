// E14 (extension) — sparse kernels: CSR SpMM vs dense GEMM as density
// varies, measured for real on this host. Statistical inputs (document
// matrices, one-hot features) are often sparse; the crossover density
// tells the storage layer when CSR tiles pay off.
//
// Expectation: SpMM wins below a crossover density (flops scale with nnz)
// and loses above it (irregular access beats streaming only when it skips
// enough work). Storage crossover for CSR sits at density ~0.5 (16 bytes
// per nonzero vs 8 per dense element).

#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace cumulon::bench {
namespace {

void Run() {
  PrintHeader("E14: CSR SpMM vs dense GEMM, 256x256 tiles (this host)");
  std::printf("%-10s %12s %12s %10s %14s\n", "density", "gemm", "spmm",
              "speedup", "bytes s/d");
  PrintRule();
  const int64_t d = 256;
  Rng rng(5);
  Tile dense_b(d, d), c(d, d);
  FillGaussian(&dense_b, &rng);

  // Dense baseline time (density-independent).
  Tile dense_a(d, d);
  FillGaussian(&dense_a, &rng);
  double gemm_time = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    Status st = Gemm(dense_a, dense_b, 1.0, 0.0, &c);
    CUMULON_CHECK(st.ok()) << st;
    gemm_time = std::min(gemm_time, sw.ElapsedSeconds());
  }

  double crossover = -1.0;
  for (double density : {0.005, 0.01, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    SparseTile sparse = SparseTile::Random(d, d, density, &rng);
    double spmm_time = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      Status st = SparseTile::SpMM(sparse, dense_b, 1.0, 0.0, &c);
      CUMULON_CHECK(st.ok()) << st;
      spmm_time = std::min(spmm_time, sw.ElapsedSeconds());
    }
    const double speedup = gemm_time / spmm_time;
    if (speedup < 1.0 && crossover < 0.0) crossover = density;
    Tile dense_equivalent(d, d);
    std::printf("%-10.3f %10.3fms %10.3fms %9.2fx %13.2f\n", density,
                gemm_time * 1e3, spmm_time * 1e3, speedup,
                static_cast<double>(sparse.SizeBytes()) /
                    dense_equivalent.SizeBytes());
  }
  PrintRule();
  if (crossover > 0.0) {
    std::printf("compute crossover near density %.2f\n", crossover);
  } else {
    std::printf("SpMM won at every tested density\n");
  }
}

/// E14b — operator level: simulated job time of the sparse multiply
/// operator vs the dense one on the same logical 32k x 32k x 8k multiply,
/// as the left matrix's density varies.
void JobLevel() {
  PrintHeader(
      "E14b: simulated job time, sparse vs dense multiply (16 x m1.large)");
  std::printf("%-10s %14s %14s %10s\n", "density", "dense op", "sparse op",
              "speedup");
  PrintRule();
  const int64_t tile = 2048;
  TiledMatrix s{"S", TileLayout::Square(32768, 32768, tile)};
  TiledMatrix b{"B", TileLayout::Square(32768, 8192, tile)};

  // Dense operator time (density-independent).
  double dense_time = 0.0;
  {
    SimWorld world(DefaultCluster(16));
    world.LoadInput(s);
    world.LoadInput(b);
    TiledMatrix c{"C", TileLayout::Square(32768, 8192, tile)};
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(s, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
    dense_time = world.Run(plan).total_seconds;
  }

  for (double density : {0.01, 0.05, 0.2, 0.5}) {
    SimWorld world(DefaultCluster(16));
    SparseTileStore sparse_store(world.dfs());
    // Register the sparse tiles' CSR footprints.
    for (int64_t r = 0; r < s.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < s.layout.grid_cols(); ++c) {
        const int64_t rows = s.layout.TileRowsAt(r);
        const int64_t nnz = static_cast<int64_t>(
            density * rows * s.layout.TileColsAt(c));
        CUMULON_CHECK(world.dfs()
                          ->Write(SparseTileStore::TilePath("S", TileId{r, c}),
                                  24 + (rows + 1) * 8 + nnz * 16, -1, nullptr)
                          .ok());
      }
    }
    world.LoadInput(b);
    TiledMatrix c{"C", TileLayout::Square(32768, 8192, tile)};
    PhysicalPlan plan;
    plan.jobs.push_back(std::make_unique<SparseMatMulJob>(
        "spmm", &sparse_store, s, density, b, c, /*tiles_per_task=*/1));
    const double sparse_time = world.Run(plan).total_seconds;
    std::printf("%-10.2f %14s %14s %9.2fx\n", density,
                FormatDuration(dense_time).c_str(),
                FormatDuration(sparse_time).c_str(),
                dense_time / sparse_time);
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  cumulon::bench::JobLevel();
  return 0;
}
