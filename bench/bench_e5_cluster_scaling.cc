// E5 — time and dollar cost of a full program (RSVD-1) as cluster size
// grows: the provisioning trade-off the paper's optimizer navigates.
//
// Paper expectation: time falls with diminishing returns; with hourly
// billing, cost is non-monotone — there is a sweet spot, after which extra
// machines burn money for little speedup.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void Run() {
  RsvdSpec spec;
  spec.m = 1 << 17;
  spec.n = 1 << 14;
  spec.l = 64;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildRsvd1(spec));
  program_spec.inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());

  PrintHeader("E5: RSVD-1 (131072 x 16384), m1.large cluster scaling");
  std::printf("%-10s %12s %14s %14s\n", "machines", "time",
              "cost (hourly)", "cost (per-sec)");
  PrintRule();
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    PredictorOptions options;
    options.lowering.tile_dim = 2048;
    options.billing.quantum_seconds = 3600.0;
    ClusterConfig cluster{machine.value(), n, 2};
    auto hourly = PredictProgram(program_spec, cluster, options);
    CUMULON_CHECK(hourly.ok()) << hourly.status();
    options.billing.quantum_seconds = 1.0;
    auto per_second = PredictProgram(program_spec, cluster, options);
    CUMULON_CHECK(per_second.ok()) << per_second.status();
    std::printf("%-10d %12s %14s %14s\n", n,
                FormatDuration(hourly->seconds).c_str(),
                FormatMoney(hourly->dollars).c_str(),
                FormatMoney(per_second->dollars).c_str());
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
