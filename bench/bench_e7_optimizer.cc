// E7 — optimizer effectiveness: how much better is the plan Cumulon picks
// than reasonable "default" deployments a user might choose by hand?
//
// Paper expectation: large factors — defaults either miss the deadline or
// overpay by severalfold, because the right machine type / size / splits
// are workload-dependent.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

ProgramSpec MakeSpec(const char* which) {
  ProgramSpec spec;
  if (std::string(which) == "rsvd") {
    RsvdSpec rsvd;
    rsvd.m = 1 << 17;
    rsvd.n = 1 << 14;
    rsvd.l = 64;
    spec.program = OptimizeProgram(BuildRsvd1(rsvd));
    spec.inputs = {
        {"A", TileLayout::Square(rsvd.m, rsvd.n, 2048)},
        {"Omega", TileLayout::Square(rsvd.n, rsvd.l, 2048)},
    };
  } else {
    GnmfSpec gnmf;
    gnmf.m = 1 << 16;
    gnmf.n = 1 << 14;
    gnmf.k = 128;
    spec.program = OptimizeProgram(BuildGnmfIteration(gnmf));
    spec.inputs = {
        {"V", TileLayout::Square(gnmf.m, gnmf.n, 2048)},
        {"W", TileLayout::Square(gnmf.m, gnmf.k, 2048)},
        {"H", TileLayout::Square(gnmf.k, gnmf.n, 2048)},
    };
  }
  return spec;
}

void RunWorkload(const char* which, double deadline_minutes) {
  ProgramSpec spec = MakeSpec(which);
  PredictorOptions options;
  options.lowering.tile_dim = 2048;

  // "Default" deployment: mid-size m1.large cluster, one slot per core,
  // naive splits — a plausible hand-pick.
  auto m1large = FindMachine("m1.large");
  CUMULON_CHECK(m1large.ok());
  ClusterConfig default_cluster{m1large.value(), 8, m1large->cores};
  auto default_run = PredictProgram(spec, default_cluster, options);
  CUMULON_CHECK(default_run.ok()) << default_run.status();

  // Optimizer: search the space, then answer the deadline question.
  SearchSpace space;
  space.cluster_sizes = {1, 2, 4, 8, 16, 32};
  auto points = EnumeratePlans(spec, space, options);
  CUMULON_CHECK(points.ok()) << points.status();
  auto optimized = MinCostUnderDeadline(*points, deadline_minutes * 60.0);

  std::printf("%-8s default: %s -> %s, %s\n", which,
              default_cluster.ToString().c_str(),
              FormatDuration(default_run->seconds).c_str(),
              FormatMoney(default_run->dollars).c_str());
  if (optimized.ok()) {
    std::printf("%-8s optimal (deadline %.0fm): %s\n", which,
                deadline_minutes, optimized->ToString().c_str());
    std::printf("%-8s -> %.2fx cheaper, %.2fx time\n", which,
                default_run->dollars / optimized->dollars,
                optimized->seconds / default_run->seconds);
  } else {
    std::printf("%-8s no plan meets the %.0f-minute deadline\n", which,
                deadline_minutes);
  }
  PrintRule();
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::PrintHeader("E7: optimizer vs default deployments");
  cumulon::bench::RunWorkload("rsvd", 60.0);
  cumulon::bench::RunWorkload("gnmf", 60.0);
  return 0;
}
