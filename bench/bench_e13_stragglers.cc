// E13 (extension) — task-duration variance and speculative execution.
// Real Hadoop task times are noisy with heavy right tails; the paper's
// simulator has to cope with stragglers, and Hadoop's mitigation is
// speculative re-execution.
//
// Expectation: makespan inflates with noise (the last wave waits for its
// slowest task); speculation recovers most of the inflation at the cost
// of duplicate work.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

double Makespan(double sigma, bool speculative, uint64_t seed) {
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());
  ClusterConfig cluster{machine.value(), 16, 2};
  SimEngineOptions options;
  options.noise_sigma = sigma;
  options.speculative_execution = speculative;
  options.seed = seed;
  SimEngine engine(cluster, options);
  JobSpec job;
  for (int i = 0; i < 256; ++i) {
    Task t;
    t.cost.cpu_seconds_ref = 20.0;
    t.cost.bytes_read = 64 << 20;
    job.tasks.push_back(std::move(t));
  }
  auto stats = engine.RunJob(job);
  CUMULON_CHECK(stats.ok()) << stats.status();
  return stats->duration_seconds;
}

void Run() {
  PrintHeader(
      "E13: straggler noise vs makespan, 256 tasks on 16 x m1.large");
  std::printf("%-8s %14s %14s %12s\n", "sigma", "plain", "speculative",
              "recovered");
  PrintRule();
  const int trials = 5;
  for (double sigma : {0.0, 0.2, 0.4, 0.8, 1.2}) {
    double plain = 0.0, speculative = 0.0;
    for (int t = 0; t < trials; ++t) {
      plain += Makespan(sigma, false, 100 + t);
      speculative += Makespan(sigma, true, 100 + t);
    }
    plain /= trials;
    speculative /= trials;
    const double clean = Makespan(0.0, false, 1);
    const double recovered =
        sigma == 0.0 ? 0.0
                     : (plain - speculative) / std::max(plain - clean, 1e-9);
    std::printf("%-8.1f %14s %14s %11.0f%%\n", sigma,
                FormatDuration(plain).c_str(),
                FormatDuration(speculative).c_str(), 100.0 * recovered);
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
