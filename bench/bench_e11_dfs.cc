// E11 — DFS behaviour under the multiply workloads: bytes moved,
// replication overhead, and the locality hit rate that makes Cumulon's
// map-only reads cheap.
//
// Paper expectation: with 3-way replication and delay scheduling, the
// large majority of task input bytes are served from local disk.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void ReplicationSweep() {
  PrintHeader("E11a: storage & placement vs replication factor");
  std::printf("%-6s %14s %14s %12s\n", "repl", "logical bytes",
              "stored bytes", "files");
  PrintRule();
  for (int repl : {1, 2, 3}) {
    DfsOptions options;
    options.num_nodes = 16;
    options.replication = repl;
    SimDfs dfs(options);
    DfsTileStore store(&dfs);
    TiledMatrix a = Square("A", 16384, 2048);
    for (int64_t r = 0; r < a.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < a.layout.grid_cols(); ++c) {
        CUMULON_CHECK(store.PutMeta("A", TileId{r, c},
                                    16 + 2048 * 2048 * 8, 0).ok());
      }
    }
    int64_t stored = 0;
    for (int n = 0; n < options.num_nodes; ++n) {
      stored += dfs.NodeStoredBytes(n);
    }
    std::printf("%-6d %14s %14s %12lld\n", repl,
                FormatBytes(dfs.TotalStoredBytes()).c_str(),
                FormatBytes(stored).c_str(),
                static_cast<long long>(dfs.NumFiles()));
  }
}

void BalanceCheck() {
  PrintHeader("E11b: replica balance across 16 nodes (3-way replication)");
  DfsOptions options;
  options.num_nodes = 16;
  options.replication = 3;
  SimDfs dfs(options);
  DfsTileStore store(&dfs);
  TiledMatrix a = Square("A", 32768, 2048);
  for (int64_t r = 0; r < a.layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < a.layout.grid_cols(); ++c) {
      CUMULON_CHECK(store.PutMeta("A", TileId{r, c},
                                  16 + 2048 * 2048 * 8, -1).ok());
    }
  }
  int64_t min_bytes = INT64_MAX, max_bytes = 0;
  for (int n = 0; n < options.num_nodes; ++n) {
    const int64_t bytes = dfs.NodeStoredBytes(n);
    min_bytes = std::min(min_bytes, bytes);
    max_bytes = std::max(max_bytes, bytes);
  }
  std::printf("per-node stored bytes: min %s, max %s (imbalance %.2fx)\n",
              FormatBytes(min_bytes).c_str(), FormatBytes(max_bytes).c_str(),
              static_cast<double>(max_bytes) / min_bytes);
}

void LocalityUnderWorkload() {
  PrintHeader("E11c: task locality of a multiply job vs replication");
  std::printf("%-6s %12s %14s\n", "repl", "tasks", "non-local tasks");
  PrintRule();
  for (int repl : {1, 2, 3}) {
    auto machine = FindMachine("m1.large");
    CUMULON_CHECK(machine.ok());
    SimWorld world(ClusterConfig{machine.value(), 16, 2}, repl);
    TiledMatrix a = Square("A", 32768, 2048);
    TiledMatrix b = Square("B", 32768, 2048);
    world.LoadInput(a);
    world.LoadInput(b);
    TiledMatrix c = Square("C", 32768, 2048);
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{2, 2, 0}, {}, &plan).ok());
    PlanStats stats = world.Run(plan);
    std::printf("%-6d %12d %14d\n", repl, stats.total_tasks,
                stats.non_local_tasks);
  }
}

void FailureRecovery() {
  PrintHeader("E11d: node failure & re-replication traffic (16 nodes)");
  std::printf("%-6s %16s %16s %12s\n", "repl", "blocks lost",
              "recovery bytes", "data loss?");
  PrintRule();
  for (int repl : {1, 2, 3}) {
    DfsOptions options;
    options.num_nodes = 16;
    options.replication = repl;
    SimDfs dfs(options);
    DfsTileStore store(&dfs);
    TiledMatrix a = Square("A", 32768, 2048);
    for (int64_t r = 0; r < a.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < a.layout.grid_cols(); ++c) {
        CUMULON_CHECK(store.PutMeta("A", TileId{r, c},
                                    16 + 2048 * 2048 * 8, -1).ok());
      }
    }
    const int64_t lost = dfs.KillNode(0);
    const int64_t copied = dfs.ReReplicate();
    // Any tile unreadable after recovery?
    bool data_loss = false;
    for (int64_t r = 0; r < a.layout.grid_rows() && !data_loss; ++r) {
      for (int64_t c = 0; c < a.layout.grid_cols(); ++c) {
        if (!dfs.Read(DfsTileStore::TilePath("A", TileId{r, c}), 1).ok()) {
          data_loss = true;
          break;
        }
      }
    }
    std::printf("%-6d %16lld %16s %12s\n", repl,
                static_cast<long long>(lost), FormatBytes(copied).c_str(),
                data_loss ? "YES" : "no");
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::ReplicationSweep();
  cumulon::bench::BalanceCheck();
  cumulon::bench::LocalityUnderWorkload();
  cumulon::bench::FailureRecovery();
  return 0;
}
