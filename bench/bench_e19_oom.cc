// E19 — out-of-core streaming execution under a per-node memory budget.
// A blocked multiply whose tasks pin operand panels through the budgeted
// TaskTileReader runs at budgets from 2x the node working set down to
// 0.1x, against the unbudgeted resident baseline. The table shows the
// price of each budget: spilled and re-fetched panel traffic rising as
// the window shrinks, wall time following the extra DFS reads, and the
// ledger peak always at or under the cap.
//
// Acceptance (CHECK-enforced, not just printed):
//   - every budgeted run's ledger peak stays <= its budget (hard cap);
//   - the 0.25x run — working set 4x the budget — completes with outputs
//     bit-identical to the resident baseline and nonzero exec.spill.*
//     eviction AND re-fetch traffic;
//   - the resident baseline spills nothing.
//
// A simulation section sweeps the same budgets through the cost model's
// streaming term (PredictorOptions::memory_budget_bytes ->
// StreamingRefetchBytes), showing the predicted stream-vs-resident
// crossover: predicted time is flat while the working set fits and grows
// once it does not.
//
// Flags: --quick (small shapes, 1 rep; the CI configuration),
//        --json FILE (machine-readable rows for BENCH_e19_oom.json).

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

bool g_quick = false;

struct Outcome {
  double seconds = 0.0;
  int64_t spill_evictions = 0;
  int64_t spill_evicted_bytes = 0;
  int64_t spill_refetches = 0;
  int64_t spill_refetch_bytes = 0;
  int64_t spill_unpinned = 0;
  int64_t peak_bytes = 0;
  // Output tiles of C, raw payloads, for bit-identity checks.
  std::map<std::pair<int64_t, int64_t>, std::vector<double>> c_tiles;
};

int64_t Dim() { return g_quick ? 512 : 1024; }
constexpr int64_t kTile = 128;
constexpr int64_t kSlots = 2;
const MatMulParams kParams{2, 2, 0};  // blocked: A panels reused across j

/// Aligned resident footprint of one tile.
int64_t TileMem() { return AlignedFootprintBytes(kTile * kTile * 8); }

/// Per-node working set of the blocked multiply: each slot's task pins a
/// bi x gk A panel, a gk x bj B panel, and the bi x bj accumulators.
int64_t NodeWorkingSetBytes() {
  const int64_t gk = Dim() / kTile;
  const int64_t task_tiles =
      kParams.bi * gk + gk * kParams.bj + kParams.bi * kParams.bj;
  return kSlots * task_tiles * TileMem();
}

Outcome RunReal(int64_t memory_budget_bytes) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 4;
  dfs_options.replication = 2;
  dfs_options.seed = 9;
  // Injected DFS service time keeps the re-fetch traffic visible in wall
  // time (the point of the sweep), without drowning compute entirely.
  dfs_options.read_latency_seconds = 0.002;
  dfs_options.read_bytes_per_sec = 256.0 * (1 << 20);
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  store.EnablePrefetch(/*num_threads=*/8);

  ClusterConfig cluster{MachineProfile{}, 4, static_cast<int>(kSlots)};
  RealEngine engine(cluster, RealEngineOptions{});

  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  exec_options.prefetch_budget_bytes = 2 * TileMem();
  exec_options.memory_budget_bytes = memory_budget_bytes;
  // Classic task-wide readers: stolen splits would each open a private
  // reader and never revisit (so never re-fetch) a spilled panel, hiding
  // exactly the traffic this sweep measures.
  exec_options.enable_work_stealing = false;
  Executor executor(&store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  Rng rng(11);
  TiledMatrix a = Square("A", Dim(), kTile);
  TiledMatrix b = Square("B", Dim(), kTile);
  TiledMatrix c = Square("C", Dim(), kTile);
  CUMULON_CHECK(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
  CUMULON_CHECK(GenerateMatrix(b, FillKind::kGaussian, 0, &rng, &store).ok());
  CUMULON_CHECK(AddMatMul(a, b, c, kParams, {}, &plan).ok());

  auto stats = executor.Run(plan);
  CUMULON_CHECK(stats.ok()) << stats.status();

  Outcome outcome;
  outcome.seconds = stats->total_seconds;
  outcome.spill_evictions = stats->spill_evictions;
  outcome.spill_evicted_bytes = stats->spill_evicted_bytes;
  outcome.spill_refetches = stats->spill_refetches;
  outcome.spill_refetch_bytes = stats->spill_refetch_bytes;
  outcome.spill_unpinned = stats->spill_unpinned_reads;
  outcome.peak_bytes = stats->memory_peak_bytes;
  for (int64_t gr = 0; gr < c.layout.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < c.layout.grid_cols(); ++gc) {
      auto tile = store.Get(c.name, TileId{gr, gc}, -1);
      CUMULON_CHECK(tile.ok()) << tile.status();
      outcome.c_tiles[{gr, gc}] = std::vector<double>(
          (*tile)->data(), (*tile)->data() + (*tile)->size());
    }
  }
  return outcome;
}

void CheckBitIdentical(const Outcome& baseline, const Outcome& budgeted,
                       double factor) {
  CUMULON_CHECK(baseline.c_tiles.size() == budgeted.c_tiles.size());
  for (const auto& [id, base_tile] : baseline.c_tiles) {
    const auto it = budgeted.c_tiles.find(id);
    CUMULON_CHECK(it != budgeted.c_tiles.end());
    CUMULON_CHECK(base_tile.size() == it->second.size());
    for (size_t i = 0; i < base_tile.size(); ++i) {
      CUMULON_CHECK(base_tile[i] == it->second[i])
          << "C tile (" << id.first << "," << id.second << ") element " << i
          << " differs at budget factor " << factor
          << " — streamed execution must be bit-identical";
    }
  }
}

struct JsonRow {
  double factor;
  int64_t budget_bytes;
  double seconds;
  int64_t evictions, refetches, refetch_bytes, unpinned, peak_bytes;
};

std::vector<JsonRow> g_rows;

void RunRealSection() {
  const int64_t ws = NodeWorkingSetBytes();
  std::printf("real 4x%lld slots, multiply %lld^3 (t=%lld), blocked "
              "bi=2 bj=2; per-node working set %.1f MiB:\n",
              static_cast<long long>(kSlots),
              static_cast<long long>(Dim()), static_cast<long long>(kTile),
              static_cast<double>(ws) / (1 << 20));
  std::printf("%-10s %11s %9s %9s %10s %12s %9s %11s\n", "budget", "bytes",
              "time", "evicted", "refetched", "refetch MiB", "unpinned",
              "peak MiB");
  PrintRule();

  const Outcome baseline = RunReal(0);
  CUMULON_CHECK(baseline.spill_evictions == 0)
      << "resident baseline must not spill";
  CUMULON_CHECK(baseline.peak_bytes == 0)
      << "resident baseline runs without a ledger";
  std::printf("%-10s %11s %8.3fs %9s %10s %12s %9s %11s\n", "resident", "-",
              baseline.seconds, "0", "0", "0.0", "0", "-");

  const double factors[] = {2.0, 1.0, 0.5, 0.25, 0.1};
  for (double factor : factors) {
    const int64_t budget = static_cast<int64_t>(factor * ws);
    const Outcome o = RunReal(budget);
    // The two CHECK-enforced acceptance criteria of this experiment:
    // streamed outputs are bit-identical to resident execution, and the
    // ledger's hard cap held.
    CheckBitIdentical(baseline, o, factor);
    CUMULON_CHECK(o.peak_bytes <= budget)
        << "ledger peak " << o.peak_bytes << " exceeds budget " << budget;
    if (factor <= 0.25) {
      // Working set >= 4x the budget: the run cannot be resident, so some
      // spill mechanism must have actually carried it — pin-window
      // evict/re-fetch, or (when the pin share degenerates to nothing)
      // unpinned streaming.
      CUMULON_CHECK(o.spill_evictions + o.spill_refetches + o.spill_unpinned >
                    0)
          << "factor " << factor << ": no spill activity despite 1/"
          << 1 / factor << " budget";
    }
    if (factor == 0.25) {
      // At 4x oversubscription the pin window still exists, so the blocked
      // multiply's panel reuse must show up as evict + re-fetch traffic.
      CUMULON_CHECK(o.spill_evictions > 0)
          << "factor " << factor << ": no evictions despite 1/" << 1 / factor
          << " budget";
      CUMULON_CHECK(o.spill_refetches > 0)
          << "factor " << factor << ": no re-fetches despite panel reuse";
    }
    std::printf("%-10.2f %11lld %8.3fs %9lld %10lld %12.1f %9lld %11.1f\n",
                factor, static_cast<long long>(budget), o.seconds,
                static_cast<long long>(o.spill_evictions),
                static_cast<long long>(o.spill_refetches),
                static_cast<double>(o.spill_refetch_bytes) / (1 << 20),
                static_cast<long long>(o.spill_unpinned),
                static_cast<double>(o.peak_bytes) / (1 << 20));
    g_rows.push_back(JsonRow{factor, budget, o.seconds, o.spill_evictions,
                             o.spill_refetches, o.spill_refetch_bytes,
                             o.spill_unpinned, o.peak_bytes});
  }
  std::printf("acceptance: 0.25x-budget run bit-identical to resident, "
              "spills > 0, peak <= budget (CHECK-enforced)\n");
}

// The cost model's view of the same sweep: predicted time through the
// declared-cost streaming term. Flat while the per-task working set fits
// the pin share, rising once panels must stream.
void RunSimSection() {
  std::printf("\nsimulated 16 x m1.large, multiply 16384^3 (t=1024), "
              "predicted stream-vs-resident crossover:\n");
  std::printf("%-10s %14s %12s\n", "budget", "bytes/node", "pred time");
  PrintRule();
  const int64_t tile_mem = AlignedFootprintBytes(1024 * 1024 * 8);
  const int64_t gk = 16384 / 1024;
  const int64_t ws = 2 * (2 * gk + gk * 2 + 4) * tile_mem;
  for (double factor : {0.0, 2.0, 1.0, 0.5, 0.25, 0.1}) {
    const int64_t budget = static_cast<int64_t>(factor * ws);
    SimWorld world(DefaultCluster());
    TiledMatrix a = Square("A", 16384, 1024);
    TiledMatrix b = Square("B", 16384, 1024);
    TiledMatrix c = Square("C", 16384, 1024);
    world.LoadInput(a);
    world.LoadInput(b);
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{2, 2, 0}, {}, &plan).ok());
    ExecutorOptions options;
    options.real_mode = false;
    options.job_startup_seconds = 3.0;
    options.memory_budget_bytes = budget;
    TileOpCostModel cost;
    Executor executor(world.store(), world.engine(), &cost, options);
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    std::printf("%-10s %14lld %12s\n",
                factor == 0.0 ? "resident" : std::to_string(factor).c_str(),
                static_cast<long long>(budget),
                FormatDuration(stats->total_seconds).c_str());
  }
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\"bench\":\"e19_oom\",\"quick\":%s,\"rows\":[",
               g_quick ? "true" : "false");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::fprintf(f,
                 "%s{\"budget_factor\":%.2f,\"budget_bytes\":%lld,"
                 "\"seconds\":%.6f,\"spill_evictions\":%lld,"
                 "\"spill_refetches\":%lld,\"spill_refetch_bytes\":%lld,"
                 "\"spill_unpinned\":%lld,\"peak_bytes\":%lld}",
                 i == 0 ? "" : ",", r.factor,
                 static_cast<long long>(r.budget_bytes), r.seconds,
                 static_cast<long long>(r.evictions),
                 static_cast<long long>(r.refetches),
                 static_cast<long long>(r.refetch_bytes),
                 static_cast<long long>(r.unpinned),
                 static_cast<long long>(r.peak_bytes));
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %zu rows -> %s\n", g_rows.size(), path.c_str());
}

void Run(const std::string& json_path) {
  PrintHeader("E19: out-of-core streaming under a per-node memory budget");
  RunRealSection();
  RunSimSection();
  if (!json_path.empty()) WriteJson(json_path);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cumulon::bench::g_quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  cumulon::bench::Run(json_path);
  return 0;
}
