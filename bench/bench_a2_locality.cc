// A2 — ablation: locality-aware (delay) scheduling. Without it, tasks read
// their inputs over the network; with it, most reads are local disk.
//
// Expectation: locality-aware placement cuts non-local tasks sharply and
// speeds up IO-bound jobs, and matters more when replication is scarce.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Outcome {
  double seconds;
  int non_local;
  int tasks;
};

Outcome RunOnce(bool locality_aware, int replication) {
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());
  ClusterConfig cluster{machine.value(), 16, 2};

  DfsOptions dfs_options;
  dfs_options.num_nodes = cluster.num_machines;
  dfs_options.replication = replication;
  dfs_options.seed = 4;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);

  // IO-bound workload: a scan-transform over a 32 GiB matrix. Reads
  // dominate, so where a task runs (local disk vs network) sets its speed.
  TiledMatrix a = Square("A", 65536, 2048);
  for (int64_t r = 0; r < a.layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < a.layout.grid_cols(); ++c) {
      CUMULON_CHECK(store.PutMeta(a.name, TileId{r, c},
                                  16 + 2048 * 2048 * 8, -1).ok());
    }
  }

  SimEngineOptions sim_options;
  sim_options.locality_aware = locality_aware;
  sim_options.replication = replication;
  SimEngine engine(cluster, sim_options);
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.real_mode = false;
  Executor executor(&store, &engine, &cost, exec_options);

  TiledMatrix out = Square("B", 65536, 2048);
  PhysicalPlan plan;
  CUMULON_CHECK(AddEwChain(a, out, {EwStep::Unary(UnaryOp::kSqrt)}, &plan,
                           /*tiles_per_task=*/4).ok());
  auto stats = executor.Run(plan);
  CUMULON_CHECK(stats.ok()) << stats.status();
  return {stats->total_seconds, stats->non_local_tasks, stats->total_tasks};
}

void Run() {
  PrintHeader("A2: locality-aware scheduling ablation (16 x m1.large)");
  std::printf("%-6s %-12s %10s %12s %12s\n", "repl", "scheduling",
              "time", "non-local", "tasks");
  PrintRule();
  for (int repl : {1, 3}) {
    for (bool aware : {true, false}) {
      Outcome o = RunOnce(aware, repl);
      std::printf("%-6d %-12s %10s %7d/%-4d %12s\n", repl,
                  aware ? "delay-aware" : "off",
                  FormatDuration(o.seconds).c_str(), o.non_local, o.tasks,
                  "");
    }
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
