// E1 — Cumulon vs Hadoop-based matrix systems on multiply (the paper's
// headline performance comparison). Same simulated cluster, same inputs;
// compares Cumulon's map-only multiply against the RMM and CPMM MapReduce
// strategies across matrix sizes and shapes.
//
// Paper expectation: Cumulon wins on every shape (roughly 2x or more),
// because it shuffles nothing; RMM degrades with output size, CPMM with
// the shared dimension.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Shape {
  const char* label;
  int64_t m, k, n;
};

void RunShape(const Shape& shape) {
  const int64_t tile = 2048;
  SimWorld world(DefaultCluster(16));
  TiledMatrix a{"A", TileLayout::Square(shape.m, shape.k, tile)};
  TiledMatrix b{"B", TileLayout::Square(shape.k, shape.n, tile)};
  world.LoadInput(a);
  world.LoadInput(b);

  // Cumulon: map-only multiply with optimizer-chosen split parameters
  // (the system tunes these per job; we take the best of its portfolio).
  PlanStats cumulon;
  bool have_best = false;
  for (const MatMulParams params :
       {MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}, MatMulParams{4, 4, 0},
        MatMulParams{1, 1, 1}, MatMulParams{1, 1, 4},
        MatMulParams{1, 1, 8}}) {
    TiledMatrix c_cumulon{"C_cumulon",
                          TileLayout::Square(shape.m, shape.n, tile)};
    PhysicalPlan plan;
    Status st = AddMatMul(a, b, c_cumulon, params, {}, &plan);
    CUMULON_CHECK(st.ok()) << st;
    PlanStats stats = world.Run(plan);
    world.store()->DeleteMatrix("C_cumulon");
    if (!have_best || stats.total_seconds < cumulon.total_seconds) {
      cumulon = std::move(stats);
      have_best = true;
    }
  }

  MrOptions mr;
  mr.real_mode = false;
  TiledMatrix c_rmm{"C_rmm", TileLayout::Square(shape.m, shape.n, tile)};
  auto rmm = RunMrMultiply(MrStrategy::kRmm, a, b, c_rmm, world.store(),
                           world.engine(), world.cost(), mr);
  CUMULON_CHECK(rmm.ok()) << rmm.status();
  TiledMatrix c_cpmm{"C_cpmm", TileLayout::Square(shape.m, shape.n, tile)};
  auto cpmm = RunMrMultiply(MrStrategy::kCpmm, a, b, c_cpmm, world.store(),
                            world.engine(), world.cost(), mr);
  CUMULON_CHECK(cpmm.ok()) << cpmm.status();

  std::printf("%-24s %10s %10s %10s %8.2fx %8.2fx\n", shape.label,
              FormatDuration(cumulon.total_seconds).c_str(),
              FormatDuration(rmm->total_seconds).c_str(),
              FormatDuration(cpmm->total_seconds).c_str(),
              rmm->total_seconds / cumulon.total_seconds,
              cpmm->total_seconds / cumulon.total_seconds);
}

void Run() {
  PrintHeader("E1: multiply time, Cumulon vs RMM vs CPMM (16 x m1.large)");
  std::printf("%-24s %10s %10s %10s %9s %9s\n", "shape (m x k x n)",
              "Cumulon", "RMM", "CPMM", "RMM/C", "CPMM/C");
  PrintRule();
  const Shape shapes[] = {
      {"8k x 8k x 8k", 8192, 8192, 8192},
      {"16k x 16k x 16k", 16384, 16384, 16384},
      {"32k x 32k x 32k", 32768, 32768, 32768},
      {"64k x 8k x 8k (tall)", 65536, 8192, 8192},
      {"8k x 64k x 8k (deep)", 8192, 65536, 8192},
      {"8k x 8k x 64k (wide)", 8192, 8192, 65536},
  };
  for (const Shape& shape : shapes) RunShape(shape);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
