// E1 — Cumulon vs Hadoop-based matrix systems on multiply (the paper's
// headline performance comparison). Same simulated cluster, same inputs;
// compares Cumulon's map-only multiply against the RMM and CPMM MapReduce
// strategies across matrix sizes and shapes.
//
// Paper expectation: Cumulon wins on every shape (roughly 2x or more),
// because it shuffles nothing; RMM degrades with output size, CPMM with
// the shared dimension.
//
// `--kernels-only [--json FILE]` skips the cluster comparison and instead
// measures the raw per-tile Gemm kernels (scalar register-blocked oracle
// vs packed AVX2+FMA micro-kernel, DESIGN.md "Kernel architecture"),
// reporting single-core GFLOP/s and the SIMD speedup. CI uploads the JSON
// as the BENCH_kernels.json artifact to track kernel regressions.

#include <algorithm>
#include <cstring>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "matrix/kernel_config.h"

namespace cumulon::bench {
namespace {

struct Shape {
  const char* label;
  int64_t m, k, n;
};

void RunShape(const Shape& shape) {
  const int64_t tile = 2048;
  SimWorld world(DefaultCluster(16));
  TiledMatrix a{"A", TileLayout::Square(shape.m, shape.k, tile)};
  TiledMatrix b{"B", TileLayout::Square(shape.k, shape.n, tile)};
  world.LoadInput(a);
  world.LoadInput(b);

  // Cumulon: map-only multiply with optimizer-chosen split parameters
  // (the system tunes these per job; we take the best of its portfolio).
  PlanStats cumulon;
  bool have_best = false;
  for (const MatMulParams params :
       {MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}, MatMulParams{4, 4, 0},
        MatMulParams{1, 1, 1}, MatMulParams{1, 1, 4},
        MatMulParams{1, 1, 8}}) {
    TiledMatrix c_cumulon{"C_cumulon",
                          TileLayout::Square(shape.m, shape.n, tile)};
    PhysicalPlan plan;
    Status st = AddMatMul(a, b, c_cumulon, params, {}, &plan);
    CUMULON_CHECK(st.ok()) << st;
    PlanStats stats = world.Run(plan);
    Status deleted = world.store()->DeleteMatrix("C_cumulon");
    CUMULON_CHECK(deleted.ok()) << deleted;
    if (!have_best || stats.total_seconds < cumulon.total_seconds) {
      cumulon = std::move(stats);
      have_best = true;
    }
  }

  MrOptions mr;
  mr.real_mode = false;
  TiledMatrix c_rmm{"C_rmm", TileLayout::Square(shape.m, shape.n, tile)};
  auto rmm = RunMrMultiply(MrStrategy::kRmm, a, b, c_rmm, world.store(),
                           world.engine(), world.cost(), mr);
  CUMULON_CHECK(rmm.ok()) << rmm.status();
  TiledMatrix c_cpmm{"C_cpmm", TileLayout::Square(shape.m, shape.n, tile)};
  auto cpmm = RunMrMultiply(MrStrategy::kCpmm, a, b, c_cpmm, world.store(),
                            world.engine(), world.cost(), mr);
  CUMULON_CHECK(cpmm.ok()) << cpmm.status();

  std::printf("%-24s %10s %10s %10s %8.2fx %8.2fx\n", shape.label,
              FormatDuration(cumulon.total_seconds).c_str(),
              FormatDuration(rmm->total_seconds).c_str(),
              FormatDuration(cpmm->total_seconds).c_str(),
              rmm->total_seconds / cumulon.total_seconds,
              cpmm->total_seconds / cumulon.total_seconds);
}

void Run() {
  PrintHeader("E1: multiply time, Cumulon vs RMM vs CPMM (16 x m1.large)");
  std::printf("%-24s %10s %10s %10s %9s %9s\n", "shape (m x k x n)",
              "Cumulon", "RMM", "CPMM", "RMM/C", "CPMM/C");
  PrintRule();
  const Shape shapes[] = {
      {"8k x 8k x 8k", 8192, 8192, 8192},
      {"16k x 16k x 16k", 16384, 16384, 16384},
      {"32k x 32k x 32k", 32768, 32768, 32768},
      {"64k x 8k x 8k (tall)", 65536, 8192, 8192},
      {"8k x 64k x 8k (deep)", 8192, 65536, 8192},
      {"8k x 8k x 64k (wide)", 8192, 8192, 65536},
  };
  for (const Shape& shape : shapes) RunShape(shape);
}

// ---------------------------------------------------------------------------
// --kernels-only: raw Gemm kernel throughput, scalar vs SIMD
// ---------------------------------------------------------------------------

/// Single-core GFLOP/s of `mode`'s Gemm on an n x n x n multiply,
/// repeated until ~0.2s of work so small sizes are not timer-bound.
double MeasureGemmGflops(KernelMode mode, int64_t n) {
  Rng rng(7);
  Tile a(n, n), b(n, n), c(n, n);
  FillGaussian(&a, &rng);
  FillGaussian(&b, &rng);
  const double flops = 2.0 * n * n * n;
  Status st = Gemm(a, b, 1.0, 0.0, &c);  // warm caches, fault pages
  CUMULON_CHECK(st.ok()) << st;
  const int reps = std::max<int>(1, static_cast<int>(2e9 / flops));
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    st = GemmWithMode(mode, a, b, 1.0, 0.0, &c);
    CUMULON_CHECK(st.ok()) << st;
  }
  return flops * reps / sw.ElapsedSeconds() / 1e9;
}

struct KernelRow {
  int64_t n;
  double scalar_gflops;
  double simd_gflops;
};

void RunKernelsOnly(const std::string& json_path) {
  PrintHeader("E1 (kernels): single-core tile Gemm, scalar vs SIMD");
  std::printf("SIMD dispatch: %s\n",
              SimdKernelAvailable() ? "avx2+fma" : "unavailable (scalar)");
  std::printf("%-12s %14s %14s %10s\n", "n (n^3 mul)", "scalar GF/s",
              "simd GF/s", "speedup");
  PrintRule();
  std::vector<KernelRow> rows;
  for (int64_t n : {256, 512, 1024}) {
    KernelRow row{n, MeasureGemmGflops(KernelMode::kScalar, n),
                  MeasureGemmGflops(KernelMode::kSimd, n)};
    std::printf("%-12lld %14.2f %14.2f %9.2fx\n",
                static_cast<long long>(n), row.scalar_gflops,
                row.simd_gflops, row.simd_gflops / row.scalar_gflops);
    rows.push_back(row);
  }
  if (json_path.empty()) return;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot write " << json_path;
  std::fprintf(f, "{\"bench\":\"e1_kernels\",\"simd_available\":%s,",
               SimdKernelAvailable() ? "true" : "false");
  std::fprintf(f, "\"gemm\":[");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "%s{\"n\":%lld,\"scalar_gflops\":%.3f,"
                 "\"simd_gflops\":%.3f,\"speedup\":%.3f}",
                 i == 0 ? "" : ",", static_cast<long long>(rows[i].n),
                 rows[i].scalar_gflops, rows[i].simd_gflops,
                 rows[i].simd_gflops / rows[i].scalar_gflops);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("kernel summary -> %s\n", json_path.c_str());
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  bool kernels_only = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels-only") == 0) kernels_only = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  if (kernels_only) {
    cumulon::bench::RunKernelsOnly(json_path);
  } else {
    cumulon::bench::Run();
  }
  return 0;
}
