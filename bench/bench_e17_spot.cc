// E17 — elastic provisioning with transient (spot) machines: an arrival
// stream of the example programs runs through the online re-planning loop
// (opt/elastic.h) under a sweep of revocation hazards, against two static
// baselines — a fixed all-on-demand fleet and the same fixed fleet with
// spot machines allowed. Each epoch replays its program through the
// predictor with a seeded revocation schedule injected, so the dollars
// pay for the rework the losses actually caused, and spot machines are
// billed at a seeded market price only up to their revocation instant.
//
// Expectation (the paper's elasticity story): with per-second billing the
// re-planning optimizer undercuts the static on-demand fleet on dollars
// at an equal-or-better deadline-miss rate — enforced below for at least
// one hazard setting — while high hazards erode the spot discount toward
// the on-demand price.
//
// Flags: --quick (fewer arrivals + hazards; the CI configuration),
//        --json FILE (machine-readable rows for BENCH_*.json tracking).

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

bool g_quick = false;

ProgramSpec RsvdProgram() {
  RsvdSpec s;
  s.m = g_quick ? (1 << 12) : (1 << 13);
  s.n = 1 << 11;
  s.l = 32;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildRsvd1(s));
  spec.inputs = {{"A", TileLayout::Square(s.m, s.n, 512)},
                 {"Omega", TileLayout::Square(s.n, s.l, 512)}};
  return spec;
}

ProgramSpec GnmfProgram() {
  GnmfSpec s;
  s.m = g_quick ? (1 << 11) : (1 << 12);
  s.n = 1 << 11;
  s.k = 64;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildGnmfIteration(s));
  spec.inputs = {{"V", TileLayout::Square(s.m, s.n, 512)},
                 {"W", TileLayout::Square(s.m, s.k, 512)},
                 {"H", TileLayout::Square(s.k, s.n, 512)}};
  return spec;
}

ProgramSpec LinRegProgram() {
  LinRegSpec s;
  s.samples = g_quick ? (1 << 12) : (1 << 13);
  s.features = 1 << 10;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildLinRegStep(s));
  spec.inputs = {{"X", TileLayout::Square(s.samples, s.features, 512)},
                 {"w", TileLayout::Square(s.features, 1, 512)},
                 {"y", TileLayout::Square(s.samples, 1, 512)}};
  return spec;
}

ProgramSpec PageRankProgram() {
  PageRankSpec s;
  s.n = g_quick ? (1 << 11) : (1 << 12);
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildPageRankIteration(s));
  spec.inputs = {{"M", TileLayout::Square(s.n, s.n, 512)},
                 {"p", TileLayout::Square(s.n, 1, 512)}};
  return spec;
}

/// The arrival stream: the example programs cycling at a spacing well
/// under one epoch's run time, so the queue builds and the re-planning
/// loop has a backlog worth scaling out for. Every other submission
/// carries a deadline loose enough that the on-demand fleet always makes
/// it, keeping the miss-rate comparison meaningful without being
/// deadline-bound.
std::vector<SpotSubmission> MakeWorkload() {
  const ProgramSpec programs[] = {RsvdProgram(), GnmfProgram(),
                                  LinRegProgram(), PageRankProgram()};
  const char* names[] = {"rsvd", "gnmf", "linreg", "pagerank"};
  const int arrivals = g_quick ? 6 : 12;
  std::vector<SpotSubmission> workload;
  for (int i = 0; i < arrivals; ++i) {
    SpotSubmission s;
    s.name = StrCat(names[i % 4], "#", i);
    s.spec = programs[i % 4];
    s.arrival_seconds = 10.0 * i;
    if (i % 2 == 1) s.deadline_seconds = s.arrival_seconds + 3600.0;
    workload.push_back(std::move(s));
  }
  return workload;
}

enum class Mode { kStaticOnDemand, kStaticSpot, kElastic };

SpotWorkloadResult RunMode(const std::vector<SpotSubmission>& workload,
                           Mode mode, double hazard_per_hour) {
  SpotWorkloadOptions options;
  options.machine = MachineProfile{};
  options.spot_hazard_per_hour = hazard_per_hour;
  options.billing.quantum_seconds = 1.0;  // per-second billing
  options.predictor.lowering.tile_dim = 512;
  options.seed = 23;
  switch (mode) {
    case Mode::kStaticOnDemand:
      options.allow_spot = false;
      options.policy.min_machines = options.policy.max_machines = 6;
      break;
    case Mode::kStaticSpot:
      options.allow_spot = true;
      options.policy.min_machines = options.policy.max_machines = 6;
      break;
    case Mode::kElastic:
      options.allow_spot = true;
      options.policy.min_machines = 2;
      options.policy.max_machines = 8;
      break;
  }
  auto result = RunSpotWorkload(workload, options);
  CUMULON_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

struct JsonRow {
  double hazard = 0.0;
  double od_dollars = 0.0, spot_dollars = 0.0, elastic_dollars = 0.0;
  int od_misses = 0, spot_misses = 0, elastic_misses = 0;
  int elastic_revocations = 0, scale_outs = 0, scale_ins = 0;
  double savings_pct = 0.0;
};

std::vector<JsonRow> g_rows;

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\"bench\":\"e17_spot\",\"quick\":%s,\"rows\":[",
               g_quick ? "true" : "false");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::fprintf(
        f,
        "%s{\"hazard_per_hour\":%.3f,"
        "\"static_on_demand_dollars\":%.6f,\"static_spot_dollars\":%.6f,"
        "\"elastic_dollars\":%.6f,\"static_on_demand_misses\":%d,"
        "\"static_spot_misses\":%d,\"elastic_misses\":%d,"
        "\"elastic_revocations\":%d,\"scale_outs\":%d,\"scale_ins\":%d,"
        "\"elastic_savings_pct\":%.2f}",
        i == 0 ? "" : ",", r.hazard, r.od_dollars, r.spot_dollars,
        r.elastic_dollars, r.od_misses, r.spot_misses, r.elastic_misses,
        r.elastic_revocations, r.scale_outs, r.scale_ins, r.savings_pct);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %zu rows -> %s\n", g_rows.size(), path.c_str());
}

void Run(const std::string& json_path) {
  PrintHeader(
      "E17: elastic spot provisioning vs static fleets under revocation "
      "hazard");
  const std::vector<SpotSubmission> workload = MakeWorkload();
  std::printf("arrivals: %zu (%s mode), per-second billing, spot discount "
              "%.0f%%\n\n",
              workload.size(), g_quick ? "quick" : "full",
              kDefaultSpotDiscount * 100.0);
  std::printf("%-10s | %-21s | %-21s | %-29s | %s\n", "hazard/hr",
              "static on-demand", "static + spot", "elastic re-planning",
              "savings");
  PrintRule();

  // Epochs last tens of virtual seconds, so the sweep spans hazards from
  // "negligible over an epoch" to "expected lifetime shorter than the
  // epoch" — the regime where revocation rework visibly erodes the
  // discount.
  const std::vector<double> hazards =
      g_quick ? std::vector<double>{0.5, 240.0}
              : std::vector<double>{0.5, 60.0, 240.0, 720.0};
  bool acceptance_met = false;
  for (double hazard : hazards) {
    const SpotWorkloadResult od =
        RunMode(workload, Mode::kStaticOnDemand, hazard);
    const SpotWorkloadResult sp = RunMode(workload, Mode::kStaticSpot, hazard);
    const SpotWorkloadResult el = RunMode(workload, Mode::kElastic, hazard);

    const double savings =
        od.total_dollars > 0.0
            ? 100.0 * (od.total_dollars - el.total_dollars) / od.total_dollars
            : 0.0;
    std::printf("%10.2f | $%9.4f %2d misses | $%9.4f %2d misses | "
                "$%9.4f %2d misses %2d rev | %5.1f%%\n",
                hazard, od.total_dollars, od.deadline_misses,
                sp.total_dollars, sp.deadline_misses, el.total_dollars,
                el.deadline_misses, el.revocations, savings);

    JsonRow row;
    row.hazard = hazard;
    row.od_dollars = od.total_dollars;
    row.spot_dollars = sp.total_dollars;
    row.elastic_dollars = el.total_dollars;
    row.od_misses = od.deadline_misses;
    row.spot_misses = sp.deadline_misses;
    row.elastic_misses = el.deadline_misses;
    row.elastic_revocations = el.revocations;
    row.scale_outs = el.scale_outs;
    row.scale_ins = el.scale_ins;
    row.savings_pct = savings;
    g_rows.push_back(row);

    if (el.total_dollars < od.total_dollars &&
        el.deadline_misses <= od.deadline_misses) {
      acceptance_met = true;
    }
  }

  // Acceptance: the re-planning optimizer must beat the static on-demand
  // fleet on dollars at an equal-or-better deadline-miss rate for at
  // least one hazard setting.
  CUMULON_CHECK(acceptance_met)
      << "elastic re-planning never undercut the static on-demand fleet "
         "at an equal-or-better miss rate";
  std::printf("\nacceptance: elastic beat static on-demand on dollars at "
              "equal-or-better miss rate for >= 1 hazard setting\n");
  if (!json_path.empty()) WriteJson(json_path);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cumulon::bench::g_quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  cumulon::bench::Run(json_path);
  return 0;
}
