// A3 — ablation: DAG scheduling of independent jobs. When a program has
// genuinely independent jobs (an ensemble scoring pass, or an unfused
// GNMF update whose numerator and denominator don't depend on each
// other), running them as one scheduling round fills slots that
// sequential per-job execution leaves idle and saves job-submission
// rounds.
//
// Expectation: big wins when single jobs underfill the cluster; no effect
// on fully fused GNMF, whose epilogue operands serialize the jobs — an
// interesting interaction between fusion and inter-job parallelism.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Outcome {
  double seconds = 0.0;
  size_t rounds = 0;
};

void RegisterInput(DfsTileStore* store, const TiledMatrix& m) {
  for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
      const int64_t bytes =
          16 + m.layout.TileRowsAt(r) * m.layout.TileColsAt(c) * 8;
      CUMULON_CHECK(store->PutMeta(m.name, TileId{r, c}, bytes, -1).ok());
    }
  }
}

Outcome RunProgram(const Program& program,
                   const std::map<std::string, TiledMatrix>& bindings,
                   bool fusion, bool parallel) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 16;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  for (const auto& [name, m] : bindings) RegisterInput(&store, m);

  LoweringOptions lowering;
  lowering.tile_dim = 2048;
  lowering.enable_fusion = fusion;
  auto lowered = Lower(program, bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();

  SimEngine engine(DefaultCluster(16), SimEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions options;
  options.real_mode = false;
  options.parallelize_independent_jobs = parallel;
  Executor executor(&store, &engine, &cost, options);
  auto stats = executor.Run(lowered->plan);
  CUMULON_CHECK(stats.ok()) << stats.status();
  return {stats->total_seconds, stats->jobs.size()};
}

void Report(const char* label, const Program& program,
            const std::map<std::string, TiledMatrix>& bindings, bool fusion) {
  Outcome seq = RunProgram(program, bindings, fusion, false);
  Outcome dag = RunProgram(program, bindings, fusion, true);
  std::printf("%-26s %6zu/%-6zu %12s %12s %8.2fx\n", label, dag.rounds,
              seq.rounds, FormatDuration(seq.seconds).c_str(),
              FormatDuration(dag.seconds).c_str(), seq.seconds / dag.seconds);
}

void Run() {
  PrintHeader("A3: DAG scheduling of independent jobs (16 x m1.large)");
  std::printf("%-26s %13s %12s %12s %9s\n", "workload", "rounds d/s",
              "sequential", "DAG", "speedup");
  PrintRule();

  // Ensemble scoring: four independent products sharing X.
  {
    Program p;
    auto x = Expr::Input("X", 16384, 8192);
    std::map<std::string, TiledMatrix> bindings = {
        {"X", {"X", TileLayout::Square(16384, 8192, 2048)}}};
    for (int i = 0; i < 4; ++i) {
      const std::string w = StrCat("W", i);
      bindings.insert_or_assign(
          w, TiledMatrix{w, TileLayout::Square(8192, 2048, 2048)});
      p.Assign(StrCat("Y", i), x * Expr::Input(w, 8192, 2048));
    }
    Report("ensemble (4 products)", p, bindings, /*fusion=*/true);
  }

  // GNMF, unfused: numerator/denominator jobs are independent.
  {
    GnmfSpec spec;
    spec.m = 1 << 15;
    spec.n = 1 << 14;
    spec.k = 128;
    std::map<std::string, TiledMatrix> bindings = {
        {"V", {"V", TileLayout::Square(spec.m, spec.n, 2048)}},
        {"W", {"W", TileLayout::Square(spec.m, spec.k, 2048)}},
        {"H", {"H", TileLayout::Square(spec.k, spec.n, 2048)}},
    };
    const Program program = OptimizeProgram(BuildGnmfIteration(spec));
    Report("GNMF unfused", program, bindings, /*fusion=*/false);
    // Fully fused GNMF chains through epilogue operands: no merging.
    Report("GNMF fused (control)", program, bindings, /*fusion=*/true);
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
