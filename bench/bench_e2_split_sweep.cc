// E2 — effect of the multiply split parameters (tiles of C per task, and
// split-k) on job time: the per-operator knob Cumulon's optimizer tunes.
//
// Paper expectation: a U-shaped curve. Tiny blocks maximize parallelism
// but re-read inputs many times; huge blocks starve the cluster's slots.
// Split-k adds a merge job that only pays off for deep multiplies.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void SweepBlocks() {
  PrintHeader("E2a: C-block size sweep, C = A(32k x 32k) * B (16 x m1.large)");
  std::printf("%-12s %8s %12s %12s %10s\n", "bi x bj", "tasks",
              "bytes read", "job time", "waves");
  PrintRule();
  for (int64_t block : {1, 2, 4, 8, 16}) {
    SimWorld world(DefaultCluster(16));
    const int64_t dim = 32768, tile = 2048;  // 16x16 tile grid
    TiledMatrix a = Square("A", dim, tile);
    TiledMatrix b = Square("B", dim, tile);
    world.LoadInput(a);
    world.LoadInput(b);
    TiledMatrix c = Square("C", dim, tile);
    PhysicalPlan plan;
    Status st =
        AddMatMul(a, b, c, MatMulParams{block, block, 0}, {}, &plan);
    CUMULON_CHECK(st.ok()) << st;
    PlanStats stats = world.Run(plan);
    std::printf("%2lld x %-7lld %8d %12s %12s %10d\n",
                static_cast<long long>(block), static_cast<long long>(block),
                stats.total_tasks, FormatBytes(stats.bytes_read).c_str(),
                FormatDuration(stats.total_seconds).c_str(),
                stats.jobs[0].stats.waves);
  }
}

void SweepSplitK() {
  PrintHeader(
      "E2b: split-k sweep, deep multiply C = A(8k x 128k) * B(128k x 8k)");
  std::printf("%-8s %8s %8s %12s %12s\n", "bk", "jobs", "tasks",
              "bytes written", "total time");
  PrintRule();
  for (int64_t bk : {0, 32, 16, 8, 4}) {
    SimWorld world(DefaultCluster(16));
    const int64_t tile = 2048;
    TiledMatrix a{"A", TileLayout::Square(8192, 131072, tile)};
    TiledMatrix b{"B", TileLayout::Square(131072, 8192, tile)};
    world.LoadInput(a);
    world.LoadInput(b);
    TiledMatrix c = Square("C", 8192, tile);
    PhysicalPlan plan;
    Status st = AddMatMul(a, b, c, MatMulParams{1, 1, bk}, {}, &plan);
    CUMULON_CHECK(st.ok()) << st;
    PlanStats stats = world.Run(plan);
    std::printf("%-8lld %8zu %8d %12s %12s\n", static_cast<long long>(bk),
                stats.jobs.size(), stats.total_tasks,
                FormatBytes(stats.bytes_written).c_str(),
                FormatDuration(stats.total_seconds).c_str());
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::SweepBlocks();
  cumulon::bench::SweepSplitK();
  return 0;
}
