// E10 — the paper's "benchmarking" step as google-benchmark micros: raw
// per-tile kernel throughput feeding the cost-model calibration. The hot
// kernels run once per dispatch mode (scalar register-blocked oracle vs
// packed AVX2+FMA, DESIGN.md "Kernel architecture") so the SIMD speedup
// is visible in one run. JSON output via the library's own
// `--benchmark_format=json` / `--benchmark_out=FILE`.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matrix/kernel_config.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"

namespace cumulon {
namespace {

/// range(1) selects the dispatch mode: 0 = scalar, 1 = simd.
KernelMode ModeArg(const benchmark::State& state) {
  return state.range(1) == 0 ? KernelMode::kScalar : KernelMode::kSimd;
}

void ApplyModeArgs(benchmark::internal::Benchmark* b,
                   std::initializer_list<int64_t> dims) {
  b->ArgNames({"d", "simd"});
  for (int64_t d : dims) {
    b->Args({d, 0});
    b->Args({d, 1});
  }
}

void BM_TileGemm(benchmark::State& state) {
  const int64_t d = state.range(0);
  const KernelMode mode = ModeArg(state);
  Rng rng(1);
  Tile a(d, d), b(d, d), c(d, d);
  FillGaussian(&a, &rng);
  FillGaussian(&b, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GemmWithMode(mode, a, b, 1.0, 0.0, &c));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * d * d * d * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileGemm)->Apply([](benchmark::internal::Benchmark* b) {
  ApplyModeArgs(b, {64, 128, 256, 512});
});

void BM_TileEwAdd(benchmark::State& state) {
  const int64_t d = state.range(0);
  const KernelMode mode = ModeArg(state);
  Rng rng(2);
  Tile a(d, d), b(d, d), c(d, d);
  FillGaussian(&a, &rng);
  FillGaussian(&b, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EwBinaryWithMode(mode, BinaryOp::kAdd, a, b, &c));
  }
  state.counters["Gelem/s"] = benchmark::Counter(
      static_cast<double>(d) * d * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileEwAdd)->Apply([](benchmark::internal::Benchmark* b) {
  ApplyModeArgs(b, {128, 256, 512});
});

void BM_TileEwSigmoid(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(3);
  Tile a(d, d), c(d, d);
  FillGaussian(&a, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EwUnary(UnaryOp::kSigmoid, a, 0.0, &c));
  }
}
BENCHMARK(BM_TileEwSigmoid)->Arg(256);

void BM_TileTranspose(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(4);
  Tile a(d, d), c(d, d);
  FillGaussian(&a, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransposeTile(a, &c));
  }
  state.counters["Gelem/s"] = benchmark::Counter(
      static_cast<double>(d) * d * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileTranspose)->Arg(128)->Arg(256)->Arg(512);

void BM_TileAccumulate(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(5);
  Tile x(d, d), acc(d, d);
  FillGaussian(&x, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AccumulateInto(x, &acc));
  }
}
BENCHMARK(BM_TileAccumulate)->Arg(256)->Arg(512);

}  // namespace
}  // namespace cumulon

BENCHMARK_MAIN();
