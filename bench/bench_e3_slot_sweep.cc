// E3 — slots per machine: the Hadoop configuration knob Cumulon tunes
// alongside hardware. More slots help CPU-bound jobs up to the core count
// and buy nothing (or hurt) once the disk is the bottleneck.
//
// Paper expectation: a per-workload optimum; the best slot count differs
// between CPU-heavy and IO-heavy jobs, so no single default is right.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

/// CPU-heavy: square multiply, big tiles (flops dominate bytes).
double CpuHeavyTime(int slots) {
  auto machine = FindMachine("c1.xlarge");  // 8 cores
  CUMULON_CHECK(machine.ok());
  SimWorld world(ClusterConfig{machine.value(), 8, slots});
  const int64_t dim = 32768, tile = 4096;
  TiledMatrix a = Square("A", dim, tile);
  TiledMatrix b = Square("B", dim, tile);
  world.LoadInput(a);
  world.LoadInput(b);
  TiledMatrix c = Square("C", dim, tile);
  PhysicalPlan plan;
  CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
  return world.Run(plan).total_seconds;
}

/// IO-heavy: element-wise pass over a large matrix (bytes dominate flops).
double IoHeavyTime(int slots) {
  auto machine = FindMachine("c1.xlarge");
  CUMULON_CHECK(machine.ok());
  SimWorld world(ClusterConfig{machine.value(), 8, slots});
  const int64_t dim = 65536, tile = 4096;
  TiledMatrix a = Square("A", dim, tile);
  world.LoadInput(a);
  TiledMatrix out = Square("B", dim, tile);
  PhysicalPlan plan;
  CUMULON_CHECK(AddEwChain(a, out, {EwStep::Unary(UnaryOp::kSqrt)}, &plan,
                           /*tiles_per_task=*/4).ok());
  return world.Run(plan).total_seconds;
}

void Run() {
  PrintHeader("E3: slots-per-machine sweep on 8 x c1.xlarge (8 cores)");
  std::printf("%-8s %16s %16s\n", "slots", "CPU-heavy job", "IO-heavy job");
  PrintRule();
  double best_cpu = 1e300, best_io = 1e300;
  int best_cpu_slots = 0, best_io_slots = 0;
  for (int slots : {1, 2, 4, 8, 12, 16, 24}) {
    const double cpu = CpuHeavyTime(slots);
    const double io = IoHeavyTime(slots);
    std::printf("%-8d %16s %16s\n", slots, FormatDuration(cpu).c_str(),
                FormatDuration(io).c_str());
    if (cpu < best_cpu) {
      best_cpu = cpu;
      best_cpu_slots = slots;
    }
    if (io < best_io) {
      best_io = io;
      best_io_slots = slots;
    }
  }
  PrintRule();
  std::printf("best: CPU-heavy at %d slots, IO-heavy at %d slots\n",
              best_cpu_slots, best_io_slots);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
