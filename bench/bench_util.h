#ifndef CUMULON_BENCH_BENCH_UTIL_H_
#define CUMULON_BENCH_BENCH_UTIL_H_

// Shared plumbing for the experiment harnesses. Each bench binary
// regenerates one table/figure class from the paper's evaluation (see
// DESIGN.md's experiment index and EXPERIMENTS.md for results).

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cumulon/cumulon.h"

namespace cumulon::bench {

/// A simulated cluster + DFS whose inputs exist as metadata only — the
/// setting for all simulation-mode experiments.
class SimWorld {
 public:
  SimWorld(const ClusterConfig& cluster, int replication = 3,
           uint64_t seed = 1)
      : cluster_(cluster) {
    DfsOptions dfs_options;
    dfs_options.num_nodes = cluster.num_machines;
    dfs_options.replication = replication;
    dfs_options.seed = seed;
    dfs_ = std::make_unique<SimDfs>(dfs_options);
    store_ = std::make_unique<DfsTileStore>(dfs_.get());
    SimEngineOptions sim_options;
    sim_options.replication = replication;
    engine_ = std::make_unique<SimEngine>(cluster, sim_options);
  }

  /// Registers every tile of `m` in the DFS (random placement).
  void LoadInput(const TiledMatrix& m) {
    const TileLayout& layout = m.layout;
    for (int64_t r = 0; r < layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < layout.grid_cols(); ++c) {
        const int64_t bytes =
            16 + layout.TileRowsAt(r) * layout.TileColsAt(c) * 8;
        Status st = store_->PutMeta(m.name, TileId{r, c}, bytes, -1);
        CUMULON_CHECK(st.ok()) << st;
      }
    }
  }

  /// Runs a plan in simulation mode and returns its stats.
  PlanStats Run(const PhysicalPlan& plan, double job_startup_seconds = 3.0) {
    ExecutorOptions options;
    options.real_mode = false;
    options.job_startup_seconds = job_startup_seconds;
    Executor executor(store_.get(), engine_.get(), &cost_, options);
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    return std::move(stats).value();
  }

  SimDfs* dfs() { return dfs_.get(); }
  DfsTileStore* store() { return store_.get(); }
  SimEngine* engine() { return engine_.get(); }
  const ClusterConfig& cluster() const { return cluster_; }
  const TileOpCostModel& cost() const { return cost_; }

 private:
  ClusterConfig cluster_;
  TileOpCostModel cost_;
  std::unique_ptr<SimDfs> dfs_;
  std::unique_ptr<DfsTileStore> store_;
  std::unique_ptr<SimEngine> engine_;
};

/// Observability for a bench binary: scans argv for `--trace FILE`,
/// installs a global virtual-clock tracer for the process lifetime, and
/// writes the Chrome trace_event file at scope exit. The engines and the
/// executor pick the tracer up through GlobalTracer(), so one line at the
/// top of main() is the whole integration:
///
///   int main(int argc, char** argv) {
///     cumulon::bench::ObsSession obs(argc, argv);
///     ...
class ObsSession {
 public:
  ObsSession(int argc, char** argv,
             Tracer::ClockDomain domain = Tracer::ClockDomain::kVirtual) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--trace") path_ = argv[i + 1];
    }
    if (path_.empty()) return;
    tracer_ = std::make_unique<Tracer>(domain);
    SetGlobalTracer(tracer_.get());
  }

  ~ObsSession() {
    if (tracer_ == nullptr) return;
    SetGlobalTracer(nullptr);
    Status st = tracer_->WriteChromeJson(path_);
    if (!st.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   st.ToString().c_str());
      return;
    }
    std::printf("trace: %zu spans -> %s (chrome://tracing)\n",
                tracer_->span_count(), path_.c_str());
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  Tracer* tracer() { return tracer_.get(); }

 private:
  std::string path_;
  std::unique_ptr<Tracer> tracer_;
};

/// Default mid-size cluster used by several experiments: 16 x m1.large
/// with 2 slots each.
inline ClusterConfig DefaultCluster(int num_machines = 16) {
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());
  return ClusterConfig{machine.value(), num_machines, 2};
}

/// Square-matrix helper.
inline TiledMatrix Square(const std::string& name, int64_t dim,
                          int64_t tile) {
  return TiledMatrix{name, TileLayout::Square(dim, dim, tile)};
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------"
              "----------\n");
}

}  // namespace cumulon::bench

#endif  // CUMULON_BENCH_BENCH_UTIL_H_
