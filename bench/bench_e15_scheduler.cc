// E15 — multi-tenant workload scheduling: policy x load sweep over the
// workload manager. An adversarial mix — long batch plans with loose
// deadlines submitted first, short interactive plans with tight deadlines
// arriving behind them — is replayed under each scheduling policy on one
// simulated cluster, measuring throughput, queue wait, deadline-miss
// rate, and Jain's fairness index over per-plan slowdown.
//
// Expectation: FIFO drains the batch plans first and misses the
// interactive deadlines; EDF reorders the queue by effective deadline and
// meets them; fair-share lands between, interleaving tenants. Run with
// --trace e15.json to see each plan's lane on the virtual timeline.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

constexpr int64_t kTile = 2048;
constexpr int64_t kShortDim = 4096;
constexpr int64_t kLongDim = 8192;

void RegisterInput(DfsTileStore* store, const TiledMatrix& m) {
  for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
      const int64_t bytes =
          16 + m.layout.TileRowsAt(r) * m.layout.TileColsAt(c) * 8;
      CUMULON_CHECK(store->PutMeta(m.name, TileId{r, c}, bytes, -1).ok());
    }
  }
}

/// One C = A * B plan over `dim`-square inputs, every matrix (including
/// temporaries) namespaced by `tag` so plans can share the store.
PhysicalPlan MakePlan(DfsTileStore* store, const std::string& tag,
                      int64_t dim) {
  const TiledMatrix a{StrCat(tag, "_A"), TileLayout::Square(dim, dim, kTile)};
  const TiledMatrix b{StrCat(tag, "_B"), TileLayout::Square(dim, dim, kTile)};
  RegisterInput(store, a);
  RegisterInput(store, b);
  Program program;
  program.Assign(StrCat(tag, "_C"),
                 Expr::Input(a.name, dim, dim) * Expr::Input(b.name, dim, dim));
  LoweringOptions lowering;
  lowering.tile_dim = kTile;
  lowering.temp_prefix = StrCat(tag, "_tmp");
  auto lowered = Lower(program, {{a.name, a}, {b.name, b}}, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();
  return std::move(lowered->plan);
}

/// Solo (uncontended) simulated seconds of one plan of size `dim`.
double SoloSeconds(const ClusterConfig& cluster, int64_t dim) {
  SimWorld world(cluster);
  return world.Run(MakePlan(world.store(), "solo", dim)).total_seconds;
}

struct CellResult {
  double makespan = 0.0;
  double mean_wait = 0.0;
  double miss_rate = 0.0;
  double jain = 0.0;
};

/// Replays the adversarial mix (`load`/2 long plans, then `load`/2 short
/// ones) under `policy` and folds the outcomes.
CellResult RunCell(SchedPolicy policy, int load, double solo_long,
                   double solo_short) {
  const ClusterConfig cluster = DefaultCluster(16);
  SimWorld world(cluster);

  WorkloadManagerOptions options;
  options.policy = policy;
  options.max_concurrent_plans = 1;  // deterministic policy-order replay
  options.admission_control = false;  // measure misses, don't reject
  options.virtual_time = true;
  options.defer_start = true;  // whole mix queued before scheduling
  options.executor.real_mode = false;
  options.tracer = GlobalTracer();
  WorkloadManager manager(world.store(), world.engine(), &world.cost(),
                          options);

  const int n_long = load / 2;
  const int n_short = load - n_long;
  // Loose batch deadlines (met under any order); tight interactive ones
  // (only met when the policy lets shorts overtake the queued batch).
  const double long_deadline = (solo_long + solo_short) * load * 4.0;
  const double short_deadline = solo_short * n_short * 2.0;
  std::map<int64_t, double> solo_of;  // plan id -> solo seconds

  auto submit = [&](const std::string& tag, const std::string& tenant,
                    int64_t dim, double deadline, double solo) {
    Submission submission;
    submission.name = tag;
    submission.tenant = tenant;
    submission.deadline_seconds = deadline;
    submission.estimate = {solo, 0.0, true};
    submission.plan = MakePlan(world.store(), tag, dim);
    auto id = manager.Submit(std::move(submission));
    CUMULON_CHECK(id.ok()) << id.status();
    solo_of[*id] = solo;
  };
  for (int i = 0; i < n_long; ++i) {
    submit(StrCat("batch", i), "batch", kLongDim, long_deadline, solo_long);
  }
  for (int i = 0; i < n_short; ++i) {
    submit(StrCat("inter", i), "interactive", kShortDim, short_deadline,
           solo_short);
  }

  manager.Start();
  const std::vector<PlanOutcome> outcomes = manager.Drain();

  CellResult cell;
  double wait_sum = 0.0;
  int misses = 0;
  double slowdown_sum = 0.0, slowdown_sq = 0.0;
  for (const PlanOutcome& outcome : outcomes) {
    CUMULON_CHECK(outcome.state == PlanState::kDone) << outcome.status;
    cell.makespan = std::max(cell.makespan, outcome.finish_seconds);
    wait_sum += outcome.queue_wait_seconds();
    if (!outcome.deadline_met) ++misses;
    const double slowdown =
        outcome.turnaround_seconds() / solo_of.at(outcome.plan_id);
    slowdown_sum += slowdown;
    slowdown_sq += slowdown * slowdown;
  }
  const double n = static_cast<double>(outcomes.size());
  cell.mean_wait = wait_sum / n;
  cell.miss_rate = misses / n;
  cell.jain = slowdown_sum * slowdown_sum / (n * slowdown_sq);
  return cell;
}

void Run() {
  const ClusterConfig cluster = DefaultCluster(16);
  const double solo_long = SoloSeconds(cluster, kLongDim);
  const double solo_short = SoloSeconds(cluster, kShortDim);
  PrintHeader(StrCat("E15: scheduling policy x load (", cluster.ToString(),
                     "; batch plan ", FormatDuration(solo_long),
                     ", interactive plan ", FormatDuration(solo_short), ")"));
  std::printf("%-6s %4s %12s %12s %10s %10s %10s\n", "policy", "load",
              "makespan", "mean wait", "miss rate", "fairness", "plans/hr");
  PrintRule();

  const SchedPolicy policies[] = {SchedPolicy::kFifo, SchedPolicy::kFairShare,
                                  SchedPolicy::kEdf};
  double fifo_misses = 0.0, edf_misses = 0.0;
  for (const int load : {4, 8, 16}) {
    for (const SchedPolicy policy : policies) {
      const CellResult cell = RunCell(policy, load, solo_long, solo_short);
      std::printf("%-6s %4d %12s %12s %9.0f%% %10.3f %10.1f\n",
                  SchedPolicyName(policy), load,
                  FormatDuration(cell.makespan).c_str(),
                  FormatDuration(cell.mean_wait).c_str(),
                  cell.miss_rate * 100.0, cell.jain,
                  load / cell.makespan * 3600.0);
      if (policy == SchedPolicy::kFifo) fifo_misses += cell.miss_rate;
      if (policy == SchedPolicy::kEdf) edf_misses += cell.miss_rate;
    }
    PrintRule();
  }
  std::printf("deadline-miss rate, summed over loads: fifo %.2f, edf %.2f "
              "(%s)\n",
              fifo_misses, edf_misses,
              edf_misses < fifo_misses ? "EDF wins" : "NO IMPROVEMENT");
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
