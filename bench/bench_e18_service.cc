// E18 — the service daemon under a closed-loop submission firehose:
// thousands of simulated tenants (Poisson and bursty arrivals, heavy-
// tailed catalog plan sizes) submit over the wire protocol and poll their
// plans to completion, reporting client-observed p50/p99 admission and
// completion latency. Two deterministic probes ride along and are
// CHECK-enforced, making this binary the service's end-to-end gate:
//
//  - quota probe: a tenant capped at one in-flight plan submits twice
//    back-to-back and must get the typed quota.inflight rejection;
//  - drain probe: a daemon with queued-but-unstarted plans drains,
//    persists them to disk, and a restart on the same state dir must
//    restore every one of them through the full admission path.
//
// Modes: standalone (default) hosts its own daemon on a private unix
// socket; --connect ADDR drives an external `cumulon serve` daemon and
// drains it afterwards (the CI smoke job's configuration).
//
// Flags: --quick (CI: 1000 submissions), --connect ADDR, --seed N,
//        --json FILE (BENCH_e18_service.json artifact).

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

bool g_quick = false;

ServiceOptions BenchServiceOptions(const std::string& state_dir) {
  ServiceOptions options;
  options.state_dir = state_dir;
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok()) << machine.status();
  options.machine = machine.value();
  options.elastic.min_machines = 2;
  options.elastic.max_machines = 16;
  options.slots_per_machine = 2;
  options.max_concurrent_plans = 8;
  options.reaper_interval_seconds = 0.002;
  options.elastic_interval_seconds = 0.02;
  return options;
}

/// Deterministic per-tenant quota enforcement: with max_inflight_plans = 1
/// and the queue held closed, the second back-to-back SUBMIT must be the
/// typed quota.inflight rejection — not a race against plan completion.
void RunQuotaProbe() {
  ServiceOptions options = BenchServiceOptions("");
  options.defer_start = true;
  options.session.tenant_quotas["probe"].max_inflight_plans = 1;
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  CUMULON_CHECK(client.Hello("probe").ok());
  auto first = client.Submit("mm-s");
  CUMULON_CHECK(first.ok()) << first.status();
  auto second = client.Submit("mm-s");
  CUMULON_CHECK(!second.ok()) << "over-quota SUBMIT was accepted";
  CUMULON_CHECK(ErrorReason(second.status()) == "quota.inflight")
      << second.status();
  auto drained = client.Drain();
  CUMULON_CHECK(drained.ok()) << drained.status();
  std::printf("quota probe: second in-flight SUBMIT -> %s\n",
              second.status().message().c_str());
}

struct DrainProbeResult {
  int64_t persisted = 0;
  int restored = 0;
};

/// Drain/restart survival: queued-but-unstarted plans are persisted by
/// DRAIN and restored — through the full admission path — by a restart on
/// the same state directory.
DrainProbeResult RunDrainProbe(const std::string& state_dir) {
  const int kPlans = 3;
  DrainProbeResult result;
  {
    ServiceOptions options = BenchServiceOptions(state_dir);
    options.defer_start = true;  // pin the plans in the queue
    CumulonService service(options);
    LocalTransport transport(&service);
    ServiceClient client(&transport);
    CUMULON_CHECK(client.Hello("survivor").ok());
    for (int i = 0; i < kPlans; ++i) {
      auto submit = client.Submit("mm-s", StrCat("survivor#", i));
      CUMULON_CHECK(submit.ok()) << submit.status();
    }
    auto drained = client.Drain();
    CUMULON_CHECK(drained.ok()) << drained.status();
    result.persisted = *drained;
    CUMULON_CHECK_EQ(result.persisted, kPlans);
  }
  ServiceOptions options = BenchServiceOptions(state_dir);
  CumulonService service(options);
  result.restored = service.restored_plans();
  CUMULON_CHECK_EQ(result.restored, kPlans);
  LocalTransport transport(&service);
  ServiceClient ops(&transport);
  CUMULON_CHECK(ops.Hello("ops").ok());
  CUMULON_CHECK(ops.Drain().ok());
  std::printf("drain probe: %lld queued plans persisted, %d restored\n",
              static_cast<long long>(result.persisted), result.restored);
  return result;
}

LoadGenOptions FirehoseOptions(uint64_t seed) {
  LoadGenOptions options;
  options.tenants = g_quick ? 250 : 2000;
  options.total_submissions = g_quick ? 1000 : 8000;
  options.workers = 8;
  options.think_mean_seconds = 0.0005;
  options.burst_tenant_fraction = 0.25;
  options.burst_size = 4;
  // A slice of tight deadlines provokes typed admission rejections once
  // the backlog builds.
  options.deadline_fraction = 0.1;
  options.deadline_seconds = 60.0;
  options.poll_interval_seconds = 0.002;
  options.poll_timeout_seconds = 120.0;
  options.seed = seed;
  return options;
}

void PrintReport(const LoadGenReport& r) {
  PrintRule();
  std::printf("submitted %d: accepted %d, rejected quota %d / admission %d"
              " / draining %d / other %d, transport errors %d\n",
              r.submitted, r.accepted, r.rejected_quota,
              r.rejected_admission, r.rejected_draining, r.rejected_other,
              r.transport_errors);
  std::printf("terminal: %d done, %d failed, %d cancelled, %d poll "
              "timeouts\n",
              r.completed, r.failed, r.cancelled, r.poll_timeouts);
  std::printf("admission latency  p50 %.6fs  p99 %.6fs  max %.6fs\n",
              r.admission_p50_seconds, r.admission_p99_seconds,
              r.admission_max_seconds);
  std::printf("completion latency p50 %.6fs  p99 %.6fs  max %.6fs\n",
              r.completion_p50_seconds, r.completion_p99_seconds,
              r.completion_max_seconds);
  std::printf("wall %.3fs (%.0f submissions/s)\n", r.wall_seconds,
              r.wall_seconds > 0 ? r.submitted / r.wall_seconds : 0.0);
  PrintRule();
}

void WriteJson(const std::string& path, const LoadGenReport& r,
               const DrainProbeResult& drain, int64_t connect_persisted,
               bool connected) {
  JsonValue root = JsonValue::Object();
  root.Set("bench", "e18_service")
      .Set("quick", g_quick)
      .Set("mode", connected ? "connect" : "standalone")
      .Set("submitted", r.submitted)
      .Set("accepted", r.accepted)
      .Set("rejected_quota", r.rejected_quota)
      .Set("rejected_admission", r.rejected_admission)
      .Set("rejected_draining", r.rejected_draining)
      .Set("rejected_other", r.rejected_other)
      .Set("transport_errors", r.transport_errors)
      .Set("completed", r.completed)
      .Set("failed", r.failed)
      .Set("cancelled", r.cancelled)
      .Set("poll_timeouts", r.poll_timeouts)
      .Set("wall_seconds", r.wall_seconds)
      .Set("admission_p50_seconds", r.admission_p50_seconds)
      .Set("admission_p99_seconds", r.admission_p99_seconds)
      .Set("admission_max_seconds", r.admission_max_seconds)
      .Set("completion_p50_seconds", r.completion_p50_seconds)
      .Set("completion_p99_seconds", r.completion_p99_seconds)
      .Set("completion_max_seconds", r.completion_max_seconds);
  if (connected) {
    root.Set("drain_persisted", connect_persisted);
  } else {
    JsonValue probes = JsonValue::Object();
    probes.Set("quota_inflight_rejected", true)
        .Set("drain_persisted", drain.persisted)
        .Set("restore_restored", drain.restored);
    root.Set("probes", std::move(probes));
  }
  FILE* f = std::fopen(path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot open " << path;
  const std::string text = root.ToString();
  std::fprintf(f, "%s\n", text.c_str());
  std::fclose(f);
  std::printf("json -> %s\n", path.c_str());
}

/// Standalone: host the daemon on a private unix socket and fire the
/// closed loop at it over real frames.
int RunStandalone(const std::string& json_path, uint64_t seed) {
  const std::string state_dir =
      StrCat("/tmp/cumulon_bench_e18_", getpid());
  (void)mkdir(state_dir.c_str(), 0755);

  PrintHeader("E18: service daemon firehose (standalone)");
  RunQuotaProbe();
  const DrainProbeResult drain = RunDrainProbe(state_dir);

  CumulonService service(BenchServiceOptions(""));
  ServiceServer server(&service);
  const std::string address =
      StrCat("unix:/tmp/cumulon_bench_e18_", getpid(), ".sock");
  Status started = server.Start(address);
  CUMULON_CHECK(started.ok()) << started;

  const LoadGenOptions options = FirehoseOptions(seed);
  std::printf("firehose: %d tenants, %d submissions, %d connections -> "
              "%s\n",
              options.tenants, options.total_submissions, options.workers,
              address.c_str());
  auto report = RunLoadGen(
      [&address]() -> Result<std::unique_ptr<Transport>> {
        auto transport = SocketTransport::Connect(address);
        if (!transport.ok()) return transport.status();
        return std::unique_ptr<Transport>(std::move(transport).value());
      },
      options);
  CUMULON_CHECK(report.ok()) << report.status();
  PrintReport(*report);

  // Clean shutdown through the protocol: drain, then wait the server out.
  auto ops_transport = SocketTransport::Connect(address);
  CUMULON_CHECK(ops_transport.ok()) << ops_transport.status();
  ServiceClient ops(ops_transport->get());
  CUMULON_CHECK(ops.Hello("ops").ok());
  auto drained = ops.Drain();
  CUMULON_CHECK(drained.ok()) << drained.status();
  server.WaitUntilStopped();
  CUMULON_CHECK(service.drained());
  std::printf("drained cleanly (%lld late-queued plans persisted)\n",
              static_cast<long long>(*drained));

  if (!json_path.empty()) WriteJson(json_path, *report, drain, 0, false);
  return 0;
}

/// --connect ADDR: drive an external daemon, then drain it (the CI smoke
/// job asserts the `cumulon serve` process exits cleanly afterwards).
int RunConnect(const std::string& address, const std::string& json_path,
               uint64_t seed) {
  PrintHeader(StrCat("E18: service daemon firehose (", address, ")"));
  const LoadGenOptions options = FirehoseOptions(seed);
  std::printf("firehose: %d tenants, %d submissions, %d connections\n",
              options.tenants, options.total_submissions, options.workers);
  auto report = RunLoadGen(
      [&address]() -> Result<std::unique_ptr<Transport>> {
        auto transport = SocketTransport::Connect(address);
        if (!transport.ok()) return transport.status();
        return std::unique_ptr<Transport>(std::move(transport).value());
      },
      options);
  if (!report.ok()) {
    std::fprintf(stderr, "load generator failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report);

  auto ops_transport = SocketTransport::Connect(address);
  if (!ops_transport.ok()) {
    std::fprintf(stderr, "drain connect failed: %s\n",
                 ops_transport.status().ToString().c_str());
    return 1;
  }
  ServiceClient ops(ops_transport->get());
  Status hello = ops.Hello("ops");
  if (!hello.ok()) {
    std::fprintf(stderr, "drain HELLO failed: %s\n",
                 hello.ToString().c_str());
    return 1;
  }
  auto drained = ops.Drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "DRAIN failed: %s\n",
                 drained.status().ToString().c_str());
    return 1;
  }
  std::printf("daemon drained (%lld queued plans persisted)\n",
              static_cast<long long>(*drained));
  if (!json_path.empty()) {
    WriteJson(json_path, *report, DrainProbeResult{}, *drained, true);
  }
  return 0;
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  std::string json_path;
  std::string connect;
  uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cumulon::bench::g_quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (!connect.empty()) {
    return cumulon::bench::RunConnect(connect, json_path, seed);
  }
  return cumulon::bench::RunStandalone(json_path, seed);
}
