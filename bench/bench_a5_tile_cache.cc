// A5 — ablation: node-local tile cache. A blocked multiply re-reads every
// input tile from many tasks (each A tile once per task column), so a
// per-node cache turns most DFS reads — and their checksum passes — into
// memory lookups. A streaming scan reads every tile exactly once and gets
// nothing from the cache; it bounds the overhead of cache bookkeeping.
//
// Expectation: the reuse-heavy multiply speeds up well over 1.3x with a
// >50% hit rate; the streaming scan stays within noise (<5%). In
// simulation the cache-aware cost model charges only expected misses, so
// predicted times drop the same way measured ones do.

#include <algorithm>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct RealOutcome {
  double seconds = 0.0;
  int64_t hits = 0;
  int64_t misses = 0;
  double hit_rate = 0.0;
};

// Real execution of one plan over a checksum-verified DFS store on a
// small in-process "cluster"; the cache (when enabled) is the engines',
// sized explicitly so the experiment does not depend on host RAM.
RealOutcome RunReal(bool enable_cache, bool reuse_heavy) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 4;
  dfs_options.replication = 2;
  dfs_options.seed = 9;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs, /*verify_checksums=*/true);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngineOptions engine_options;
  engine_options.enable_tile_cache = enable_cache;
  engine_options.cache_bytes_per_node = 256ll << 20;
  RealEngine engine(cluster, engine_options);
  store.AttachCaches(engine.tile_caches());

  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  Executor executor(&store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  Rng rng(11);
  if (reuse_heavy) {
    // 16x16 tile grid, one task per C tile: every input tile is fetched by
    // 16 different tasks.
    TiledMatrix a = Square("A", 2048, 128);
    TiledMatrix b = Square("B", 2048, 128);
    TiledMatrix c = Square("C", 2048, 128);
    CUMULON_CHECK(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
    CUMULON_CHECK(GenerateMatrix(b, FillKind::kGaussian, 0, &rng, &store).ok());
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
  } else {
    // Streaming: every tile read exactly once; the cache can only cost.
    TiledMatrix a = Square("A", 4096, 256);
    TiledMatrix out = Square("B", 4096, 256);
    CUMULON_CHECK(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
    CUMULON_CHECK(AddEwChain(a, out, {EwStep::Unary(UnaryOp::kSqrt)}, &plan,
                             /*tiles_per_task=*/4).ok());
  }

  // Best of 3 to shed host-scheduler noise. Caches start cold every rep so
  // the hit rate is the within-job reuse, not warmth left by earlier reps.
  RealOutcome outcome;
  outcome.seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    TileCacheStats before;
    if (engine.tile_caches() != nullptr) {
      engine.tile_caches()->Clear();
      before = engine.tile_caches()->TotalStats();
    }
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    outcome.seconds = std::min(outcome.seconds, stats->total_seconds);
    if (engine.tile_caches() != nullptr) {
      const TileCacheStats after = engine.tile_caches()->TotalStats();
      outcome.hits = after.hits - before.hits;
      outcome.misses = after.misses - before.misses;
      const int64_t lookups = outcome.hits + outcome.misses;
      outcome.hit_rate =
          lookups > 0 ? static_cast<double>(outcome.hits) / lookups : 0.0;
    }
  }
  return outcome;
}

void RunRealSection() {
  std::printf("%-24s %-6s %10s %9s %14s %9s\n", "workload", "cache", "time",
              "speedup", "hits/lookups", "hit rate");
  PrintRule();
  for (bool reuse_heavy : {true, false}) {
    const char* label =
        reuse_heavy ? "multiply 2048^3 (t=128)" : "scan 4096^2 (t=256)";
    const RealOutcome off = RunReal(false, reuse_heavy);
    const RealOutcome on = RunReal(true, reuse_heavy);
    std::printf("%-24s %-6s %9.3fs %9s %14s %9s\n", label, "off", off.seconds,
                "1.00x", "-", "-");
    char lookups[64], speedup[32];
    std::snprintf(lookups, sizeof(lookups), "%lld/%lld",
                  static_cast<long long>(on.hits),
                  static_cast<long long>(on.hits + on.misses));
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  off.seconds / on.seconds);
    std::printf("%-24s %-6s %9.3fs %9s %14s %8.1f%%\n", label, "on",
                on.seconds, speedup, lookups, 100.0 * on.hit_rate);
  }
}

// Simulation: same ablation at cluster scale. The engine owns the per-node
// cache budget; MatMulJob declares the expected cache-served bytes, and
// the simulator charges disk/network only for the misses.
void RunSimSection() {
  // 32x32 tile grid over 16 machines: every input tile has 32 reading
  // tasks but only 16 nodes, so half the fetches are expected cache hits.
  std::printf("\nsimulated 16 x m1.large, multiply 32768^3 (t=1024):\n");
  std::printf("%-6s %12s %12s %12s %14s\n", "cache", "time", "read",
              "cached", "cached frac");
  PrintRule();
  for (bool enable_cache : {false, true}) {
    ClusterConfig cluster = DefaultCluster();
    DfsOptions dfs_options;
    dfs_options.num_nodes = cluster.num_machines;
    dfs_options.replication = 3;
    SimDfs dfs(dfs_options);
    DfsTileStore store(&dfs);
    TiledMatrix a = Square("A", 32768, 1024);
    TiledMatrix b = Square("B", 32768, 1024);
    TiledMatrix c = Square("C", 32768, 1024);
    for (const TiledMatrix& m : {a, b}) {
      for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
        for (int64_t col = 0; col < m.layout.grid_cols(); ++col) {
          CUMULON_CHECK(store.PutMeta(m.name, TileId{r, col},
                                      16 + 1024 * 1024 * 8, -1).ok());
        }
      }
    }

    SimEngineOptions sim_options;
    sim_options.enable_tile_cache = enable_cache;
    SimEngine engine(cluster, sim_options);
    TileOpCostModel cost;
    ExecutorOptions exec_options;
    exec_options.real_mode = false;
    Executor executor(&store, &engine, &cost, exec_options);

    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    const double frac =
        stats->bytes_read > 0
            ? static_cast<double>(stats->bytes_read_cached) / stats->bytes_read
            : 0.0;
    std::printf("%-6s %12s %12s %12s %13.1f%%\n",
                enable_cache ? "on" : "off",
                FormatDuration(stats->total_seconds).c_str(),
                FormatBytes(stats->bytes_read).c_str(),
                FormatBytes(stats->bytes_read_cached).c_str(), 100.0 * frac);
  }
}

void Run() {
  PrintHeader("A5: node-local tile cache ablation (real 4x2 slots + sim)");
  RunRealSection();
  RunSimSection();
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
