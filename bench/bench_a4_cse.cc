// A4 — ablation: common-subexpression elimination in lowering. Iterative
// statistical programs repeat structures (GNMF reuses W^T across its
// numerator and denominator every iteration); CSE materializes each
// shared subexpression once per value version.
//
// Expectation: fewer jobs and less data written per iteration; the saved
// work compounds linearly across unrolled iterations.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Outcome {
  size_t jobs = 0;
  int64_t bytes_written = 0;
  double seconds = 0.0;
};

Outcome RunGnmf(int iterations, bool cse) {
  GnmfSpec spec;
  spec.m = 1 << 15;
  spec.n = 1 << 14;
  spec.k = 128;

  DfsOptions dfs_options;
  dfs_options.num_nodes = 16;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  std::map<std::string, TiledMatrix> bindings;
  for (auto [name, rows, cols] :
       {std::tuple<const char*, int64_t, int64_t>{"V", spec.m, spec.n},
        {"W", spec.m, spec.k},
        {"H", spec.k, spec.n}}) {
    TiledMatrix m{name, TileLayout::Square(rows, cols, 2048)};
    for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
        const int64_t bytes =
            16 + m.layout.TileRowsAt(r) * m.layout.TileColsAt(c) * 8;
        CUMULON_CHECK(store.PutMeta(name, TileId{r, c}, bytes, -1).ok());
      }
    }
    bindings.insert_or_assign(name, m);
  }

  LoweringOptions lowering;
  lowering.tile_dim = 2048;
  lowering.enable_cse = cse;
  auto lowered = Lower(
      OptimizeProgram(Repeat(BuildGnmfIteration(spec), iterations)),
      bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();

  SimEngine engine(DefaultCluster(16), SimEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions options;
  options.real_mode = false;
  Executor executor(&store, &engine, &cost, options);
  auto stats = executor.Run(lowered->plan);
  CUMULON_CHECK(stats.ok()) << stats.status();
  return {lowered->plan.jobs.size(), stats->bytes_written,
          stats->total_seconds};
}

void Run() {
  PrintHeader("A4: CSE ablation, GNMF unrolled iterations (16 x m1.large)");
  std::printf("%-8s %12s %12s %16s %12s\n", "iters", "CSE", "jobs",
              "bytes written", "time");
  PrintRule();
  for (int iterations : {1, 3}) {
    for (bool cse : {true, false}) {
      Outcome o = RunGnmf(iterations, cse);
      std::printf("%-8d %12s %12zu %16s %12s\n", iterations,
                  cse ? "on" : "off", o.jobs,
                  FormatBytes(o.bytes_written).c_str(),
                  FormatDuration(o.seconds).c_str());
    }
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
