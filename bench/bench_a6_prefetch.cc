// A6 — ablation: asynchronous tile prefetch. The DFS here injects a
// per-read service time (seek latency + bytes/bandwidth), putting the real
// engine in the IO-bound regime cloud deployments actually see. Without
// prefetch every task pays its reads serially on the task thread; with the
// pipeline the task hints its reads in compute order and the store's
// prefetch pool downloads ahead, so task time collapses toward
// max(io, compute) — and the per-task stall measurement shows exactly how
// much wait the pipeline removed.
//
// Expectation: >= 1.3x task-throughput speedup with prefetch on across an
// IO-bound split sweep, stall dropping accordingly; the streaming scan
// bounds pipeline overhead. In simulation the overlap-aware cost model
// (SimEngineOptions::io_overlap_fraction) moves predicted times the same
// direction, keeping the predictor inside the E4 accuracy envelope.
//
// Flags: --quick (small shapes, 1 rep; the CI configuration),
//        --json FILE (machine-readable rows for BENCH_*.json tracking).

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

bool g_quick = false;

struct SweepPoint {
  std::string label;
  MatMulParams params;
};

struct Outcome {
  double seconds = 0.0;        // best-of-reps plan time
  double stall_seconds = 0.0;  // measured task IO wait of the best rep
  double task_seconds = 0.0;   // sum of task durations of the best rep
};

/// One real-engine multiply over the latency-injected DFS. `budget` <= 0
/// runs the plain synchronous path (and leaves the store's prefetch pool
/// off), > 0 enables the pool and the per-task window.
Outcome RunReal(const SweepPoint& point, int64_t prefetch_budget) {
  const int64_t dim = g_quick ? 512 : 1024;
  const int64_t tile = 128;

  DfsOptions dfs_options;
  dfs_options.num_nodes = 4;
  dfs_options.replication = 2;
  dfs_options.seed = 9;
  // Injected DFS service time: 5 ms seek + 64 MB/s per read makes a
  // 128x128 tile cost ~7 ms, an order of magnitude over its compute
  // share — the IO-bound regime the prefetcher targets.
  dfs_options.read_latency_seconds = 0.005;
  dfs_options.read_bytes_per_sec = 64.0 * (1 << 20);
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  // 2x the worker-slot count: the pipeline's win comes from keeping more
  // reads in flight than there are task threads, not just from moving the
  // same reads off-thread.
  if (prefetch_budget > 0) store.EnablePrefetch(/*num_threads=*/16);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngine engine(cluster, RealEngineOptions{});

  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  exec_options.prefetch_budget_bytes = prefetch_budget;
  Executor executor(&store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  Rng rng(11);
  TiledMatrix a = Square("A", dim, tile);
  TiledMatrix b = Square("B", dim, tile);
  TiledMatrix c = Square("C", dim, tile);
  CUMULON_CHECK(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
  CUMULON_CHECK(GenerateMatrix(b, FillKind::kGaussian, 0, &rng, &store).ok());
  CUMULON_CHECK(AddMatMul(a, b, c, point.params, {}, &plan).ok());

  const int reps = g_quick ? 1 : 3;
  Outcome outcome;
  outcome.seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    if (stats->total_seconds < outcome.seconds) {
      outcome.seconds = stats->total_seconds;
      outcome.stall_seconds = stats->stall_seconds;
      outcome.task_seconds = 0.0;
      for (const JobRecord& job : stats->jobs) {
        outcome.task_seconds += job.stats.total_task_seconds;
      }
    }
  }
  return outcome;
}

struct JsonRow {
  std::string split;
  double off_seconds, on_seconds, speedup;
  double off_stall, on_stall;
};

std::vector<JsonRow> g_rows;

void RunRealSection() {
  const int64_t budget = 64ll << 20;
  std::vector<SweepPoint> sweep = {
      {"bi=1 bj=1 bk=0", MatMulParams{1, 1, 0}},
      {"bi=2 bj=2 bk=0", MatMulParams{2, 2, 0}},
      {"bi=1 bj=1 bk=2", MatMulParams{1, 1, 2}},
  };
  std::printf("real 4x2 slots, multiply %d^3 (t=128), injected DFS "
              "latency 5ms + 64MB/s:\n",
              g_quick ? 512 : 1024);
  std::printf("%-16s %-9s %10s %9s %11s %12s\n", "split", "prefetch", "time",
              "speedup", "stall", "stall/task");
  PrintRule();
  for (const SweepPoint& point : sweep) {
    const Outcome off = RunReal(point, /*prefetch_budget=*/0);
    const Outcome on = RunReal(point, budget);
    const double speedup = off.seconds / on.seconds;
    std::printf("%-16s %-9s %9.3fs %9s %10.3fs %11.1f%%\n",
                point.label.c_str(), "off", off.seconds, "1.00x",
                off.stall_seconds,
                off.task_seconds > 0
                    ? 100.0 * off.stall_seconds / off.task_seconds
                    : 0.0);
    std::printf("%-16s %-9s %9.3fs %8.2fx %10.3fs %11.1f%%\n",
                point.label.c_str(), "on", on.seconds, speedup,
                on.stall_seconds,
                on.task_seconds > 0
                    ? 100.0 * on.stall_seconds / on.task_seconds
                    : 0.0);
    g_rows.push_back(JsonRow{point.label, off.seconds, on.seconds, speedup,
                             off.stall_seconds, on.stall_seconds});
  }
}

// Simulation: the overlap-aware cost model over the same sweep shape, at
// cluster scale. io_overlap_fraction = 0 is the historical serial model;
// 1 is a perfect pipeline. The predicted time and modeled stall move the
// way the measured ones do above.
void RunSimSection() {
  std::printf("\nsimulated 16 x m1.large, multiply 16384^3 (t=1024), "
              "overlap model sweep:\n");
  std::printf("%-9s %12s %14s\n", "overlap", "pred time", "modeled stall");
  PrintRule();
  for (double overlap : {0.0, 0.5, 1.0}) {
    ClusterConfig cluster = DefaultCluster();
    DfsOptions dfs_options;
    dfs_options.num_nodes = cluster.num_machines;
    dfs_options.replication = 3;
    SimDfs dfs(dfs_options);
    DfsTileStore store(&dfs);
    TiledMatrix a = Square("A", 16384, 1024);
    TiledMatrix b = Square("B", 16384, 1024);
    TiledMatrix c = Square("C", 16384, 1024);
    for (const TiledMatrix& m : {a, b}) {
      for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
        for (int64_t col = 0; col < m.layout.grid_cols(); ++col) {
          CUMULON_CHECK(store.PutMeta(m.name, TileId{r, col},
                                      16 + 1024 * 1024 * 8, -1).ok());
        }
      }
    }
    SimEngineOptions sim_options;
    sim_options.io_overlap_fraction = overlap;
    SimEngine engine(cluster, sim_options);
    TileOpCostModel cost;
    ExecutorOptions exec_options;
    exec_options.real_mode = false;
    Executor executor(&store, &engine, &cost, exec_options);
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{2, 2, 0}, {}, &plan).ok());
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    std::printf("%-9.1f %12s %13.0fs\n", overlap,
                FormatDuration(stats->total_seconds).c_str(),
                stats->stall_seconds);
  }
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\"bench\":\"a6_prefetch\",\"quick\":%s,\"rows\":[",
               g_quick ? "true" : "false");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::fprintf(f,
                 "%s{\"split\":\"%s\",\"off_seconds\":%.6f,"
                 "\"on_seconds\":%.6f,\"speedup\":%.4f,"
                 "\"off_stall_seconds\":%.6f,\"on_stall_seconds\":%.6f}",
                 i == 0 ? "" : ",", r.split.c_str(), r.off_seconds,
                 r.on_seconds, r.speedup, r.off_stall, r.on_stall);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %zu rows -> %s\n", g_rows.size(), path.c_str());
}

void Run(const std::string& json_path) {
  PrintHeader("A6: asynchronous tile prefetch ablation (real 4x2 + sim)");
  RunRealSection();
  RunSimSection();
  if (!json_path.empty()) WriteJson(json_path);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cumulon::bench::g_quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  cumulon::bench::Run(json_path);
  return 0;
}
