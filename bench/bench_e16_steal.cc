// E16 (extension) — intra-job work stealing vs straggler tasks, on the
// *real* engine (actual tile computation on worker threads, not the
// simulator's noise model — that is bench_e13's territory).
//
// Scenario: a deliberately unbalanced matmul — one task owns every output
// tile of the job (MatMulParams{1,1,0}), so without stealing one worker
// computes the whole product while the rest of the pool idles after their
// (empty) share. With ExecutorOptions::enable_work_stealing the owner
// publishes one block-split per output tile and the idle workers' helper
// drains steal from its deque tail, flattening the tail.
//
// Expectation: on a multi-core machine the stealing run's wall time drops
// toward 1/slots of the plain run; on a single hardware thread the two are
// on par (stealing only re-orders who executes a split). Either way the
// exec.steal.* counters show the splits migrating. `--json FILE` writes
// the summary for CI.

#include <cstring>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace cumulon::bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  int64_t splits = 0;
  int64_t stolen = 0;
  int64_t attempts = 0;
};

RunResult RunOnce(bool stealing, int slots, int64_t dim, int64_t tile) {
  InMemoryTileStore store;
  TileOpCostModel cost;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, slots},
                    RealEngineOptions{});
  ExecutorOptions options;
  options.enable_work_stealing = stealing;
  Executor executor(&store, &engine, &cost, options);

  Rng rng(11);
  TiledMatrix a{"A", TileLayout::Square(dim, dim, tile)};
  TiledMatrix b{"B", TileLayout::Square(dim, dim, tile)};
  TiledMatrix c{"C", TileLayout::Square(dim, dim, tile)};
  for (const TiledMatrix* m : {&a, &b}) {
    DenseMatrix dense = DenseMatrix::Gaussian(dim, dim, &rng);
    CUMULON_CHECK(StoreDense(dense, *m, &store).ok());
  }

  PhysicalPlan plan;
  // One task for the whole output grid (MatMulParams counts output-tile
  // blocks *per task*): the straggler by construction.
  const int64_t grid = dim / tile;
  Status st = AddMatMul(a, b, c, MatMulParams{grid, grid, 0}, {}, &plan);
  CUMULON_CHECK(st.ok()) << st;

  Stopwatch sw;
  auto stats = executor.Run(plan);
  CUMULON_CHECK(stats.ok()) << stats.status();
  RunResult r;
  r.seconds = sw.ElapsedSeconds();
  r.splits = stats->metrics.CounterOr("exec.steal.splits", 0);
  r.stolen = stats->metrics.CounterOr("exec.steal.stolen", 0);
  r.attempts = stats->metrics.CounterOr("exec.steal.attempts", 0);
  return r;
}

void Run(const std::string& json_path) {
  const int slots = 4;
  const int64_t dim = 2048;
  const int64_t tile = 256;  // 8x8 output grid -> 64 splits in one task
  PrintHeader("E16: work stealing vs a straggler task (real engine)");
  std::printf("one %lldx%lld matmul task, %lld-wide tiles, %d slots\n",
              static_cast<long long>(dim), static_cast<long long>(dim),
              static_cast<long long>(tile), slots);
  std::printf("%-12s %12s %10s %10s %10s\n", "mode", "wall", "splits",
              "stolen", "attempts");
  PrintRule();
  const RunResult plain = RunOnce(false, slots, dim, tile);
  const RunResult steal = RunOnce(true, slots, dim, tile);
  std::printf("%-12s %12s %10lld %10lld %10lld\n", "plain",
              FormatDuration(plain.seconds).c_str(),
              static_cast<long long>(plain.splits),
              static_cast<long long>(plain.stolen),
              static_cast<long long>(plain.attempts));
  std::printf("%-12s %12s %10lld %10lld %10lld\n", "stealing",
              FormatDuration(steal.seconds).c_str(),
              static_cast<long long>(steal.splits),
              static_cast<long long>(steal.stolen),
              static_cast<long long>(steal.attempts));
  std::printf("tail cut: %.2fx\n", plain.seconds / steal.seconds);

  if (json_path.empty()) return;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  CUMULON_CHECK(f != nullptr) << "cannot write " << json_path;
  std::fprintf(f,
               "{\"bench\":\"e16_steal\",\"slots\":%d,"
               "\"plain_seconds\":%.4f,\"steal_seconds\":%.4f,"
               "\"speedup\":%.3f,\"splits\":%lld,\"stolen\":%lld}\n",
               slots, plain.seconds, steal.seconds,
               plain.seconds / steal.seconds,
               static_cast<long long>(steal.splits),
               static_cast<long long>(steal.stolen));
  std::fclose(f);
  std::printf("summary -> %s\n", json_path.c_str());
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  cumulon::bench::Run(json_path);
  return 0;
}
