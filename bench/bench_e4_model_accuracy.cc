// E4 — cost-model validation: how well does the benchmark-calibrated
// simulator predict *actual* execution time? (The paper validates its
// predictions against measured Hadoop runs; our "actual" is the real
// thread-pool engine on this host.)
//
// Paper expectation: predictions within a modest relative error across
// sizes and operators, accurate enough to rank deployment plans.

#include <cmath>

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Case {
  const char* label;
  int64_t m, k, n, tile;
};

/// One predicted-vs-actual table. With `with_cache`, the real engine owns a
/// node-local tile cache over a DFS-backed store and the simulator models
/// it; without, both sides run the seed configuration (in-memory store, no
/// cache). Returns the worst relative error over the cases.
double RunCases(const TileOpCostModel& cost, const ClusterConfig& host,
                bool with_cache) {
  std::printf("%-28s %12s %12s %9s\n", "multiply", "actual", "predicted",
              "error");
  PrintRule();
  const Case cases[] = {
      {"256 x 256 x 256 (t=128)", 256, 256, 256, 128},
      {"512 x 512 x 512 (t=128)", 512, 512, 512, 128},
      {"512 x 512 x 512 (t=256)", 512, 512, 512, 256},
      {"768 x 256 x 256 (t=128)", 768, 256, 256, 128},
      {"256 x 768 x 256 (t=128)", 256, 768, 256, 128},
  };
  double worst_error = 0.0;
  for (const Case& c : cases) {
    // Real execution with no IO cost, matching the host profile's
    // infinite-bandwidth assumption: in-memory store, or a DFS-backed one
    // without checksumming when exercising the cache.
    InMemoryTileStore mem_store;
    DfsOptions dfs_options;
    dfs_options.num_nodes = 1;
    dfs_options.replication = 1;
    SimDfs dfs(dfs_options);
    DfsTileStore dfs_store(&dfs);
    TileStore* store = with_cache ? static_cast<TileStore*>(&dfs_store)
                                  : static_cast<TileStore*>(&mem_store);
    TiledMatrix a{"A", TileLayout::Square(c.m, c.k, c.tile)};
    TiledMatrix b{"B", TileLayout::Square(c.k, c.n, c.tile)};
    TiledMatrix out{"C", TileLayout::Square(c.m, c.n, c.tile)};
    Rng rng(1);
    CUMULON_CHECK(
        GenerateMatrix(a, FillKind::kGaussian, 0, &rng, store).ok());
    CUMULON_CHECK(
        GenerateMatrix(b, FillKind::kGaussian, 0, &rng, store).ok());

    RealEngineOptions real_options;
    real_options.enable_tile_cache = with_cache;
    RealEngine real(host, real_options);
    if (with_cache) dfs_store.AttachCaches(real.tile_caches());
    ExecutorOptions exec_options;
    exec_options.job_startup_seconds = 0.0;
    Executor real_exec(store, &real, &cost, exec_options);
    PhysicalPlan plan;
    CUMULON_CHECK(
        AddMatMul(a, b, out, MatMulParams{1, 1, 0}, {}, &plan).ok());
    // Best of 3 to shed scheduler noise.
    double actual = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      auto stats = real_exec.Run(plan);
      CUMULON_CHECK(stats.ok()) << stats.status();
      actual = std::min(actual, stats->total_seconds);
    }

    SimEngineOptions sim_options;
    sim_options.task_startup_seconds = 0.0;
    sim_options.replication = 1;
    sim_options.enable_tile_cache = with_cache;
    SimEngine sim(host, sim_options);
    InMemoryTileStore meta;
    ExecutorOptions sim_exec_options;
    sim_exec_options.real_mode = false;
    sim_exec_options.job_startup_seconds = 0.0;
    Executor sim_exec(&meta, &sim, &cost, sim_exec_options);
    PhysicalPlan sim_plan;
    CUMULON_CHECK(
        AddMatMul(a, b, out, MatMulParams{1, 1, 0}, {}, &sim_plan).ok());
    auto predicted = sim_exec.Run(sim_plan);
    CUMULON_CHECK(predicted.ok()) << predicted.status();

    const double err =
        std::abs(predicted->total_seconds - actual) / actual * 100.0;
    worst_error = std::max(worst_error, err);
    std::printf("%-28s %12.4fs %12.4fs %8.1f%%\n", c.label, actual,
                predicted->total_seconds, err);
  }
  PrintRule();
  std::printf("worst relative error: %.1f%%\n", worst_error);
  return worst_error;
}

void Run() {
  PrintHeader("E4: predicted vs actual execution time (this host)");
  CalibrationOptions cal_options;
  cal_options.tile_dim = 192;
  auto calibration = Calibrate(cal_options);
  CUMULON_CHECK(calibration.ok()) << calibration.status();
  std::printf("calibration: gemm %.2f GFLOP/s, ew %.2f Gelem/s, "
              "transpose %.2f Gelem/s\n",
              calibration->gemm_gflops, calibration->ew_gelems,
              calibration->transpose_gelems);
  const TileOpCostModel cost = calibration->ToCostModel();
  const ClusterConfig host{calibration->ToHostProfile(1), 1, 1};

  RunCases(cost, host, /*with_cache=*/false);
  std::printf("\nwith node-local tile cache (real + modeled):\n");
  RunCases(cost, host, /*with_cache=*/true);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
