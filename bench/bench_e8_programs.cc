// E8 — end-to-end statistical programs: Cumulon (fused, chain-optimized)
// vs an "existing Hadoop system" configuration (unfused element-wise ops,
// literal multiply order, MR-style multiplies for the dominant products).
//
// Paper expectation: program-level speedups of severalfold, compounding
// the per-operator wins of E1 with fewer jobs and fewer passes.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

struct Workload {
  std::string name;
  ProgramSpec cumulon_spec;   // chain-optimized
  ProgramSpec baseline_spec;  // literal program
};

Workload MakeRsvd() {
  RsvdSpec spec;
  spec.m = 1 << 16;
  spec.n = 1 << 13;
  spec.l = 64;
  Workload w;
  w.name = "RSVD-1";
  Program naive = BuildRsvd1(spec);
  std::vector<TiledMatrix> inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };
  w.cumulon_spec = {OptimizeProgram(naive), inputs};
  w.baseline_spec = {naive, inputs};
  return w;
}

Workload MakeGnmf() {
  GnmfSpec spec;
  spec.m = 1 << 15;
  spec.n = 1 << 14;
  spec.k = 128;
  Workload w;
  w.name = "GNMF";
  Program program = BuildGnmfIteration(spec);
  std::vector<TiledMatrix> inputs = {
      {"V", TileLayout::Square(spec.m, spec.n, 2048)},
      {"W", TileLayout::Square(spec.m, spec.k, 2048)},
      {"H", TileLayout::Square(spec.k, spec.n, 2048)},
  };
  w.cumulon_spec = {OptimizeProgram(program), inputs};
  w.baseline_spec = {program, inputs};
  return w;
}

Workload MakeLinReg() {
  LinRegSpec spec;
  spec.samples = 1 << 17;
  spec.features = 1 << 13;
  Workload w;
  w.name = "LinReg";
  Program program = BuildLinRegStep(spec);
  std::vector<TiledMatrix> inputs = {
      {"X", TileLayout::Square(spec.samples, spec.features, 2048)},
      {"w", TileLayout::Square(spec.features, 1, 2048)},
      {"y", TileLayout::Square(spec.samples, 1, 2048)},
  };
  w.cumulon_spec = {OptimizeProgram(program), inputs};
  w.baseline_spec = {program, inputs};
  return w;
}

Workload MakePageRank() {
  PageRankSpec spec;
  spec.n = 1 << 15;
  Workload w;
  w.name = "PageRank";
  Program program = BuildPageRankIteration(spec);
  std::vector<TiledMatrix> inputs = {
      {"M", TileLayout::Square(spec.n, spec.n, 2048)},
      {"p", TileLayout::Square(spec.n, 1, 2048)},
  };
  w.cumulon_spec = {OptimizeProgram(program), inputs};
  w.baseline_spec = {program, inputs};
  return w;
}

Workload MakeLogReg() {
  LogRegSpec spec;
  spec.samples = 1 << 17;
  spec.features = 1 << 13;
  Workload w;
  w.name = "LogReg";
  Program program = BuildLogRegStep(spec);
  std::vector<TiledMatrix> inputs = {
      {"X", TileLayout::Square(spec.samples, spec.features, 2048)},
      {"w", TileLayout::Square(spec.features, 1, 2048)},
      {"y", TileLayout::Square(spec.samples, 1, 2048)},
  };
  w.cumulon_spec = {OptimizeProgram(program), inputs};
  w.baseline_spec = {program, inputs};
  return w;
}

double Predict(const ProgramSpec& spec, bool fused, double job_startup) {
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  options.lowering.enable_fusion = fused;
  options.job_startup_seconds = job_startup;
  auto prediction = PredictProgram(spec, DefaultCluster(16), options);
  CUMULON_CHECK(prediction.ok()) << prediction.status();
  return prediction->seconds;
}

void Run() {
  PrintHeader("E8: end-to-end programs on 16 x m1.large");
  std::printf("%-10s %12s %16s %10s\n", "workload", "Cumulon",
              "unfused+literal", "speedup");
  PrintRule();
  for (const Workload& w : {MakeRsvd(), MakeGnmf(), MakeLinReg(),
                            MakePageRank(), MakeLogReg()}) {
    // Cumulon: optimized chain + fusion, light job startup.
    const double cumulon = Predict(w.cumulon_spec, /*fused=*/true, 3.0);
    // Baseline: literal multiply order, no fusion, heavier MR job startup
    // (each op is its own MapReduce job in SystemML-era systems).
    const double baseline = Predict(w.baseline_spec, /*fused=*/false, 10.0);
    std::printf("%-10s %12s %16s %9.2fx\n", w.name.c_str(),
                FormatDuration(cumulon).c_str(),
                FormatDuration(baseline).c_str(), baseline / cumulon);
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
