// E6 — the time/cost trade-off across machine types and cluster sizes:
// the deployment-plan space and its Pareto frontier, plus the cheapest
// plan per deadline (the figure a Cumulon user reads before renting).
//
// Paper expectation: no single machine type dominates; the frontier mixes
// types, and the constrained optimum shifts as the deadline relaxes.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

void Run() {
  RsvdSpec spec;
  spec.m = 1 << 17;
  spec.n = 1 << 14;
  spec.l = 64;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildRsvd1(spec));
  program_spec.inputs = {
      {"A", TileLayout::Square(spec.m, spec.n, 2048)},
      {"Omega", TileLayout::Square(spec.n, spec.l, 2048)},
  };

  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  SearchSpace space;
  space.cluster_sizes = {1, 2, 4, 8, 16, 32};
  space.mm_candidates = {MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}};

  auto points = EnumeratePlans(program_spec, space, options);
  CUMULON_CHECK(points.ok()) << points.status();

  PrintHeader("E6: deployment-plan space for RSVD-1");
  std::printf("evaluated %zu plans across %zu machine types\n",
              points->size(), MachineCatalog().size());

  std::printf("\nPareto frontier (time ascending):\n");
  PrintRule();
  for (const PlanPoint& p : ParetoFrontier(*points)) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  std::printf("\ncheapest plan per deadline:\n");
  PrintRule();
  for (double minutes : {10.0, 20.0, 30.0, 60.0, 120.0, 240.0}) {
    auto best = MinCostUnderDeadline(*points, minutes * 60.0);
    if (best.ok()) {
      std::printf("  <= %6.0f min: %s\n", minutes, best->ToString().c_str());
    } else {
      std::printf("  <= %6.0f min: infeasible\n", minutes);
    }
  }

  std::printf("\nfastest plan per budget:\n");
  PrintRule();
  for (double dollars : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    auto best = MinTimeUnderBudget(*points, dollars);
    if (best.ok()) {
      std::printf("  <= %s: %s\n", FormatMoney(dollars).c_str(),
                  best->ToString().c_str());
    } else {
      std::printf("  <= %s: infeasible\n", FormatMoney(dollars).c_str());
    }
  }
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
