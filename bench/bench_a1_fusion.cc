// A1 — ablation: element-wise fusion into the multiply template, Cumulon's
// operator-level contribution. Fusion off mimics one-job-per-operator
// systems (extra jobs, extra materialization passes).
//
// Expectation: fusion saves whole jobs and all the bytes the intermediate
// would have round-tripped through the DFS.

#include "bench/bench_util.h"

namespace cumulon::bench {
namespace {

double Predict(bool fusion, int* jobs, int64_t* bytes_written) {
  GnmfSpec spec;
  spec.m = 1 << 15;
  spec.n = 1 << 14;
  spec.k = 128;
  ProgramSpec program_spec;
  program_spec.program = OptimizeProgram(BuildGnmfIteration(spec));
  program_spec.inputs = {
      {"V", TileLayout::Square(spec.m, spec.n, 2048)},
      {"W", TileLayout::Square(spec.m, spec.k, 2048)},
      {"H", TileLayout::Square(spec.k, spec.n, 2048)},
  };
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  options.lowering.enable_fusion = fusion;
  auto prediction = PredictProgram(program_spec, DefaultCluster(16), options);
  CUMULON_CHECK(prediction.ok()) << prediction.status();
  *jobs = static_cast<int>(prediction->stats.jobs.size());
  *bytes_written = prediction->stats.bytes_written;
  return prediction->seconds;
}

void Run() {
  PrintHeader("A1: element-wise fusion ablation (GNMF, 16 x m1.large)");
  int jobs_on = 0, jobs_off = 0;
  int64_t bytes_on = 0, bytes_off = 0;
  const double t_on = Predict(true, &jobs_on, &bytes_on);
  const double t_off = Predict(false, &jobs_off, &bytes_off);
  std::printf("%-14s %8s %14s %12s\n", "fusion", "jobs", "bytes written",
              "time");
  PrintRule();
  std::printf("%-14s %8d %14s %12s\n", "on (Cumulon)", jobs_on,
              FormatBytes(bytes_on).c_str(), FormatDuration(t_on).c_str());
  std::printf("%-14s %8d %14s %12s\n", "off", jobs_off,
              FormatBytes(bytes_off).c_str(), FormatDuration(t_off).c_str());
  PrintRule();
  std::printf("fusion saves %d jobs, %s of writes, %.2fx time\n",
              jobs_off - jobs_on, FormatBytes(bytes_off - bytes_on).c_str(),
              t_off / t_on);
}

}  // namespace
}  // namespace cumulon::bench

int main(int argc, char** argv) {
  cumulon::bench::ObsSession obs(argc, argv);
  cumulon::bench::Run();
  return 0;
}
