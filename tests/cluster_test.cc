#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"
#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"

namespace cumulon {
namespace {

MachineProfile TestMachine() {
  MachineProfile m;
  m.name = "test";
  m.cores = 2;
  m.cpu_gflops = 2.0;
  m.disk_mbps = 100.0;  // 1e8 bytes/s
  m.net_mbps = 50.0;    // 5e7 bytes/s
  m.price_per_hour = 0.1;
  return m;
}

SimEngineOptions NoOverheadOptions() {
  SimEngineOptions o;
  o.task_startup_seconds = 0.0;
  o.noise_sigma = 0.0;
  o.replication = 1;
  return o;
}

Task MakeTask(double cpu_ref, int64_t read = 0, int64_t write = 0) {
  Task t;
  t.cost.cpu_seconds_ref = cpu_ref;
  t.cost.bytes_read = read;
  t.cost.bytes_written = write;
  return t;
}

TEST(ClusterConfigTest, TotalSlotsAndToString) {
  ClusterConfig c{TestMachine(), 4, 3};
  EXPECT_EQ(c.total_slots(), 12);
  EXPECT_EQ(c.ToString(), "4xtest (3 slots/machine)");
}

// ---------------------------------------------------------------------------
// SimEngine task-duration model
// ---------------------------------------------------------------------------

TEST(SimEngineTest, CpuOnlyTaskScalesWithMachineSpeed) {
  ClusterConfig c{TestMachine(), 1, 1};
  SimEngine engine(c, NoOverheadOptions());
  // 4 reference-seconds on a 2 GFLOP/s machine with 1 slot on 2 cores.
  TaskCost cost;
  cost.cpu_seconds_ref = 4.0;
  EXPECT_DOUBLE_EQ(engine.TaskDuration(cost, true), 2.0);
}

TEST(SimEngineTest, SlotOversubscriptionSlowsCpu) {
  ClusterConfig c{TestMachine(), 1, 4};  // 4 slots on 2 cores
  SimEngine engine(c, NoOverheadOptions());
  TaskCost cost;
  cost.cpu_seconds_ref = 4.0;
  // 4/2 gflops * slowdown 4/2 = 4 seconds.
  EXPECT_DOUBLE_EQ(engine.TaskDuration(cost, true), 4.0);
}

TEST(SimEngineTest, LocalReadUsesDiskBandwidthShare) {
  ClusterConfig c{TestMachine(), 1, 2};
  SimEngine engine(c, NoOverheadOptions());
  TaskCost cost;
  cost.bytes_read = 100'000'000;  // 1e8 bytes over 1e8/2 B/s = 2s
  EXPECT_NEAR(engine.TaskDuration(cost, true), 2.0, 1e-9);
}

TEST(SimEngineTest, RemoteReadUsesNetworkBandwidth) {
  ClusterConfig c{TestMachine(), 2, 2};
  SimEngine engine(c, NoOverheadOptions());
  TaskCost cost;
  cost.bytes_read = 50'000'000;  // 5e7 over 5e7/2 B/s = 2s
  EXPECT_NEAR(engine.TaskDuration(cost, false), 2.0, 1e-9);
}

TEST(SimEngineTest, WriteReplicationAddsNetworkTime) {
  SimEngineOptions o = NoOverheadOptions();
  o.replication = 3;
  ClusterConfig c{TestMachine(), 2, 1};
  SimEngine engine(c, o);
  TaskCost cost;
  cost.bytes_written = 50'000'000;
  // Disk: 5e7/1e8 = 0.5s; network for two extra replicas: 2*5e7/5e7 = 2s.
  EXPECT_NEAR(engine.TaskDuration(cost, true), 2.5, 1e-9);
}

TEST(SimEngineTest, ShuffleBytesAlwaysPayNetwork) {
  ClusterConfig c{TestMachine(), 2, 1};
  SimEngine engine(c, NoOverheadOptions());
  TaskCost cost;
  cost.shuffle_bytes = 50'000'000;
  EXPECT_NEAR(engine.TaskDuration(cost, true), 1.0, 1e-9);
}

TEST(SimEngineTest, SpillBytesPayLocalDisk) {
  ClusterConfig c{TestMachine(), 2, 1};
  SimEngine engine(c, NoOverheadOptions());
  TaskCost cost;
  cost.local_spill_bytes = 100'000'000;
  EXPECT_NEAR(engine.TaskDuration(cost, true), 1.0, 1e-9);
}

TEST(SimEngineTest, StartupOverheadAdds) {
  SimEngineOptions o = NoOverheadOptions();
  o.task_startup_seconds = 1.5;
  ClusterConfig c{TestMachine(), 1, 1};
  SimEngine engine(c, o);
  EXPECT_DOUBLE_EQ(engine.TaskDuration(TaskCost{}, true), 1.5);
}

// ---------------------------------------------------------------------------
// SimEngine scheduling
// ---------------------------------------------------------------------------

TEST(SimEngineTest, PerfectlyParallelTasksFormWaves) {
  ClusterConfig c{TestMachine(), 2, 2};  // 4 slots
  SimEngine engine(c, NoOverheadOptions());
  JobSpec job;
  job.name = "waves";
  for (int i = 0; i < 8; ++i) job.tasks.push_back(MakeTask(4.0));
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  // Each task: 4/2 gflops * slowdown 1 = 2s; 8 tasks on 4 slots = 2 waves.
  EXPECT_EQ(stats->waves, 2);
  EXPECT_NEAR(stats->duration_seconds, 4.0, 1e-9);
  EXPECT_EQ(stats->num_tasks, 8);
  EXPECT_NEAR(stats->total_task_seconds, 16.0, 1e-9);
}

TEST(SimEngineTest, PartialLastWave) {
  ClusterConfig c{TestMachine(), 2, 2};
  SimEngine engine(c, NoOverheadOptions());
  JobSpec job;
  for (int i = 0; i < 5; ++i) job.tasks.push_back(MakeTask(4.0));
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->duration_seconds, 4.0, 1e-9);  // 2 waves of 2s
}

TEST(SimEngineTest, EmptyJobIsInstant) {
  ClusterConfig c{TestMachine(), 1, 1};
  SimEngine engine(c, NoOverheadOptions());
  auto stats = engine.RunJob(JobSpec{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->duration_seconds, 0.0);
  EXPECT_EQ(stats->waves, 0);
}

TEST(SimEngineTest, MoreMachinesNeverSlower) {
  JobSpec job;
  for (int i = 0; i < 32; ++i) job.tasks.push_back(MakeTask(2.0, 1'000'000));
  double prev = 1e100;
  for (int n : {1, 2, 4, 8}) {
    ClusterConfig c{TestMachine(), n, 2};
    SimEngine engine(c, NoOverheadOptions());
    auto stats = engine.RunJob(job);
    ASSERT_TRUE(stats.ok());
    EXPECT_LE(stats->duration_seconds, prev + 1e-9);
    prev = stats->duration_seconds;
  }
}

TEST(SimEngineTest, LocalityPreferenceHonoredWhenFree) {
  SimEngineOptions o = NoOverheadOptions();
  o.locality_aware = true;
  ClusterConfig c{TestMachine(), 4, 1};
  SimEngine engine(c, o);
  JobSpec job;
  Task t = MakeTask(1.0, 1'000'000);
  t.preferred_machines = {2};
  job.tasks.push_back(t);
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->task_runs[0].machine, 2);
  EXPECT_TRUE(stats->task_runs[0].local);
  EXPECT_EQ(stats->num_non_local_tasks, 0);
}

TEST(SimEngineTest, LocalityIgnoredWhenDisabled) {
  SimEngineOptions o = NoOverheadOptions();
  o.locality_aware = false;
  ClusterConfig c{TestMachine(), 4, 1};
  SimEngine engine(c, o);
  JobSpec job;
  // All tasks prefer machine 3; without delay scheduling most must run
  // elsewhere (remote).
  for (int i = 0; i < 8; ++i) {
    Task t = MakeTask(1.0, 1'000'000);
    t.preferred_machines = {3};
    job.tasks.push_back(t);
  }
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->num_non_local_tasks, 0);
}

TEST(SimEngineTest, DelaySchedulingTradesWaitForLocality) {
  SimEngineOptions o = NoOverheadOptions();
  o.locality_aware = true;
  o.locality_delay_seconds = 100.0;  // wait as long as it takes
  ClusterConfig c{TestMachine(), 4, 1};
  SimEngine engine(c, o);
  JobSpec job;
  for (int i = 0; i < 8; ++i) {
    Task t = MakeTask(1.0, 1'000'000);
    t.preferred_machines = {3};
    job.tasks.push_back(t);
  }
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_non_local_tasks, 0);
  for (const TaskRunInfo& run : stats->task_runs) {
    EXPECT_EQ(run.machine, 3);
  }
}

TEST(SimEngineTest, NoiseIsDeterministicPerSeed) {
  SimEngineOptions o = NoOverheadOptions();
  o.noise_sigma = 0.3;
  o.seed = 5;
  ClusterConfig c{TestMachine(), 2, 2};
  JobSpec job;
  for (int i = 0; i < 16; ++i) job.tasks.push_back(MakeTask(1.0));
  SimEngine e1(c, o), e2(c, o);
  auto s1 = e1.RunJob(job), s2 = e2.RunJob(job);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_DOUBLE_EQ(s1->duration_seconds, s2->duration_seconds);
}

TEST(SimEngineTest, NoiseChangesDurations) {
  SimEngineOptions o = NoOverheadOptions();
  o.noise_sigma = 0.3;
  ClusterConfig c{TestMachine(), 2, 2};
  JobSpec job;
  for (int i = 0; i < 16; ++i) job.tasks.push_back(MakeTask(1.0));
  SimEngine noisy(c, o);
  SimEngine clean(c, NoOverheadOptions());
  auto sn = noisy.RunJob(job), sc = clean.RunJob(job);
  ASSERT_TRUE(sn.ok() && sc.ok());
  EXPECT_NE(sn->duration_seconds, sc->duration_seconds);
}

/// Slots sweep on an IO-bound job: with machine-shared disk, throughput
/// cannot improve by adding slots beyond saturation.
class SlotSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotSweepTest, IoBoundJobGainsNothingFromExtraSlots) {
  const int slots = GetParam();
  ClusterConfig c{TestMachine(), 1, slots};
  SimEngine engine(c, NoOverheadOptions());
  JobSpec job;
  for (int i = 0; i < 16; ++i) {
    job.tasks.push_back(MakeTask(0.0, 100'000'000));
  }
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  // Total data / machine disk bandwidth = 16 s regardless of slot count.
  EXPECT_NEAR(stats->duration_seconds, 16.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweepTest, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// RealEngine
// ---------------------------------------------------------------------------

TEST(RealEngineTest, RunsAllTasksAndMeasuresTime) {
  ClusterConfig c{TestMachine(), 2, 2};
  RealEngine engine(c, RealEngineOptions{});
  std::atomic<int> ran{0};
  JobSpec job;
  for (int i = 0; i < 10; ++i) {
    Task t;
    t.work = [&ran](int) {
      ran.fetch_add(1);
      return Status::OK();
    };
    job.tasks.push_back(std::move(t));
  }
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(stats->num_tasks, 10);
  EXPECT_GE(stats->duration_seconds, 0.0);
}

TEST(RealEngineTest, AssignsMachinesRoundRobin) {
  ClusterConfig c{TestMachine(), 3, 1};
  RealEngine engine(c, RealEngineOptions{});
  JobSpec job;
  job.tasks.resize(6);
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(stats->task_runs[i].machine, i % 3);
  }
}

TEST(RealEngineTest, PropagatesFirstTaskError) {
  ClusterConfig c{TestMachine(), 1, 2};
  RealEngine engine(c, RealEngineOptions{});
  JobSpec job;
  Task bad;
  bad.name = "bad";
  bad.work = [](int) { return Status::Internal("boom"); };
  job.tasks.push_back(std::move(bad));
  auto stats = engine.RunJob(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_NE(stats.status().message().find("bad"), std::string::npos);
}

TEST(RealEngineTest, ConcurrentFailuresPublishOneErrorSafely) {
  // Regression test for the first-error hand-off: the driver used to read
  // the error slot lock-free after the completion latch while workers
  // wrote it under a different mutex. It now lives with the latch under
  // one JobSync mutex. Many simultaneously failing tasks keep the write
  // side hot; the TSan lane verifies the publication is race-free.
  ClusterConfig c{TestMachine(), 4, 4};
  RealEngine engine(c, RealEngineOptions{});
  for (int round = 0; round < 10; ++round) {
    JobSpec job;
    for (int i = 0; i < 32; ++i) {
      Task t;
      t.name = "racing-failure";
      t.work = [](int) { return Status::Internal("concurrent boom"); };
      job.tasks.push_back(std::move(t));
    }
    auto stats = engine.RunJob(job);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
    EXPECT_NE(stats.status().message().find("concurrent boom"),
              std::string::npos);
  }
}

TEST(RealEngineTest, MaxThreadsCapsPool) {
  ClusterConfig c{TestMachine(), 16, 8};  // 128 slots
  RealEngineOptions o;
  o.max_threads = 2;
  RealEngine engine(c, o);
  std::atomic<int> ran{0};
  JobSpec job;
  for (int i = 0; i < 20; ++i) {
    Task t;
    t.work = [&ran](int) {
      ran.fetch_add(1);
      return Status::OK();
    };
    job.tasks.push_back(std::move(t));
  }
  ASSERT_TRUE(engine.RunJob(job).ok());
  EXPECT_EQ(ran.load(), 20);
}

TEST(RealEngineTest, TasksWithoutWorkAreNoOps) {
  ClusterConfig c{TestMachine(), 1, 1};
  RealEngine engine(c, RealEngineOptions{});
  JobSpec job;
  job.tasks.resize(3);
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_tasks, 3);
}

}  // namespace
}  // namespace cumulon
